//! # SCRATCH — application-aware soft-GPGPU architecture and trimming tool
//!
//! This is the umbrella crate of the Rust reproduction of *"SCRATCH: An
//! End-to-End Application-Aware Soft-GPGPU Architecture and Trimming Tool"*
//! (Duarte, Tomás, Falcão — MICRO-50, 2017). It re-exports the public API of
//! every workspace crate:
//!
//! * [`isa`] — the Southern Islands instruction-set model;
//! * [`asm`] — assembler, disassembler and kernel builder;
//! * [`cu`] — the cycle-level MIAOW2.0 compute-unit simulator;
//! * [`system`] — memory hierarchy, clock domains and the ultra-threaded
//!   dispatcher;
//! * [`fpga`] — the calibrated resource/power model and parallelism
//!   allocator;
//! * [`core`] — kernel analysis, architecture trimming and the end-to-end
//!   pipeline;
//! * [`engine`] — parallel multi-CU execution engine and deterministic
//!   batch scheduler (worker pools, job queues, panic isolation);
//! * [`kernels`] — the paper's 17-application benchmark suite;
//! * [`check`] — differential conformance and fuzzing (random-kernel
//!   generator, lockstep reference interpreter, cross-configuration
//!   oracles, divergence minimizer);
//! * [`trace`] — cycle-attribution and event-tracing subsystem (stall
//!   taxonomy, Chrome `trace_event` export);
//! * [`metrics`] — always-on counters, latency histograms and the
//!   Prometheus/JSON exposition layer;
//! * [`fault`] — seeded fault injection, watchdog supervision and
//!   redundant-execution recovery (bit-flip/instruction/transient fault
//!   plans, CRC and DMR detection, resilience campaigns);
//! * [`serve`] — multi-tenant kernel-execution service (JSONL-over-TCP
//!   protocol, token-bucket quotas, admission control with typed load
//!   shedding, graceful drain, closed-loop load harness);
//! * [`fastpath`] — the block-compiled functional execution tier
//!   (basic-block translation, compiled wavefront executor);
//! * [`profile`] — the observability spine: per-job span timelines,
//!   per-kernel instruction signatures with minimal-trim-preset mapping,
//!   and rolling-window SLO telemetry;
//! * [`wal`] — the durability spine: a CRC-framed write-ahead log of
//!   admissions, completions and checkpoints with configurable fsync
//!   policy, segment rotation, torn-tail recovery and offline
//!   inspect/verify audits — what lets `serve` survive `kill -9` with
//!   exactly-once completion of every acked job.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

pub use scratch_asm as asm;
pub use scratch_check as check;
pub use scratch_core as core;
pub use scratch_cu as cu;
pub use scratch_engine as engine;
pub use scratch_fastpath as fastpath;
pub use scratch_fault as fault;
pub use scratch_fpga as fpga;
pub use scratch_isa as isa;
pub use scratch_kernels as kernels;
pub use scratch_metrics as metrics;
pub use scratch_profile as profile;
pub use scratch_serve as serve;
pub use scratch_system as system;
pub use scratch_trace as trace;
pub use scratch_wal as wal;
