//! `scratch-tool` — the command-line face of the SCRATCH framework:
//! assemble Southern Islands kernels, inspect them, run the trimming tool,
//! and execute them on the simulated soft-GPGPU.
//!
//! ```text
//! scratch-tool assemble <file.s> [-o out.kernel.json]
//! scratch-tool disasm   <file.kernel.json | file.s>
//! scratch-tool analyze  <file.s>
//! scratch-tool trim     <file.s>
//! scratch-tool run      <file.s> [--system original|dcd|dcdpm] [--wgs N] [--out-words N]
//!                       [--jobs N] [--exec cycle|fast|fast-timing] [--metrics] [--metrics-out FILE]
//! scratch-tool profile  <file.s> [--system original|dcd|dcdpm] [--wgs N] [--exec cycle|fast]
//!                       [--json]
//! scratch-tool trace    [<file.s>] [--system original|dcd|dcdpm|all] [--n N] [--out DIR]
//! scratch-tool fuzz     [--seed S] [--cases N]
//!                       [--oracle reference|trim|parallel|roundtrip|checkpoint|fastpath|all]
//!                       [--metrics-addr HOST:PORT]
//! scratch-tool serve-metrics [--addr HOST:PORT] [--once]
//! scratch-tool serve    [--addr HOST:PORT] [--workers N] [--queue-cap N] [--tenant-cap N]
//!                       [--rate R] [--burst B] [--quantum CYCLES] [--metrics-addr HOST:PORT]
//!                       [--spans] [--spans-out FILE] [--spans-chrome FILE] [--profile]
//!                       [--wal-dir DIR] [--wal-fsync always|never|MS] [--wal-segment-bytes N]
//!                       [--idle-timeout-ms N]
//! scratch-tool load     [--addr HOST:PORT] [--clients 1,2,4,...] [--duration-ms N]
//!                       [--seed S] [--kernels N] [--tenants N] [--out FILE]
//! scratch-tool ctl      ping|stats|top|drain|cancel <job> [--addr HOST:PORT]
//! scratch-tool wal      inspect <dir> [--limit N] | verify <dir> [--json]
//! scratch-tool chaos    [--seed S] [--cycles N] [--jobs N] [--clients N] [--tenants N]
//!                       [--addr HOST:PORT] [--wal-dir DIR] [--quantum CYCLES]
//!                       [--mid-append-every N] [--json]
//! ```
//!
//! `serve --wal-dir` journals every admission, checkpoint and completion
//! to a crash-safe write-ahead log; on restart against the same directory
//! the daemon prints its recovery report, re-runs unfinished jobs (from
//! their newest durable checkpoint where one exists) and dedupes
//! completed ones by request id. `wal` audits such a log offline. `chaos`
//! is the adversarial proof: it spawns a serve daemon, drives seeded load
//! at it, SIGKILLs it at seeded points (some mid-`write(2)`, via the
//! torn-append hook), restarts it, and fails unless every acked job
//! completed exactly once with a digest bit-identical to a direct run.
//!
//! `run` launches the kernel with one argument: the address of a scratch
//! output buffer (the quickstart convention used by the examples), then
//! prints the first words of that buffer. `--jobs N` shards the dispatch's
//! compute units across N worker threads (default: one per available
//! core); the simulated cycle counts and outputs are bit-identical for
//! any N. `--exec fast` runs the block-compiled functional tier (no cycle
//! counts, identical output words); `--exec fast-timing` runs both tiers
//! and fails loudly if they disagree on any written byte.
//!
//! `profile` runs the kernel with per-PC retire profiling (cycle tier) or
//! per-block dispatch counting (fast tier) and prints its instruction
//! signature: the opcode-class histogram, hottest basic blocks, and the
//! minimal trim preset covering every opcode the run actually executed —
//! the observed-traffic side of the trimming argument. Both tiers report
//! the same signature for fallback-free kernels.
//!
//! `run --metrics` adds a one-line utilisation summary (IPC, per-unit
//! occupancy, memory pressure) and appends a snapshot of the process
//! metrics registry to a JSONL file. `serve-metrics` runs a small warmup
//! batch through the engine + system simulators so every layer's counters
//! are populated, then serves the registry as Prometheus text exposition
//! (`/metrics`) and JSON (`/metrics.json`); `--once` prints the exposition
//! to stdout instead of serving.
//!
//! `fuzz` runs the differential conformance campaign from `scratch-check`:
//! seeded random kernels checked by six oracles (CU vs lockstep reference
//! interpreter, trimmed vs untrimmed CU, serial vs multi-worker dispatch,
//! assembler/disassembler round-trip, checkpoint/restore preemption, and
//! cycle pipeline vs the block-compiled fast tier). Any divergence is
//! minimized and printed as a self-contained repro; the exit code is
//! non-zero if any oracle disagrees, and multi-oracle campaigns break the
//! summary line out per oracle. `--seed` accepts decimal or `0x...` hex,
//! so the `reproduce:` line of a report can be pasted back verbatim.

use std::process::ExitCode;

use scratch::asm::{assemble, Kernel};
use scratch::check::{fuzz, FuzzConfig, OracleKind};
use scratch::core::Scratch;
use scratch::engine::{Engine, JobError};
use scratch::fault::{
    build_contexts, cross_validate, run_plan, FaultClass, FaultPlan, KernelProfile,
    Mode as FaultMode,
};
use scratch::fpga::ParallelPlan;
use scratch::isa::FuncUnit;
use scratch::kernels::{vec_ops::MatrixAdd, Benchmark};
use scratch::metrics::{jsonl, prometheus, MetricsServer};
use scratch::profile::{span, InstrSignature};
use scratch::serve::{run_chaos, ChaosPlan, LoadPlan, ServeClient, ServeConfig, Server};
use scratch::system::{CuStats, ExecMode, RunReport, System, SystemConfig, SystemKind, TraceMode};
use scratch::trace::chrome_trace;
use scratch::wal::{FsyncPolicy, WalConfig};

fn load_kernel(path: &str) -> Result<Kernel, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".json") {
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        assemble(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// A filesystem-safe tag for a system preset.
fn kind_slug(kind: SystemKind) -> &'static str {
    match kind {
        SystemKind::Original => "original",
        SystemKind::Dcd => "dcd",
        SystemKind::DcdPm => "dcdpm",
    }
}

/// Print the stall-attribution table for one traced run and write its
/// Chrome `trace_event` document to `<dir>/<label>-<preset>.trace.json`.
fn write_trace(dir: &str, label: &str, kind: SystemKind, report: &RunReport) -> Result<(), String> {
    let summary = report
        .trace
        .as_ref()
        .ok_or("tracing was not enabled on this run")?;
    summary.check_invariant()?;
    println!("=== {label} on {} ===", kind.label());
    print!("{}", summary.render_table());
    let events = report
        .trace_events
        .as_ref()
        .ok_or("full-fidelity events missing from the report")?;
    let path = format!("{dir}/{label}-{}.trace.json", kind_slug(kind));
    std::fs::write(&path, chrome_trace(events).to_string()).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {path} ({} events)\n", events.len());
    Ok(())
}

/// The one-line utilisation summary `run --metrics` prints: IPC, busy
/// percentage per functional-unit class (over all instances), and memory
/// operations per cycle — the same aggregates the registry gauges carry.
fn metrics_summary(stats: &CuStats, config: &SystemConfig) -> String {
    let mut line = format!("metrics: IPC {:.3} | occupancy", stats.ipc());
    for u in FuncUnit::ALL {
        let per_cu = match u {
            FuncUnit::Simd => u64::from(config.cu.int_valus),
            FuncUnit::Simf => u64::from(config.cu.fp_valus),
            _ => 1,
        };
        let denom = stats.cycles * per_cu * u64::from(config.cus);
        let busy = stats.fu_busy.get(&u).copied().unwrap_or(0);
        let pct = if denom == 0 {
            0.0
        } else {
            busy as f64 / denom as f64 * 100.0
        };
        line.push_str(&format!(" {} {pct:.1}%", u.label()));
    }
    line.push_str(&format!(
        " | mem-ops/cycle {:.4}",
        stats.mem_ops_per_cycle()
    ));
    line
}

/// Run a tiny Matrix Add batch through the engine so every layer's
/// counters (engine queue, system dispatch, CU aggregates) are populated
/// in the process-global registry.
fn metrics_warmup() -> Result<(), String> {
    let outcomes = Engine::new(2).run_batch([false, true].into_iter().map(|fp| {
        let label = if fp { "warmup-fp" } else { "warmup-int" };
        (label, move || {
            MatrixAdd::new(16, fp)
                .run(SystemConfig::preset(SystemKind::DcdPm))
                .map(|_| ())
                .map_err(|e| JobError::Failed(e.to_string()))
        })
    }));
    for o in outcomes {
        o.result.map_err(|e| format!("{}: {e}", o.label))?;
    }
    Ok(())
}

/// Parse `<flag> N` (decimal or `0x` hex) from the argument list.
fn flag_u64(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    match args
        .iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
    {
        None => Ok(default),
        Some(v) => {
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.map_err(|_| format!("{flag}: `{v}` is not a number"))
        }
    }
}

/// Value of `<flag> VALUE` from the argument list, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("scratch-tool: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let path = args.get(1).cloned();

    match cmd {
        "assemble" => {
            let path = path.ok_or("usage: scratch-tool assemble <file.s> [-o out.json]")?;
            let kernel = load_kernel(&path)?;
            let out = args
                .iter()
                .position(|a| a == "-o")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| format!("{}.kernel.json", kernel.name()));
            std::fs::write(&out, serde_json::to_string_pretty(&kernel).unwrap())
                .map_err(|e| format!("{out}: {e}"))?;
            println!(
                "assembled `{}`: {} bytes -> {out}",
                kernel.name(),
                kernel.size_bytes()
            );
            Ok(())
        }
        "disasm" => {
            let path = path.ok_or("usage: scratch-tool disasm <file>")?;
            let kernel = load_kernel(&path)?;
            print!("{}", kernel.disassemble().map_err(|e| e.to_string())?);
            Ok(())
        }
        "analyze" => {
            let path = path.ok_or("usage: scratch-tool analyze <file.s>")?;
            let kernel = load_kernel(&path)?;
            let analysis = Scratch::new().analyze(&kernel).map_err(|e| e.to_string())?;
            println!(
                "`{}`: {} static instructions",
                kernel.name(),
                analysis.static_instructions
            );
            for (unit, ops) in &analysis.required {
                let names: Vec<&str> = ops.iter().map(|o| o.mnemonic()).collect();
                println!(
                    "{unit:8} ({:5.1} %): {}",
                    analysis.unit_usage_percent(*unit),
                    names.join(", ")
                );
            }
            Ok(())
        }
        "trim" => {
            let path = path.ok_or("usage: scratch-tool trim <file.s>")?;
            let kernel = load_kernel(&path)?;
            let scratch = Scratch::new();
            let trim = scratch.trim(&kernel).map_err(|e| e.to_string())?;
            println!(
                "kept {} instructions ({} removed); removed units: {:?}",
                trim.kept_count(),
                trim.removed_count(),
                trim.removed_units
            );
            for unit in FuncUnit::TRIMMABLE {
                println!(
                    "  {:8} usage {:5.1} %",
                    unit.label(),
                    trim.usage_percent[&unit]
                );
            }
            let s = trim.cu_savings_percent(1, u8::from(trim.uses_fp));
            println!(
                "CU savings: {:.0}% FF, {:.0}% LUT, {:.0}% DSP, {:.0}% BRAM",
                s[0], s[1], s[2], s[3]
            );
            let synth = scratch.synthesize(
                SystemKind::DcdPm,
                Some(&trim),
                ParallelPlan::baseline(trim.uses_fp),
            );
            println!(
                "trimmed system: {} | {:.2} W",
                synth.resources,
                synth.power.total_w()
            );
            let mc = scratch.plan_multicore(&trim, 3);
            let mt = scratch.plan_multithread(&trim, 4);
            println!(
                "freed-area plans: {} CUs (multi-core) | {} INT + {} FP VALUs (multi-thread)",
                mc.cus, mt.int_valus, mt.fp_valus
            );
            Ok(())
        }
        "run" => {
            let path = path.ok_or("usage: scratch-tool run <file.s> [--system ...]")?;
            let kernel = load_kernel(&path)?;
            let kind = match args
                .iter()
                .position(|a| a == "--system")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
            {
                Some("original") => SystemKind::Original,
                Some("dcd") => SystemKind::Dcd,
                None | Some("dcdpm") => SystemKind::DcdPm,
                Some(other) => return Err(format!("unknown system `{other}`")),
            };
            let parse_n = |flag: &str, default: u32| -> u32 {
                args.iter()
                    .position(|a| a == flag)
                    .and_then(|i| args.get(i + 1))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(default)
            };
            let wgs = parse_n("--wgs", 1);
            let out_words = parse_n("--out-words", 16) as usize;
            // 0 = one worker per available core (the default); any count
            // yields bit-identical simulated results.
            let jobs = parse_n("--jobs", 0) as usize;
            let exec = match args
                .iter()
                .position(|a| a == "--exec")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
            {
                None | Some("cycle") => ExecMode::Cycle,
                Some("fast") => ExecMode::Fast,
                Some("fast-timing") => ExecMode::FastWithTiming,
                Some(other) => return Err(format!("unknown exec mode `{other}`")),
            };

            let config = SystemConfig::preset(kind)
                .with_workers(jobs)
                .with_exec(exec);
            let mut sys = System::new(config, &kernel).map_err(|e| e.to_string())?;
            let out = sys.alloc(1 << 20);
            sys.set_args(&[out as u32]);
            sys.dispatch([wgs, 1, 1]).map_err(|e| e.to_string())?;
            let report = sys.report();
            if exec == ExecMode::Fast {
                println!(
                    "{}: {} instructions (fast tier, no cycle model) on {}",
                    kernel.name(),
                    report.instructions(),
                    kind.label()
                );
            } else {
                println!(
                    "{}: {} CU cycles, {} instructions, {:.3} ms on {}",
                    kernel.name(),
                    report.cu_cycles,
                    report.instructions(),
                    report.seconds * 1e3,
                    kind.label()
                );
            }
            println!("out[0..{out_words}] = {:?}", sys.read_words(out, out_words));
            if args.iter().any(|a| a == "--metrics") {
                println!("{}", metrics_summary(&report.stats, sys.config()));
                let out_path = args
                    .iter()
                    .position(|a| a == "--metrics-out")
                    .and_then(|i| args.get(i + 1))
                    .cloned()
                    .unwrap_or_else(|| "scratch-metrics.jsonl".to_owned());
                let snapshot = scratch::metrics::global().snapshot();
                jsonl::append_snapshot(std::path::Path::new(&out_path), &snapshot)
                    .map_err(|e| format!("{out_path}: {e}"))?;
                println!("appended metrics snapshot to {out_path}");
            }
            Ok(())
        }
        "profile" => {
            let path = path.ok_or("usage: scratch-tool profile <file.s> [--system ...]")?;
            let kernel = load_kernel(&path)?;
            let kind = match flag_value(&args, "--system").map(String::as_str) {
                Some("original") => SystemKind::Original,
                Some("dcd") => SystemKind::Dcd,
                None | Some("dcdpm") => SystemKind::DcdPm,
                Some(other) => return Err(format!("unknown system `{other}`")),
            };
            let exec = match flag_value(&args, "--exec").map(String::as_str) {
                None | Some("cycle") => ExecMode::Cycle,
                Some("fast") => ExecMode::Fast,
                Some(other) => return Err(format!("profile: unknown exec tier `{other}`")),
            };
            let wgs = u32::try_from(flag_u64(&args, "--wgs", 1)?).unwrap_or(1);
            let config = SystemConfig::preset(kind)
                .with_exec(exec)
                .with_profile(true);
            let mut sys = System::new(config, &kernel).map_err(|e| e.to_string())?;
            let out = sys.alloc(1 << 20);
            sys.set_args(&[out as u32]);
            sys.dispatch([wgs.max(1), 1, 1])
                .map_err(|e| e.to_string())?;
            let sig = if exec == ExecMode::Fast {
                let blocks = sys
                    .fast_block_profiles(0)
                    .ok_or("fast tier produced no block profiles")?;
                let stats = sys.fast_stats(0).ok_or("fast tier produced no stats")?;
                InstrSignature::from_block_dispatches(
                    kernel.name(),
                    &blocks,
                    &stats.block_dispatches,
                )
            } else {
                let prog = scratch::fastpath::translate(&kernel, &sys.config().cu)
                    .map_err(|e| format!("block translation: {e}"))?;
                InstrSignature::from_pc_counts(
                    kernel.name(),
                    &prog.block_profiles(),
                    sys.pc_profile(0),
                )
            };
            if args.iter().any(|a| a == "--json") {
                println!("{}", serde_json::to_string_pretty(&sig).unwrap());
            } else {
                print!("{}", sig.report());
            }
            Ok(())
        }
        "trace" => {
            let file = args.get(1).filter(|a| !a.starts_with("--")).cloned();
            let parse_n = |flag: &str, default: u32| -> u32 {
                args.iter()
                    .position(|a| a == flag)
                    .and_then(|i| args.get(i + 1))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(default)
            };
            let kinds = match args
                .iter()
                .position(|a| a == "--system")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
            {
                Some("original") => vec![SystemKind::Original],
                Some("dcd") => vec![SystemKind::Dcd],
                Some("dcdpm") => vec![SystemKind::DcdPm],
                None | Some("all") => {
                    vec![SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm]
                }
                Some(other) => return Err(format!("unknown system `{other}`")),
            };
            let n = parse_n("--n", 32);
            let out_dir = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| ".".to_owned());

            for &kind in &kinds {
                if let Some(path) = &file {
                    let kernel = load_kernel(path)?;
                    let config = SystemConfig::preset(kind).with_trace(TraceMode::Full);
                    let mut sys = System::new(config, &kernel).map_err(|e| e.to_string())?;
                    let out = sys.alloc(1 << 20);
                    sys.set_args(&[out as u32]);
                    sys.dispatch([parse_n("--wgs", 1), 1, 1])
                        .map_err(|e| e.to_string())?;
                    write_trace(&out_dir, kernel.name(), kind, &sys.report())?;
                } else {
                    for fp in [false, true] {
                        let bench = MatrixAdd::new(n, fp);
                        let report = bench
                            .run(SystemConfig::preset(kind).with_trace(TraceMode::Full))
                            .map_err(|e| format!("{}: {e}", bench.name()))?;
                        let label = if fp {
                            "matrix_add_fp"
                        } else {
                            "matrix_add_int"
                        };
                        write_trace(&out_dir, label, kind, &report)?;
                    }
                }
            }
            Ok(())
        }
        "fuzz" => {
            let seed = flag_u64(&args, "--seed", 0)?;
            let cases = flag_u64(&args, "--cases", 100)?;
            if args.iter().any(|a| a == "--inject") {
                // Injection cross-validation: every case runs once per
                // fault class with a seeded fault, the reference
                // interpreter acting as the oracle. A silent escape (wrong
                // output the oracle missed) fails the sweep.
                let report = cross_validate(seed, u32::try_from(cases).unwrap_or(u32::MAX))
                    .map_err(|e| e.to_string())?;
                println!(
                    "inject sweep: {} kernels, {} faults — {} masked, {} caught, {} silent",
                    report.cases, report.injected, report.masked, report.caught, report.silent
                );
                for f in &report.failures {
                    println!("  SILENT: {f}");
                }
                if report.silent > 0 {
                    return Err(format!("{} silent corruptions", report.silent));
                }
                return Ok(());
            }
            let oracles = match args
                .iter()
                .position(|a| a == "--oracle")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
            {
                None | Some("all") => OracleKind::ALL.to_vec(),
                Some(name) => vec![OracleKind::parse(name)
                    .ok_or_else(|| format!("unknown oracle `{name}` (see `scratch-tool help`)"))?],
            };
            let server = match args
                .iter()
                .position(|a| a == "--metrics-addr")
                .and_then(|i| args.get(i + 1))
            {
                None => None,
                Some(addr) => {
                    let server =
                        MetricsServer::serve(addr.as_str(), scratch::metrics::global().clone())
                            .map_err(|e| format!("{addr}: {e}"))?;
                    println!(
                        "serving campaign metrics on http://{}/metrics",
                        server.addr()
                    );
                    Some(server)
                }
            };
            let report = fuzz(&FuzzConfig {
                seed,
                cases,
                oracles,
                ..FuzzConfig::default()
            });
            if let Some(server) = server {
                server.shutdown();
            }
            println!("{}", report.summary());
            for d in &report.divergences {
                println!("\n{}", d.render());
            }
            if report.skipped > 0 {
                return Err(format!("{} cases failed to assemble", report.skipped));
            }
            if !report.divergences.is_empty() {
                return Err(format!("{} divergences found", report.divergences.len()));
            }
            Ok(())
        }
        "inject" => {
            let seed = flag_u64(&args, "--seed", 1)?;
            let kernels = flag_u64(&args, "--kernels", 4)?;
            let per = flag_u64(&args, "--per", 4)?;
            let jobs = flag_u64(&args, "--jobs", 1)?;
            let mode = match flag_value(&args, "--mode").map(String::as_str) {
                None => FaultMode::Crc,
                Some(name) => FaultMode::parse(name)
                    .ok_or_else(|| format!("unknown mode `{name}` (crc|dmr|plain)"))?,
            };
            let classes: Vec<FaultClass> = match flag_value(&args, "--classes").map(String::as_str)
            {
                None | Some("all") => FaultClass::ALL.to_vec(),
                Some(list) => list
                    .split(',')
                    .map(|name| {
                        FaultClass::parse(name)
                            .ok_or_else(|| format!("unknown fault class `{name}`"))
                    })
                    .collect::<Result<_, _>>()?,
            };

            // The plan either loads from --plan (replaying a recorded
            // campaign bit-for-bit) or generates from the seed.
            let (plan, contexts) = match flag_value(&args, "--plan") {
                Some(path) => {
                    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                    let plan: FaultPlan =
                        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
                    let mut seeds: Vec<u64> = Vec::new();
                    for f in &plan.faults {
                        if !seeds.contains(&f.kernel_seed) {
                            seeds.push(f.kernel_seed);
                        }
                    }
                    let contexts = build_contexts(&seeds).map_err(|e| e.to_string())?;
                    (plan, contexts)
                }
                None => {
                    let seeds: Vec<u64> = (0..kernels).map(|i| seed + i).collect();
                    let contexts = build_contexts(&seeds).map_err(|e| e.to_string())?;
                    let profiles: Vec<KernelProfile> = contexts.iter().map(|c| c.profile).collect();
                    let plan = FaultPlan::generate(
                        seed,
                        &profiles,
                        &classes,
                        u32::try_from(per).unwrap_or(u32::MAX),
                    );
                    (plan, contexts)
                }
            };
            if let Some(path) = flag_value(&args, "--plan-out") {
                std::fs::write(path, serde_json::to_string_pretty(&plan).unwrap())
                    .map_err(|e| format!("{path}: {e}"))?;
                println!("wrote {} planned faults to {path}", plan.faults.len());
            }

            let report = run_plan(&plan, contexts, mode, usize::try_from(jobs).unwrap_or(1))
                .map_err(|e| e.to_string())?;
            if args.iter().any(|a| a == "--json") {
                println!("{}", serde_json::to_string_pretty(&report).unwrap());
            } else {
                print!("{}", report.table());
            }
            if mode.detects() && report.totals.silent > 0 {
                return Err(format!(
                    "{} silent corruptions under detecting mode {mode}",
                    report.totals.silent
                ));
            }
            Ok(())
        }
        "serve" => {
            let addr = flag_value(&args, "--addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7070".to_owned());
            let config = ServeConfig {
                workers: usize::try_from(flag_u64(&args, "--workers", 0)?).unwrap_or(0),
                queue_cap: usize::try_from(flag_u64(&args, "--queue-cap", 256)?).unwrap_or(256),
                tenant_cap: usize::try_from(flag_u64(&args, "--tenant-cap", 64)?).unwrap_or(64),
                rate: flag_value(&args, "--rate")
                    .map(|v| {
                        v.parse()
                            .map_err(|_| format!("--rate: `{v}` is not a number"))
                    })
                    .transpose()?
                    .unwrap_or(0.0),
                burst: flag_value(&args, "--burst")
                    .map(|v| {
                        v.parse()
                            .map_err(|_| format!("--burst: `{v}` is not a number"))
                    })
                    .transpose()?
                    .unwrap_or(32.0),
                quantum_cycles: flag_u64(
                    &args,
                    "--quantum",
                    ServeConfig::default().quantum_cycles,
                )?
                .max(1),
                spans: args.iter().any(|a| a == "--spans")
                    || flag_value(&args, "--spans-out").is_some()
                    || flag_value(&args, "--spans-chrome").is_some(),
                profile: args.iter().any(|a| a == "--profile"),
                wal: flag_value(&args, "--wal-dir")
                    .map(|dir| {
                        let mut wal = WalConfig::new(dir);
                        if let Some(policy) = flag_value(&args, "--wal-fsync") {
                            wal.fsync = FsyncPolicy::parse(policy)
                                .map_err(|e| format!("--wal-fsync: {e}"))?;
                        }
                        wal.segment_bytes =
                            flag_u64(&args, "--wal-segment-bytes", wal.segment_bytes)?.max(1);
                        Ok::<_, String>(wal)
                    })
                    .transpose()?,
                idle_timeout: match flag_u64(&args, "--idle-timeout-ms", 0)? {
                    0 => None,
                    ms => Some(std::time::Duration::from_millis(ms)),
                },
                ..ServeConfig::default()
            };
            // Optional Prometheus sidecar on the same registry, so
            // `curl :9184/metrics` sees the serving counters live.
            let metrics = match flag_value(&args, "--metrics-addr") {
                None => None,
                Some(addr) => {
                    let server =
                        MetricsServer::serve(addr.as_str(), scratch::metrics::global().clone())
                            .map_err(|e| format!("{addr}: {e}"))?;
                    println!("metrics on http://{}/metrics", server.addr());
                    Some(server)
                }
            };
            let server = Server::bind(addr.as_str(), config).map_err(|e| format!("{addr}: {e}"))?;
            if let Some(r) = server.recovery_report() {
                // One line per fact, grep-stable: the chaos harness and
                // the CI wal-smoke job key on the `wal recovery:` prefix.
                println!(
                    "wal recovery: {} segments, {} frames ({} admitted / {} completed / {} checkpoints) in {} ms",
                    r.segments, r.frames, r.admitted, r.completed, r.checkpoints, r.recovery_ms
                );
                println!(
                    "wal recovery: {} replayed ({} resumed from checkpoint), {} deduped",
                    r.replayed, r.resumed, r.deduped
                );
                if r.torn_bytes > 0 || r.dropped_segments > 0 {
                    println!(
                        "wal recovery: truncated {} torn bytes, dropped {} segments after the damage",
                        r.torn_bytes, r.dropped_segments
                    );
                }
            }
            println!("scratch-serve listening on {}", server.addr());
            println!(
                "drain with: scratch-tool ctl drain --addr {}",
                server.addr()
            );
            // Keep a recorder handle past shutdown so timelines of jobs
            // finishing during the drain are still collected.
            let recorder = server.span_recorder();
            server.wait_drain();
            println!("drain requested; finishing accepted jobs…");
            let stats = server.shutdown();
            if let Some(metrics) = metrics {
                metrics.shutdown();
            }
            if let Some(recorder) = recorder {
                let jobs = recorder.take_finished();
                let mut torn = 0usize;
                for j in &jobs {
                    if let Err(e) = j.check_tiling() {
                        eprintln!("span tiling violated on job {}: {e}", j.job);
                        torn += 1;
                    }
                }
                if torn == 0 {
                    println!("span tiling: ok ({} jobs)", jobs.len());
                }
                if let Some(path) = flag_value(&args, "--spans-out") {
                    std::fs::write(path, span::to_jsonl(&jobs))
                        .map_err(|e| format!("{path}: {e}"))?;
                    println!("wrote {} job timelines to {path}", jobs.len());
                }
                if let Some(path) = flag_value(&args, "--spans-chrome") {
                    std::fs::write(path, span::to_chrome(&jobs).to_string())
                        .map_err(|e| format!("{path}: {e}"))?;
                    println!(
                        "wrote Chrome trace of {} job timelines to {path}",
                        jobs.len()
                    );
                }
                if torn > 0 {
                    return Err(format!("{torn} jobs with torn span timelines"));
                }
            }
            println!(
                "served {} jobs ({} shed, {} failed); goodbye",
                stats.completed, stats.shed, stats.failed
            );
            Ok(())
        }
        "load" => {
            let addr = flag_value(&args, "--addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7070".to_owned());
            let steps: Vec<usize> = match flag_value(&args, "--clients") {
                None => vec![1, 2, 4, 8, 16, 32],
                Some(list) => list
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse()
                            .map_err(|_| format!("--clients: `{v}` is not a number"))
                    })
                    .collect::<Result<_, _>>()?,
            };
            let plan = LoadPlan {
                addr,
                steps,
                duration_ms: flag_u64(&args, "--duration-ms", 2000)?,
                seed: flag_u64(&args, "--seed", 1)?,
                kernels: usize::try_from(flag_u64(&args, "--kernels", 8)?).unwrap_or(8),
                tenants: usize::try_from(flag_u64(&args, "--tenants", 4)?).unwrap_or(4),
            };
            let report = scratch::serve::run_load(&plan).map_err(|e| e.to_string())?;
            println!(
                "{:>8} {:>10} {:>10} {:>8} {:>12} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>7}",
                "clients",
                "offered/s",
                "done/s",
                "shed",
                "completed",
                "p50 us",
                "p95 us",
                "p99 us",
                "queue us",
                "run us",
                "snap us",
                "reconn"
            );
            for s in &report.steps {
                println!(
                    "{:>8} {:>10.1} {:>10.1} {:>8} {:>12} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>7}",
                    s.clients,
                    s.offered_per_sec,
                    s.completed_per_sec,
                    s.shed,
                    s.completed,
                    s.p50_us,
                    s.p95_us,
                    s.p99_us,
                    s.mean_queue_us,
                    s.mean_run_us,
                    s.mean_snap_us,
                    s.reconnects
                );
            }
            if let Some(path) = flag_value(&args, "--out") {
                std::fs::write(path, serde_json::to_string_pretty(&report).unwrap())
                    .map_err(|e| format!("{path}: {e}"))?;
                println!("wrote saturation curve to {path}");
            }
            Ok(())
        }
        "ctl" => {
            let verb = args.get(1).map(String::as_str).ok_or(
                "usage: scratch-tool ctl ping|stats|top|drain|cancel <job> [--addr HOST:PORT]",
            )?;
            let addr = flag_value(&args, "--addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7070".to_owned());
            let mut client =
                ServeClient::connect(addr.as_str()).map_err(|e| format!("{addr}: {e}"))?;
            match verb {
                "ping" => {
                    client.ping().map_err(|e| e.to_string())?;
                    println!("pong");
                    Ok(())
                }
                "stats" => {
                    let stats = client.stats().map_err(|e| e.to_string())?;
                    println!("{}", serde_json::to_string_pretty(&stats).unwrap());
                    Ok(())
                }
                "top" => {
                    let top = client.top().map_err(|e| e.to_string())?;
                    println!(
                        "queue {} | in-flight {}{}",
                        top.queue_depth,
                        top.in_flight,
                        if top.draining { " | DRAINING" } else { "" }
                    );
                    println!(
                        "{:<12} {:>6} {:>7} {:>9} {:>6} {:>8} {:>8} {:>8} {:>6} {:>6} {:>12} preset",
                        "tenant",
                        "queued",
                        "in-fl",
                        "done",
                        "shed",
                        "p50 us",
                        "p95 us",
                        "p99 us",
                        "shed%",
                        "burn",
                        "instrs"
                    );
                    for t in &top.tenants {
                        println!(
                            "{:<12} {:>6} {:>7} {:>9} {:>6} {:>8} {:>8} {:>8} {:>6.1} {:>6.2} {:>12} {}",
                            t.tenant,
                            t.queued,
                            t.in_flight,
                            t.completed,
                            t.shed,
                            t.p50_us,
                            t.p95_us,
                            t.p99_us,
                            t.shed_ratio * 100.0,
                            t.budget_burn,
                            t.instructions,
                            t.preset
                        );
                    }
                    Ok(())
                }
                "drain" => {
                    let pending = client.drain().map_err(|e| e.to_string())?;
                    println!("draining; {pending} jobs pending");
                    Ok(())
                }
                "cancel" => {
                    let job: u64 = args
                        .get(2)
                        .filter(|a| !a.starts_with("--"))
                        .ok_or("usage: scratch-tool ctl cancel <job> [--addr HOST:PORT]")?
                        .parse()
                        .map_err(|_| "ctl cancel: <job> must be a job id".to_owned())?;
                    let cancelled = client.cancel(job).map_err(|e| e.to_string())?;
                    if cancelled {
                        println!("job {job} cancelled (stops at its next quantum boundary)");
                        Ok(())
                    } else {
                        Err(format!("job {job} is unknown or already completed"))
                    }
                }
                other => Err(format!(
                    "unknown ctl verb `{other}` (ping|stats|top|drain|cancel)"
                )),
            }
        }
        "serve-metrics" => {
            metrics_warmup()?;
            let registry = scratch::metrics::global().clone();
            if args.iter().any(|a| a == "--once") {
                print!("{}", prometheus::render(&registry.snapshot()));
                return Ok(());
            }
            let addr = args
                .iter()
                .position(|a| a == "--addr")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:9184".to_owned());
            let server = MetricsServer::serve(addr.as_str(), registry)
                .map_err(|e| format!("{addr}: {e}"))?;
            println!(
                "serving http://{0}/metrics (Prometheus) and http://{0}/metrics.json",
                server.addr()
            );
            println!("press Ctrl-C to stop");
            loop {
                std::thread::park();
            }
        }
        "wal" => {
            let usage = "usage: scratch-tool wal inspect <dir> [--limit N] | verify <dir> [--json]";
            let verb = args.get(1).map(String::as_str).ok_or(usage)?;
            let dir = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or(usage)?
                .as_str();
            match verb {
                "inspect" => {
                    let limit = usize::try_from(flag_u64(&args, "--limit", 0)?).unwrap_or(0);
                    let entries = scratch::wal::inspect(std::path::Path::new(dir), limit)
                        .map_err(|e| format!("{dir}: {e}"))?;
                    println!("{:>7} {:>10}  record", "segment", "offset");
                    for e in &entries {
                        println!("{:>7} {:>10}  {}", e.segment, e.offset, e.summary);
                    }
                    println!("{} frames", entries.len());
                    Ok(())
                }
                "verify" => {
                    let report = scratch::wal::verify(std::path::Path::new(dir))
                        .map_err(|e| format!("{dir}: {e}"))?;
                    if args.iter().any(|a| a == "--json") {
                        println!("{}", serde_json::to_string_pretty(&report).unwrap());
                    } else {
                        println!(
                            "{dir}: {} segments, {} frames ({} admitted / {} completed / {} checkpoints)",
                            report.segments,
                            report.frames,
                            report.admitted,
                            report.completed,
                            report.checkpoints
                        );
                        println!(
                            "unfinished {} | duplicate completions {} | orphan completions {}",
                            report.unfinished,
                            report.duplicate_completions,
                            report.orphan_completions
                        );
                        if let Some(damage) = &report.damage {
                            println!("damage: {damage:?}");
                        }
                    }
                    if report.clean() {
                        println!("wal verify: clean");
                        Ok(())
                    } else {
                        Err("wal verify: log is not clean".to_owned())
                    }
                }
                other => Err(format!("unknown wal verb `{other}` (inspect|verify)")),
            }
        }
        "chaos" => {
            let defaults = ChaosPlan::default();
            let wal_dir = flag_value(&args, "--wal-dir").cloned().map_or_else(
                || std::env::temp_dir().join(format!("scratch-chaos-{}", std::process::id())),
                std::path::PathBuf::from,
            );
            let default_dir = flag_value(&args, "--wal-dir").is_none();
            if default_dir {
                // A stale default dir would make the audit see jobs from a
                // previous campaign.
                let _ = std::fs::remove_dir_all(&wal_dir);
            }
            let exe = std::env::current_exe()
                .map_err(|e| format!("cannot locate own binary: {e}"))?
                .display()
                .to_string();
            let plan = ChaosPlan {
                seed: flag_u64(&args, "--seed", defaults.seed)?,
                cycles: u32::try_from(flag_u64(&args, "--cycles", u64::from(defaults.cycles))?)
                    .map_err(|_| "--cycles out of range".to_owned())?,
                jobs: usize::try_from(flag_u64(&args, "--jobs", defaults.jobs as u64)?)
                    .unwrap_or(defaults.jobs),
                clients: usize::try_from(flag_u64(&args, "--clients", defaults.clients as u64)?)
                    .unwrap_or(defaults.clients),
                tenants: usize::try_from(flag_u64(&args, "--tenants", defaults.tenants as u64)?)
                    .unwrap_or(defaults.tenants),
                addr: flag_value(&args, "--addr")
                    .cloned()
                    .unwrap_or(defaults.addr),
                wal_dir,
                quantum: flag_u64(&args, "--quantum", defaults.quantum)?.max(1),
                uptime_ms: defaults.uptime_ms,
                mid_append_every: u32::try_from(flag_u64(
                    &args,
                    "--mid-append-every",
                    u64::from(defaults.mid_append_every),
                )?)
                .map_err(|_| "--mid-append-every out of range".to_owned())?,
                daemon: vec![
                    exe,
                    "serve".to_owned(),
                    "--workers".to_owned(),
                    "2".to_owned(),
                    "--queue-cap".to_owned(),
                    "256".to_owned(),
                    "--tenant-cap".to_owned(),
                    "64".to_owned(),
                ],
            };
            println!(
                "chaos: daemon at {}, wal in {}, seed {}",
                plan.addr,
                plan.wal_dir.display(),
                plan.seed
            );
            let report = run_chaos(&plan).map_err(|e| e.to_string())?;
            if args.iter().any(|a| a == "--json") {
                println!("{}", serde_json::to_string_pretty(&report).unwrap());
            } else {
                println!("{}", report.summary());
            }
            if report.ok() {
                if default_dir {
                    let _ = std::fs::remove_dir_all(&plan.wal_dir);
                }
                Ok(())
            } else {
                Err(format!(
                    "chaos: exactly-once VIOLATED (log kept at {})",
                    plan.wal_dir.display()
                ))
            }
        }
        _ => {
            println!(
                "scratch-tool — SCRATCH soft-GPGPU toolchain\n\
                 \n\
                 commands:\n\
                 \x20 assemble <file.s> [-o out.json]   assemble SI text to a kernel artifact\n\
                 \x20 disasm   <file>                   disassemble a kernel (.s or .json)\n\
                 \x20 analyze  <file.s>                 per-unit instruction requirements\n\
                 \x20 trim     <file.s>                 run the trimming tool + synthesis model\n\
                 \x20 run      <file.s> [--system original|dcd|dcdpm] [--wgs N] [--out-words N]\n\
                 \x20          [--jobs N]        N dispatch worker threads (default: one per\n\
                 \x20                            core; results are bit-identical for any N)\n\
                 \x20          [--exec cycle|fast|fast-timing]\n\
                 \x20                            execution tier: cycle-accurate pipeline\n\
                 \x20                            (default), block-compiled fast tier (identical\n\
                 \x20                            words, no cycle counts), or both cross-checked\n\
                 \x20          [--metrics]       print an IPC/occupancy summary and append a\n\
                 \x20                            registry snapshot to --metrics-out FILE\n\
                 \x20                            (default scratch-metrics.jsonl)\n\
                 \x20 profile  <file.s> [--system original|dcd|dcdpm] [--wgs N]\n\
                 \x20          [--exec cycle|fast] [--json]\n\
                 \x20                            run with instruction profiling and print the\n\
                 \x20                            kernel's signature: opcode-class histogram, hot\n\
                 \x20                            blocks, and the minimal covering trim preset\n\
                 \x20 trace    [<file.s>] [--system original|dcd|dcdpm|all] [--n N] [--out DIR]\n\
                 \x20                                   cycle-attribution summary + Chrome trace.json\n\
                 \x20                                   (default workload: Matrix Add INT32 + SP FP)\n\
                 \x20 fuzz     [--seed S] [--cases N]\n\
                 \x20          [--oracle reference|trim|parallel|roundtrip|checkpoint|fastpath|all]\n\
                 \x20                                   differential conformance campaign; prints a\n\
                 \x20                                   minimized repro for any divergence\n\
                 \x20          [--metrics-addr HOST:PORT]  scrape campaign counters live\n\
                 \x20          [--inject]        cross-validate fault detection: one fault per\n\
                 \x20                            class per case, reference oracle as detector\n\
                 \x20 inject   [--seed S] [--kernels N] [--per N] [--classes sgpr,vgpr,lds,mem,inst,fu]\n\
                 \x20          [--mode crc|dmr|plain] [--jobs N] [--json]\n\
                 \x20          [--plan FILE] [--plan-out FILE]\n\
                 \x20                            seeded fault-injection campaign; prints the\n\
                 \x20                            masked/detected/recovered/silent table and\n\
                 \x20                            fails on any silent corruption\n\
                 \x20 serve    [--addr HOST:PORT] [--workers N] [--queue-cap N] [--tenant-cap N]\n\
                 \x20          [--rate R] [--burst B] [--quantum CYCLES]\n\
                 \x20          [--metrics-addr HOST:PORT]\n\
                 \x20          [--spans] [--spans-out FILE] [--spans-chrome FILE] [--profile]\n\
                 \x20          [--wal-dir DIR] [--wal-fsync always|never|MS]\n\
                 \x20          [--wal-segment-bytes N] [--idle-timeout-ms N]\n\
                 \x20                            multi-tenant kernel-execution daemon (JSONL/TCP,\n\
                 \x20                            token-bucket quotas, typed load shedding,\n\
                 \x20                            preemptive execution in --quantum-cycle slices\n\
                 \x20                            with checkpoint/restore between quanta);\n\
                 \x20                            --spans records per-job span timelines (validated\n\
                 \x20                            and exported as JSONL / Chrome trace at drain);\n\
                 \x20                            --profile aggregates per-tenant instruction\n\
                 \x20                            signatures (see ctl top);\n\
                 \x20                            --wal-dir journals admissions/completions to a\n\
                 \x20                            crash-safe write-ahead log and replays unfinished\n\
                 \x20                            jobs exactly once on restart (recovery report on\n\
                 \x20                            stdout); --idle-timeout-ms sheds connections with\n\
                 \x20                            no request and no job in flight;\n\
                 \x20                            exits 0 after a graceful drain\n\
                 \x20 load     [--addr HOST:PORT] [--clients 1,2,4,...] [--duration-ms N]\n\
                 \x20          [--seed S] [--kernels N] [--tenants N] [--out FILE]\n\
                 \x20                            closed-loop load harness: drives the daemon with\n\
                 \x20                            seeded kernel traffic and prints/writes the\n\
                 \x20                            saturation curve (p50/p95/p99 per step, plus the\n\
                 \x20                            server-side queue/run/checkpoint breakdown)\n\
                 \x20 ctl      ping|stats|top|drain|cancel <job> [--addr HOST:PORT]\n\
                 \x20                            probe, inspect, gracefully drain, or cancel a\n\
                 \x20                            mid-flight job on a daemon; top prints per-tenant\n\
                 \x20                            queues, rolling SLO quantiles, budget burn and\n\
                 \x20                            the aggregated instruction profile\n\
                 \x20 wal      inspect <dir> [--limit N] | verify <dir> [--json]\n\
                 \x20                            audit a write-ahead log offline: inspect lists\n\
                 \x20                            frames in log order, verify checks framing CRCs\n\
                 \x20                            and the exactly-once ledger (non-zero exit on\n\
                 \x20                            damage, duplicates or orphans)\n\
                 \x20 chaos    [--seed S] [--cycles N] [--jobs N] [--clients N] [--tenants N]\n\
                 \x20          [--addr HOST:PORT] [--wal-dir DIR] [--quantum CYCLES]\n\
                 \x20          [--mid-append-every N] [--json]\n\
                 \x20                            crash-recovery campaign: SIGKILL a WAL-backed\n\
                 \x20                            serve daemon at seeded points under load (every\n\
                 \x20                            Nth kill torn mid-append), restart it, and fail\n\
                 \x20                            unless every acked job completed exactly once\n\
                 \x20                            with digests bit-identical to direct runs\n\
                 \x20 serve-metrics [--addr HOST:PORT] [--once]\n\
                 \x20                                   warm up the simulators, then serve the\n\
                 \x20                                   metrics registry as Prometheus text and\n\
                 \x20                                   JSON (--once: print to stdout and exit)"
            );
            Ok(())
        }
    }
}
