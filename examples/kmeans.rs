//! K-means across the three system configurations of the paper: the
//! original MIAOW, the dual-clock-domain (DCD) variant, and the baseline
//! with the prefetch memory (DCD+PM). Shows the device/host split: the CU
//! assigns points while the MicroBlaze recomputes the centers.
//!
//! ```sh
//! cargo run --release --example kmeans
//! ```

use scratch::core::Scratch;
use scratch::fpga::ParallelPlan;
use scratch::kernels::kmeans::KMeans;
use scratch::kernels::Benchmark;
use scratch::system::{SystemConfig, SystemKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = KMeans::new(512, 5, 4);
    let scratch = Scratch::new();
    let plan = ParallelPlan::baseline(true);

    println!(
        "{:10} {:>12} {:>12} {:>10} {:>12}",
        "system", "CU cycles", "time (ms)", "power W", "IPJ"
    );
    let mut baseline = None;
    for kind in [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm] {
        let report = bench.run(SystemConfig::preset(kind))?;
        let summary = scratch.summarize(kind, None, plan, &report);
        println!(
            "{:10} {:>12} {:>12.3} {:>10.2} {:>12.0}",
            kind.label(),
            summary.cu_cycles,
            summary.seconds * 1e3,
            summary.power.total_w(),
            summary.ipj
        );
        if kind == SystemKind::Original {
            baseline = Some(summary);
        } else if let Some(orig) = &baseline {
            println!(
                "{:10} speedup {:.2}x, energy-efficiency {:.2}x vs original",
                "",
                summary.speedup_vs(orig),
                summary.ipj_gain_vs(orig)
            );
        }
    }
    println!("\nassignments validated against the host reference in every run");
    Ok(())
}
