.kernel lds_reverse
.sgprs 40
.vgprs 8
.lds 256
.wgsize 64
  0x000000 s_buffer_load_dword s20, s[12:13], 0x0
  0x000004 s_waitcnt lgkmcnt(0)
  0x000008 s_mul_i32 s0, s16, lit(0x40)
  0x000010 v_add_i32 v1, vcc, s0, v0
  0x000014 v_mul_lo_i32 v2, v1, 5
  0x00001C v_lshlrev_b32 v4, 2, v0
  0x000020 ds_write_b32 v4, v2 offset:0
  0x000028 s_waitcnt lgkmcnt(0)
  0x00002C s_barrier
  0x000030 v_sub_i32 v5, vcc, lit(0x3f), v0
  0x000038 v_lshlrev_b32 v5, 2, v5
  0x00003C ds_read_b32 v6, v5 offset:0
  0x000044 s_waitcnt lgkmcnt(0)
  0x000048 v_cmp_gt_u32 vcc, lit(0x20), v0
  0x000050 s_and_saveexec_b64 s[34:35], vcc
  0x000054 v_add_i32 v6, vcc, lit(0x3e8), v6
  0x00005C s_mov_b64 exec, s[34:35]
  0x000060 s_and_b32 s1, s16, 1
  0x000064 s_cmp_eq_u32 s1, 0
  0x000068 s_cbranch_scc1 label_001c
  0x00006C v_add_i32 v6, vcc, 7, v6
label_001c:
  0x000070 v_lshlrev_b32 v1, 2, v1
  0x000074 buffer_store_dword v6, v1, s[4:7], s20 offen offset:0
  0x00007C s_waitcnt vmcnt(0)
  0x000080 s_endpgm
