.kernel affine
.sgprs 32
.vgprs 8
.lds 0
.wgsize 64
  0x000000 s_buffer_load_dword s20, s[12:13], 0x0
  0x000004 s_waitcnt lgkmcnt(0)
  0x000008 s_mul_i32 s0, s16, lit(0x40)
  0x000010 v_add_i32 v1, vcc, s0, v0
  0x000014 v_mul_lo_i32 v2, v1, 3
  0x00001C v_add_i32 v2, vcc, 7, v2
  0x000020 v_lshlrev_b32 v1, 2, v1
  0x000024 buffer_store_dword v2, v1, s[4:7], s20 offen offset:0
  0x00002C s_waitcnt vmcnt(0)
  0x000030 s_endpgm
