//! Quickstart: assemble a Southern Islands kernel from text, run it on the
//! simulated MIAOW2.0 system, and read the results back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scratch::asm::assemble;
use scratch::system::{System, SystemConfig, SystemKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // out[gid] = in[gid] * 3 + 1 over 256 work-items.
    // Register conventions: the dispatcher preloads s[4:7] with the UAV
    // buffer descriptor, s[12:15] with the kernel-argument descriptor,
    // s16 with the workgroup id and v0 with the work-item id (see
    // `scratch_system::abi`).
    let kernel = assemble(
        r"
        .kernel triple_plus_one
        .sgprs 32
        .vgprs 8
        // Load the two arguments: in and out buffer addresses.
        s_buffer_load_dwordx2 s[20:21], s[12:13], 0x0
        s_waitcnt lgkmcnt(0)
        // v3 = global id = wg_id * 64 + tid.
        s_mulk_i32 s16, 64
        v_add_i32 v3, vcc, s16, v0
        // v4 = byte offset.
        v_lshlrev_b32 v4, 2, v3
        // Load, compute, store.
        buffer_load_dword v5, v4, s[4:7], s20 offen offset:0
        s_waitcnt vmcnt(0)
        v_mul_lo_i32 v5, v5, 3
        v_add_i32 v5, vcc, 1, v5
        buffer_store_dword v5, v4, s[4:7], s21 offen offset:0
        s_waitcnt vmcnt(0)
        s_endpgm
    ",
    )?;

    println!("kernel `{}`: {} bytes", kernel.name(), kernel.size_bytes());
    println!("{}", kernel.disassemble()?);

    // Run on the paper's baseline system (dual clock domain + prefetch).
    let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel)?;
    let input: Vec<u32> = (0..256).collect();
    let a_in = sys.alloc_words(&input);
    let a_out = sys.alloc(256 * 4);
    sys.set_args(&[a_in as u32, a_out as u32]);
    sys.dispatch([256 / 64, 1, 1])?;

    let out = sys.read_words(a_out, 256);
    assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 * 3 + 1));
    println!("first outputs: {:?}", &out[..8]);

    let report = sys.report();
    println!(
        "{} CU cycles, {} instructions, {:.2} µs at 50 MHz",
        report.cu_cycles,
        report.instructions(),
        report.seconds * 1e6
    );
    Ok(())
}
