//! The SCRATCH trimming tool on the paper's running example (Fig. 5): a 2-D
//! integer convolution. Prints the per-unit instruction requirements, the
//! trimmed instruction set, the synthesis-model resource savings, and the
//! parallelism the freed area buys.
//!
//! ```sh
//! cargo run --release --example trim_report
//! ```

use scratch::core::{configure, Scratch};
use scratch::fpga::ParallelPlan;
use scratch::isa::FuncUnit;
use scratch::kernels::conv2d::Conv2d;
use scratch::kernels::Benchmark;
use scratch::system::SystemKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = Conv2d::new(128, 5, false);
    let kernel = bench.kernels()?.remove(0);
    println!("== kernel (conv2D, INT32) ==");
    println!("{}", kernel.disassemble()?);

    let scratch = Scratch::new();
    let analysis = scratch.analyze(&kernel)?;
    println!("== required_instructions[FU] (Algorithm 1, step 1) ==");
    for (unit, ops) in &analysis.required {
        let names: Vec<&str> = ops.iter().map(|o| o.mnemonic()).collect();
        println!("{unit:8}: {}", names.join(", "));
    }

    let trim = scratch.trim(&kernel)?;
    println!("\n== trimming (Algorithm 1, step 2) ==");
    println!(
        "kept {} of {} instructions; removed units: {:?}",
        trim.kept_count(),
        trim.kept_count() + trim.removed_count(),
        trim.removed_units
    );
    for unit in FuncUnit::TRIMMABLE {
        println!(
            "  {:8} usage: {:5.1} %",
            unit.label(),
            trim.usage_percent[&unit]
        );
    }

    let base = scratch.synthesize(SystemKind::DcdPm, None, ParallelPlan::baseline(true));
    let trimmed = scratch.synthesize(
        SystemKind::DcdPm,
        Some(&trim),
        ParallelPlan::baseline(trim.uses_fp),
    );
    println!("\n== synthesis model ==");
    println!("baseline system: {}", base.resources);
    println!("trimmed system : {}", trimmed.resources);
    let s = trimmed.cu_savings_percent;
    println!(
        "CU savings     : {:.0}% FF, {:.0}% LUT, {:.0}% DSP, {:.0}% BRAM",
        s[0], s[1], s[2], s[3]
    );
    println!(
        "power          : {:.2} W -> {:.2} W",
        base.power.total_w(),
        trimmed.power.total_w()
    );

    let mc = scratch.plan_multicore(&trim, 3);
    let mt = scratch.plan_multithread(&trim, 4);
    println!("\n== freed-area parallelism ==");
    println!(
        "multi-core : {} CUs x ({} INT + {} FP VALUs)",
        mc.cus, mc.int_valus, mc.fp_valus
    );
    println!(
        "multi-thread: {} CU with {} INT + {} FP VALUs",
        mt.cus, mt.int_valus, mt.fp_valus
    );

    // Prove the trimmed architecture still runs the application.
    let report = bench.run(configure(SystemKind::DcdPm, mc, Some(&trim)))?;
    println!(
        "\ntrimmed multi-core run: {} cycles, outputs validated against the CPU reference",
        report.cu_cycles
    );
    Ok(())
}
