//! End-to-end CNN inference (the paper's AI workload): run the fixed-point
//! CNN on the baseline soft-GPGPU and on its trimmed, multi-core
//! application-specific variant, comparing time, power, energy and
//! instructions-per-Joule.
//!
//! ```sh
//! cargo run --release --example cnn_inference
//! ```

use scratch::core::{configure, trim_kernels, Scratch};
use scratch::fpga::ParallelPlan;
use scratch::kernels::cnn::Cnn;
use scratch::kernels::Benchmark;
use scratch::system::SystemKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 32x32 RGB input (the CIFAR-10 geometry), 3 conv layers, 16 feature
    // maps, 2x2 max pooling — all in Q8 fixed point.
    let cnn = Cnn::new(32, false);
    let scratch = Scratch::new();
    let trim = trim_kernels(&cnn.kernels()?)?;
    println!(
        "CNN uses {} of {} instructions; SIMF removed: {}",
        trim.kept_count(),
        trim.kept_count() + trim.removed_count(),
        trim.removed_units.contains(&scratch::isa::FuncUnit::Simf)
    );

    // Baseline: untrimmed single CU on the DCD+PM system.
    let base_plan = ParallelPlan::baseline(true);
    let base_report = cnn.run(configure(SystemKind::DcdPm, base_plan, None))?;
    let base = scratch.summarize(SystemKind::DcdPm, None, base_plan, &base_report);

    // Application-specific: trimmed, with the freed area spent on CUs.
    let plan = scratch.plan_multicore(&trim, 3);
    let report = cnn.run(configure(SystemKind::DcdPm, plan, Some(&trim)))?;
    let tuned = scratch.summarize(SystemKind::DcdPm, Some(&trim), plan, &report);

    println!("\n{:24} {:>14} {:>14}", "", "baseline", "trimmed x CUs");
    println!(
        "{:24} {:>14} {:>14}",
        "configuration",
        "1 CU (full ISA)",
        format!("{} CUs (trimmed)", plan.cus)
    );
    println!(
        "{:24} {:>14.3} {:>14.3}",
        "inference time (ms)",
        base.seconds * 1e3,
        tuned.seconds * 1e3
    );
    println!(
        "{:24} {:>14.2} {:>14.2}",
        "board power (W)",
        base.power.total_w(),
        tuned.power.total_w()
    );
    println!(
        "{:24} {:>14.3} {:>14.3}",
        "energy (mJ)",
        base.energy_j * 1e3,
        tuned.energy_j * 1e3
    );
    println!(
        "{:24} {:>14.0} {:>14.0}",
        "instructions / joule", base.ipj, tuned.ipj
    );
    println!(
        "\nspeedup {:.2}x, energy-efficiency gain {:.2}x (both outputs validated)",
        tuned.speedup_vs(&base),
        tuned.ipj_gain_vs(&base)
    );
    Ok(())
}
