//! Offline stand-in for `rand` 0.8.
//!
//! Provides the seeded-generator subset the workspace uses
//! (`StdRng::seed_from_u64` + `Rng::gen_range` + `Rng::gen`), backed by
//! xoshiro256** seeded through splitmix64. Deterministic across platforms;
//! **not** the same stream as the real `rand` crate, so regenerated test
//! vectors are stable only against this stub.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample helper trait: types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[low, high)`.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
    /// Draw uniformly from `[low, high]`.
    fn sample_closed(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Core generator interface (object-safe subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types drawable from the "standard" distribution (subset of
/// `rand::distributions::Standard` support).
pub trait Standard: Sized {
    /// Draw one value.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        // 24 random mantissa bits in [0, 1).
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
            fn sample_closed(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as Standard>::standard(rng);
                low + unit * (high - low)
            }
            fn sample_closed(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = <$t as Standard>::standard(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias — small and std generators share the implementation here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: u32 = a.gen_range(0..97);
            let y: u32 = b.gen_range(0..97);
            assert_eq!(x, y);
            assert!(x < 97);
        }
        let f: f32 = a.gen_range(-1.0..1.0);
        assert!((-1.0..1.0).contains(&f));
    }
}
