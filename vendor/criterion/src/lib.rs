//! Offline stand-in for `criterion` 0.5.
//!
//! Implements the group/bench/iter API the workspace's benches use as a
//! plain wall-clock harness: each `bench_function` runs a short warm-up,
//! then `sample_size` timed samples, and prints the median per-iteration
//! time. No statistics beyond that — the goal is that `cargo bench`
//! compiles, runs, and yields usable relative numbers offline.

use std::time::{Duration, Instant};

/// Throughput annotation (recorded, reported alongside the timing line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_bench(&name.into(), sample_size, None, f);
        self
    }
}

/// A named group; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// End the group (prints nothing extra in the stand-in).
    pub fn finish(self) {}
}

/// Passed to the closure; `iter` times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_budget: usize,
}

impl Bencher {
    /// Time `f`, recording one sample per configured sample slot.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: aim for samples of at least ~1ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1);
        self.iters_per_sample = u64::try_from(per_sample).unwrap_or(1).min(1_000_000);

        for _ in 0..self.sample_budget {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// Opaque value sink preventing the optimiser from deleting the workload.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_budget: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let line = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                "{name:<40} median {}  ({:.1} Melem/s)",
                fmt_time(median),
                n as f64 / median / 1e6
            )
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "{name:<40} median {}  ({:.1} MiB/s)",
                fmt_time(median),
                n as f64 / median / (1024.0 * 1024.0)
            )
        }
        None => format!("{name:<40} median {}", fmt_time(median)),
    };
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Group several bench functions under one harness entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` for `cargo bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
