//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! simplified `to_sval`/`from_sval` data model of the vendored `serde`
//! stand-in, with serde's default shapes: structs serialize as objects,
//! enums externally tagged (`"Unit"` / `{"Variant": content}`).
//!
//! The parser is hand-rolled over `proc_macro::TokenStream` (no `syn` /
//! `quote` available offline). It supports non-generic structs and enums —
//! everything the workspace derives — and fails loudly otherwise.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of one set of fields.
enum Fields {
    Unit,
    /// Tuple fields; the count.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip one attribute (`#` already consumed ⇒ consume the `[...]` group).
fn skip_attr_body(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
        other => panic!("serde stub derive: malformed attribute after `#`: {other:?}"),
    }
}

/// Skip leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                skip_attr_body(iter);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Consume tokens up to (not including) a top-level `,`; returns false at
/// end of stream. Tracks `<...>` nesting so types like `Vec<(A, B)>` work.
fn skip_type(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut angle: i32 = 0;
    loop {
        match iter.peek() {
            None => return false,
            Some(TokenTree::Punct(p)) => {
                let c = p.as_char();
                if c == ',' && angle == 0 {
                    return true;
                }
                if c == '<' {
                    angle += 1;
                } else if c == '>' {
                    angle -= 1;
                }
                iter.next();
            }
            Some(_) => {
                iter.next();
            }
        }
    }
}

/// Parse `{ name: Type, ... }` named fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => {
                        panic!("serde stub derive: expected `:` after field name, got {other:?}")
                    }
                }
                if skip_type(&mut iter) {
                    iter.next(); // consume the comma
                }
            }
            Some(other) => panic!("serde stub derive: unexpected token in fields: {other:?}"),
        }
    }
    names
}

/// Count tuple fields in `( Type, Type, ... )`.
fn parse_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        count += 1;
        if skip_type(&mut iter) {
            iter.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let fields = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let g = g.stream();
                        iter.next();
                        Fields::Tuple(parse_tuple_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let g = g.stream();
                        iter.next();
                        Fields::Named(parse_named_fields(g))
                    }
                    _ => Fields::Unit,
                };
                // Skip an optional `= discriminant` then the trailing comma.
                loop {
                    match iter.next() {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                        Some(_) => {}
                    }
                }
                variants.push(Variant { name, fields });
            }
            Some(other) => panic!("serde stub derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match iter.next() {
                None => Fields::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_fields(g.stream()))
                }
                other => panic!("serde stub derive: unexpected struct body: {other:?}"),
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let variants = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde stub derive: expected enum body, got {other:?}"),
            };
            Input::Enum { name, variants }
        }
        other => panic!("serde stub derive: expected struct or enum, got `{other}`"),
    }
}

fn gen_serialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_sval(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                Fields::Unit => out.push_str("        ::serde::Value::Null\n"),
                Fields::Tuple(1) => {
                    out.push_str("        ::serde::Serialize::to_sval(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    out.push_str("        ::serde::Value::Array(::std::vec![\n");
                    for i in 0..*n {
                        out.push_str(&format!(
                            "            ::serde::Serialize::to_sval(&self.{i}),\n"
                        ));
                    }
                    out.push_str("        ])\n");
                }
                Fields::Named(names) => {
                    out.push_str("        let mut __m = ::serde::Map::new();\n");
                    for f in names {
                        out.push_str(&format!(
                            "        __m.insert(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_sval(&self.{f}));\n"
                        ));
                    }
                    out.push_str("        ::serde::Value::Object(__m)\n");
                }
            }
            out.push_str("    }\n}\n");
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_sval(&self) -> ::serde::Value {{\n        match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "            {name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "            {name}::{vn}(__f0) => ::serde::__private::newtype_variant(\"{vn}\", ::serde::Serialize::to_sval(__f0)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_sval({b})"))
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vn}({}) => ::serde::__private::newtype_variant(\"{vn}\", ::serde::Value::Array(::std::vec![{}])),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let mut body = String::from("{ let mut __m = ::serde::Map::new(); ");
                        for f in names {
                            body.push_str(&format!(
                                "__m.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_sval({f})); "
                            ));
                        }
                        body.push_str(&format!(
                            "::serde::__private::newtype_variant(\"{vn}\", ::serde::Value::Object(__m)) }}"
                        ));
                        out.push_str(&format!(
                            "            {name}::{vn} {{ {binds} }} => {body},\n"
                        ));
                    }
                }
            }
            out.push_str("        }\n    }\n}\n");
        }
    }
    out
}

fn gen_deserialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_sval(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n"
            ));
            match fields {
                Fields::Unit => {
                    out.push_str(&format!("        ::std::result::Result::Ok({name})\n"));
                }
                Fields::Tuple(1) => out.push_str(&format!(
                    "        ::std::result::Result::Ok({name}(::serde::Deserialize::from_sval(__v)?))\n"
                )),
                Fields::Tuple(n) => {
                    out.push_str(&format!(
                        "        let __s = ::serde::__private::as_seq(__v, {n})?;\n"
                    ));
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_sval(&__s[{i}])?"))
                        .collect();
                    out.push_str(&format!(
                        "        ::std::result::Result::Ok({name}({}))\n",
                        elems.join(", ")
                    ));
                }
                Fields::Named(names) => {
                    out.push_str("        let __m = ::serde::__private::as_obj(__v)?;\n");
                    out.push_str(&format!("        ::std::result::Result::Ok({name} {{\n"));
                    for f in names {
                        out.push_str(&format!(
                            "            {f}: ::serde::__private::field(__m, \"{name}\", \"{f}\")?,\n"
                        ));
                    }
                    out.push_str("        })\n");
                }
            }
            out.push_str("    }\n}\n");
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_sval(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n"
            ));
            out.push_str(&format!(
                "        let (__tag, __content) = ::serde::__private::enum_parts(__v, \"{name}\")?;\n        let _ = &__content;\n        match __tag {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "            \"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "            \"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_sval(__content)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_sval(&__s[{i}])?"))
                            .collect();
                        out.push_str(&format!(
                            "            \"{vn}\" => {{ let __s = ::serde::__private::as_seq(__content, {n})?; ::std::result::Result::Ok({name}::{vn}({})) }}\n",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let mut body = String::new();
                        for f in names {
                            body.push_str(&format!(
                                "{f}: ::serde::__private::field(__m, \"{name}::{vn}\", \"{f}\")?, "
                            ));
                        }
                        out.push_str(&format!(
                            "            \"{vn}\" => {{ let __m = ::serde::__private::as_obj(__content)?; ::std::result::Result::Ok({name}::{vn} {{ {body} }}) }}\n"
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "            __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n"
            ));
            out.push_str("        }\n    }\n}\n");
        }
    }
    out
}

/// Derive `Serialize` (stub data model: `to_sval`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde stub derive: generated Serialize impl failed to parse")
}

/// Derive `Deserialize` (stub data model: `from_sval`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde stub derive: generated Deserialize impl failed to parse")
}
