//! Offline stand-in for `serde_json`.
//!
//! Serialization renders the vendored [`serde::Value`] tree; deserialization
//! is a small recursive-descent JSON parser feeding `from_sval`.

use std::fmt;

pub use serde::value::Value;

/// Object map type (alias of the ordered map used by [`Value::Object`]).
pub type Map<K = String, V = Value> = std::collections::BTreeMap<K, V>;

/// Error for both serialization and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors serde_json's API.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_sval())
}

/// Reconstruct `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree's shape does not match `T`.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_sval(value)?)
}

/// Serialize to compact JSON.
///
/// # Errors
///
/// Never fails in this stand-in.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::value::to_json_compact(&value.to_sval()))
}

/// Serialize to two-space-indented JSON.
///
/// # Errors
///
/// Never fails in this stand-in.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::value::to_json_pretty(&value.to_sval()))
}

/// Parse JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = parse(s)?;
    Ok(T::from_sval(&v)?)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"', "string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "`:`")?;
                    let value = self.parse_value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte {b:#x}"))),
        }
    }
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let text = r#"{"a": [1, -2, 3.5, true, null], "b": "x\ny"}"#;
        let v: Value = from_str(text).unwrap();
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_is_parseable() {
        let v: Value = from_str(r#"{"k": {"n": [1, 2]}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }
}
