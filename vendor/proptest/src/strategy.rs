//! The `Strategy` trait and combinators (generate-only; no shrinking).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// A generator of test values.
///
/// Returning `None` from [`Strategy::gen_value`] signals a local rejection
/// (e.g. `prop_filter_map` declined the raw draw); the runner retries with
/// fresh randomness and the case does not count against the budget.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value, or reject this attempt.
    fn gen_value(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Transform-and-filter: `None` from `f` rejects the draw.
    fn prop_filter_map<U, F>(self, _whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`.
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Chain into a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation interface backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut StdRng) -> Option<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.gen_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> Option<T> {
        self.0.gen_dyn(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.gen_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.gen_value(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.gen_value(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut StdRng) -> Option<S2::Value> {
        let mid = self.inner.gen_value(rng)?;
        (self.f)(mid).gen_value(rng)
    }
}

/// Weighted union of boxed strategies — built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Uniformly weighted arms.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Explicitly weighted arms.
    #[must_use]
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> Option<T> {
        let mut pick = rng.next_u64() % self.total;
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut StdRng) -> Option<f64> {
        Some(rng.gen_range(self.clone()))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut StdRng) -> Option<f32> {
        Some(rng.gen_range(self.clone()))
    }
}

/// `&str` strategies generate strings matching the pattern as a regex.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut StdRng) -> Option<String> {
        Some(crate::string::generate(self, rng))
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Option<Self::Value> {
                Some(($(self.$n.gen_value(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7, 8 S8)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7, 8 S8, 9 S9)
}
