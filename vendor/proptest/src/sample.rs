//! `prop::sample::select` — uniform choice from a fixed list.

use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::RngCore;

use crate::strategy::Strategy;

/// Strategy over a fixed set of values; see [`select`].
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> Option<T> {
        let i = (rng.next_u64() % self.items.len() as u64) as usize;
        Some(self.items[i].clone())
    }
}

/// Sources convertible into the selection list.
pub trait SelectSource<T> {
    /// Materialise the candidate list.
    fn into_items(self) -> Vec<T>;
}

impl<T> SelectSource<T> for Vec<T> {
    fn into_items(self) -> Vec<T> {
        self
    }
}

impl<T: Clone> SelectSource<T> for &[T] {
    fn into_items(self) -> Vec<T> {
        self.to_vec()
    }
}

impl<T: Clone, const N: usize> SelectSource<T> for &[T; N] {
    fn into_items(self) -> Vec<T> {
        self.to_vec()
    }
}

/// Uniformly select one of `items` (which must be non-empty).
pub fn select<T: Clone + Debug>(items: impl SelectSource<T>) -> Select<T> {
    let items = items.into_items();
    assert!(!items.is_empty(), "sample::select over an empty list");
    Select { items }
}
