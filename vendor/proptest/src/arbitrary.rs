//! `any::<T>()` for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::RngCore;

use crate::strategy::Strategy;

/// Primitive types drawable from their full value space.
pub trait ArbPrimitive: Sized + Debug {
    /// Draw one value uniformly from the type's domain.
    fn arb(rng: &mut StdRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl ArbPrimitive for $t {
            fn arb(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbPrimitive for bool {
    fn arb(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbPrimitive for char {
    fn arb(rng: &mut StdRng) -> Self {
        // Mostly ASCII, sometimes the wider BMP (skipping surrogates).
        let r = rng.next_u64();
        if r & 3 == 0 {
            char::from_u32((r >> 8) as u32 % 0xD800).unwrap_or('\u{fffd}')
        } else {
            ((r >> 8) as u8 % 0x5F + 0x20) as char
        }
    }
}

impl ArbPrimitive for f32 {
    fn arb(rng: &mut StdRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl ArbPrimitive for f64 {
    fn arb(rng: &mut StdRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbPrimitive> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> Option<T> {
        Some(T::arb(rng))
    }
}

/// Uniform values over the whole domain of a primitive type.
#[must_use]
pub fn any<T: ArbPrimitive>() -> Any<T> {
    Any(PhantomData)
}
