//! Offline stand-in for `proptest`.
//!
//! Implements the generate-and-check core of proptest's API — `Strategy`,
//! the combinators, the `proptest!`/`prop_assert*`/`prop_oneof!` macros,
//! regex-string strategies, and a deterministic runner — without shrinking.
//! Failing cases report the generated input; re-running is deterministic, so
//! failures reproduce exactly.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::{BoxedStrategy, Just, Strategy};

/// The `prop::` namespace (`prop::sample::select`, `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a `proptest!` body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Discard the current case (does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between heterogeneous strategies with a common `Value`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::new($cfg);
            let __strategy = ($($strat,)+);
            let __outcome = __runner.run(&__strategy, |($($pat,)+)| {
                $body
                ::std::result::Result::Ok(())
            });
            if let ::std::result::Result::Err(__msg) = __outcome {
                panic!("{}", __msg);
            }
        }
    )*};
}
