//! Tiny regex-shaped string generator backing `&str` strategies.
//!
//! Supports the constructs the workspace's tests use: literals, `.`,
//! character classes (`[a-z0-9_,\[\]]`, negation unsupported), groups,
//! alternation, and the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`
//! (unbounded forms capped at 8 repeats).

use rand::rngs::StdRng;
use rand::RngCore;

#[derive(Debug, Clone)]
enum Node {
    /// Sequence of alternatives: pick one branch.
    Alt(Vec<Vec<(Node, u32, u32)>>),
    Literal(char),
    /// Any printable character (regex `.`).
    Dot,
    /// Character class: list of inclusive ranges.
    Class(Vec<(char, char)>),
}

struct RegexParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl RegexParser<'_> {
    fn fail(&self, msg: &str) -> ! {
        panic!("proptest stub: unsupported regex {:?}: {msg}", self.pattern)
    }

    /// Parse alternation until end-of-input or a closing `)`.
    fn parse_alt(&mut self, top: bool) -> Node {
        let mut branches = vec![Vec::new()];
        loop {
            match self.chars.peek().copied() {
                None => break,
                Some(')') if !top => break,
                Some(')') => self.fail("unbalanced `)`"),
                Some('|') => {
                    self.chars.next();
                    branches.push(Vec::new());
                }
                Some(_) => {
                    let atom = self.parse_atom();
                    let (lo, hi) = self.parse_quantifier();
                    branches.last_mut().unwrap().push((atom, lo, hi));
                }
            }
        }
        Node::Alt(branches)
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('.') => Node::Dot,
            Some('(') => {
                let inner = self.parse_alt(false);
                match self.chars.next() {
                    Some(')') => inner,
                    _ => self.fail("missing `)`"),
                }
            }
            Some('[') => self.parse_class(),
            Some('\\') => match self.chars.next() {
                Some(
                    c @ ('[' | ']' | '(' | ')' | '{' | '}' | '.' | '|' | '\\' | '*' | '+' | '?'
                    | '-' | '^' | '$'),
                ) => Node::Literal(c),
                Some('n') => Node::Literal('\n'),
                Some('t') => Node::Literal('\t'),
                Some('r') => Node::Literal('\r'),
                Some('d') => Node::Class(vec![('0', '9')]),
                Some('w') => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                Some('s') => Node::Class(vec![(' ', ' '), ('\t', '\t')]),
                _ => self.fail("unsupported escape"),
            },
            Some(c @ ('{' | '}' | '*' | '+' | '?')) => {
                self.fail(&format!("dangling quantifier `{c}`"))
            }
            Some(c) => Node::Literal(c),
            None => self.fail("empty atom"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges = Vec::new();
        loop {
            let c = match self.chars.next() {
                None => self.fail("unterminated class"),
                Some(']') => break,
                Some('\\') => match self.chars.next() {
                    Some(c @ ('[' | ']' | '\\' | '-' | '^')) => c,
                    Some('n') => '\n',
                    Some('t') => '\t',
                    _ => self.fail("unsupported class escape"),
                },
                Some(c) => c,
            };
            if self.chars.peek() == Some(&'-') {
                // Lookahead: `-` is a range only when not followed by `]`.
                let mut clone = self.chars.clone();
                clone.next();
                if clone.peek() != Some(&']') {
                    self.chars.next(); // the `-`
                    let hi = match self.chars.next() {
                        Some('\\') => self.chars.next().unwrap_or(']'),
                        Some(h) => h,
                        None => self.fail("unterminated class range"),
                    };
                    ranges.push((c, hi));
                    continue;
                }
            }
            ranges.push((c, c));
        }
        if ranges.is_empty() {
            self.fail("empty class");
        }
        Node::Class(ranges)
    }

    fn parse_quantifier(&mut self) -> (u32, u32) {
        match self.chars.peek() {
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('*') => {
                self.chars.next();
                (0, 8)
            }
            Some('+') => {
                self.chars.next();
                (1, 8)
            }
            Some('{') => {
                self.chars.next();
                let mut lo = String::new();
                let mut hi = String::new();
                let mut in_hi = false;
                let mut saw_comma = false;
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(',') => {
                            in_hi = true;
                            saw_comma = true;
                        }
                        Some(d) if d.is_ascii_digit() => {
                            if in_hi {
                                hi.push(d);
                            } else {
                                lo.push(d);
                            }
                        }
                        _ => self.fail("bad `{m,n}` quantifier"),
                    }
                }
                let lo: u32 = lo.parse().unwrap_or(0);
                let hi: u32 = if !saw_comma {
                    lo
                } else if hi.is_empty() {
                    lo + 8
                } else {
                    hi.parse().unwrap_or(lo)
                };
                (lo, hi.max(lo))
            }
            _ => (1, 1),
        }
    }
}

fn gen_node(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Alt(branches) => {
            let b = (rng.next_u64() % branches.len() as u64) as usize;
            for (atom, lo, hi) in &branches[b] {
                let n = if lo == hi {
                    *lo
                } else {
                    lo + (rng.next_u64() % u64::from(hi - lo + 1)) as u32
                };
                for _ in 0..n {
                    gen_node(atom, rng, out);
                }
            }
        }
        Node::Literal(c) => out.push(*c),
        Node::Dot => {
            // Printable ASCII, occasionally wider unicode.
            let r = rng.next_u64();
            if r % 13 == 0 {
                out.push(char::from_u32(0xA1 + (r >> 8) as u32 % 0x500).unwrap_or('¿'));
            } else {
                out.push(((r >> 8) as u8 % 0x5F + 0x20) as char);
            }
        }
        Node::Class(ranges) => {
            let (lo, hi) = ranges[(rng.next_u64() % ranges.len() as u64) as usize];
            let span = hi as u32 - lo as u32 + 1;
            let c =
                char::from_u32(lo as u32 + (rng.next_u64() % u64::from(span)) as u32).unwrap_or(lo);
            out.push(c);
        }
    }
}

/// Generate one string matching `pattern`.
#[must_use]
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let mut parser = RegexParser {
        chars: pattern.chars().peekable(),
        pattern,
    };
    let ast = parser.parse_alt(true);
    let mut out = String::new();
    gen_node(&ast, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_quantifier_group() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate("[a-z_]{1,12}( [a-z0-9_,\\[\\]]{1,10}){0,3}", &mut rng);
            assert!(!s.is_empty());
            let head = s.split(' ').next().unwrap();
            assert!(head.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            assert!(head.len() <= 12);
        }
    }

    #[test]
    fn dot_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = generate(".{0,400}", &mut rng);
            assert!(s.chars().count() <= 400);
        }
    }
}
