//! `prop::collection::vec` — sized vectors of generated elements.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Anything usable as a vector-length specification.
pub trait SizeBound {
    /// Draw a length.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeBound for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeBound for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeBound for RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for vectors; see [`vec`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeBound> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Vectors whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy, R: SizeBound>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}
