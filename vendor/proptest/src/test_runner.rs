//! Deterministic case runner for `proptest!`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — fails the whole test.
    Fail(String),
    /// `prop_assume!` rejection — the case is re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives a strategy through `config.cases` successful executions.
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// Create a runner.
    #[must_use]
    pub fn new(config: Config) -> Self {
        TestRunner { config }
    }

    /// Run the property; returns a failure report on the first failing case.
    ///
    /// # Errors
    ///
    /// Returns `Err(report)` when a case fails or rejection retries are
    /// exhausted.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), String>
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let cases = self.config.cases;
        let max_rejects = u64::from(cases) * 256 + 4096;
        let mut rejects = 0u64;
        let mut passed = 0u32;
        let mut attempt = 0u64;
        while passed < cases {
            attempt += 1;
            let mut rng = StdRng::seed_from_u64(
                0x7e57_5eed_0000_0000 ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let Some(value) = strategy.gen_value(&mut rng) else {
                rejects += 1;
                if rejects > max_rejects {
                    return Err(format!(
                        "proptest stub: too many generation rejections ({rejects}) \
                         after {passed}/{cases} cases"
                    ));
                }
                continue;
            };
            let repr = format!("{value:?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
            match outcome {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        return Err(format!(
                            "proptest stub: too many assumption rejections ({rejects}) \
                             after {passed}/{cases} cases"
                        ));
                    }
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    return Err(format!(
                        "proptest case failed (case {passed}, attempt {attempt}): {msg}\n\
                         input: {repr}"
                    ));
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                        .unwrap_or_else(|| "<non-string panic>".to_owned());
                    return Err(format!(
                        "proptest case panicked (case {passed}, attempt {attempt}): {msg}\n\
                         input: {repr}"
                    ));
                }
            }
        }
        Ok(())
    }
}
