//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of serde's surface the workspace actually uses, built on a
//! greatly simplified data model: types convert to and from a single
//! self-describing [`Value`] tree instead of driving a visitor through a
//! `Serializer`/`Deserializer` pair.
//!
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! companion `serde_derive` crate) generate `to_sval`/`from_sval`
//! implementations that mirror serde's default representations: structs as
//! maps, enums externally tagged.

pub mod value;

pub use value::{Map, Value};

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Construct an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize: convert `self` into a [`Value`] tree.
pub trait Serialize {
    /// Build the [`Value`] representation of `self`.
    fn to_sval(&self) -> Value;
}

/// Deserialize: reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `Self` out of `v`, or explain why the shape does not fit.
    fn from_sval(v: &Value) -> Result<Self, DeError>;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_sval(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_sval(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64_lossy().ok_or_else(|| {
                    DeError(format!("expected unsigned integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_sval(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_u64_lossy()
            .ok_or_else(|| DeError(format!("expected unsigned integer, got {}", v.kind())))?;
        usize::try_from(n).map_err(|_| DeError(format!("integer {n} out of range for usize")))
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_sval(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_sval(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64_lossy().ok_or_else(|| {
                    DeError(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_sval(&self) -> Value {
        let n = *self as i64;
        if n >= 0 {
            Value::U64(n as u64)
        } else {
            Value::I64(n)
        }
    }
}
impl Deserialize for isize {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_i64_lossy()
            .ok_or_else(|| DeError(format!("expected integer, got {}", v.kind())))?;
        isize::try_from(n).map_err(|_| DeError(format!("integer {n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_sval(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        v.as_f64_lossy()
            .ok_or_else(|| DeError(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_sval(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_sval(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_sval(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_sval(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!(
                "expected single-char string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_sval(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_sval(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string. Only static-str struct fields (e.g. device
    /// names) hit this path, so the leak is small and bounded.
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        String::from_sval(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_sval(&self) -> Value {
        (**self).to_sval()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_sval(&self) -> Value {
        (**self).to_sval()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        T::from_sval(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_sval(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_sval(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_sval(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_sval(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_sval).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_sval).collect(),
            other => Err(DeError(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_sval(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_sval).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_sval(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_sval).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_sval(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_sval(&self) -> Value {
                Value::Array(vec![$(self.$n.to_sval()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_sval(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expect = [$(stringify!($n)),+].len();
                        if items.len() != expect {
                            return Err(DeError(format!(
                                "expected tuple of {expect}, got {} elements", items.len())));
                        }
                        Ok(($($t::from_sval(&items[$n])?,)+))
                    }
                    other => Err(DeError(format!("expected array, got {}", other.kind()))),
                }
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Render a map key through its serialized form (strings pass through, other
/// scalars use their compact JSON spelling — matching serde_json, which only
/// allows stringlike keys).
fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => value::to_json_compact(other),
    }
}

/// Recover a key of type `K` from the object-key string.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_sval(&Value::Str(s.to_owned())) {
        return Ok(k);
    }
    // Fall back to the scalar encodings `key_to_string` may have produced.
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_sval(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_sval(&Value::I64(n)) {
            return Ok(k);
        }
    }
    Err(DeError(format!("cannot reconstruct map key from {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_sval(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_sval()), v.to_sval()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_sval(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_sval(&self) -> Value {
        // BTreeMap intermediary gives deterministic key order.
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_sval()), v.to_sval()))
                .collect(),
        )
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_sval(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_sval(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_sval).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_sval).collect(),
            other => Err(DeError(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_sval(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_sval).collect();
        items.sort_by_key(value::to_json_compact);
        Value::Array(items)
    }
}
impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_sval).collect(),
            other => Err(DeError(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_sval(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_sval(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Support machinery for the derive macros; not part of the public API.
pub mod __private {
    use super::{DeError, Deserialize, Map, Value};

    /// Build the externally-tagged `{variant: content}` object.
    #[must_use]
    pub fn newtype_variant(name: &str, content: Value) -> Value {
        let mut m = Map::new();
        m.insert(name.to_owned(), content);
        Value::Object(m)
    }

    /// View `v` as a sequence of exactly `n` elements.
    pub fn as_seq(v: &Value, n: usize) -> Result<&[Value], DeError> {
        match v {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => Err(DeError(format!(
                "expected {n}-element sequence, got {}",
                items.len()
            ))),
            other => Err(DeError(format!("expected sequence, got {}", other.kind()))),
        }
    }

    /// View `v` as an object.
    pub fn as_obj(v: &Value) -> Result<&Map, DeError> {
        match v {
            Value::Object(m) => Ok(m),
            other => Err(DeError(format!("expected object, got {}", other.kind()))),
        }
    }

    /// Extract field `name` from an object, treating absence as `Null` (so
    /// `Option` fields may be omitted).
    pub fn field<T: Deserialize>(m: &Map, ty: &str, name: &str) -> Result<T, DeError> {
        let v = m.get(name).unwrap_or(&Value::Null);
        T::from_sval(v).map_err(|e| DeError(format!("{ty}.{name}: {e}")))
    }

    /// Decompose an externally-tagged enum value into `(tag, content)`.
    pub fn enum_parts<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), DeError> {
        match v {
            Value::Str(s) => Ok((s.as_str(), &Value::Null)),
            Value::Object(m) if m.len() == 1 => {
                let (k, inner) = m.iter().next().unwrap();
                Ok((k.as_str(), inner))
            }
            other => Err(DeError(format!(
                "expected externally tagged {ty} enum, got {}",
                other.kind()
            ))),
        }
    }
}
