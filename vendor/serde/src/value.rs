//! The self-describing value tree shared by the `serde` and `serde_json`
//! stand-ins.

use std::collections::BTreeMap;
use std::fmt;

/// Object type: string keys in sorted order for deterministic output.
pub type Map = BTreeMap<String, Value>;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (positive ones normalise to [`Value::U64`]).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Key/value map with deterministic ordering.
    Object(Map),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Widen any numeric variant to `u64` when exactly representable.
    #[must_use]
    pub fn as_u64_lossy(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Widen any numeric variant to `i64` when exactly representable.
    #[must_use]
    pub fn as_i64_lossy(&self) -> Option<i64> {
        match self {
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::I64(n) => Some(*n),
            Value::F64(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Widen any numeric variant to `f64`.
    #[must_use]
    pub fn as_f64_lossy(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    }
}

/// Escape a string into its JSON representation (including quotes).
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep the `.0` so the value re-parses as a float-looking token.
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        // JSON has no inf/nan; serde_json emits null.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => fmt_f64(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const PAD: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Render `v` as compact JSON.
#[must_use]
pub fn to_json_compact(v: &Value) -> String {
    let mut out = String::new();
    write_compact(v, &mut out);
    out
}

/// Render `v` as two-space-indented JSON.
#[must_use]
pub fn to_json_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    out
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", to_json_compact(self))
    }
}
