//! Decoded instructions and their machine-code encodings.

use serde::{Deserialize, Serialize};

use crate::{Format, IsaError, Opcode, Operand};

/// The offset source of an SMRD instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmrdOffset {
    /// Unsigned 8-bit immediate, in dwords.
    Imm(u8),
    /// Offset taken from an SGPR, in bytes.
    Sgpr(u8),
}

/// Format-specific instruction fields.
///
/// Vector-ALU opcodes whose natural format is VOP1/VOP2/VOPC may instead
/// carry [`Fields::Vop3a`] / [`Fields::Vop3b`] payloads, selecting the 64-bit
/// *promoted* encoding (needed e.g. when a compare writes an explicit SGPR
/// pair, as in `v_cmp_gt_u32 s[14:15], v13, v4` from the paper's Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fields {
    /// Scalar, two sources.
    Sop2 {
        /// Scalar destination.
        sdst: Operand,
        /// First source.
        ssrc0: Operand,
        /// Second source.
        ssrc1: Operand,
    },
    /// Scalar with a 16-bit signed immediate.
    Sopk {
        /// Scalar destination (also a source for the compare variants).
        sdst: Operand,
        /// Immediate.
        simm16: i16,
    },
    /// Scalar, one source.
    Sop1 {
        /// Scalar destination.
        sdst: Operand,
        /// Source.
        ssrc0: Operand,
    },
    /// Scalar compare: writes SCC only.
    Sopc {
        /// First source.
        ssrc0: Operand,
        /// Second source.
        ssrc1: Operand,
    },
    /// Program control with raw 16-bit immediate (branch offset, waitcnt
    /// bit-field, …).
    Sopp {
        /// Immediate payload.
        simm16: u16,
    },
    /// Scalar memory read.
    Smrd {
        /// Scalar destination (first register of the loaded group).
        sdst: Operand,
        /// First SGPR of the aligned base pair (must be even).
        sbase: u8,
        /// Offset source.
        offset: SmrdOffset,
    },
    /// Vector, two sources (32-bit encoding; `vsrc1` must be a VGPR).
    Vop2 {
        /// Vector destination register.
        vdst: u8,
        /// First source (full 9-bit operand space).
        src0: Operand,
        /// Second source VGPR.
        vsrc1: u8,
    },
    /// Vector, one source (32-bit encoding).
    Vop1 {
        /// Vector destination register.
        vdst: u8,
        /// Source (full 9-bit operand space).
        src0: Operand,
    },
    /// Vector compare (32-bit encoding; result implicitly to VCC).
    Vopc {
        /// First source (full 9-bit operand space).
        src0: Operand,
        /// Second source VGPR.
        vsrc1: u8,
    },
    /// Vector, 64-bit encoding, vector destination.
    Vop3a {
        /// Vector destination register.
        vdst: u8,
        /// First source.
        src0: Operand,
        /// Second source.
        src1: Operand,
        /// Third source (two-source VOP3 opcodes leave this `None`).
        src2: Option<Operand>,
        /// Per-source absolute-value modifier bits (bit *i* = source *i*).
        abs: u8,
        /// Per-source negation modifier bits.
        neg: u8,
        /// Clamp result to `[0, 1]`.
        clamp: bool,
        /// Output modifier (0 = none, 1 = ×2, 2 = ×4, 3 = ÷2).
        omod: u8,
    },
    /// Vector, 64-bit encoding with an explicit scalar destination
    /// (compares and carry-producing arithmetic).
    Vop3b {
        /// Vector destination register.
        vdst: u8,
        /// Scalar destination (lane-mask / carry-out pair).
        sdst: Operand,
        /// First source.
        src0: Operand,
        /// Second source.
        src1: Operand,
        /// Third source (carry-in for `v_addc`/`v_subb`).
        src2: Option<Operand>,
    },
    /// LDS access.
    Ds {
        /// Vector destination register (reads).
        vdst: u8,
        /// Address VGPR (byte address within the LDS).
        addr: u8,
        /// First data VGPR (writes / atomics).
        data0: u8,
        /// Second data VGPR (`*2` variants).
        data1: u8,
        /// First offset (bytes; element index for `*2` variants).
        offset0: u8,
        /// Second offset (`*2` variants).
        offset1: u8,
        /// Global data share flag (unused by MIAOW2.0, kept for encoding).
        gds: bool,
    },
    /// Untyped buffer access.
    Mubuf {
        /// Data VGPR (first of the group).
        vdata: u8,
        /// Address VGPR.
        vaddr: u8,
        /// First SGPR of the aligned resource-descriptor quad (multiple of 4).
        srsrc: u8,
        /// Scalar offset source (SGPR or inline constant).
        soffset: Operand,
        /// Unsigned 12-bit immediate byte offset.
        offset: u16,
        /// Supply the address from `vaddr` (offset enable).
        offen: bool,
        /// Index enable.
        idxen: bool,
        /// Globally coherent access.
        glc: bool,
    },
    /// Typed buffer access.
    Mtbuf {
        /// Data VGPR (first of the group).
        vdata: u8,
        /// Address VGPR.
        vaddr: u8,
        /// First SGPR of the aligned resource-descriptor quad (multiple of 4).
        srsrc: u8,
        /// Scalar offset source.
        soffset: Operand,
        /// Unsigned 12-bit immediate byte offset.
        offset: u16,
        /// Offset enable.
        offen: bool,
        /// Index enable.
        idxen: bool,
        /// Data format (4 bits; 4 = 32-bit, as produced by CodeXL).
        dfmt: u8,
        /// Numeric format (3 bits; 4 = uint).
        nfmt: u8,
    },
}

impl Fields {
    /// The encoding format selected by this payload.
    #[must_use]
    pub fn encoding_format(&self) -> Format {
        match self {
            Fields::Sop2 { .. } => Format::Sop2,
            Fields::Sopk { .. } => Format::Sopk,
            Fields::Sop1 { .. } => Format::Sop1,
            Fields::Sopc { .. } => Format::Sopc,
            Fields::Sopp { .. } => Format::Sopp,
            Fields::Smrd { .. } => Format::Smrd,
            Fields::Vop2 { .. } => Format::Vop2,
            Fields::Vop1 { .. } => Format::Vop1,
            Fields::Vopc { .. } => Format::Vopc,
            Fields::Vop3a { .. } => Format::Vop3a,
            Fields::Vop3b { .. } => Format::Vop3b,
            Fields::Ds { .. } => Format::Ds,
            Fields::Mubuf { .. } => Format::Mubuf,
            Fields::Mtbuf { .. } => Format::Mtbuf,
        }
    }
}

/// A fully decoded instruction: opcode plus format fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// The operation.
    pub opcode: Opcode,
    /// Format-specific operand fields.
    pub fields: Fields,
}

impl Instruction {
    /// Build and validate an instruction.
    ///
    /// # Errors
    ///
    /// * [`IsaError::FieldsMismatch`] when the payload layout is not legal
    ///   for the opcode (the natural format, or a VOP3 promotion for
    ///   vector-ALU opcodes);
    /// * [`IsaError::InvalidOperand`] for operands illegal in their position;
    /// * [`IsaError::MultipleLiterals`] when more than one operand needs a
    ///   trailing literal word.
    pub fn new(opcode: Opcode, fields: Fields) -> Result<Instruction, IsaError> {
        let inst = Instruction { opcode, fields };
        inst.validate()?;
        Ok(inst)
    }

    fn validate(&self) -> Result<(), IsaError> {
        let natural = self.opcode.format();
        let encoding = self.fields.encoding_format();
        let promotion_ok = matches!(encoding, Format::Vop3a | Format::Vop3b)
            && self.opcode.vop3_native().is_some();
        if encoding != natural && !promotion_ok {
            return Err(IsaError::FieldsMismatch {
                opcode: self.opcode,
                expected: natural,
            });
        }
        // VOP3b is only meaningful for opcodes with an implicit scalar result.
        if encoding == Format::Vop3b
            && !(self.opcode.writes_vcc_implicitly() || natural == Format::Vop3b)
        {
            return Err(IsaError::InvalidOperand {
                opcode: self.opcode,
                reason: "VOP3b encoding requires a compare or carry opcode",
            });
        }

        let err = |reason| IsaError::InvalidOperand {
            opcode: self.opcode,
            reason,
        };

        match self.fields {
            Fields::Sop2 { sdst, ssrc0, ssrc1 } => {
                if !sdst.is_scalar_writable() {
                    return Err(err("sdst must be a scalar-writable register"));
                }
                if !ssrc0.is_scalar_src() || !ssrc1.is_scalar_src() {
                    return Err(err("scalar sources cannot be VGPRs"));
                }
            }
            Fields::Sopk { sdst, .. } => {
                if !sdst.is_scalar_writable() {
                    return Err(err("sdst must be a scalar-writable register"));
                }
            }
            Fields::Sop1 { sdst, ssrc0 } => {
                if !sdst.is_scalar_writable() {
                    return Err(err("sdst must be a scalar-writable register"));
                }
                if !ssrc0.is_scalar_src() {
                    return Err(err("scalar sources cannot be VGPRs"));
                }
            }
            Fields::Sopc { ssrc0, ssrc1 } => {
                if !ssrc0.is_scalar_src() || !ssrc1.is_scalar_src() {
                    return Err(err("scalar sources cannot be VGPRs"));
                }
            }
            Fields::Sopp { .. } => {}
            Fields::Smrd { sdst, sbase, .. } => {
                if !sdst.is_scalar_writable() {
                    return Err(err("sdst must be a scalar-writable register"));
                }
                if sbase % 2 != 0 || usize::from(sbase) >= crate::SGPR_COUNT {
                    return Err(err("sbase must be an even SGPR pair base"));
                }
            }
            Fields::Vop2 { src0, .. } | Fields::Vop1 { src0, .. } | Fields::Vopc { src0, .. } => {
                // src0 spans the full 9-bit space: everything is legal.
                let _ = src0;
            }
            Fields::Vop3a {
                src0,
                src1,
                src2,
                omod,
                ..
            } => {
                if src0.is_literal() || src1.is_literal() || src2.is_some_and(|s| s.is_literal()) {
                    return Err(err("VOP3 encodings cannot carry literal constants"));
                }
                if omod > 3 {
                    return Err(err("omod must be 0..=3"));
                }
                let expects_src2 = self.opcode.src_count() == 3
                    && matches!(self.opcode.format(), Format::Vop3a | Format::Vop3b);
                if expects_src2 && src2.is_none() {
                    return Err(err("three-source VOP3 opcode requires src2"));
                }
            }
            Fields::Vop3b {
                sdst,
                src0,
                src1,
                src2,
                ..
            } => {
                if !sdst.is_scalar_writable() {
                    return Err(err("sdst must be a scalar-writable register"));
                }
                if src0.is_literal() || src1.is_literal() || src2.is_some_and(|s| s.is_literal()) {
                    return Err(err("VOP3 encodings cannot carry literal constants"));
                }
            }
            Fields::Ds { .. } => {}
            Fields::Mubuf {
                srsrc,
                soffset,
                offset,
                ..
            }
            | Fields::Mtbuf {
                srsrc,
                soffset,
                offset,
                ..
            } => {
                if srsrc % 4 != 0 || usize::from(srsrc) >= crate::SGPR_COUNT {
                    return Err(err("srsrc must be a multiple-of-4 SGPR quad base"));
                }
                if !soffset.is_scalar_src() || soffset.is_literal() {
                    return Err(err("soffset must be an SGPR or inline constant"));
                }
                if offset > 0xfff {
                    return Err(err("buffer immediate offset is 12 bits"));
                }
            }
        }

        if self.literal_operands() > 1 {
            return Err(IsaError::MultipleLiterals);
        }
        Ok(())
    }

    fn literal_operands(&self) -> usize {
        self.source_operands()
            .iter()
            .filter(|o| o.is_literal())
            .count()
    }

    /// The explicit source operands, in encoding order.
    #[must_use]
    pub fn source_operands(&self) -> Vec<Operand> {
        match self.fields {
            Fields::Sop2 { ssrc0, ssrc1, .. } | Fields::Sopc { ssrc0, ssrc1 } => {
                vec![ssrc0, ssrc1]
            }
            Fields::Sop1 { ssrc0, .. } => vec![ssrc0],
            Fields::Sopk { .. } | Fields::Sopp { .. } => vec![],
            Fields::Smrd { sbase, offset, .. } => {
                let mut v = vec![Operand::Sgpr(sbase)];
                if let SmrdOffset::Sgpr(s) = offset {
                    v.push(Operand::Sgpr(s));
                }
                v
            }
            Fields::Vop2 { src0, vsrc1, .. } | Fields::Vopc { src0, vsrc1 } => {
                vec![src0, Operand::Vgpr(vsrc1)]
            }
            Fields::Vop1 { src0, .. } => vec![src0],
            Fields::Vop3a {
                src0, src1, src2, ..
            }
            | Fields::Vop3b {
                src0, src1, src2, ..
            } => {
                let mut v = vec![src0, src1];
                if let Some(s) = src2 {
                    v.push(s);
                }
                v
            }
            Fields::Ds {
                addr, data0, data1, ..
            } => vec![
                Operand::Vgpr(addr),
                Operand::Vgpr(data0),
                Operand::Vgpr(data1),
            ],
            Fields::Mubuf {
                vaddr,
                srsrc,
                soffset,
                ..
            }
            | Fields::Mtbuf {
                vaddr,
                srsrc,
                soffset,
                ..
            } => vec![Operand::Vgpr(vaddr), Operand::Sgpr(srsrc), soffset],
        }
    }

    /// The literal constant carried by this instruction, if any.
    #[must_use]
    pub fn literal(&self) -> Option<u32> {
        self.source_operands().into_iter().find_map(|o| match o {
            Operand::Literal(v) => Some(v),
            _ => None,
        })
    }

    /// Size of the encoded instruction in 32-bit words (including any
    /// trailing literal).
    #[must_use]
    pub fn size_words(&self) -> usize {
        let base = if self.fields.encoding_format().is_64bit() {
            2
        } else {
            1
        };
        base + self.literal_operands()
    }

    /// `true` when the encoding occupies two base words (requiring the
    /// double fetch described in §2.1.1 of the paper).
    #[must_use]
    pub fn uses_64bit_encoding(&self) -> bool {
        self.fields.encoding_format().is_64bit() || self.literal_operands() > 0
    }

    /// Encode to machine words.
    ///
    /// # Errors
    ///
    /// Propagates operand-encoding failures; the instruction itself was
    /// validated at construction.
    pub fn encode(&self) -> Result<Vec<u32>, IsaError> {
        let op = u32::from(self.opcode.native());
        let mut words = Vec::with_capacity(self.size_words());
        let mut literal: Option<u32> = None;
        let mut src = |o: Operand| -> Result<u32, IsaError> {
            if let Operand::Literal(v) = o {
                literal = Some(v);
            }
            Ok(u32::from(o.encode_src()?))
        };

        match self.fields {
            Fields::Sop2 { sdst, ssrc0, ssrc1 } => {
                let s0 = src(ssrc0)?;
                let s1 = src(ssrc1)?;
                let d = u32::from(sdst.encode_src()?);
                words.push((0b10 << 30) | (op << 23) | (d << 16) | (s1 << 8) | s0);
            }
            Fields::Sopk { sdst, simm16 } => {
                let d = u32::from(sdst.encode_src()?);
                words.push((0b1011 << 28) | (op << 23) | (d << 16) | u32::from(simm16 as u16));
            }
            Fields::Sop1 { sdst, ssrc0 } => {
                let s0 = src(ssrc0)?;
                let d = u32::from(sdst.encode_src()?);
                words.push((0b101111101 << 23) | (d << 16) | (op << 8) | s0);
            }
            Fields::Sopc { ssrc0, ssrc1 } => {
                let s0 = src(ssrc0)?;
                let s1 = src(ssrc1)?;
                words.push((0b101111110 << 23) | (op << 16) | (s1 << 8) | s0);
            }
            Fields::Sopp { simm16 } => {
                words.push((0b101111111 << 23) | (op << 16) | u32::from(simm16));
            }
            Fields::Smrd {
                sdst,
                sbase,
                offset,
            } => {
                let d = u32::from(sdst.encode_src()?);
                let (imm, off) = match offset {
                    SmrdOffset::Imm(i) => (1u32, u32::from(i)),
                    SmrdOffset::Sgpr(s) => (0u32, u32::from(s)),
                };
                words.push(
                    (0b11000 << 27)
                        | (op << 22)
                        | (d << 15)
                        | (u32::from(sbase / 2) << 9)
                        | (imm << 8)
                        | off,
                );
            }
            Fields::Vop2 { vdst, src0, vsrc1 } => {
                let s0 = src(src0)?;
                words.push((op << 25) | (u32::from(vdst) << 17) | (u32::from(vsrc1) << 9) | s0);
            }
            Fields::Vop1 { vdst, src0 } => {
                let s0 = src(src0)?;
                words.push((0b0111111 << 25) | (u32::from(vdst) << 17) | (op << 9) | s0);
            }
            Fields::Vopc { src0, vsrc1 } => {
                let s0 = src(src0)?;
                words.push((0b0111110 << 25) | (op << 17) | (u32::from(vsrc1) << 9) | s0);
            }
            Fields::Vop3a {
                vdst,
                src0,
                src1,
                src2,
                abs,
                neg,
                clamp,
                omod,
            } => {
                let vop3_op = u32::from(self.opcode.vop3_native().expect("validated vector op"));
                let s0 = src(src0)?;
                let s1 = src(src1)?;
                let s2 = match src2 {
                    Some(s) => src(s)?,
                    None => 0,
                };
                words.push(
                    (0b110100 << 26)
                        | (vop3_op << 17)
                        | (u32::from(clamp) << 11)
                        | (u32::from(abs & 0x7) << 8)
                        | u32::from(vdst),
                );
                words.push(
                    (u32::from(neg & 0x7) << 29)
                        | (u32::from(omod & 0x3) << 27)
                        | (s2 << 18)
                        | (s1 << 9)
                        | s0,
                );
            }
            Fields::Vop3b {
                vdst,
                sdst,
                src0,
                src1,
                src2,
            } => {
                let vop3_op = u32::from(self.opcode.vop3_native().expect("validated vector op"));
                let s0 = src(src0)?;
                let s1 = src(src1)?;
                let s2 = match src2 {
                    Some(s) => src(s)?,
                    None => 0,
                };
                let d = u32::from(sdst.encode_src()?);
                words.push((0b110100 << 26) | (vop3_op << 17) | (d << 8) | u32::from(vdst));
                words.push((s2 << 18) | (s1 << 9) | s0);
            }
            Fields::Ds {
                vdst,
                addr,
                data0,
                data1,
                offset0,
                offset1,
                gds,
            } => {
                words.push(
                    (0b110110 << 26)
                        | (op << 18)
                        | (u32::from(gds) << 17)
                        | (u32::from(offset1) << 8)
                        | u32::from(offset0),
                );
                words.push(
                    (u32::from(vdst) << 24)
                        | (u32::from(data1) << 16)
                        | (u32::from(data0) << 8)
                        | u32::from(addr),
                );
            }
            Fields::Mubuf {
                vdata,
                vaddr,
                srsrc,
                soffset,
                offset,
                offen,
                idxen,
                glc,
            } => {
                let soff = src(soffset)?;
                words.push(
                    (0b111000 << 26)
                        | (op << 18)
                        | (u32::from(glc) << 14)
                        | (u32::from(idxen) << 13)
                        | (u32::from(offen) << 12)
                        | u32::from(offset & 0xfff),
                );
                words.push(
                    (soff << 24)
                        | (u32::from(srsrc / 4) << 16)
                        | (u32::from(vdata) << 8)
                        | u32::from(vaddr),
                );
            }
            Fields::Mtbuf {
                vdata,
                vaddr,
                srsrc,
                soffset,
                offset,
                offen,
                idxen,
                dfmt,
                nfmt,
            } => {
                let soff = src(soffset)?;
                words.push(
                    (0b111010 << 26)
                        | (u32::from(nfmt & 0x7) << 23)
                        | (u32::from(dfmt & 0xf) << 19)
                        | (op << 16)
                        | (u32::from(idxen) << 13)
                        | (u32::from(offen) << 12)
                        | u32::from(offset & 0xfff),
                );
                words.push(
                    (soff << 24)
                        | (u32::from(srsrc / 4) << 16)
                        | (u32::from(vdata) << 8)
                        | u32::from(vaddr),
                );
            }
        }

        if let Some(v) = literal {
            words.push(v);
        }
        Ok(words)
    }

    /// Decode one instruction from the front of `words`.
    ///
    /// Returns the instruction and the number of words consumed.
    ///
    /// # Errors
    ///
    /// * [`IsaError::TruncatedStream`] when `words` ends mid-instruction;
    /// * [`IsaError::UnknownFormat`] / [`IsaError::UnknownOpcode`] for
    ///   unrecognised encodings;
    /// * operand decoding failures.
    pub fn decode(words: &[u32]) -> Result<(Instruction, usize), IsaError> {
        let &w0 = words.first().ok_or(IsaError::TruncatedStream)?;
        let format = Format::of_word(w0).ok_or(IsaError::UnknownFormat { word: w0 })?;

        let field = |word: u32, lo: u32, bits: u32| -> u32 { (word >> lo) & ((1 << bits) - 1) };

        let mut consumed = 1usize;
        let mut need_literal = false;
        let mut src = |raw: u32| -> Result<Operand, IsaError> {
            let o = Operand::decode_src(raw as u16)?;
            if o.is_literal() {
                need_literal = true;
            }
            Ok(o)
        };

        let (opcode, mut fields) = match format {
            Format::Sop2 => {
                let op = field(w0, 23, 7) as u16;
                let opcode = Opcode::from_native(Format::Sop2, op)?;
                let fields = Fields::Sop2 {
                    sdst: Operand::decode_src(field(w0, 16, 7) as u16)?,
                    ssrc0: src(field(w0, 0, 8))?,
                    ssrc1: src(field(w0, 8, 8))?,
                };
                (opcode, fields)
            }
            Format::Sopk => {
                let op = field(w0, 23, 5) as u16;
                let opcode = Opcode::from_native(Format::Sopk, op)?;
                let fields = Fields::Sopk {
                    sdst: Operand::decode_src(field(w0, 16, 7) as u16)?,
                    simm16: field(w0, 0, 16) as u16 as i16,
                };
                (opcode, fields)
            }
            Format::Sop1 => {
                let op = field(w0, 8, 8) as u16;
                let opcode = Opcode::from_native(Format::Sop1, op)?;
                let fields = Fields::Sop1 {
                    sdst: Operand::decode_src(field(w0, 16, 7) as u16)?,
                    ssrc0: src(field(w0, 0, 8))?,
                };
                (opcode, fields)
            }
            Format::Sopc => {
                let op = field(w0, 16, 7) as u16;
                let opcode = Opcode::from_native(Format::Sopc, op)?;
                let fields = Fields::Sopc {
                    ssrc0: src(field(w0, 0, 8))?,
                    ssrc1: src(field(w0, 8, 8))?,
                };
                (opcode, fields)
            }
            Format::Sopp => {
                let op = field(w0, 16, 7) as u16;
                let opcode = Opcode::from_native(Format::Sopp, op)?;
                (
                    opcode,
                    Fields::Sopp {
                        simm16: field(w0, 0, 16) as u16,
                    },
                )
            }
            Format::Smrd => {
                let op = field(w0, 22, 5) as u16;
                let opcode = Opcode::from_native(Format::Smrd, op)?;
                let offset = if field(w0, 8, 1) == 1 {
                    SmrdOffset::Imm(field(w0, 0, 8) as u8)
                } else {
                    SmrdOffset::Sgpr(field(w0, 0, 8) as u8)
                };
                let fields = Fields::Smrd {
                    sdst: Operand::decode_src(field(w0, 15, 7) as u16)?,
                    sbase: (field(w0, 9, 6) * 2) as u8,
                    offset,
                };
                (opcode, fields)
            }
            Format::Vop2 => {
                let op = field(w0, 25, 6) as u16;
                let opcode = Opcode::from_native(Format::Vop2, op)?;
                let fields = Fields::Vop2 {
                    vdst: field(w0, 17, 8) as u8,
                    src0: src(field(w0, 0, 9))?,
                    vsrc1: field(w0, 9, 8) as u8,
                };
                (opcode, fields)
            }
            Format::Vop1 => {
                let op = field(w0, 9, 8) as u16;
                let opcode = Opcode::from_native(Format::Vop1, op)?;
                let fields = Fields::Vop1 {
                    vdst: field(w0, 17, 8) as u8,
                    src0: src(field(w0, 0, 9))?,
                };
                (opcode, fields)
            }
            Format::Vopc => {
                let op = field(w0, 17, 8) as u16;
                let opcode = Opcode::from_native(Format::Vopc, op)?;
                let fields = Fields::Vopc {
                    src0: src(field(w0, 0, 9))?,
                    vsrc1: field(w0, 9, 8) as u8,
                };
                (opcode, fields)
            }
            Format::Vop3a | Format::Vop3b => {
                let &w1 = words.get(1).ok_or(IsaError::TruncatedStream)?;
                consumed = 2;
                let vop3_op = field(w0, 17, 9) as u16;
                let opcode = Opcode::from_vop3_native(vop3_op)?;
                let src0 = src(field(w1, 0, 9))?;
                let src1 = src(field(w1, 9, 9))?;
                let src2_raw = field(w1, 18, 9);
                let src2 = if opcode.src_count() == 3 || opcode.reads_vcc_implicitly() {
                    Some(src(src2_raw)?)
                } else {
                    None
                };
                // VOP3b: promoted compares and carry arithmetic.
                let is_b = opcode.writes_vcc_implicitly();
                let fields = if is_b {
                    Fields::Vop3b {
                        vdst: field(w0, 0, 8) as u8,
                        sdst: Operand::decode_src(field(w0, 8, 7) as u16)?,
                        src0,
                        src1,
                        src2: if opcode.reads_vcc_implicitly() {
                            src2
                        } else {
                            None
                        },
                    }
                } else {
                    Fields::Vop3a {
                        vdst: field(w0, 0, 8) as u8,
                        src0,
                        src1,
                        src2,
                        abs: field(w0, 8, 3) as u8,
                        neg: field(w1, 29, 3) as u8,
                        clamp: field(w0, 11, 1) == 1,
                        omod: field(w1, 27, 2) as u8,
                    }
                };
                (opcode, fields)
            }
            Format::Ds => {
                let &w1 = words.get(1).ok_or(IsaError::TruncatedStream)?;
                consumed = 2;
                let op = field(w0, 18, 8) as u16;
                let opcode = Opcode::from_native(Format::Ds, op)?;
                let fields = Fields::Ds {
                    vdst: field(w1, 24, 8) as u8,
                    data1: field(w1, 16, 8) as u8,
                    data0: field(w1, 8, 8) as u8,
                    addr: field(w1, 0, 8) as u8,
                    offset1: field(w0, 8, 8) as u8,
                    offset0: field(w0, 0, 8) as u8,
                    gds: field(w0, 17, 1) == 1,
                };
                (opcode, fields)
            }
            Format::Mubuf => {
                let &w1 = words.get(1).ok_or(IsaError::TruncatedStream)?;
                consumed = 2;
                let op = field(w0, 18, 7) as u16;
                let opcode = Opcode::from_native(Format::Mubuf, op)?;
                let fields = Fields::Mubuf {
                    vdata: field(w1, 8, 8) as u8,
                    vaddr: field(w1, 0, 8) as u8,
                    srsrc: (field(w1, 16, 5) * 4) as u8,
                    soffset: src(field(w1, 24, 8))?,
                    offset: field(w0, 0, 12) as u16,
                    offen: field(w0, 12, 1) == 1,
                    idxen: field(w0, 13, 1) == 1,
                    glc: field(w0, 14, 1) == 1,
                };
                (opcode, fields)
            }
            Format::Mtbuf => {
                let &w1 = words.get(1).ok_or(IsaError::TruncatedStream)?;
                consumed = 2;
                let op = field(w0, 16, 3) as u16;
                let opcode = Opcode::from_native(Format::Mtbuf, op)?;
                let fields = Fields::Mtbuf {
                    vdata: field(w1, 8, 8) as u8,
                    vaddr: field(w1, 0, 8) as u8,
                    srsrc: (field(w1, 16, 5) * 4) as u8,
                    soffset: src(field(w1, 24, 8))?,
                    offset: field(w0, 0, 12) as u16,
                    offen: field(w0, 12, 1) == 1,
                    idxen: field(w0, 13, 1) == 1,
                    dfmt: field(w0, 19, 4) as u8,
                    nfmt: field(w0, 23, 3) as u8,
                };
                (opcode, fields)
            }
        };

        if need_literal {
            let &lit = words.get(consumed).ok_or(IsaError::TruncatedStream)?;
            consumed += 1;
            patch_literal(&mut fields, lit);
        }

        let inst = Instruction { opcode, fields };
        inst.validate()?;
        Ok((inst, consumed))
    }

    /// Decode an entire word stream into an instruction list with the word
    /// offset of each instruction.
    ///
    /// # Errors
    ///
    /// Fails on the first undecodable word.
    pub fn decode_all(words: &[u32]) -> Result<Vec<(usize, Instruction)>, IsaError> {
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < words.len() {
            let (inst, used) = Instruction::decode(&words[pos..])?;
            out.push((pos, inst));
            pos += used;
        }
        Ok(out)
    }
}

fn patch_literal(fields: &mut Fields, value: u32) {
    let patch = |o: &mut Operand| {
        if let Operand::Literal(v) = o {
            *v = value;
        }
    };
    match fields {
        Fields::Sop2 { ssrc0, ssrc1, .. } => {
            patch(ssrc0);
            patch(ssrc1);
        }
        Fields::Sop1 { ssrc0, .. } => patch(ssrc0),
        Fields::Sopc { ssrc0, ssrc1 } => {
            patch(ssrc0);
            patch(ssrc1);
        }
        Fields::Vop2 { src0, .. } | Fields::Vop1 { src0, .. } | Fields::Vopc { src0, .. } => {
            patch(src0)
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Instruction) {
        let words = inst.encode().expect("encode");
        assert_eq!(words.len(), inst.size_words());
        let (back, used) = Instruction::decode(&words).expect("decode");
        assert_eq!(used, words.len());
        assert_eq!(back, inst, "words: {words:08x?}");
    }

    #[test]
    fn sop2_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::SAddU32,
                Fields::Sop2 {
                    sdst: Operand::Sgpr(3),
                    ssrc0: Operand::Sgpr(1),
                    ssrc1: Operand::IntConst(12),
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn sop2_with_literal_roundtrip() {
        let inst = Instruction::new(
            Opcode::SMulI32,
            Fields::Sop2 {
                sdst: Operand::Sgpr(0),
                ssrc0: Operand::Sgpr(2),
                ssrc1: Operand::Literal(0x1234_5678),
            },
        )
        .unwrap();
        assert_eq!(inst.size_words(), 2);
        assert!(inst.uses_64bit_encoding());
        roundtrip(inst);
    }

    #[test]
    fn sopk_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::SMovkI32,
                Fields::Sopk {
                    sdst: Operand::Sgpr(9),
                    simm16: -1234,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn sop1_saveexec_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::SAndSaveexecB64,
                Fields::Sop1 {
                    sdst: Operand::Sgpr(8),
                    ssrc0: Operand::VccLo,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn sopc_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::SCmpLtU32,
                Fields::Sopc {
                    ssrc0: Operand::Sgpr(4),
                    ssrc1: Operand::IntConst(64),
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn sopp_roundtrip() {
        roundtrip(Instruction::new(Opcode::SWaitcnt, Fields::Sopp { simm16: 0x0070 }).unwrap());
        roundtrip(
            Instruction::new(
                Opcode::SBranch,
                Fields::Sopp {
                    simm16: (-5i16) as u16,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn smrd_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::SLoadDwordx4,
                Fields::Smrd {
                    sdst: Operand::Sgpr(8),
                    sbase: 4,
                    offset: SmrdOffset::Imm(2),
                },
            )
            .unwrap(),
        );
        roundtrip(
            Instruction::new(
                Opcode::SBufferLoadDword,
                Fields::Smrd {
                    sdst: Operand::Sgpr(0),
                    sbase: 8,
                    offset: SmrdOffset::Sgpr(16),
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn smrd_odd_base_rejected() {
        let r = Instruction::new(
            Opcode::SLoadDword,
            Fields::Smrd {
                sdst: Operand::Sgpr(0),
                sbase: 5,
                offset: SmrdOffset::Imm(0),
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn vop2_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::VAddI32,
                Fields::Vop2 {
                    vdst: 11,
                    src0: Operand::Sgpr(0),
                    vsrc1: 8,
                },
            )
            .unwrap(),
        );
        roundtrip(
            Instruction::new(
                Opcode::VMulF32,
                Fields::Vop2 {
                    vdst: 1,
                    src0: Operand::FloatConst(2.0),
                    vsrc1: 2,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn vop2_literal_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::VAndB32,
                Fields::Vop2 {
                    vdst: 0,
                    src0: Operand::Literal(0x00ff_00ff),
                    vsrc1: 3,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn vop1_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::VMovB32,
                Fields::Vop1 {
                    vdst: 8,
                    src0: Operand::Vgpr(1),
                },
            )
            .unwrap(),
        );
        roundtrip(
            Instruction::new(
                Opcode::VRcpF32,
                Fields::Vop1 {
                    vdst: 4,
                    src0: Operand::Vgpr(4),
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn vopc_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::VCmpGtU32,
                Fields::Vopc {
                    src0: Operand::Vgpr(6),
                    vsrc1: 5,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn vop3a_native_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::VMadF32,
                Fields::Vop3a {
                    vdst: 7,
                    src0: Operand::Vgpr(1),
                    src1: Operand::Vgpr(2),
                    src2: Some(Operand::Vgpr(3)),
                    abs: 0,
                    neg: 0b001,
                    clamp: true,
                    omod: 2,
                },
            )
            .unwrap(),
        );
        roundtrip(
            Instruction::new(
                Opcode::VMulLoI32,
                Fields::Vop3a {
                    vdst: 8,
                    src0: Operand::Vgpr(8),
                    src1: Operand::Vgpr(10),
                    src2: None,
                    abs: 0,
                    neg: 0,
                    clamp: false,
                    omod: 0,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn vopc_promoted_to_vop3b_roundtrip() {
        // Fig. 5: v_cmp_gt_u32 s[14:15], v13, v4
        roundtrip(
            Instruction::new(
                Opcode::VCmpGtU32,
                Fields::Vop3b {
                    vdst: 0,
                    sdst: Operand::Sgpr(14),
                    src0: Operand::Vgpr(13),
                    src1: Operand::Vgpr(4),
                    src2: None,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn vop2_promoted_to_vop3a_roundtrip() {
        // v_max_u32 with a scalar second source needs the VOP3 encoding.
        roundtrip(
            Instruction::new(
                Opcode::VMaxU32,
                Fields::Vop3a {
                    vdst: 2,
                    src0: Operand::Vgpr(2),
                    src1: Operand::Sgpr(5),
                    src2: None,
                    abs: 0,
                    neg: 0,
                    clamp: false,
                    omod: 0,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn addc_vop3b_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::VAddcU32,
                Fields::Vop3b {
                    vdst: 1,
                    sdst: Operand::Sgpr(10),
                    src0: Operand::Vgpr(1),
                    src1: Operand::Vgpr(2),
                    src2: Some(Operand::Sgpr(12)),
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn vop3_rejects_literals() {
        let r = Instruction::new(
            Opcode::VMadF32,
            Fields::Vop3a {
                vdst: 0,
                src0: Operand::Literal(5),
                src1: Operand::Vgpr(1),
                src2: Some(Operand::Vgpr(2)),
                abs: 0,
                neg: 0,
                clamp: false,
                omod: 0,
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn vop3b_requires_carry_or_compare() {
        let r = Instruction::new(
            Opcode::VMulF32,
            Fields::Vop3b {
                vdst: 0,
                sdst: Operand::Sgpr(0),
                src0: Operand::Vgpr(0),
                src1: Operand::Vgpr(1),
                src2: None,
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn ds_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::DsWriteB32,
                Fields::Ds {
                    vdst: 0,
                    addr: 3,
                    data0: 4,
                    data1: 0,
                    offset0: 16,
                    offset1: 0,
                    gds: false,
                },
            )
            .unwrap(),
        );
        roundtrip(
            Instruction::new(
                Opcode::DsRead2B32,
                Fields::Ds {
                    vdst: 6,
                    addr: 3,
                    data0: 0,
                    data1: 0,
                    offset0: 0,
                    offset1: 1,
                    gds: false,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn mubuf_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::BufferLoadDword,
                Fields::Mubuf {
                    vdata: 2,
                    vaddr: 1,
                    srsrc: 4,
                    soffset: Operand::IntConst(0),
                    offset: 64,
                    offen: true,
                    idxen: false,
                    glc: false,
                },
            )
            .unwrap(),
        );
        roundtrip(
            Instruction::new(
                Opcode::BufferStoreDwordx2,
                Fields::Mubuf {
                    vdata: 8,
                    vaddr: 0,
                    srsrc: 8,
                    soffset: Operand::Sgpr(20),
                    offset: 0,
                    offen: false,
                    idxen: true,
                    glc: true,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn mtbuf_roundtrip() {
        roundtrip(
            Instruction::new(
                Opcode::TbufferLoadFormatX,
                Fields::Mtbuf {
                    vdata: 3,
                    vaddr: 2,
                    srsrc: 4,
                    soffset: Operand::IntConst(0),
                    offset: 16,
                    offen: true,
                    idxen: false,
                    dfmt: 4,
                    nfmt: 4,
                },
            )
            .unwrap(),
        );
    }

    #[test]
    fn buffer_srsrc_alignment_enforced() {
        let r = Instruction::new(
            Opcode::BufferLoadDword,
            Fields::Mubuf {
                vdata: 0,
                vaddr: 0,
                srsrc: 6,
                soffset: Operand::IntConst(0),
                offset: 0,
                offen: false,
                idxen: false,
                glc: false,
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn fields_format_mismatch_rejected() {
        let r = Instruction::new(
            Opcode::SAddU32,
            Fields::Sop1 {
                sdst: Operand::Sgpr(0),
                ssrc0: Operand::Sgpr(1),
            },
        );
        assert_eq!(
            r,
            Err(IsaError::FieldsMismatch {
                opcode: Opcode::SAddU32,
                expected: Format::Sop2
            })
        );
    }

    #[test]
    fn scalar_dst_must_be_writable() {
        let r = Instruction::new(
            Opcode::SMovB32,
            Fields::Sop1 {
                sdst: Operand::Scc,
                ssrc0: Operand::Sgpr(0),
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn decode_all_walks_stream() {
        let a = Instruction::new(
            Opcode::SMovB32,
            Fields::Sop1 {
                sdst: Operand::Sgpr(0),
                ssrc0: Operand::Literal(42),
            },
        )
        .unwrap();
        let b = Instruction::new(Opcode::SEndpgm, Fields::Sopp { simm16: 0 }).unwrap();
        let mut words = a.encode().unwrap();
        words.extend(b.encode().unwrap());
        let decoded = Instruction::decode_all(&words).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].1, a);
        assert_eq!(decoded[1].0, 2);
        assert_eq!(decoded[1].1, b);
    }

    #[test]
    fn truncated_stream_detected() {
        let inst = Instruction::new(
            Opcode::VMadF32,
            Fields::Vop3a {
                vdst: 0,
                src0: Operand::Vgpr(0),
                src1: Operand::Vgpr(1),
                src2: Some(Operand::Vgpr(2)),
                abs: 0,
                neg: 0,
                clamp: false,
                omod: 0,
            },
        )
        .unwrap();
        let words = inst.encode().unwrap();
        assert_eq!(
            Instruction::decode(&words[..1]),
            Err(IsaError::TruncatedStream)
        );
        assert_eq!(Instruction::decode(&[]), Err(IsaError::TruncatedStream));
    }
}
