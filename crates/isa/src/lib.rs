//! # scratch-isa
//!
//! Model of the AMD *Southern Islands* (SI) instruction set as implemented by
//! the MIAOW2.0 soft-GPGPU from the SCRATCH paper (MICRO-50, 2017).
//!
//! The crate provides:
//!
//! * [`Opcode`] — the supported instruction set (a superset of the 156
//!   instructions validated on the FPGA in the paper), each opcode tagged
//!   with its encoding [`Format`], executing [`FuncUnit`], computational
//!   [`Category`] (the Fig. 4 taxonomy) and [`DataType`];
//! * [`Operand`] — scalar/vector registers, special registers and inline
//!   constants with their SI source-field encodings;
//! * [`Instruction`] — a decoded instruction with per-format fields, plus
//!   bit-exact [`Instruction::encode`] / [`Instruction::decode`] against the
//!   SI machine-code layouts.
//!
//! # Examples
//!
//! ```
//! use scratch_isa::{Instruction, Opcode, Operand, Fields};
//!
//! # fn main() -> Result<(), scratch_isa::IsaError> {
//! let inst = Instruction::new(
//!     Opcode::SAddU32,
//!     Fields::Sop2 {
//!         sdst: Operand::Sgpr(0),
//!         ssrc0: Operand::Sgpr(1),
//!         ssrc1: Operand::IntConst(7),
//!     },
//! )?;
//! let words = inst.encode()?;
//! let (back, len) = Instruction::decode(&words)?;
//! assert_eq!(len, words.len());
//! assert_eq!(back, inst);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod formats;
mod instruction;
mod meta;
mod opcode;
mod operand;

pub use error::IsaError;
pub use formats::Format;
pub use instruction::{Fields, Instruction, SmrdOffset};
pub use meta::{Category, DataType, FuncUnit};
pub use opcode::Opcode;
pub use operand::Operand;

/// Number of work-items in a wavefront (fixed by the SI architecture).
pub const WAVEFRONT_SIZE: usize = 64;

/// Number of architected scalar general-purpose registers per wavefront.
pub const SGPR_COUNT: usize = 104;

/// Number of architected vector general-purpose registers per work-item.
pub const VGPR_COUNT: usize = 256;

/// Maximum number of wavefronts concurrently resident in one compute unit
/// (the MIAOW fetch controller supports 40).
pub const MAX_WAVEFRONTS: usize = 40;
