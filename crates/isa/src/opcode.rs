//! The supported instruction set: a superset of the 156 Southern Islands
//! instructions validated on FPGA by the SCRATCH paper.
//!
//! Native opcode numbers follow the *Southern Islands Series Instruction Set
//! Architecture Reference Guide* (AMD, Dec. 2012) where the instruction is
//! defined there.

use serde::{Deserialize, Serialize};

use crate::{Category, DataType, Format, FuncUnit, IsaError};

macro_rules! opcodes {
    ($(
        $variant:ident = $mn:literal, $fmt:ident, $native:literal, $unit:ident, $cat:ident, $dt:ident;
    )*) => {
        /// An instruction opcode supported by the MIAOW2.0 compute unit.
        #[allow(missing_docs)]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        pub enum Opcode {
            $($variant,)*
        }

        impl Opcode {
            /// Every supported opcode.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant,)*];

            /// Assembly mnemonic (lower case, as in CodeXL disassembly).
            #[must_use]
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$variant => $mn,)*
                }
            }

            /// Natural machine-code format family.
            #[must_use]
            pub fn format(self) -> Format {
                match self {
                    $(Opcode::$variant => Format::$fmt,)*
                }
            }

            /// Native opcode number within the format family.
            #[must_use]
            pub fn native(self) -> u16 {
                match self {
                    $(Opcode::$variant => $native,)*
                }
            }

            /// Functional unit that executes this opcode.
            #[must_use]
            pub fn unit(self) -> FuncUnit {
                match self {
                    $(Opcode::$variant => FuncUnit::$unit,)*
                }
            }

            /// Computational category (Fig. 4 taxonomy).
            #[must_use]
            pub fn category(self) -> Category {
                match self {
                    $(Opcode::$variant => Category::$cat,)*
                }
            }

            /// Numeric domain.
            #[must_use]
            pub fn data_type(self) -> DataType {
                match self {
                    $(Opcode::$variant => DataType::$dt,)*
                }
            }

            /// Look an opcode up by `(format, native number)`.
            ///
            /// # Errors
            ///
            /// Returns [`IsaError::UnknownOpcode`] when the number is not
            /// implemented in that format.
            pub fn from_native(format: Format, native: u16) -> Result<Opcode, IsaError> {
                match (format, native) {
                    $((Format::$fmt, $native) => Ok(Opcode::$variant),)*
                    _ => Err(IsaError::UnknownOpcode { format, native }),
                }
            }

            /// Look an opcode up by its assembly mnemonic (case-insensitive).
            #[must_use]
            pub fn from_mnemonic(mnemonic: &str) -> Option<Opcode> {
                let lower = mnemonic.to_ascii_lowercase();
                match lower.as_str() {
                    $($mn => Some(Opcode::$variant),)*
                    _ => None,
                }
            }
        }
    };
}

opcodes! {
    // ===================== SOP2: scalar, two sources =====================
    SAddU32        = "s_add_u32",        Sop2, 0,  Salu, Add,     Int;
    SSubU32        = "s_sub_u32",        Sop2, 1,  Salu, Add,     Int;
    SAddI32        = "s_add_i32",        Sop2, 2,  Salu, Add,     Int;
    SSubI32        = "s_sub_i32",        Sop2, 3,  Salu, Add,     Int;
    SAddcU32       = "s_addc_u32",       Sop2, 4,  Salu, Add,     Int;
    SSubbU32       = "s_subb_u32",       Sop2, 5,  Salu, Add,     Int;
    SMinI32        = "s_min_i32",        Sop2, 6,  Salu, Add,     Int;
    SMinU32        = "s_min_u32",        Sop2, 7,  Salu, Add,     Int;
    SMaxI32        = "s_max_i32",        Sop2, 8,  Salu, Add,     Int;
    SMaxU32        = "s_max_u32",        Sop2, 9,  Salu, Add,     Int;
    SCselectB32    = "s_cselect_b32",    Sop2, 10, Salu, Mov,     Int;
    SAndB32        = "s_and_b32",        Sop2, 14, Salu, Logic,   Int;
    SAndB64        = "s_and_b64",        Sop2, 15, Salu, Logic,   Int;
    SOrB32         = "s_or_b32",         Sop2, 16, Salu, Logic,   Int;
    SOrB64         = "s_or_b64",         Sop2, 17, Salu, Logic,   Int;
    SXorB32        = "s_xor_b32",        Sop2, 18, Salu, Logic,   Int;
    SXorB64        = "s_xor_b64",        Sop2, 19, Salu, Logic,   Int;
    SAndn2B64      = "s_andn2_b64",      Sop2, 21, Salu, Logic,   Int;
    SOrn2B64       = "s_orn2_b64",       Sop2, 23, Salu, Logic,   Int;
    SNandB64       = "s_nand_b64",       Sop2, 25, Salu, Logic,   Int;
    SNorB64        = "s_nor_b64",        Sop2, 27, Salu, Logic,   Int;
    SXnorB64       = "s_xnor_b64",       Sop2, 29, Salu, Logic,   Int;
    SLshlB32       = "s_lshl_b32",       Sop2, 30, Salu, Shift,   Int;
    SLshrB32       = "s_lshr_b32",       Sop2, 32, Salu, Shift,   Int;
    SAshrI32       = "s_ashr_i32",       Sop2, 34, Salu, Shift,   Int;
    SBfmB32        = "s_bfm_b32",        Sop2, 36, Salu, Logic,   Int;
    SMulI32        = "s_mul_i32",        Sop2, 38, Salu, Mul,     Int;
    SBfeU32        = "s_bfe_u32",        Sop2, 39, Salu, Logic,   Int;
    SBfeI32        = "s_bfe_i32",        Sop2, 40, Salu, Logic,   Int;

    // ===================== SOPK: scalar, 16-bit immediate ================
    SMovkI32       = "s_movk_i32",       Sopk, 0,  Salu, Mov,     Int;
    SCmpkEqI32     = "s_cmpk_eq_i32",    Sopk, 3,  Salu, Add,     Int;
    SCmpkLgI32     = "s_cmpk_lg_i32",    Sopk, 4,  Salu, Add,     Int;
    SCmpkGtI32     = "s_cmpk_gt_i32",    Sopk, 5,  Salu, Add,     Int;
    SCmpkGeI32     = "s_cmpk_ge_i32",    Sopk, 6,  Salu, Add,     Int;
    SCmpkLtI32     = "s_cmpk_lt_i32",    Sopk, 7,  Salu, Add,     Int;
    SCmpkLeI32     = "s_cmpk_le_i32",    Sopk, 8,  Salu, Add,     Int;
    SAddkI32       = "s_addk_i32",       Sopk, 15, Salu, Add,     Int;
    SMulkI32       = "s_mulk_i32",       Sopk, 16, Salu, Mul,     Int;

    // ===================== SOP1: scalar, one source ======================
    SMovB32        = "s_mov_b32",        Sop1, 3,  Salu, Mov,     Int;
    SMovB64        = "s_mov_b64",        Sop1, 4,  Salu, Mov,     Int;
    SCmovB32       = "s_cmov_b32",       Sop1, 5,  Salu, Mov,     Int;
    SNotB32        = "s_not_b32",        Sop1, 7,  Salu, Logic,   Int;
    SNotB64        = "s_not_b64",        Sop1, 8,  Salu, Logic,   Int;
    SWqmB64        = "s_wqm_b64",        Sop1, 10, Salu, Logic,   Int;
    SBrevB32       = "s_brev_b32",       Sop1, 11, Salu, Bitwise, Int;
    SBcnt0I32B32   = "s_bcnt0_i32_b32",  Sop1, 13, Salu, Bitwise, Int;
    SBcnt1I32B32   = "s_bcnt1_i32_b32",  Sop1, 15, Salu, Bitwise, Int;
    SFf0I32B32     = "s_ff0_i32_b32",    Sop1, 17, Salu, Bitwise, Int;
    SFf1I32B32     = "s_ff1_i32_b32",    Sop1, 19, Salu, Bitwise, Int;
    SFlbitI32B32   = "s_flbit_i32_b32",  Sop1, 21, Salu, Bitwise, Int;
    SSextI32I8     = "s_sext_i32_i8",    Sop1, 25, Salu, Convert, Int;
    SSextI32I16    = "s_sext_i32_i16",   Sop1, 26, Salu, Convert, Int;
    SBitset0B32    = "s_bitset0_b32",    Sop1, 27, Salu, Logic,   Int;
    SBitset1B32    = "s_bitset1_b32",    Sop1, 29, Salu, Logic,   Int;
    SAndSaveexecB64   = "s_and_saveexec_b64",   Sop1, 36, Salu, Control, Int;
    SOrSaveexecB64    = "s_or_saveexec_b64",    Sop1, 37, Salu, Control, Int;
    SXorSaveexecB64   = "s_xor_saveexec_b64",   Sop1, 38, Salu, Control, Int;
    SAndn2SaveexecB64 = "s_andn2_saveexec_b64", Sop1, 39, Salu, Control, Int;

    // ===================== SOPC: scalar compare ==========================
    SCmpEqI32      = "s_cmp_eq_i32",     Sopc, 0,  Salu, Add,     Int;
    SCmpLgI32      = "s_cmp_lg_i32",     Sopc, 1,  Salu, Add,     Int;
    SCmpGtI32      = "s_cmp_gt_i32",     Sopc, 2,  Salu, Add,     Int;
    SCmpGeI32      = "s_cmp_ge_i32",     Sopc, 3,  Salu, Add,     Int;
    SCmpLtI32      = "s_cmp_lt_i32",     Sopc, 4,  Salu, Add,     Int;
    SCmpLeI32      = "s_cmp_le_i32",     Sopc, 5,  Salu, Add,     Int;
    SCmpEqU32      = "s_cmp_eq_u32",     Sopc, 6,  Salu, Add,     Int;
    SCmpLgU32      = "s_cmp_lg_u32",     Sopc, 7,  Salu, Add,     Int;
    SCmpGtU32      = "s_cmp_gt_u32",     Sopc, 8,  Salu, Add,     Int;
    SCmpGeU32      = "s_cmp_ge_u32",     Sopc, 9,  Salu, Add,     Int;
    SCmpLtU32      = "s_cmp_lt_u32",     Sopc, 10, Salu, Add,     Int;
    SCmpLeU32      = "s_cmp_le_u32",     Sopc, 11, Salu, Add,     Int;

    // ===================== SOPP: program control =========================
    SNop           = "s_nop",            Sopp, 0,  Branch, Control, Int;
    SEndpgm        = "s_endpgm",         Sopp, 1,  Branch, Control, Int;
    SBranch        = "s_branch",         Sopp, 2,  Branch, Control, Int;
    SCbranchScc0   = "s_cbranch_scc0",   Sopp, 4,  Branch, Control, Int;
    SCbranchScc1   = "s_cbranch_scc1",   Sopp, 5,  Branch, Control, Int;
    SCbranchVccz   = "s_cbranch_vccz",   Sopp, 6,  Branch, Control, Int;
    SCbranchVccnz  = "s_cbranch_vccnz",  Sopp, 7,  Branch, Control, Int;
    SCbranchExecz  = "s_cbranch_execz",  Sopp, 8,  Branch, Control, Int;
    SCbranchExecnz = "s_cbranch_execnz", Sopp, 9,  Branch, Control, Int;
    SBarrier       = "s_barrier",        Sopp, 10, Branch, Control, Int;
    SWaitcnt       = "s_waitcnt",        Sopp, 12, Branch, Control, Int;

    // ===================== SMRD: scalar memory read ======================
    SLoadDword        = "s_load_dword",          Smrd, 0,  Lsu, Mem, Int;
    SLoadDwordx2      = "s_load_dwordx2",        Smrd, 1,  Lsu, Mem, Int;
    SLoadDwordx4      = "s_load_dwordx4",        Smrd, 2,  Lsu, Mem, Int;
    SBufferLoadDword  = "s_buffer_load_dword",   Smrd, 8,  Lsu, Mem, Int;
    SBufferLoadDwordx2 = "s_buffer_load_dwordx2", Smrd, 9, Lsu, Mem, Int;
    SBufferLoadDwordx4 = "s_buffer_load_dwordx4", Smrd, 10, Lsu, Mem, Int;

    // ===================== VOP2: vector, two sources =====================
    VCndmaskB32    = "v_cndmask_b32",    Vop2, 0,  Simd, Mov,     Int;
    VAddF32        = "v_add_f32",        Vop2, 3,  Simf, Add,     Fp32;
    VSubF32        = "v_sub_f32",        Vop2, 4,  Simf, Add,     Fp32;
    VSubrevF32     = "v_subrev_f32",     Vop2, 5,  Simf, Add,     Fp32;
    VMulF32        = "v_mul_f32",        Vop2, 8,  Simf, Mul,     Fp32;
    VMulI32I24     = "v_mul_i32_i24",    Vop2, 9,  Simd, Mul,     Int;
    VMulU32U24     = "v_mul_u32_u24",    Vop2, 11, Simd, Mul,     Int;
    VMinF32        = "v_min_f32",        Vop2, 15, Simf, Add,     Fp32;
    VMaxF32        = "v_max_f32",        Vop2, 16, Simf, Add,     Fp32;
    VMinI32        = "v_min_i32",        Vop2, 17, Simd, Add,     Int;
    VMaxI32        = "v_max_i32",        Vop2, 18, Simd, Add,     Int;
    VMinU32        = "v_min_u32",        Vop2, 19, Simd, Add,     Int;
    VMaxU32        = "v_max_u32",        Vop2, 20, Simd, Add,     Int;
    VLshrB32       = "v_lshr_b32",       Vop2, 21, Simd, Shift,   Int;
    VLshrrevB32    = "v_lshrrev_b32",    Vop2, 22, Simd, Shift,   Int;
    VAshrI32       = "v_ashr_i32",       Vop2, 23, Simd, Shift,   Int;
    VAshrrevI32    = "v_ashrrev_i32",    Vop2, 24, Simd, Shift,   Int;
    VLshlB32       = "v_lshl_b32",       Vop2, 25, Simd, Shift,   Int;
    VLshlrevB32    = "v_lshlrev_b32",    Vop2, 26, Simd, Shift,   Int;
    VAndB32        = "v_and_b32",        Vop2, 27, Simd, Logic,   Int;
    VOrB32         = "v_or_b32",         Vop2, 28, Simd, Logic,   Int;
    VXorB32        = "v_xor_b32",        Vop2, 29, Simd, Logic,   Int;
    VMacF32        = "v_mac_f32",        Vop2, 31, Simf, Mul,     Fp32;
    VAddI32        = "v_add_i32",        Vop2, 37, Simd, Add,     Int;
    VSubI32        = "v_sub_i32",        Vop2, 38, Simd, Add,     Int;
    VSubrevI32     = "v_subrev_i32",     Vop2, 39, Simd, Add,     Int;
    VAddcU32       = "v_addc_u32",       Vop2, 40, Simd, Add,     Int;
    VSubbU32       = "v_subb_u32",       Vop2, 41, Simd, Add,     Int;

    // ===================== VOP1: vector, one source ======================
    VNop           = "v_nop",            Vop1, 0,  Simd, Control, Int;
    VMovB32        = "v_mov_b32",        Vop1, 1,  Simd, Mov,     Int;
    VReadfirstlaneB32 = "v_readfirstlane_b32", Vop1, 2, Simd, Mov, Int;
    VCvtF32I32     = "v_cvt_f32_i32",    Vop1, 5,  Simf, Convert, Fp32;
    VCvtF32U32     = "v_cvt_f32_u32",    Vop1, 6,  Simf, Convert, Fp32;
    VCvtU32F32     = "v_cvt_u32_f32",    Vop1, 7,  Simf, Convert, Fp32;
    VCvtI32F32     = "v_cvt_i32_f32",    Vop1, 8,  Simf, Convert, Fp32;
    VFractF32      = "v_fract_f32",      Vop1, 32, Simf, Convert, Fp32;
    VTruncF32      = "v_trunc_f32",      Vop1, 33, Simf, Convert, Fp32;
    VCeilF32       = "v_ceil_f32",       Vop1, 34, Simf, Convert, Fp32;
    VRndneF32      = "v_rndne_f32",      Vop1, 35, Simf, Convert, Fp32;
    VFloorF32      = "v_floor_f32",      Vop1, 36, Simf, Convert, Fp32;
    VExpF32        = "v_exp_f32",        Vop1, 37, Simf, Trans,   Fp32;
    VLogF32        = "v_log_f32",        Vop1, 39, Simf, Trans,   Fp32;
    VRcpF32        = "v_rcp_f32",        Vop1, 42, Simf, Div,     Fp32;
    VRsqF32        = "v_rsq_f32",        Vop1, 46, Simf, Trans,   Fp32;
    VSqrtF32       = "v_sqrt_f32",       Vop1, 51, Simf, Trans,   Fp32;
    VSinF32        = "v_sin_f32",        Vop1, 53, Simf, Trans,   Fp32;
    VCosF32        = "v_cos_f32",        Vop1, 54, Simf, Trans,   Fp32;
    VNotB32        = "v_not_b32",        Vop1, 55, Simd, Logic,   Int;
    VBfrevB32      = "v_bfrev_b32",      Vop1, 56, Simd, Bitwise, Int;
    VFfbhU32       = "v_ffbh_u32",       Vop1, 57, Simd, Bitwise, Int;
    VFfblB32       = "v_ffbl_b32",       Vop1, 58, Simd, Bitwise, Int;

    // ===================== VOPC: vector compare ==========================
    VCmpLtF32      = "v_cmp_lt_f32",     Vopc, 1,   Simf, Add, Fp32;
    VCmpEqF32      = "v_cmp_eq_f32",     Vopc, 2,   Simf, Add, Fp32;
    VCmpLeF32      = "v_cmp_le_f32",     Vopc, 3,   Simf, Add, Fp32;
    VCmpGtF32      = "v_cmp_gt_f32",     Vopc, 4,   Simf, Add, Fp32;
    VCmpLgF32      = "v_cmp_lg_f32",     Vopc, 5,   Simf, Add, Fp32;
    VCmpGeF32      = "v_cmp_ge_f32",     Vopc, 6,   Simf, Add, Fp32;
    VCmpNeqF32     = "v_cmp_neq_f32",    Vopc, 13,  Simf, Add, Fp32;
    VCmpLtI32      = "v_cmp_lt_i32",     Vopc, 129, Simd, Add, Int;
    VCmpEqI32      = "v_cmp_eq_i32",     Vopc, 130, Simd, Add, Int;
    VCmpLeI32      = "v_cmp_le_i32",     Vopc, 131, Simd, Add, Int;
    VCmpGtI32      = "v_cmp_gt_i32",     Vopc, 132, Simd, Add, Int;
    VCmpNeI32      = "v_cmp_ne_i32",     Vopc, 133, Simd, Add, Int;
    VCmpGeI32      = "v_cmp_ge_i32",     Vopc, 134, Simd, Add, Int;
    VCmpLtU32      = "v_cmp_lt_u32",     Vopc, 193, Simd, Add, Int;
    VCmpEqU32      = "v_cmp_eq_u32",     Vopc, 194, Simd, Add, Int;
    VCmpLeU32      = "v_cmp_le_u32",     Vopc, 195, Simd, Add, Int;
    VCmpGtU32      = "v_cmp_gt_u32",     Vopc, 196, Simd, Add, Int;
    VCmpNeU32      = "v_cmp_ne_u32",     Vopc, 197, Simd, Add, Int;
    VCmpGeU32      = "v_cmp_ge_u32",     Vopc, 198, Simd, Add, Int;

    // ============ VOP3 (native three-source / 64-bit only) ===============
    VMadF32        = "v_mad_f32",        Vop3a, 321, Simf, Mul,   Fp32;
    VMadI32I24     = "v_mad_i32_i24",    Vop3a, 322, Simd, Mul,   Int;
    VMadU32U24     = "v_mad_u32_u24",    Vop3a, 323, Simd, Mul,   Int;
    VBfeU32        = "v_bfe_u32",        Vop3a, 328, Simd, Logic, Int;
    VBfeI32        = "v_bfe_i32",        Vop3a, 329, Simd, Logic, Int;
    VBfiB32        = "v_bfi_b32",        Vop3a, 330, Simd, Logic, Int;
    VFmaF32        = "v_fma_f32",        Vop3a, 331, Simf, Mul,   Fp32;
    VAlignbitB32   = "v_alignbit_b32",   Vop3a, 334, Simd, Shift, Int;
    VMin3F32       = "v_min3_f32",       Vop3a, 337, Simf, Add,   Fp32;
    VMin3I32       = "v_min3_i32",       Vop3a, 338, Simd, Add,   Int;
    VMin3U32       = "v_min3_u32",       Vop3a, 339, Simd, Add,   Int;
    VMax3F32       = "v_max3_f32",       Vop3a, 340, Simf, Add,   Fp32;
    VMax3I32       = "v_max3_i32",       Vop3a, 341, Simd, Add,   Int;
    VMax3U32       = "v_max3_u32",       Vop3a, 342, Simd, Add,   Int;
    VMed3F32       = "v_med3_f32",       Vop3a, 343, Simf, Add,   Fp32;
    VMed3I32       = "v_med3_i32",       Vop3a, 344, Simd, Add,   Int;
    VMed3U32       = "v_med3_u32",       Vop3a, 345, Simd, Add,   Int;
    VMulLoU32      = "v_mul_lo_u32",     Vop3a, 357, Simd, Mul,   Int;
    VMulHiU32      = "v_mul_hi_u32",     Vop3a, 358, Simd, Mul,   Int;
    VMulLoI32      = "v_mul_lo_i32",     Vop3a, 359, Simd, Mul,   Int;
    VMulHiI32      = "v_mul_hi_i32",     Vop3a, 360, Simd, Mul,   Int;

    // ===================== DS: local data share ==========================
    DsAddU32       = "ds_add_u32",       Ds, 0,  Lsu, Mem, Int;
    DsSubU32       = "ds_sub_u32",       Ds, 1,  Lsu, Mem, Int;
    DsMinI32       = "ds_min_i32",       Ds, 5,  Lsu, Mem, Int;
    DsMaxI32       = "ds_max_i32",       Ds, 6,  Lsu, Mem, Int;
    DsMinU32       = "ds_min_u32",       Ds, 7,  Lsu, Mem, Int;
    DsMaxU32       = "ds_max_u32",       Ds, 8,  Lsu, Mem, Int;
    DsAndB32       = "ds_and_b32",       Ds, 9,  Lsu, Mem, Int;
    DsOrB32        = "ds_or_b32",        Ds, 10, Lsu, Mem, Int;
    DsXorB32       = "ds_xor_b32",       Ds, 11, Lsu, Mem, Int;
    DsWriteB32     = "ds_write_b32",     Ds, 13, Lsu, Mem, Int;
    DsWrite2B32    = "ds_write2_b32",    Ds, 14, Lsu, Mem, Int;
    DsReadB32      = "ds_read_b32",      Ds, 54, Lsu, Mem, Int;
    DsRead2B32     = "ds_read2_b32",     Ds, 55, Lsu, Mem, Int;

    // ===================== MUBUF: untyped buffer access ==================
    BufferLoadUbyte    = "buffer_load_ubyte",    Mubuf, 8,  Lsu, Mem, Int;
    BufferLoadSbyte    = "buffer_load_sbyte",    Mubuf, 9,  Lsu, Mem, Int;
    BufferLoadDword    = "buffer_load_dword",    Mubuf, 12, Lsu, Mem, Int;
    BufferLoadDwordx2  = "buffer_load_dwordx2",  Mubuf, 13, Lsu, Mem, Int;
    BufferLoadDwordx4  = "buffer_load_dwordx4",  Mubuf, 14, Lsu, Mem, Int;
    BufferStoreByte    = "buffer_store_byte",    Mubuf, 24, Lsu, Mem, Int;
    BufferStoreDword   = "buffer_store_dword",   Mubuf, 28, Lsu, Mem, Int;
    BufferStoreDwordx2 = "buffer_store_dwordx2", Mubuf, 29, Lsu, Mem, Int;
    BufferStoreDwordx4 = "buffer_store_dwordx4", Mubuf, 30, Lsu, Mem, Int;

    // ===================== MTBUF: typed buffer access ====================
    TbufferLoadFormatX    = "tbuffer_load_format_x",    Mtbuf, 0, Lsu, Mem, Int;
    TbufferLoadFormatXy   = "tbuffer_load_format_xy",   Mtbuf, 1, Lsu, Mem, Int;
    TbufferLoadFormatXyz  = "tbuffer_load_format_xyz",  Mtbuf, 2, Lsu, Mem, Int;
    TbufferLoadFormatXyzw = "tbuffer_load_format_xyzw", Mtbuf, 3, Lsu, Mem, Int;
    TbufferStoreFormatX    = "tbuffer_store_format_x",    Mtbuf, 4, Lsu, Mem, Int;
    TbufferStoreFormatXy   = "tbuffer_store_format_xy",   Mtbuf, 5, Lsu, Mem, Int;
    TbufferStoreFormatXyz  = "tbuffer_store_format_xyz",  Mtbuf, 6, Lsu, Mem, Int;
    TbufferStoreFormatXyzw = "tbuffer_store_format_xyzw", Mtbuf, 7, Lsu, Mem, Int;
}

impl Opcode {
    /// `true` if the natural format is a vector (VALU) format.
    #[must_use]
    pub fn is_vector_alu(self) -> bool {
        matches!(
            self.format(),
            Format::Vop1 | Format::Vop2 | Format::Vopc | Format::Vop3a | Format::Vop3b
        )
    }

    /// `true` for memory instructions (SMRD, DS, MUBUF, MTBUF).
    #[must_use]
    pub fn is_memory(self) -> bool {
        self.unit() == FuncUnit::Lsu
    }

    /// `true` for instructions that access the LDS (local data share).
    #[must_use]
    pub fn is_lds(self) -> bool {
        self.format() == Format::Ds
    }

    /// `true` for vector-memory instructions (counted by `vmcnt`).
    #[must_use]
    pub fn is_vector_memory(self) -> bool {
        matches!(self.format(), Format::Mubuf | Format::Mtbuf)
    }

    /// `true` for instructions counted by `lgkmcnt` (LDS + scalar memory).
    #[must_use]
    pub fn is_lgkm(self) -> bool {
        matches!(self.format(), Format::Ds | Format::Smrd)
    }

    /// `true` for memory writes.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(
            self,
            Opcode::BufferStoreByte
                | Opcode::BufferStoreDword
                | Opcode::BufferStoreDwordx2
                | Opcode::BufferStoreDwordx4
                | Opcode::TbufferStoreFormatX
                | Opcode::TbufferStoreFormatXy
                | Opcode::TbufferStoreFormatXyz
                | Opcode::TbufferStoreFormatXyzw
                | Opcode::DsWriteB32
                | Opcode::DsWrite2B32
        )
    }

    /// `true` for VOPC / VOP3b compares (write a 64-bit lane mask).
    #[must_use]
    pub fn is_vector_compare(self) -> bool {
        self.format() == Format::Vopc
    }

    /// `true` for `s_branch` and the conditional branches — the SOPP
    /// opcodes whose `simm16` is a signed instruction-word displacement
    /// rather than a plain immediate.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Opcode::SBranch
                | Opcode::SCbranchScc0
                | Opcode::SCbranchScc1
                | Opcode::SCbranchVccz
                | Opcode::SCbranchVccnz
                | Opcode::SCbranchExecz
                | Opcode::SCbranchExecnz
        )
    }

    /// Width, in 32-bit words, of the *scalar destination* register group
    /// (1 for most, 2 for `B64` results and `dwordx2`, 4 for `dwordx4`).
    #[must_use]
    pub fn dst_width(self) -> u8 {
        use Opcode::*;
        match self {
            SAndB64 | SOrB64 | SXorB64 | SAndn2B64 | SOrn2B64 | SNandB64 | SNorB64 | SXnorB64
            | SMovB64 | SNotB64 | SWqmB64 | SAndSaveexecB64 | SOrSaveexecB64 | SXorSaveexecB64
            | SAndn2SaveexecB64 | SLoadDwordx2 | SBufferLoadDwordx2 | BufferLoadDwordx2
            | BufferStoreDwordx2 | TbufferLoadFormatXy | TbufferStoreFormatXy => 2,
            TbufferLoadFormatXyz | TbufferStoreFormatXyz => 3,
            SLoadDwordx4
            | SBufferLoadDwordx4
            | BufferLoadDwordx4
            | BufferStoreDwordx4
            | TbufferLoadFormatXyzw
            | TbufferStoreFormatXyzw => 4,
            _ => 1,
        }
    }

    /// Width, in 32-bit words, of the source operands (2 for `B64` sources).
    #[must_use]
    pub fn src_width(self) -> u8 {
        use Opcode::*;
        match self {
            SAndB64 | SOrB64 | SXorB64 | SAndn2B64 | SOrn2B64 | SNandB64 | SNorB64 | SXnorB64
            | SMovB64 | SNotB64 | SWqmB64 | SAndSaveexecB64 | SOrSaveexecB64 | SXorSaveexecB64
            | SAndn2SaveexecB64 => 2,
            _ => 1,
        }
    }

    /// Number of explicit source operands in the natural encoding.
    #[must_use]
    pub fn src_count(self) -> u8 {
        match self.format() {
            Format::Sop2 | Format::Sopc | Format::Vop2 | Format::Vopc => 2,
            Format::Sop1 | Format::Vop1 => 1,
            Format::Sopk | Format::Sopp => 0,
            Format::Smrd | Format::Ds | Format::Mubuf | Format::Mtbuf => 0,
            Format::Vop3a | Format::Vop3b => match self {
                Opcode::VMulLoU32 | Opcode::VMulHiU32 | Opcode::VMulLoI32 | Opcode::VMulHiI32 => 2,
                _ => 3,
            },
        }
    }

    /// The VOP3 (64-bit encoding) opcode number for this instruction:
    /// promoted numbers for VOPC (+0), VOP2 (+256) and VOP1 (+384) opcodes,
    /// the native number for VOP3-only opcodes, `None` for non-vector ones.
    #[must_use]
    pub fn vop3_native(self) -> Option<u16> {
        match self.format() {
            Format::Vopc => Some(self.native()),
            Format::Vop2 => Some(self.native() + 256),
            Format::Vop1 => Some(self.native() + 384),
            Format::Vop3a | Format::Vop3b => Some(self.native()),
            _ => None,
        }
    }

    /// Inverse of [`Opcode::vop3_native`]: find the opcode encoded by a VOP3
    /// word with the given 9-bit opcode number.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnknownOpcode`] if no supported opcode maps there.
    pub fn from_vop3_native(native: u16) -> Result<Opcode, IsaError> {
        match native {
            0..=255 => Opcode::from_native(Format::Vopc, native),
            256..=319 => Opcode::from_native(Format::Vop2, native - 256),
            384..=511 => Opcode::from_native(Format::Vop1, native - 384),
            _ => Opcode::from_native(Format::Vop3a, native),
        }
        .map_err(|_| IsaError::UnknownOpcode {
            format: Format::Vop3a,
            native,
        })
    }

    /// `true` if this opcode implicitly reads VCC (carry-in / select mask in
    /// the 32-bit encoding).
    #[must_use]
    pub fn reads_vcc_implicitly(self) -> bool {
        matches!(
            self,
            Opcode::VCndmaskB32 | Opcode::VAddcU32 | Opcode::VSubbU32
        )
    }

    /// `true` if this opcode implicitly writes VCC in its 32-bit encoding
    /// (carry-out producing adds and all VOPC compares).
    #[must_use]
    pub fn writes_vcc_implicitly(self) -> bool {
        self.is_vector_compare()
            || matches!(
                self,
                Opcode::VAddI32
                    | Opcode::VSubI32
                    | Opcode::VSubrevI32
                    | Opcode::VAddcU32
                    | Opcode::VSubbU32
            )
    }

    /// `true` if this opcode writes the scalar condition code.
    #[must_use]
    pub fn writes_scc(self) -> bool {
        use Opcode::*;
        matches!(self.format(), Format::Sopc)
            || matches!(
                self,
                SAddU32
                    | SSubU32
                    | SAddI32
                    | SSubI32
                    | SAddcU32
                    | SSubbU32
                    | SMinI32
                    | SMinU32
                    | SMaxI32
                    | SMaxU32
                    | SAndB32
                    | SAndB64
                    | SOrB32
                    | SOrB64
                    | SXorB32
                    | SXorB64
                    | SAndn2B64
                    | SOrn2B64
                    | SNandB64
                    | SNorB64
                    | SXnorB64
                    | SLshlB32
                    | SLshrB32
                    | SAshrI32
                    | SNotB32
                    | SNotB64
                    | SWqmB64
                    | SBcnt0I32B32
                    | SBcnt1I32B32
                    | SAndSaveexecB64
                    | SOrSaveexecB64
                    | SXorSaveexecB64
                    | SAndn2SaveexecB64
                    | SCmpkEqI32
                    | SCmpkLgI32
                    | SCmpkGtI32
                    | SCmpkGeI32
                    | SCmpkLtI32
                    | SCmpkLeI32
                    | SAddkI32
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn at_least_the_papers_156_instructions() {
        assert!(
            Opcode::ALL.len() >= 156,
            "only {} opcodes implemented",
            Opcode::ALL.len()
        );
    }

    #[test]
    fn mnemonics_unique() {
        let set: HashSet<_> = Opcode::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(set.len(), Opcode::ALL.len());
    }

    #[test]
    fn native_numbers_unique_per_format() {
        let set: HashSet<_> = Opcode::ALL
            .iter()
            .map(|o| (o.format(), o.native()))
            .collect();
        assert_eq!(set.len(), Opcode::ALL.len());
    }

    #[test]
    fn from_native_roundtrip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_native(op.format(), op.native()), Ok(op));
        }
    }

    #[test]
    fn from_mnemonic_roundtrip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
            assert_eq!(
                Opcode::from_mnemonic(&op.mnemonic().to_ascii_uppercase()),
                Some(op)
            );
        }
        assert_eq!(Opcode::from_mnemonic("v_bogus_f32"), None);
    }

    #[test]
    fn vop3_promotion_roundtrip() {
        for &op in Opcode::ALL {
            if let Some(n) = op.vop3_native() {
                assert_eq!(Opcode::from_vop3_native(n), Ok(op), "{op:?}");
            }
        }
    }

    #[test]
    fn vop3_numbers_unique() {
        let nums: Vec<_> = Opcode::ALL.iter().filter_map(|o| o.vop3_native()).collect();
        let set: HashSet<_> = nums.iter().collect();
        assert_eq!(set.len(), nums.len());
    }

    #[test]
    fn fp_opcodes_execute_on_simf() {
        for &op in Opcode::ALL {
            if op.is_vector_alu() && op.data_type() == DataType::Fp32 {
                assert_eq!(op.unit(), FuncUnit::Simf, "{op:?}");
            }
        }
    }

    #[test]
    fn simf_opcodes_are_fp() {
        for &op in Opcode::ALL {
            if op.unit() == FuncUnit::Simf {
                assert_eq!(op.data_type(), DataType::Fp32, "{op:?}");
            }
        }
    }

    #[test]
    fn memory_opcodes_on_lsu() {
        for &op in Opcode::ALL {
            assert_eq!(
                op.category() == Category::Mem,
                op.unit() == FuncUnit::Lsu,
                "{op:?}"
            );
        }
    }

    #[test]
    fn sopp_is_branch_unit() {
        for &op in Opcode::ALL {
            if op.format() == Format::Sopp {
                assert_eq!(op.unit(), FuncUnit::Branch);
            }
        }
    }

    #[test]
    fn stores_are_memory() {
        for &op in Opcode::ALL {
            if op.is_store() {
                assert!(op.is_memory());
            }
        }
    }

    #[test]
    fn b64_ops_have_wide_sources() {
        assert_eq!(Opcode::SAndB64.src_width(), 2);
        assert_eq!(Opcode::SAndB64.dst_width(), 2);
        assert_eq!(Opcode::SAndB32.src_width(), 1);
        assert_eq!(Opcode::SLoadDwordx4.dst_width(), 4);
    }
}
