//! Instruction operands and their SI source-field encodings.

use serde::{Deserialize, Serialize};

use crate::IsaError;

/// One instruction operand.
///
/// The SI ISA addresses all scalar sources through a shared 9-bit field
/// (8-bit in scalar formats) whose value space covers SGPRs, special
/// registers, inline constants, a literal-follows marker and — in vector
/// formats — the VGPRs at offset 256. [`Operand::encode_src`] /
/// [`Operand::decode_src`] implement that value space.
///
/// 64-bit operands (e.g. the sources of `S_AND_B64`) are encoded through the
/// *low* register of an aligned pair; the width is a property of the opcode,
/// not of the operand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Scalar general-purpose register `s0..s103`.
    Sgpr(u8),
    /// Vector general-purpose register `v0..v255`.
    Vgpr(u8),
    /// Vector condition code, low half (`vcc_lo`; pairs as the full `vcc`).
    VccLo,
    /// Vector condition code, high half.
    VccHi,
    /// Memory-descriptor register `m0`.
    M0,
    /// Execute mask, low half (`exec_lo`; pairs as the full `exec`).
    ExecLo,
    /// Execute mask, high half.
    ExecHi,
    /// Scalar condition code (readable as a source).
    Scc,
    /// `vccz` — reads 1 when VCC is all-zero.
    Vccz,
    /// `execz` — reads 1 when EXEC is all-zero.
    Execz,
    /// Inline integer constant in `-16..=64`.
    IntConst(i8),
    /// Inline float constant: one of ±0.5, ±1.0, ±2.0, ±4.0.
    FloatConst(f32),
    /// 32-bit literal constant carried in a trailing instruction word.
    Literal(u32),
}

/// Source-field value space constants.
const ENC_VCC_LO: u16 = 106;
const ENC_VCC_HI: u16 = 107;
const ENC_M0: u16 = 124;
const ENC_EXEC_LO: u16 = 126;
const ENC_EXEC_HI: u16 = 127;
const ENC_ZERO: u16 = 128;
const ENC_VCCZ: u16 = 251;
const ENC_EXECZ: u16 = 252;
const ENC_SCC: u16 = 253;
const ENC_LITERAL: u16 = 255;
const ENC_VGPR_BASE: u16 = 256;

impl Operand {
    /// The inline float constants representable without a literal.
    pub const INLINE_FLOATS: [f32; 8] = [0.5, -0.5, 1.0, -1.0, 2.0, -2.0, 4.0, -4.0];

    /// Encode to the shared 9-bit source-field value space.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RegisterOutOfRange`] for SGPR indices ≥ 104 and
    /// [`IsaError::InvalidOperandEncoding`] for inline constants outside the
    /// representable sets.
    pub fn encode_src(self) -> Result<u16, IsaError> {
        Ok(match self {
            Operand::Sgpr(n) => {
                if usize::from(n) >= crate::SGPR_COUNT {
                    return Err(IsaError::RegisterOutOfRange {
                        what: "sgpr",
                        index: n.into(),
                    });
                }
                n.into()
            }
            Operand::Vgpr(n) => ENC_VGPR_BASE + u16::from(n),
            Operand::VccLo => ENC_VCC_LO,
            Operand::VccHi => ENC_VCC_HI,
            Operand::M0 => ENC_M0,
            Operand::ExecLo => ENC_EXEC_LO,
            Operand::ExecHi => ENC_EXEC_HI,
            Operand::Scc => ENC_SCC,
            Operand::Vccz => ENC_VCCZ,
            Operand::Execz => ENC_EXECZ,
            Operand::IntConst(v) => match v {
                0 => ENC_ZERO,
                1..=64 => 128 + v as u16,
                -16..=-1 => (192 + (-v) as i32) as u16,
                _ => return Err(IsaError::InvalidOperandEncoding { raw: v as u16 }),
            },
            Operand::FloatConst(v) => {
                let idx = Self::INLINE_FLOATS
                    .iter()
                    .position(|&c| c.to_bits() == v.to_bits())
                    .ok_or(IsaError::InvalidOperandEncoding {
                        raw: v.to_bits() as u16,
                    })?;
                240 + idx as u16
            }
            Operand::Literal(_) => ENC_LITERAL,
        })
    }

    /// Decode from the shared source-field value space.
    ///
    /// A [`Operand::Literal`] placeholder (value 0) is produced for the
    /// literal marker 255; the caller patches in the trailing word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidOperandEncoding`] for reserved or
    /// unsupported values.
    pub fn decode_src(raw: u16) -> Result<Operand, IsaError> {
        Ok(match raw {
            0..=103 => Operand::Sgpr(raw as u8),
            ENC_VCC_LO => Operand::VccLo,
            ENC_VCC_HI => Operand::VccHi,
            ENC_M0 => Operand::M0,
            ENC_EXEC_LO => Operand::ExecLo,
            ENC_EXEC_HI => Operand::ExecHi,
            ENC_ZERO => Operand::IntConst(0),
            129..=192 => Operand::IntConst((raw - 128) as i8),
            193..=208 => Operand::IntConst(-((raw - 192) as i8)),
            240..=247 => Operand::FloatConst(Self::INLINE_FLOATS[(raw - 240) as usize]),
            ENC_VCCZ => Operand::Vccz,
            ENC_EXECZ => Operand::Execz,
            ENC_SCC => Operand::Scc,
            ENC_LITERAL => Operand::Literal(0),
            256..=511 => Operand::Vgpr((raw - 256) as u8),
            _ => return Err(IsaError::InvalidOperandEncoding { raw }),
        })
    }

    /// `true` if this operand names a register that a scalar instruction can
    /// write (SGPR, VCC halves, EXEC halves, M0).
    #[must_use]
    pub fn is_scalar_writable(self) -> bool {
        matches!(
            self,
            Operand::Sgpr(_)
                | Operand::VccLo
                | Operand::VccHi
                | Operand::ExecLo
                | Operand::ExecHi
                | Operand::M0
        )
    }

    /// `true` if this operand is legal in an 8-bit scalar source field
    /// (anything but a VGPR).
    #[must_use]
    pub fn is_scalar_src(self) -> bool {
        !matches!(self, Operand::Vgpr(_))
    }

    /// `true` if the operand is an inline or literal constant.
    #[must_use]
    pub fn is_constant(self) -> bool {
        matches!(
            self,
            Operand::IntConst(_) | Operand::FloatConst(_) | Operand::Literal(_)
        )
    }

    /// `true` if the operand requires a trailing literal word.
    #[must_use]
    pub fn is_literal(self) -> bool {
        matches!(self, Operand::Literal(_))
    }

    /// The SGPR index if this operand is an SGPR.
    #[must_use]
    pub fn sgpr_index(self) -> Option<u8> {
        match self {
            Operand::Sgpr(n) => Some(n),
            _ => None,
        }
    }

    /// The VGPR index if this operand is a VGPR.
    #[must_use]
    pub fn vgpr_index(self) -> Option<u8> {
        match self {
            Operand::Vgpr(n) => Some(n),
            _ => None,
        }
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Sgpr(n) => write!(f, "s{n}"),
            Operand::Vgpr(n) => write!(f, "v{n}"),
            Operand::VccLo => f.write_str("vcc_lo"),
            Operand::VccHi => f.write_str("vcc_hi"),
            Operand::M0 => f.write_str("m0"),
            Operand::ExecLo => f.write_str("exec_lo"),
            Operand::ExecHi => f.write_str("exec_hi"),
            Operand::Scc => f.write_str("scc"),
            Operand::Vccz => f.write_str("vccz"),
            Operand::Execz => f.write_str("execz"),
            Operand::IntConst(v) => write!(f, "{v}"),
            Operand::FloatConst(v) => write!(f, "{v:.1}"),
            Operand::Literal(v) => write!(f, "{v:#x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgpr_roundtrip() {
        for n in 0..104u16 {
            let op = Operand::decode_src(n).unwrap();
            assert_eq!(op, Operand::Sgpr(n as u8));
            assert_eq!(op.encode_src().unwrap(), n);
        }
    }

    #[test]
    fn sgpr_out_of_range_rejected() {
        assert!(Operand::Sgpr(104).encode_src().is_err());
        assert!(Operand::decode_src(104).is_err());
    }

    #[test]
    fn vgpr_roundtrip() {
        for n in [0u16, 1, 100, 255] {
            let raw = 256 + n;
            assert_eq!(Operand::decode_src(raw).unwrap(), Operand::Vgpr(n as u8));
            assert_eq!(Operand::Vgpr(n as u8).encode_src().unwrap(), raw);
        }
    }

    #[test]
    fn int_constants_roundtrip() {
        for v in -16i8..=64 {
            let raw = Operand::IntConst(v).encode_src().unwrap();
            assert_eq!(Operand::decode_src(raw).unwrap(), Operand::IntConst(v));
        }
        assert!(Operand::IntConst(65).encode_src().is_err());
        assert!(Operand::IntConst(-17).encode_src().is_err());
    }

    #[test]
    fn float_constants_roundtrip() {
        for &v in &Operand::INLINE_FLOATS {
            let raw = Operand::FloatConst(v).encode_src().unwrap();
            assert_eq!(Operand::decode_src(raw).unwrap(), Operand::FloatConst(v));
        }
        assert!(Operand::FloatConst(3.0).encode_src().is_err());
    }

    #[test]
    fn special_registers_roundtrip() {
        let specials = [
            Operand::VccLo,
            Operand::VccHi,
            Operand::M0,
            Operand::ExecLo,
            Operand::ExecHi,
            Operand::Scc,
            Operand::Vccz,
            Operand::Execz,
        ];
        for op in specials {
            let raw = op.encode_src().unwrap();
            assert_eq!(Operand::decode_src(raw).unwrap(), op);
        }
    }

    #[test]
    fn literal_marker() {
        assert_eq!(Operand::Literal(0xdead_beef).encode_src().unwrap(), 255);
        assert_eq!(Operand::decode_src(255).unwrap(), Operand::Literal(0));
    }

    #[test]
    fn reserved_values_rejected() {
        for raw in [209u16, 230, 239, 248, 250, 254] {
            assert!(Operand::decode_src(raw).is_err(), "raw={raw}");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Operand::Sgpr(5).to_string(), "s5");
        assert_eq!(Operand::Vgpr(17).to_string(), "v17");
        assert_eq!(Operand::IntConst(-3).to_string(), "-3");
        assert_eq!(Operand::FloatConst(2.0).to_string(), "2.0");
    }
}
