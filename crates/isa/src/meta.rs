//! Opcode metadata used by the trimming tool and the characterisation study.

use serde::{Deserialize, Serialize};

/// The compute-unit functional unit that executes an instruction.
///
/// These are the trimming granules of the SCRATCH tool: the decode entries
/// and execution sub-units of `Salu`, `Simd`, `Simf` and `Lsu` can all be
/// pruned; the `Branch` (branch & message) path is part of the generic
/// fetch/issue logic the paper leaves untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuncUnit {
    /// Scalar ALU.
    Salu,
    /// Integer vector ALU (SIMD).
    Simd,
    /// Floating-point vector ALU (SIMF).
    Simf,
    /// Load/store unit (scalar memory, LDS and buffer accesses).
    Lsu,
    /// Branch & message unit (program control: branches, barriers, waitcnt).
    Branch,
}

impl FuncUnit {
    /// All functional units, in the order used by reports.
    pub const ALL: [FuncUnit; 5] = [
        FuncUnit::Salu,
        FuncUnit::Simd,
        FuncUnit::Simf,
        FuncUnit::Lsu,
        FuncUnit::Branch,
    ];

    /// The four trimmable units shown in Fig. 6 of the paper
    /// (SALU, iVALU, fpVALU, LSU).
    pub const TRIMMABLE: [FuncUnit; 4] = [
        FuncUnit::Salu,
        FuncUnit::Simd,
        FuncUnit::Simf,
        FuncUnit::Lsu,
    ];

    /// Short label used in reports (matches the paper's legend).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FuncUnit::Salu => "SALU",
            FuncUnit::Simd => "iVALU",
            FuncUnit::Simf => "fpVALU",
            FuncUnit::Lsu => "LSU",
            FuncUnit::Branch => "BRANCH",
        }
    }
}

impl std::fmt::Display for FuncUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Computational category of an instruction — the taxonomy of the paper's
/// Fig. 4 characterisation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Register-to-register moves.
    Mov,
    /// Logic operations including bit masks and bit compares.
    Logic,
    /// Shifts and rotates.
    Shift,
    /// Bit search and bit count.
    Bitwise,
    /// Numeric format conversion.
    Convert,
    /// Control / communication (excluding logic & arithmetic compares).
    Control,
    /// Addition, subtraction and arithmetic compare.
    Add,
    /// Multiply, with or without subsequent add.
    Mul,
    /// Divide and reciprocal.
    Div,
    /// Transcendental: sine, cosine, exponential, square root, logarithm.
    Trans,
    /// Memory operations (category "G" in Fig. 4).
    Mem,
}

impl Category {
    /// All categories in the order of the paper's Fig. 4 legend.
    pub const ALL: [Category; 11] = [
        Category::Mov,
        Category::Logic,
        Category::Shift,
        Category::Bitwise,
        Category::Convert,
        Category::Control,
        Category::Add,
        Category::Mul,
        Category::Div,
        Category::Trans,
        Category::Mem,
    ];

    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Category::Mov => "MOV",
            Category::Logic => "LOGIC",
            Category::Shift => "SHIFT",
            Category::Bitwise => "BITWISE",
            Category::Convert => "CONVERT",
            Category::Control => "CONTROL",
            Category::Add => "ADD",
            Category::Mul => "MUL",
            Category::Div => "DIV",
            Category::Trans => "TRANS",
            Category::Mem => "MEM",
        }
    }

    /// `true` for the arithmetic categories (groups B/C of Fig. 4).
    #[must_use]
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            Category::Add | Category::Mul | Category::Div | Category::Trans
        )
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The numeric domain an instruction operates in.
///
/// The synthesizable MIAOW2.0 design supports integer and single-precision
/// floating-point arithmetic; double precision exists only in the Multi2Sim
/// characterisation of Fig. 4 and is deliberately absent here, as in the
/// paper's FPGA design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataType {
    /// Integer / untyped bit operations.
    Int,
    /// Single-precision IEEE-754 floating point.
    Fp32,
}

impl DataType {
    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Fp32 => "SP FP",
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmable_excludes_branch() {
        assert!(!FuncUnit::TRIMMABLE.contains(&FuncUnit::Branch));
        assert_eq!(FuncUnit::TRIMMABLE.len(), 4);
    }

    #[test]
    fn category_labels_unique() {
        let mut labels: Vec<_> = Category::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Category::ALL.len());
    }

    #[test]
    fn arithmetic_partition() {
        let arith: Vec<_> = Category::ALL.iter().filter(|c| c.is_arithmetic()).collect();
        assert_eq!(arith.len(), 4);
    }
}
