//! SI machine-code format (encoding family) identification.

use serde::{Deserialize, Serialize};

/// The microcode format families of the Southern Islands ISA that MIAOW2.0
/// implements.
///
/// The discriminating bit patterns live in the *most significant* bits of the
/// first instruction word; [`Format::of_word`] performs the match in the
/// priority order mandated by the ISA manual (longer prefixes first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Format {
    /// Scalar, two sources: `10 op7 sdst7 ssrc1_8 ssrc0_8`.
    Sop2,
    /// Scalar, 16-bit immediate: `1011 op5 sdst7 simm16`.
    Sopk,
    /// Scalar, one source: `101111101 sdst7 op8 ssrc0_8`.
    Sop1,
    /// Scalar compare: `101111110 op7 ssrc1_8 ssrc0_8`.
    Sopc,
    /// Scalar program control: `101111111 op7 simm16`.
    Sopp,
    /// Scalar memory read: `11000 op5 sdst7 sbase6 imm1 offset8`.
    Smrd,
    /// Vector, two sources: `0 op6 vdst8 vsrc1_8 src0_9`.
    Vop2,
    /// Vector, one source: `0111111 vdst8 op8 src0_9`.
    Vop1,
    /// Vector compare: `0111110 op8 vsrc1_8 src0_9`.
    Vopc,
    /// Vector, three sources, 64-bit encoding (with abs/clamp modifiers).
    Vop3a,
    /// Vector, three sources, 64-bit encoding with a scalar destination
    /// (carry-out / compare-result variants).
    Vop3b,
    /// Local data share (LDS) access, 64-bit encoding.
    Ds,
    /// Untyped buffer memory access, 64-bit encoding.
    Mubuf,
    /// Typed buffer memory access, 64-bit encoding.
    Mtbuf,
}

impl Format {
    /// All formats, in decode-priority order.
    pub const ALL: [Format; 14] = [
        Format::Sop1,
        Format::Sopc,
        Format::Sopp,
        Format::Sopk,
        Format::Sop2,
        Format::Smrd,
        Format::Vop1,
        Format::Vopc,
        Format::Vop3a,
        Format::Vop3b,
        Format::Ds,
        Format::Mubuf,
        Format::Mtbuf,
        Format::Vop2,
    ];

    /// `true` for formats whose instructions occupy two 32-bit words
    /// (before any trailing literal).
    #[must_use]
    pub fn is_64bit(self) -> bool {
        matches!(
            self,
            Format::Vop3a | Format::Vop3b | Format::Ds | Format::Mubuf | Format::Mtbuf
        )
    }

    /// `true` for the scalar formats executed by the SALU / branch unit.
    #[must_use]
    pub fn is_scalar(self) -> bool {
        matches!(
            self,
            Format::Sop2 | Format::Sopk | Format::Sop1 | Format::Sopc | Format::Sopp | Format::Smrd
        )
    }

    /// Identify the format family of a leading instruction word.
    ///
    /// Returns `None` when the word matches no family (an ill-formed binary).
    ///
    /// Note: `Vop3a`/`Vop3b` share an encoding prefix; the split is decided
    /// later from the opcode number, so this function reports [`Format::Vop3a`]
    /// for both.
    #[must_use]
    pub fn of_word(word: u32) -> Option<Format> {
        // Scalar family: 0b10 in bits [31:30].
        if word >> 30 == 0b10 {
            return Some(match word >> 23 {
                0b101111101 => Format::Sop1,
                0b101111110 => Format::Sopc,
                0b101111111 => Format::Sopp,
                _ if word >> 28 == 0b1011 => Format::Sopk,
                _ => Format::Sop2,
            });
        }
        // SMRD: 0b11000 in [31:27].
        if word >> 27 == 0b11000 {
            return Some(Format::Smrd);
        }
        // 64-bit vector/memory families: distinguish on [31:26].
        match word >> 26 {
            0b110100 => return Some(Format::Vop3a),
            0b110110 => return Some(Format::Ds),
            0b111000 => return Some(Format::Mubuf),
            0b111010 => return Some(Format::Mtbuf),
            _ => {}
        }
        // VALU 32-bit family: leading 0 bit.
        if word >> 31 == 0 {
            return Some(match word >> 25 {
                0b0111111 => Format::Vop1,
                0b0111110 => Format::Vopc,
                _ => Format::Vop2,
            });
        }
        None
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Format::Sop2 => "SOP2",
            Format::Sopk => "SOPK",
            Format::Sop1 => "SOP1",
            Format::Sopc => "SOPC",
            Format::Sopp => "SOPP",
            Format::Smrd => "SMRD",
            Format::Vop2 => "VOP2",
            Format::Vop1 => "VOP1",
            Format::Vopc => "VOPC",
            Format::Vop3a => "VOP3a",
            Format::Vop3b => "VOP3b",
            Format::Ds => "DS",
            Format::Mubuf => "MUBUF",
            Format::Mtbuf => "MTBUF",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_prefixes_identified() {
        assert_eq!(Format::of_word(0b10 << 30), Some(Format::Sop2));
        assert_eq!(Format::of_word(0b1011 << 28), Some(Format::Sopk));
        assert_eq!(Format::of_word(0b101111101 << 23), Some(Format::Sop1));
        assert_eq!(Format::of_word(0b101111110 << 23), Some(Format::Sopc));
        assert_eq!(Format::of_word(0b101111111 << 23), Some(Format::Sopp));
        assert_eq!(Format::of_word(0b11000 << 27), Some(Format::Smrd));
    }

    #[test]
    fn vector_prefixes_identified() {
        assert_eq!(Format::of_word(0), Some(Format::Vop2));
        assert_eq!(Format::of_word(0b0111111 << 25), Some(Format::Vop1));
        assert_eq!(Format::of_word(0b0111110 << 25), Some(Format::Vopc));
        assert_eq!(Format::of_word(0b110100 << 26), Some(Format::Vop3a));
        assert_eq!(Format::of_word(0b110110 << 26), Some(Format::Ds));
        assert_eq!(Format::of_word(0b111000 << 26), Some(Format::Mubuf));
        assert_eq!(Format::of_word(0b111010 << 26), Some(Format::Mtbuf));
    }

    #[test]
    fn unknown_prefix_rejected() {
        // 0b111111 << 26 matches no family.
        assert_eq!(Format::of_word(0b111111 << 26), None);
        assert_eq!(Format::of_word(0b110101 << 26), None);
    }

    #[test]
    fn scalar_flag_consistent() {
        for f in Format::ALL {
            assert_eq!(
                f.is_scalar(),
                matches!(
                    f,
                    Format::Sop2
                        | Format::Sopk
                        | Format::Sop1
                        | Format::Sopc
                        | Format::Sopp
                        | Format::Smrd
                )
            );
        }
    }

    #[test]
    fn display_nonempty() {
        for f in Format::ALL {
            assert!(!f.to_string().is_empty());
        }
    }
}
