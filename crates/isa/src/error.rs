use std::fmt;

use crate::{Format, Opcode};

/// Errors produced while constructing, encoding or decoding instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// The instruction word stream ended before a full instruction was read.
    TruncatedStream,
    /// The leading word does not match any known format encoding.
    UnknownFormat {
        /// The offending machine word.
        word: u32,
    },
    /// The format was recognised but the opcode number is not implemented.
    UnknownOpcode {
        /// The instruction format that was decoded.
        format: Format,
        /// The native opcode number found in the word.
        native: u16,
    },
    /// The operand field value does not decode to a valid operand.
    InvalidOperandEncoding {
        /// The raw 9-bit source-field value.
        raw: u16,
    },
    /// An operand is not legal in the position it was used in.
    InvalidOperand {
        /// Opcode being built.
        opcode: Opcode,
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// The field payload does not match the opcode's format.
    FieldsMismatch {
        /// Opcode being built.
        opcode: Opcode,
        /// Format required by the opcode.
        expected: Format,
    },
    /// More than one literal constant was requested (SI allows at most one).
    MultipleLiterals,
    /// A register index is out of architectural range.
    RegisterOutOfRange {
        /// Description of the register class.
        what: &'static str,
        /// The offending index.
        index: u16,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::TruncatedStream => write!(f, "instruction stream ended mid-instruction"),
            IsaError::UnknownFormat { word } => {
                write!(f, "word {word:#010x} does not match any SI format encoding")
            }
            IsaError::UnknownOpcode { format, native } => {
                write!(
                    f,
                    "format {format:?} opcode number {native} is not implemented"
                )
            }
            IsaError::InvalidOperandEncoding { raw } => {
                write!(f, "source-field value {raw} does not decode to an operand")
            }
            IsaError::InvalidOperand { opcode, reason } => {
                write!(f, "invalid operand for {}: {reason}", opcode.mnemonic())
            }
            IsaError::FieldsMismatch { opcode, expected } => write!(
                f,
                "fields for {} must use the {expected:?} layout",
                opcode.mnemonic()
            ),
            IsaError::MultipleLiterals => {
                write!(
                    f,
                    "an SI instruction may carry at most one literal constant"
                )
            }
            IsaError::RegisterOutOfRange { what, index } => {
                write!(f, "{what} index {index} out of architectural range")
            }
        }
    }
}

impl std::error::Error for IsaError {}
