//! Property tests: every constructible instruction must encode/decode
//! bit-exactly, for every opcode in the supported set.

use proptest::prelude::*;
use scratch_isa::{Fields, Format, Instruction, Opcode, Operand, SmrdOffset};

/// Strategy for scalar-source operands (8-bit field space, no VGPRs).
fn scalar_src() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u8..104).prop_map(Operand::Sgpr),
        Just(Operand::VccLo),
        Just(Operand::VccHi),
        Just(Operand::M0),
        Just(Operand::ExecLo),
        Just(Operand::ExecHi),
        Just(Operand::Scc),
        (-16i8..=64).prop_map(Operand::IntConst),
        (0usize..8).prop_map(|i| Operand::FloatConst(Operand::INLINE_FLOATS[i])),
        any::<u32>().prop_map(Operand::Literal),
    ]
}

/// Strategy for non-literal scalar sources (VOP3 and soffset positions).
fn scalar_src_no_literal() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u8..104).prop_map(Operand::Sgpr),
        Just(Operand::VccLo),
        Just(Operand::ExecLo),
        (-16i8..=64).prop_map(Operand::IntConst),
        (0usize..8).prop_map(|i| Operand::FloatConst(Operand::INLINE_FLOATS[i])),
    ]
}

/// Strategy for the full 9-bit vector source space.
fn vector_src() -> impl Strategy<Value = Operand> {
    prop_oneof![scalar_src(), any::<u8>().prop_map(Operand::Vgpr)]
}

/// Strategy for vector sources without literals (VOP3 positions).
fn vector_src_no_literal() -> impl Strategy<Value = Operand> {
    prop_oneof![scalar_src_no_literal(), any::<u8>().prop_map(Operand::Vgpr)]
}

fn scalar_dst() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u8..104).prop_map(Operand::Sgpr),
        Just(Operand::VccLo),
        Just(Operand::ExecLo),
        Just(Operand::M0),
    ]
}

fn opcode_of(format: Format) -> impl Strategy<Value = Opcode> {
    let list: Vec<Opcode> = Opcode::ALL
        .iter()
        .copied()
        .filter(move |o| o.format() == format)
        .collect();
    assert!(!list.is_empty(), "no opcodes in format {format:?}");
    prop::sample::select(list)
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let sop2 = (
        opcode_of(Format::Sop2),
        scalar_dst(),
        scalar_src(),
        scalar_src(),
    )
        .prop_filter_map("valid", |(op, sdst, s0, s1)| {
            // Keep at most one literal.
            if s0.is_literal() && s1.is_literal() {
                return None;
            }
            Instruction::new(
                op,
                Fields::Sop2 {
                    sdst,
                    ssrc0: s0,
                    ssrc1: s1,
                },
            )
            .ok()
        });
    let sopk = (opcode_of(Format::Sopk), scalar_dst(), any::<i16>())
        .prop_filter_map("valid", |(op, sdst, simm16)| {
            Instruction::new(op, Fields::Sopk { sdst, simm16 }).ok()
        });
    let sop1 = (opcode_of(Format::Sop1), scalar_dst(), scalar_src())
        .prop_filter_map("valid", |(op, sdst, ssrc0)| {
            Instruction::new(op, Fields::Sop1 { sdst, ssrc0 }).ok()
        });
    let sopc = (opcode_of(Format::Sopc), scalar_src(), scalar_src()).prop_filter_map(
        "valid",
        |(op, s0, s1)| {
            if s0.is_literal() && s1.is_literal() {
                return None;
            }
            Instruction::new(
                op,
                Fields::Sopc {
                    ssrc0: s0,
                    ssrc1: s1,
                },
            )
            .ok()
        },
    );
    let sopp = (opcode_of(Format::Sopp), any::<u16>()).prop_filter_map("valid", |(op, simm16)| {
        Instruction::new(op, Fields::Sopp { simm16 }).ok()
    });
    let smrd = (
        opcode_of(Format::Smrd),
        scalar_dst(),
        (0u8..52).prop_map(|n| n * 2),
        prop_oneof![
            any::<u8>().prop_map(SmrdOffset::Imm),
            (0u8..104).prop_map(SmrdOffset::Sgpr)
        ],
    )
        .prop_filter_map("valid", |(op, sdst, sbase, offset)| {
            Instruction::new(
                op,
                Fields::Smrd {
                    sdst,
                    sbase,
                    offset,
                },
            )
            .ok()
        });
    let vop2 = (
        opcode_of(Format::Vop2),
        any::<u8>(),
        vector_src(),
        any::<u8>(),
    )
        .prop_filter_map("valid", |(op, vdst, src0, vsrc1)| {
            Instruction::new(op, Fields::Vop2 { vdst, src0, vsrc1 }).ok()
        });
    let vop1 = (opcode_of(Format::Vop1), any::<u8>(), vector_src())
        .prop_filter_map("valid", |(op, vdst, src0)| {
            Instruction::new(op, Fields::Vop1 { vdst, src0 }).ok()
        });
    let vopc = (opcode_of(Format::Vopc), vector_src(), any::<u8>())
        .prop_filter_map("valid", |(op, src0, vsrc1)| {
            Instruction::new(op, Fields::Vopc { src0, vsrc1 }).ok()
        });
    let vop3a = (
        opcode_of(Format::Vop3a),
        any::<u8>(),
        vector_src_no_literal(),
        vector_src_no_literal(),
        vector_src_no_literal(),
        0u8..8,
        0u8..8,
        any::<bool>(),
        0u8..4,
    )
        .prop_filter_map(
            "valid",
            |(op, vdst, src0, src1, src2, abs, neg, clamp, omod)| {
                let src2 = (op.src_count() == 3).then_some(src2);
                Instruction::new(
                    op,
                    Fields::Vop3a {
                        vdst,
                        src0,
                        src1,
                        src2,
                        abs,
                        neg,
                        clamp,
                        omod,
                    },
                )
                .ok()
            },
        );
    let ds = (
        opcode_of(Format::Ds),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
    )
        .prop_filter_map("valid", |(op, vdst, addr, data0, data1, o0, o1)| {
            Instruction::new(
                op,
                Fields::Ds {
                    vdst,
                    addr,
                    data0,
                    data1,
                    offset0: o0,
                    offset1: o1,
                    gds: false,
                },
            )
            .ok()
        });
    let mubuf = (
        opcode_of(Format::Mubuf),
        any::<u8>(),
        any::<u8>(),
        (0u8..26).prop_map(|n| n * 4),
        scalar_src_no_literal(),
        0u16..0x1000,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_filter_map(
            "valid",
            |(op, vdata, vaddr, srsrc, soffset, offset, offen, idxen, glc)| {
                Instruction::new(
                    op,
                    Fields::Mubuf {
                        vdata,
                        vaddr,
                        srsrc,
                        soffset,
                        offset,
                        offen,
                        idxen,
                        glc,
                    },
                )
                .ok()
            },
        );
    let mtbuf = (
        opcode_of(Format::Mtbuf),
        any::<u8>(),
        any::<u8>(),
        (0u8..26).prop_map(|n| n * 4),
        scalar_src_no_literal(),
        0u16..0x1000,
        any::<bool>(),
        0u8..16,
        0u8..8,
    )
        .prop_filter_map(
            "valid",
            |(op, vdata, vaddr, srsrc, soffset, offset, offen, dfmt, nfmt)| {
                Instruction::new(
                    op,
                    Fields::Mtbuf {
                        vdata,
                        vaddr,
                        srsrc,
                        soffset,
                        offset,
                        offen,
                        idxen: false,
                        dfmt,
                        nfmt,
                    },
                )
                .ok()
            },
        );

    prop_oneof![sop2, sopk, sop1, sopc, sopp, smrd, vop2, vop1, vopc, vop3a, ds, mubuf, mtbuf]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_roundtrip(inst in arb_instruction()) {
        let words = inst.encode().expect("encode must succeed for valid instruction");
        prop_assert_eq!(words.len(), inst.size_words());
        let (back, used) = Instruction::decode(&words).expect("decode must succeed");
        prop_assert_eq!(used, words.len());
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn decode_never_panics(words in prop::collection::vec(any::<u32>(), 1..4)) {
        let _ = Instruction::decode(&words);
    }

    #[test]
    fn stream_decode_consistent(insts in prop::collection::vec(arb_instruction(), 1..20)) {
        let mut words = Vec::new();
        let mut offsets = Vec::new();
        for inst in &insts {
            offsets.push(words.len());
            words.extend(inst.encode().unwrap());
        }
        let decoded = Instruction::decode_all(&words).unwrap();
        prop_assert_eq!(decoded.len(), insts.len());
        for ((off, inst), (eoff, expected)) in
            decoded.into_iter().zip(offsets.into_iter().zip(insts))
        {
            prop_assert_eq!(off, eoff);
            prop_assert_eq!(inst, expected);
        }
    }
}
