//! The stall taxonomy: why a wavefront-cycle did not issue.

use serde::{Deserialize, Serialize};

/// Classification of every non-issuing cycle.
///
/// The first six reasons are *wavefront-resident*: together with issue
/// cycles they partition a wavefront's residency exactly (the attribution
/// invariant). The last two are structural counters measured outside any
/// single wavefront's timeline:
///
/// * [`StallReason::WavepoolEmpty`] counts CU cycles during which a wave
///   slot sat empty after its wavefront retired but before the batch
///   finished — the fetch stage had nothing to pick from that slot;
/// * [`StallReason::MemoryQueue`] counts cycles requests spent queued
///   behind the shared MicroBlaze memory server before service began.
///   These cycles overlap the issuing wave's `s_waitcnt` stall (which is
///   where the wavefront itself pays for them), so they are reported as a
///   system-level component rather than double-counted per wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StallReason {
    /// A source register has a pending write (RAW hazard on the
    /// per-wavefront scoreboard).
    ScoreboardRaw,
    /// No functional-unit instance of the required class was free, or the
    /// issue arbiter had already started an instruction of this class
    /// this cycle.
    StructuralFu,
    /// Blocked at `s_waitcnt` draining the vector-memory counter (vmcnt).
    WaitcntVm,
    /// Blocked at `s_waitcnt` draining the LDS/scalar counter (lgkmcnt).
    WaitcntLgkm,
    /// Stopped at `s_barrier` waiting for the rest of the workgroup.
    Barrier,
    /// Fetch/decode of the next instruction (including branch refetch)
    /// has not completed.
    FetchStarve,
    /// A CU wave slot was empty (wavefront retired before the batch
    /// ended). CU-level; not part of any wavefront's residency.
    WavepoolEmpty,
    /// Memory requests queued behind the shared memory server.
    /// System-level; overlaps `WaitcntVm`/`WaitcntLgkm` per wave.
    MemoryQueue,
}

impl StallReason {
    /// The reasons that partition a wavefront's residency (with issue
    /// cycles). [`StallReason::WavepoolEmpty`] and
    /// [`StallReason::MemoryQueue`] are deliberately excluded.
    pub const WAVE_RESIDENT: [StallReason; 6] = [
        StallReason::ScoreboardRaw,
        StallReason::StructuralFu,
        StallReason::WaitcntVm,
        StallReason::WaitcntLgkm,
        StallReason::Barrier,
        StallReason::FetchStarve,
    ];

    /// Every reason, in display order.
    pub const ALL: [StallReason; 8] = [
        StallReason::ScoreboardRaw,
        StallReason::StructuralFu,
        StallReason::WaitcntVm,
        StallReason::WaitcntLgkm,
        StallReason::Barrier,
        StallReason::FetchStarve,
        StallReason::WavepoolEmpty,
        StallReason::MemoryQueue,
    ];

    /// Short display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallReason::ScoreboardRaw => "scoreboard-raw",
            StallReason::StructuralFu => "structural-fu",
            StallReason::WaitcntVm => "waitcnt-vm",
            StallReason::WaitcntLgkm => "waitcnt-lgkm",
            StallReason::Barrier => "barrier",
            StallReason::FetchStarve => "fetch-starve",
            StallReason::WavepoolEmpty => "wavepool-empty",
            StallReason::MemoryQueue => "memory-queue",
        }
    }

    /// `true` for reasons that belong to a wavefront's own timeline.
    #[must_use]
    pub fn is_wave_resident(self) -> bool {
        !matches!(self, StallReason::WavepoolEmpty | StallReason::MemoryQueue)
    }
}

impl std::fmt::Display for StallReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_set_matches_predicate() {
        for r in StallReason::ALL {
            assert_eq!(
                StallReason::WAVE_RESIDENT.contains(&r),
                r.is_wave_resident(),
                "{r}"
            );
        }
    }

    #[test]
    fn serializes_as_tag_string() {
        let v = serde::Serialize::to_sval(&StallReason::WaitcntVm);
        assert_eq!(v, serde::Value::Str("WaitcntVm".into()));
        let back: StallReason = serde::Deserialize::from_sval(&v).unwrap();
        assert_eq!(back, StallReason::WaitcntVm);
    }
}
