//! The in-memory trace sink: per-stage occupancy, per-FU utilisation,
//! stall breakdown and per-wavefront timelines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use scratch_isa::FuncUnit;

use crate::StallReason;

/// One wavefront's attributed timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaveTimeline {
    /// Compute-unit index.
    pub cu: u32,
    /// CU-local wavefront id within its batch.
    pub wave: u32,
    /// First resident cycle.
    pub start: u64,
    /// Retirement cycle.
    pub end: u64,
    /// Cycles in which the wavefront issued an instruction.
    pub issued: u64,
    /// Stalled cycles by reason.
    pub stalls: BTreeMap<StallReason, u64>,
}

impl WaveTimeline {
    /// Cycles between becoming resident and retiring.
    #[must_use]
    pub fn resident_cycles(&self) -> u64 {
        self.end - self.start
    }

    /// `issued + Σ stalls`.
    #[must_use]
    pub fn attributed_cycles(&self) -> u64 {
        self.issued + self.stalls.values().sum::<u64>()
    }

    /// Verify the attribution invariant for this wavefront.
    ///
    /// # Errors
    ///
    /// Describes the discrepancy when attributed cycles do not sum to the
    /// residency.
    pub fn check(&self) -> Result<(), String> {
        let resident = self.resident_cycles();
        let attributed = self.attributed_cycles();
        if resident == attributed {
            Ok(())
        } else {
            Err(format!(
                "cu {} wave {}: resident [{}, {}) = {} cycles but attributed {} \
                 (issued {} + stalls {:?})",
                self.cu,
                self.wave,
                self.start,
                self.end,
                resident,
                attributed,
                self.issued,
                self.stalls
            ))
        }
    }
}

/// Aggregated trace of a run: the compact sink every traced run produces.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSummary {
    /// CU cycles covered (max across merged compute units).
    pub cycles: u64,
    /// Wavefront-cycles spent issuing.
    pub issued_cycles: u64,
    /// Stalled wavefront-cycles by reason, plus the structural
    /// [`StallReason::WavepoolEmpty`] / [`StallReason::MemoryQueue`]
    /// counters.
    pub stalls: BTreeMap<StallReason, u64>,
    /// Busy cycles per functional-unit class.
    pub fu_busy: BTreeMap<FuncUnit, u64>,
    /// Per-wavefront timelines.
    pub waves: Vec<WaveTimeline>,
}

impl TraceSummary {
    /// Merge another compute unit's summary into this one (cycle counts
    /// take the maximum, everything else accumulates).
    pub fn merge(&mut self, other: &TraceSummary) {
        self.cycles = self.cycles.max(other.cycles);
        self.issued_cycles += other.issued_cycles;
        for (&r, &c) in &other.stalls {
            *self.stalls.entry(r).or_insert(0) += c;
        }
        for (&u, &c) in &other.fu_busy {
            *self.fu_busy.entry(u).or_insert(0) += c;
        }
        self.waves.extend(other.waves.iter().cloned());
    }

    /// Stalled cycles attributed to `reason`.
    #[must_use]
    pub fn stall_cycles(&self, reason: StallReason) -> u64 {
        self.stalls.get(&reason).copied().unwrap_or(0)
    }

    /// Total wavefront-resident cycles (Σ over waves of `end − start`).
    #[must_use]
    pub fn resident_cycles(&self) -> u64 {
        self.waves.iter().map(WaveTimeline::resident_cycles).sum()
    }

    /// Issue-stage occupancy: fraction of wavefront-resident cycles spent
    /// issuing.
    #[must_use]
    pub fn issue_occupancy(&self) -> f64 {
        let resident = self.resident_cycles();
        if resident == 0 {
            0.0
        } else {
            self.issued_cycles as f64 / resident as f64
        }
    }

    /// Utilisation of each functional-unit class as a percentage of the
    /// CU cycles covered.
    #[must_use]
    pub fn fu_utilisation(&self) -> BTreeMap<FuncUnit, f64> {
        self.fu_busy
            .iter()
            .map(|(&u, &busy)| {
                let pct = if self.cycles == 0 {
                    0.0
                } else {
                    100.0 * busy as f64 / self.cycles as f64
                };
                (u, pct)
            })
            .collect()
    }

    /// Verify the attribution invariant for every wavefront, and that the
    /// aggregate counters equal the per-wave sums.
    ///
    /// # Errors
    ///
    /// Describes the first discrepancy found.
    pub fn check_invariant(&self) -> Result<(), String> {
        let mut issued = 0;
        let mut stalls: BTreeMap<StallReason, u64> = BTreeMap::new();
        for w in &self.waves {
            w.check()?;
            issued += w.issued;
            for (&r, &c) in &w.stalls {
                if !r.is_wave_resident() {
                    return Err(format!(
                        "cu {} wave {}: structural reason {r} in a wave timeline",
                        w.cu, w.wave
                    ));
                }
                *stalls.entry(r).or_insert(0) += c;
            }
        }
        if issued != self.issued_cycles {
            return Err(format!(
                "aggregate issued_cycles {} != per-wave sum {issued}",
                self.issued_cycles
            ));
        }
        for r in StallReason::WAVE_RESIDENT {
            let per_wave = stalls.get(&r).copied().unwrap_or(0);
            if self.stall_cycles(r) != per_wave {
                return Err(format!(
                    "aggregate {r} = {} != per-wave sum {per_wave}",
                    self.stall_cycles(r)
                ));
            }
        }
        Ok(())
    }

    /// Render the human-readable summary table printed by
    /// `scratch-tool trace` and `experiments trace`.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} CU cycles | {} wavefronts | issue occupancy {:5.1} %",
            self.cycles,
            self.waves.len(),
            100.0 * self.issue_occupancy()
        );
        let util = self.fu_utilisation();
        if !util.is_empty() {
            let parts: Vec<String> = util
                .iter()
                .map(|(u, pct)| format!("{} {pct:.1} %", u.label()))
                .collect();
            let _ = writeln!(out, "FU utilisation: {}", parts.join(" | "));
        }
        let resident = self.resident_cycles();
        let _ = writeln!(out, "stall breakdown (wavefront-cycles):");
        let _ = writeln!(
            out,
            "  {:16} {:>12} {:>7}",
            "issue",
            self.issued_cycles,
            format!(
                "{:.1} %",
                if resident == 0 {
                    0.0
                } else {
                    100.0 * self.issued_cycles as f64 / resident as f64
                }
            )
        );
        for r in StallReason::ALL {
            let c = self.stall_cycles(r);
            if c == 0 {
                continue;
            }
            let pct = if r.is_wave_resident() && resident > 0 {
                format!("{:.1} %", 100.0 * c as f64 / resident as f64)
            } else {
                "-".to_owned()
            };
            let _ = writeln!(out, "  {:16} {c:>12} {pct:>7}", r.label());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(cu: u32, id: u32, start: u64, end: u64, issued: u64, stall: u64) -> WaveTimeline {
        let mut stalls = BTreeMap::new();
        if stall > 0 {
            stalls.insert(StallReason::FetchStarve, stall);
        }
        WaveTimeline {
            cu,
            wave: id,
            start,
            end,
            issued,
            stalls,
        }
    }

    fn summary_of(waves: Vec<WaveTimeline>) -> TraceSummary {
        let issued_cycles = waves.iter().map(|w| w.issued).sum();
        let mut stalls: BTreeMap<StallReason, u64> = BTreeMap::new();
        for w in &waves {
            for (&r, &c) in &w.stalls {
                *stalls.entry(r).or_insert(0) += c;
            }
        }
        TraceSummary {
            cycles: waves.iter().map(|w| w.end).max().unwrap_or(0),
            issued_cycles,
            stalls,
            fu_busy: BTreeMap::new(),
            waves,
        }
    }

    #[test]
    fn invariant_check_accepts_exact_attribution() {
        let s = summary_of(vec![wave(0, 0, 10, 20, 4, 6), wave(0, 1, 10, 15, 5, 0)]);
        s.check_invariant().unwrap();
        assert!((s.issue_occupancy() - 9.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn invariant_check_rejects_gaps() {
        let s = summary_of(vec![wave(0, 0, 10, 20, 4, 5)]);
        let err = s.check_invariant().unwrap_err();
        assert!(err.contains("resident [10, 20) = 10"), "{err}");
    }

    #[test]
    fn merge_is_associative_on_summaries() {
        let a = summary_of(vec![wave(0, 0, 0, 10, 3, 7)]);
        let b = summary_of(vec![wave(1, 0, 0, 20, 8, 12)]);
        let c = summary_of(vec![wave(2, 0, 5, 9, 2, 2)]);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        ab_c.check_invariant().unwrap();
    }

    #[test]
    fn table_lists_nonzero_reasons() {
        let s = summary_of(vec![wave(0, 0, 0, 10, 3, 7)]);
        let t = s.render_table();
        assert!(t.contains("fetch-starve"));
        assert!(!t.contains("waitcnt-vm"));
    }

    #[test]
    fn summary_roundtrips_through_serde() {
        let s = summary_of(vec![wave(0, 0, 0, 10, 3, 7)]);
        let v = serde::Serialize::to_sval(&s);
        let back: TraceSummary = serde::Deserialize::from_sval(&v).unwrap();
        assert_eq!(back, s);
    }
}
