//! The structured event model emitted by the instrumented simulators.

use serde::{Deserialize, Serialize};

use scratch_isa::{FuncUnit, Opcode};

use crate::StallReason;

/// One simulator event.
///
/// Events are externally tagged when serialised
/// (`{"Issue": {"cu": 0, ...}}`), so JSONL streams are self-describing.
/// All times are CU cycles (50 MHz in every paper configuration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The dispatcher launched a kernel over a grid of workgroups.
    KernelDispatch {
        /// Kernel name.
        kernel: String,
        /// Workgroup counts in X, Y, Z.
        grid: [u32; 3],
        /// Work-items per workgroup.
        workgroup_size: u32,
    },
    /// A wavefront became resident on a CU at the start of a batch.
    WaveStart {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id.
        wave: u32,
        /// Workgroup handle within the batch.
        workgroup: u32,
        /// Cycle the batch started.
        now: u64,
    },
    /// Instruction fetched from the instruction memory.
    Fetch {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id.
        wave: u32,
        /// Program counter, in words.
        pc: u32,
        /// Fetch cycle.
        now: u64,
    },
    /// Instruction decoded (64-bit encodings take two cycles).
    Decode {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id.
        wave: u32,
        /// Program counter, in words.
        pc: u32,
        /// Decode start cycle.
        now: u64,
        /// Decode duration in cycles (the encoding's word count).
        cycles: u64,
    },
    /// Instruction issued to a functional unit.
    Issue {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id.
        wave: u32,
        /// Program counter, in words.
        pc: u32,
        /// The instruction.
        opcode: Opcode,
        /// Functional-unit class it issued to.
        unit: FuncUnit,
        /// Issue cycle.
        now: u64,
    },
    /// Functional-unit occupancy interval of an issued instruction.
    Execute {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id.
        wave: u32,
        /// Program counter, in words.
        pc: u32,
        /// The instruction.
        opcode: Opcode,
        /// Functional-unit class.
        unit: FuncUnit,
        /// First busy cycle.
        start: u64,
        /// First free cycle after the operation.
        end: u64,
    },
    /// Result writeback: dependent instructions may issue from here.
    Writeback {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id.
        wave: u32,
        /// Program counter, in words.
        pc: u32,
        /// Cycle the result becomes visible to the scoreboard.
        now: u64,
    },
    /// A wavefront executed `s_endpgm`.
    Retire {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id.
        wave: u32,
        /// Retirement cycle.
        now: u64,
        /// Dynamic instructions the wavefront executed.
        instructions: u64,
    },
    /// A memory request left the LSU.
    MemStart {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id.
        wave: u32,
        /// Program counter of the memory instruction.
        pc: u32,
        /// Access kind (`ScalarLoad`, `VectorLoad`, `VectorStore`, `Lds`).
        kind: String,
        /// Byte address (first lane for vector accesses).
        addr: u64,
        /// Active lanes.
        lanes: u32,
        /// Cycle the request entered the memory system.
        now: u64,
    },
    /// A memory request completed (its waitcnt event fires).
    MemComplete {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id.
        wave: u32,
        /// Access kind.
        kind: String,
        /// Byte address.
        addr: u64,
        /// Completion cycle.
        now: u64,
    },
    /// A wavefront arrived at `s_barrier`.
    BarrierArrive {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id.
        wave: u32,
        /// Workgroup handle.
        workgroup: u32,
        /// Arrival cycle.
        now: u64,
    },
    /// The last wavefront arrived; the workgroup's barrier released.
    BarrierRelease {
        /// Compute-unit index.
        cu: u32,
        /// Workgroup handle.
        workgroup: u32,
        /// Release cycle.
        now: u64,
    },
    /// One CU's share of a dispatch, as scheduled by the execution engine:
    /// the engine lane (worker track) that simulated CU `cu` over the CU's
    /// local cycle interval `[start, end)`.
    ///
    /// The lane is the engine's *deterministic* assignment
    /// (`cu % workers`), not the OS thread that happened to steal the
    /// shard, so traces are bit-identical across runs and across
    /// serial/parallel execution.
    ShardRun {
        /// Compute-unit index.
        cu: u32,
        /// Engine worker lane (0 for the serial dispatcher).
        worker: u32,
        /// First CU-local cycle of the shard.
        start: u64,
        /// First CU-local cycle after the shard.
        end: u64,
        /// Serving-layer job id the dispatch belongs to (0 when the run
        /// is not attributed to a served job).
        job: u64,
    },
    /// A scheduled fault fired inside a CU (fault-injection campaigns;
    /// see the `scratch-fault` crate).
    FaultInjected {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id that was corrupted.
        wave: u32,
        /// Fault class (`sgpr`, `vgpr`, `lds`, `mem`, `inst`, `fu`).
        class: String,
        /// Human-readable description of the upset.
        detail: String,
        /// Cycle the fault fired.
        now: u64,
        /// Serving-layer job id (0 when unattributed), correlating fault
        /// campaigns with serve spans on one timeline.
        job: u64,
    },
    /// A detector (CRC comparison, DMR vote, simulator error) flagged a
    /// faulty run.
    FaultDetected {
        /// Run label the detection belongs to.
        label: String,
        /// Which detector fired (`crc`, `dmr`, `error`).
        detector: String,
        /// Cycle (or logical time) of the detection.
        now: u64,
        /// Correlation id: the serve job (or campaign fault case) the
        /// detection belongs to; 0 when unattributed.
        job: u64,
    },
    /// A recovery action resolved a detected fault.
    FaultRecovered {
        /// Run label the recovery belongs to.
        label: String,
        /// The action taken (`retry`, `untrimmed-fallback`, `rerun`).
        action: String,
        /// Cycle (or logical time) of the recovery.
        now: u64,
        /// Correlation id: the serve job (or campaign fault case) the
        /// recovery belongs to; 0 when unattributed.
        job: u64,
    },
    /// A coalesced stall interval `[from, to)` of one wavefront.
    Stall {
        /// Compute-unit index.
        cu: u32,
        /// CU-local wavefront id.
        wave: u32,
        /// Why the wavefront could not issue.
        reason: StallReason,
        /// First stalled cycle.
        from: u64,
        /// First cycle past the interval.
        to: u64,
    },
}

impl TraceEvent {
    /// The cycle this event is anchored at (interval events anchor at
    /// their start).
    #[must_use]
    pub fn timestamp(&self) -> u64 {
        match self {
            TraceEvent::KernelDispatch { .. } => 0,
            TraceEvent::WaveStart { now, .. }
            | TraceEvent::Fetch { now, .. }
            | TraceEvent::Decode { now, .. }
            | TraceEvent::Issue { now, .. }
            | TraceEvent::Writeback { now, .. }
            | TraceEvent::Retire { now, .. }
            | TraceEvent::MemStart { now, .. }
            | TraceEvent::MemComplete { now, .. }
            | TraceEvent::BarrierArrive { now, .. }
            | TraceEvent::BarrierRelease { now, .. }
            | TraceEvent::FaultInjected { now, .. }
            | TraceEvent::FaultDetected { now, .. }
            | TraceEvent::FaultRecovered { now, .. } => *now,
            TraceEvent::Execute { start, .. } | TraceEvent::ShardRun { start, .. } => *start,
            TraceEvent::Stall { from, .. } => *from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_serde() {
        let events = vec![
            TraceEvent::Issue {
                cu: 1,
                wave: 2,
                pc: 3,
                opcode: Opcode::VAddI32,
                unit: FuncUnit::Simd,
                now: 10,
            },
            TraceEvent::Stall {
                cu: 0,
                wave: 0,
                reason: StallReason::ScoreboardRaw,
                from: 5,
                to: 9,
            },
            TraceEvent::KernelDispatch {
                kernel: "k".into(),
                grid: [4, 2, 1],
                workgroup_size: 64,
            },
        ];
        for e in &events {
            let v = serde::Serialize::to_sval(e);
            let back: TraceEvent = serde::Deserialize::from_sval(&v).unwrap();
            assert_eq!(&back, e);
        }
    }

    #[test]
    fn timestamps_anchor_intervals_at_start() {
        let e = TraceEvent::Stall {
            cu: 0,
            wave: 0,
            reason: StallReason::Barrier,
            from: 17,
            to: 30,
        };
        assert_eq!(e.timestamp(), 17);
    }
}
