//! # scratch-trace
//!
//! Cycle-attribution and event-tracing subsystem for the SCRATCH
//! simulators.
//!
//! The CU pipeline (`scratch-cu`) and the system simulator
//! (`scratch-system`) are *event-driven*: time advances either by one
//! cycle (when something issued) or jumps straight to the next event.
//! This crate turns those scheduling decisions into two artefacts:
//!
//! 1. **Stall attribution** ([`Attribution`]): every wavefront-cycle
//!    between a wave becoming resident and its retirement is classified as
//!    either an *issue* cycle or a stall with a [`StallReason`]. The
//!    engine maintains the invariant that, per wavefront,
//!    `issued + Σ stalls == retire − start` — checked by
//!    [`WaveTimeline::check`] and property-tested against randomised
//!    kernels in the CU crate.
//! 2. **Event streams** ([`TraceEvent`] via the [`Tracer`] trait):
//!    structured fetch/decode/issue/execute/writeback/retire, memory
//!    request start/complete and barrier arrive/release events, consumable
//!    by the in-memory [`EventBuffer`], the streaming [`JsonlTracer`], or
//!    the Chrome `trace_event` exporter ([`chrome_trace`]).
//!
//! Tracing is strictly opt-in and zero-cost when disabled: a CU without an
//! attached tracer performs one `Option::is_some` test per scheduling
//! decision and nothing else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod chrome;
mod event;
mod stall;
mod summary;

use std::io::Write;
use std::sync::{Arc, Mutex};

pub use attribution::{Attribution, WaveAttribution};
pub use chrome::chrome_trace;
pub use event::TraceEvent;
pub use stall::StallReason;
pub use summary::{TraceSummary, WaveTimeline};

/// A sink for structured simulator events.
///
/// Implementations must be cheap: the pipeline calls [`Tracer::record`]
/// once per emitted event while tracing is enabled. The trait is
/// deliberately minimal so sinks compose (buffer, stream, discard).
///
/// Sinks are `Send` so a traced compute unit can migrate onto an engine
/// worker thread (`scratch-engine` shards a dispatch's CUs across
/// workers); each CU's sink is only ever driven by one thread at a time.
pub trait Tracer: Send {
    /// Consume one event.
    fn record(&mut self, event: &TraceEvent);

    /// Whether this sink retains anything at all.
    ///
    /// A simulator may skip event construction entirely for a disabled
    /// sink (see [`NullTracer`]), so tracing-off costs nothing beyond a
    /// branch. Sinks that observe events must keep the default `true`.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A tracer that discards every event.
///
/// `NullTracer` reports itself as disabled ([`Tracer::is_enabled`] is
/// `false`), so attaching it is equivalent to tracing off: the compute
/// unit drops the sink and pays only its per-decision `Option` check —
/// this is what the overhead benchmark measures. The equivalence
/// property tests attach a *retaining* sink instead to prove the full
/// instrumentation path changes no simulation result.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn record(&mut self, _event: &TraceEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// A shareable in-memory event sink.
///
/// Cloning an `EventBuffer` yields a handle onto the *same* buffer, so a
/// system can hand one handle to each compute unit and keep another to
/// read the merged stream back after the run. Handles are `Send`: the
/// parallel dispatcher gives every CU a private buffer, runs the CUs on
/// worker threads, and drains the buffers in CU order afterwards so the
/// merged stream is deterministic.
#[derive(Debug, Clone, Default)]
pub struct EventBuffer(Arc<Mutex<Vec<TraceEvent>>>);

impl EventBuffer {
    /// Create an empty buffer.
    #[must_use]
    pub fn new() -> EventBuffer {
        EventBuffer::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TraceEvent>> {
        // A panicking recorder cannot leave the vector in a torn state
        // (pushes are atomic with respect to the lock), so poisoning is
        // safe to shrug off.
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Clone the buffered events out.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.lock().clone()
    }

    /// Move the buffered events out, leaving the buffer empty.
    #[must_use]
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.lock())
    }

    /// Append `events` in order (used to merge per-CU streams).
    pub fn extend(&self, events: impl IntoIterator<Item = TraceEvent>) {
        self.lock().extend(events);
    }
}

impl Tracer for EventBuffer {
    fn record(&mut self, event: &TraceEvent) {
        self.lock().push(event.clone());
    }
}

/// A streaming sink writing one JSON object per line (JSONL).
///
/// Each line is the externally-tagged serialisation of a [`TraceEvent`],
/// so multi-gigabyte traces can be processed without ever materialising
/// them in memory.
#[derive(Debug)]
pub struct JsonlTracer<W: Write> {
    out: W,
    /// First I/O error encountered, if any (recording never panics).
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlTracer<W> {
    /// Stream events to `out`.
    pub fn new(out: W) -> JsonlTracer<W> {
        JsonlTracer { out, error: None }
    }

    /// Flush and return the writer.
    ///
    /// # Errors
    ///
    /// Surfaces the first I/O error hit while recording or flushing.
    pub fn finish(mut self) -> Result<W, std::io::Error> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write + Send> Tracer for JsonlTracer<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = serde::value::to_json_compact(&serde::Serialize::to_sval(event));
        line.push('\n');
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinks_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<EventBuffer>();
        assert_send::<NullTracer>();
        assert_send::<JsonlTracer<Vec<u8>>>();
        assert_send::<Box<dyn Tracer>>();
    }

    #[test]
    fn event_buffer_drains_across_threads() {
        let buf = EventBuffer::new();
        let mut handle = buf.clone();
        std::thread::spawn(move || {
            handle.record(&TraceEvent::ShardRun {
                cu: 1,
                worker: 0,
                start: 10,
                end: 20,
                job: 0,
            });
        })
        .join()
        .unwrap();
        let events = buf.take();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], TraceEvent::ShardRun { cu: 1, .. }));
    }

    #[test]
    fn event_buffer_handles_share_storage() {
        let buf = EventBuffer::new();
        let mut handle = buf.clone();
        handle.record(&TraceEvent::BarrierRelease {
            cu: 0,
            workgroup: 1,
            now: 42,
        });
        assert_eq!(buf.len(), 1);
        let events = buf.take();
        assert!(buf.is_empty());
        assert!(matches!(
            events[0],
            TraceEvent::BarrierRelease { now: 42, .. }
        ));
    }

    #[test]
    fn jsonl_tracer_writes_one_line_per_event() {
        let mut t = JsonlTracer::new(Vec::new());
        t.record(&TraceEvent::WaveStart {
            cu: 0,
            wave: 3,
            workgroup: 0,
            now: 7,
        });
        t.record(&TraceEvent::Retire {
            cu: 0,
            wave: 3,
            now: 99,
            instructions: 12,
        });
        let bytes = t.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().next().unwrap().contains("WaveStart"));
    }
}
