//! The stall-attribution engine: turns scheduling decisions into an exact
//! per-wavefront cycle breakdown.

use std::collections::BTreeMap;

use crate::{StallReason, TraceSummary, WaveTimeline};

/// Cycle breakdown of one wavefront's residency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveAttribution {
    /// CU-local wavefront id within its batch.
    pub wave: u32,
    /// First resident cycle.
    pub start: u64,
    /// Retirement cycle (`None` while still running).
    pub end: Option<u64>,
    /// Cycles in which the wavefront issued an instruction.
    pub issued: u64,
    /// Stalled cycles by reason (wave-resident reasons only).
    pub stalls: BTreeMap<StallReason, u64>,
}

impl WaveAttribution {
    fn new(wave: u32, start: u64) -> WaveAttribution {
        WaveAttribution {
            wave,
            start,
            end: None,
            issued: 0,
            stalls: BTreeMap::new(),
        }
    }

    /// Total stalled cycles.
    #[must_use]
    pub fn stall_total(&self) -> u64 {
        self.stalls.values().sum()
    }

    /// Cycles accounted so far (`issued + Σ stalls`).
    #[must_use]
    pub fn accounted(&self) -> u64 {
        self.issued + self.stall_total()
    }
}

/// Per-CU attribution state, fed by the pipeline at every scheduling
/// decision.
///
/// The pipeline accounts contiguous intervals: after deciding what issues
/// at cycle `t0` and computing the next decision point `t1`, every live
/// wavefront receives exactly `t1 − t0` cycles — one issue cycle (when it
/// issued; issuing decisions always advance time by one) or `t1 − t0`
/// stall cycles with a single [`StallReason`]. Because intervals tile
/// `[start, end)` per wave, the invariant
/// `issued + Σ stalls == end − start` holds by construction; it is
/// re-checked from the outside by [`WaveTimeline::check`].
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    waves: Vec<WaveAttribution>,
    /// Index of the first wavefront of the current batch.
    base: usize,
    /// Wave-slot cycles left empty by early retirement (CU-level).
    pub wavepool_empty: u64,
}

impl Attribution {
    /// Fresh engine.
    #[must_use]
    pub fn new() -> Attribution {
        Attribution::default()
    }

    /// Start a batch of `wave_count` wavefronts resident from `now`.
    pub fn begin_run(&mut self, wave_count: usize, now: u64) {
        self.base = self.waves.len();
        for w in 0..wave_count {
            self.waves.push(WaveAttribution::new(w as u32, now));
        }
    }

    /// Account one issue cycle to batch-local wave `wi`.
    pub fn issue(&mut self, wi: usize) {
        self.waves[self.base + wi].issued += 1;
    }

    /// Account `cycles` stalled cycles with `reason` to wave `wi`.
    pub fn stall(&mut self, wi: usize, reason: StallReason, cycles: u64) {
        debug_assert!(reason.is_wave_resident());
        *self.waves[self.base + wi].stalls.entry(reason).or_insert(0) += cycles;
    }

    /// Mark wave `wi` retired at cycle `at`.
    pub fn retire(&mut self, wi: usize, at: u64) {
        self.waves[self.base + wi].end = Some(at);
    }

    /// `true` once [`Attribution::retire`] ran for wave `wi` this batch.
    #[must_use]
    pub fn is_retired(&self, wi: usize) -> bool {
        self.waves[self.base + wi].end.is_some()
    }

    /// Close the batch at cycle `now`: waves that retired earlier
    /// contribute their idle tail to [`Attribution::wavepool_empty`];
    /// waves still running (cycle-limit aborts) are closed at `now`.
    pub fn end_run(&mut self, now: u64) {
        for w in &mut self.waves[self.base..] {
            match w.end {
                Some(end) => self.wavepool_empty += now - end,
                None => w.end = Some(now),
            }
        }
        self.base = self.waves.len();
    }

    /// Breakdown of every wavefront seen so far.
    #[must_use]
    pub fn waves(&self) -> &[WaveAttribution] {
        &self.waves
    }

    /// Fold into a [`TraceSummary`] for compute unit `cu` whose clock
    /// stands at `cycles`. Functional-unit busy counters are supplied by
    /// the caller (the CU keeps them in its statistics).
    #[must_use]
    pub fn summarize(
        &self,
        cu: u32,
        cycles: u64,
        fu_busy: &BTreeMap<scratch_isa::FuncUnit, u64>,
    ) -> TraceSummary {
        let mut stalls: BTreeMap<StallReason, u64> = BTreeMap::new();
        let mut issued_cycles = 0;
        let mut waves = Vec::with_capacity(self.waves.len());
        for w in &self.waves {
            issued_cycles += w.issued;
            for (&r, &c) in &w.stalls {
                *stalls.entry(r).or_insert(0) += c;
            }
            waves.push(WaveTimeline {
                cu,
                wave: w.wave,
                start: w.start,
                end: w.end.unwrap_or(w.start),
                issued: w.issued,
                stalls: w.stalls.clone(),
            });
        }
        if self.wavepool_empty > 0 {
            stalls.insert(StallReason::WavepoolEmpty, self.wavepool_empty);
        }
        TraceSummary {
            cycles,
            issued_cycles,
            stalls,
            fu_busy: fu_busy.clone(),
            waves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_tile_residency() {
        let mut a = Attribution::new();
        a.begin_run(2, 100);
        // Wave 0: stalls 4, issues, stalls 2, issues+retires at 107.
        a.stall(0, StallReason::FetchStarve, 4);
        a.issue(0);
        a.stall(0, StallReason::ScoreboardRaw, 2);
        a.issue(0);
        a.retire(0, 108);
        // Wave 1: stalls the whole time, retires at 110.
        a.stall(1, StallReason::Barrier, 9);
        a.issue(1);
        a.retire(1, 110);
        a.end_run(110);

        let s = a.summarize(0, 110, &BTreeMap::new());
        s.check_invariant().unwrap();
        assert_eq!(s.issued_cycles, 3);
        assert_eq!(s.stalls[&StallReason::Barrier], 9);
        // Wave 0 retired 2 cycles before the batch end.
        assert_eq!(s.stalls[&StallReason::WavepoolEmpty], 2);
    }

    #[test]
    fn batches_accumulate() {
        let mut a = Attribution::new();
        a.begin_run(1, 0);
        a.issue(0);
        a.retire(0, 1);
        a.end_run(1);
        a.begin_run(1, 1);
        a.issue(0);
        a.retire(0, 2);
        a.end_run(2);
        assert_eq!(a.waves().len(), 2);
        assert_eq!(a.waves()[1].start, 1);
        a.summarize(0, 2, &BTreeMap::new())
            .check_invariant()
            .unwrap();
    }
}
