//! Chrome `trace_event` exporter: renders an event stream as a JSON
//! document loadable in `chrome://tracing` / Perfetto.
//!
//! Layout: one *process* per compute unit; each wavefront gets a pipeline
//! track (stall slices + issue/retire instants) and a memory track
//! (request slices), and each functional-unit class gets a track showing
//! its occupancy slices. A separate *engine* process renders one track
//! per execution-engine worker lane, with a slice per CU shard, so the
//! parallel schedule of a multi-CU dispatch is visible at a glance. One
//! CU cycle is rendered as one microsecond.

use std::collections::{BTreeSet, HashMap, VecDeque};

use serde::value::{Map, Value};

use scratch_isa::FuncUnit;

use crate::TraceEvent;

fn obj(pairs: &[(&str, Value)]) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert((*k).to_owned(), v.clone());
    }
    Value::Object(m)
}

fn s(v: &str) -> Value {
    Value::Str(v.to_owned())
}

fn n(v: u64) -> Value {
    Value::U64(v)
}

/// Pipeline track of wavefront `wave`.
fn wave_tid(wave: u32) -> u64 {
    u64::from(wave) * 2
}

/// Memory track of wavefront `wave`.
fn mem_tid(wave: u32) -> u64 {
    u64::from(wave) * 2 + 1
}

/// Track of a functional-unit class (placed far above the wave tracks).
fn fu_tid(unit: FuncUnit) -> u64 {
    1_000_000
        + match unit {
            FuncUnit::Salu => 0,
            FuncUnit::Simd => 1,
            FuncUnit::Simf => 2,
            FuncUnit::Lsu => 3,
            FuncUnit::Branch => 4,
        }
}

fn slice(name: &str, pid: u64, tid: u64, ts: u64, dur: u64, args: Value) -> Value {
    obj(&[
        ("name", s(name)),
        ("ph", s("X")),
        ("pid", n(pid)),
        ("tid", n(tid)),
        ("ts", n(ts)),
        ("dur", n(dur.max(1))),
        ("args", args),
    ])
}

fn instant(name: &str, pid: u64, tid: u64, ts: u64, args: Value) -> Value {
    obj(&[
        ("name", s(name)),
        ("ph", s("i")),
        ("s", s("t")),
        ("pid", n(pid)),
        ("tid", n(tid)),
        ("ts", n(ts)),
        ("args", args),
    ])
}

fn thread_name(pid: u64, tid: u64, name: &str) -> Value {
    obj(&[
        ("name", s("thread_name")),
        ("ph", s("M")),
        ("pid", n(pid)),
        ("tid", n(tid)),
        ("args", obj(&[("name", s(name))])),
    ])
}

fn process_name(pid: u64) -> Value {
    obj(&[
        ("name", s("process_name")),
        ("ph", s("M")),
        ("pid", n(pid)),
        ("args", obj(&[("name", s(&format!("CU {pid}")))])),
    ])
}

/// Process id of the execution-engine schedule (far above any CU pid).
const ENGINE_PID: u64 = 9_000_000;

fn engine_process_name() -> Value {
    obj(&[
        ("name", s("process_name")),
        ("ph", s("M")),
        ("pid", n(ENGINE_PID)),
        ("args", obj(&[("name", s("engine"))])),
    ])
}

/// Outstanding memory requests of one wave: `(kind label, address, start)`.
type MemFifo = VecDeque<(String, u64, u64)>;

/// Convert an event stream into a Chrome `trace_event` JSON document.
///
/// The result serialises to a `{"traceEvents": [...]}` object; render it
/// with [`serde::value::to_json_compact`] (or `Display`) and load the file
/// in `chrome://tracing`.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let mut out: Vec<Value> = Vec::with_capacity(events.len() + 16);
    let mut named: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut pids: BTreeSet<u64> = BTreeSet::new();
    // FIFO of outstanding memory requests per (cu, wave).
    let mut mem_open: HashMap<(u32, u32), MemFifo> = HashMap::new();

    fn name_cu_track(
        out: &mut Vec<Value>,
        named: &mut BTreeSet<(u64, u64)>,
        pids: &mut BTreeSet<u64>,
        pid: u64,
        tid: u64,
        name: String,
    ) {
        if named.insert((pid, tid)) {
            out.push(thread_name(pid, tid, &name));
        }
        if pids.insert(pid) {
            out.push(process_name(pid));
        }
    }

    for ev in events {
        match ev {
            TraceEvent::KernelDispatch {
                kernel,
                grid,
                workgroup_size,
            } => {
                out.push(instant(
                    &format!("dispatch {kernel}"),
                    0,
                    0,
                    ev.timestamp(),
                    obj(&[
                        (
                            "grid",
                            Value::Array(grid.iter().map(|&g| n(u64::from(g))).collect()),
                        ),
                        ("workgroup_size", n(u64::from(*workgroup_size))),
                    ]),
                ));
            }
            TraceEvent::WaveStart {
                cu,
                wave,
                workgroup,
                now,
            } => {
                let pid = u64::from(*cu);
                name_cu_track(
                    &mut out,
                    &mut named,
                    &mut pids,
                    pid,
                    wave_tid(*wave),
                    format!("wave {wave}"),
                );
                out.push(instant(
                    "wave start",
                    pid,
                    wave_tid(*wave),
                    *now,
                    obj(&[("workgroup", n(u64::from(*workgroup)))]),
                ));
            }
            // Fetch/decode/issue/writeback render as instants on the wave
            // track; the execute slice already spans the operation.
            TraceEvent::Fetch { .. } | TraceEvent::Decode { .. } => {}
            TraceEvent::Issue {
                cu,
                wave,
                pc,
                opcode,
                now,
                ..
            } => {
                let pid = u64::from(*cu);
                name_cu_track(
                    &mut out,
                    &mut named,
                    &mut pids,
                    pid,
                    wave_tid(*wave),
                    format!("wave {wave}"),
                );
                out.push(instant(
                    opcode.mnemonic(),
                    pid,
                    wave_tid(*wave),
                    *now,
                    obj(&[("pc", n(u64::from(*pc)))]),
                ));
            }
            TraceEvent::Execute {
                cu,
                wave,
                pc,
                opcode,
                unit,
                start,
                end,
            } => {
                let pid = u64::from(*cu);
                name_cu_track(
                    &mut out,
                    &mut named,
                    &mut pids,
                    pid,
                    fu_tid(*unit),
                    format!("FU {}", unit.label()),
                );
                out.push(slice(
                    opcode.mnemonic(),
                    pid,
                    fu_tid(*unit),
                    *start,
                    end.saturating_sub(*start),
                    obj(&[("wave", n(u64::from(*wave))), ("pc", n(u64::from(*pc)))]),
                ));
            }
            TraceEvent::Writeback { .. } => {}
            TraceEvent::Retire {
                cu,
                wave,
                now,
                instructions,
            } => {
                let pid = u64::from(*cu);
                name_cu_track(
                    &mut out,
                    &mut named,
                    &mut pids,
                    pid,
                    wave_tid(*wave),
                    format!("wave {wave}"),
                );
                out.push(instant(
                    "retire",
                    pid,
                    wave_tid(*wave),
                    *now,
                    obj(&[("instructions", n(*instructions))]),
                ));
            }
            TraceEvent::MemStart {
                cu,
                wave,
                kind,
                addr,
                now,
                ..
            } => {
                mem_open
                    .entry((*cu, *wave))
                    .or_default()
                    .push_back((kind.clone(), *addr, *now));
            }
            TraceEvent::MemComplete {
                cu, wave, now: end, ..
            } => {
                if let Some((kind, addr, start)) = mem_open
                    .get_mut(&(*cu, *wave))
                    .and_then(VecDeque::pop_front)
                {
                    let pid = u64::from(*cu);
                    name_cu_track(
                        &mut out,
                        &mut named,
                        &mut pids,
                        pid,
                        mem_tid(*wave),
                        format!("wave {wave} mem"),
                    );
                    out.push(slice(
                        &kind,
                        pid,
                        mem_tid(*wave),
                        start,
                        end.saturating_sub(start),
                        obj(&[("addr", n(addr))]),
                    ));
                }
            }
            TraceEvent::BarrierArrive {
                cu,
                wave,
                workgroup,
                now,
            } => {
                let pid = u64::from(*cu);
                name_cu_track(
                    &mut out,
                    &mut named,
                    &mut pids,
                    pid,
                    wave_tid(*wave),
                    format!("wave {wave}"),
                );
                out.push(instant(
                    "barrier arrive",
                    pid,
                    wave_tid(*wave),
                    *now,
                    obj(&[("workgroup", n(u64::from(*workgroup)))]),
                ));
            }
            TraceEvent::BarrierRelease { cu, workgroup, now } => {
                out.push(instant(
                    "barrier release",
                    u64::from(*cu),
                    0,
                    *now,
                    obj(&[("workgroup", n(u64::from(*workgroup)))]),
                ));
            }
            TraceEvent::ShardRun {
                cu,
                worker,
                start,
                end,
                job,
            } => {
                let tid = u64::from(*worker);
                if named.insert((ENGINE_PID, tid)) {
                    out.push(thread_name(ENGINE_PID, tid, &format!("worker {worker}")));
                }
                if pids.insert(ENGINE_PID) {
                    out.push(engine_process_name());
                }
                out.push(slice(
                    &format!("CU {cu}"),
                    ENGINE_PID,
                    tid,
                    *start,
                    end.saturating_sub(*start),
                    obj(&[("cu", n(u64::from(*cu))), ("job", n(*job))]),
                ));
            }
            TraceEvent::FaultInjected {
                cu,
                wave,
                class,
                detail,
                now,
                job,
            } => {
                let pid = u64::from(*cu);
                name_cu_track(
                    &mut out,
                    &mut named,
                    &mut pids,
                    pid,
                    wave_tid(*wave),
                    format!("wave {wave}"),
                );
                out.push(instant(
                    &format!("fault[{class}]"),
                    pid,
                    wave_tid(*wave),
                    *now,
                    obj(&[("detail", s(detail)), ("job", n(*job))]),
                ));
            }
            // Detection/recovery are campaign-level events: render them on
            // the dispatcher track (pid 0) like kernel dispatches.
            TraceEvent::FaultDetected {
                label,
                detector,
                now,
                job,
            } => {
                out.push(instant(
                    &format!("detected[{detector}]"),
                    0,
                    0,
                    *now,
                    obj(&[("label", s(label)), ("job", n(*job))]),
                ));
            }
            TraceEvent::FaultRecovered {
                label,
                action,
                now,
                job,
            } => {
                out.push(instant(
                    &format!("recovered[{action}]"),
                    0,
                    0,
                    *now,
                    obj(&[("label", s(label)), ("job", n(*job))]),
                ));
            }
            TraceEvent::Stall {
                cu,
                wave,
                reason,
                from,
                to,
            } => {
                let pid = u64::from(*cu);
                name_cu_track(
                    &mut out,
                    &mut named,
                    &mut pids,
                    pid,
                    wave_tid(*wave),
                    format!("wave {wave}"),
                );
                out.push(slice(
                    reason.label(),
                    pid,
                    wave_tid(*wave),
                    *from,
                    to.saturating_sub(*from),
                    Value::Object(Map::new()),
                ));
            }
        }
    }

    // Leak any unmatched memory requests as 1-cycle slices so nothing
    // silently disappears from the timeline.
    for ((cu, wave), open) in mem_open {
        for (kind, addr, start) in open {
            out.push(slice(
                &format!("{kind} (incomplete)"),
                u64::from(cu),
                mem_tid(wave),
                start,
                1,
                obj(&[("addr", n(addr))]),
            ));
        }
    }

    let mut doc = Map::new();
    doc.insert("traceEvents".to_owned(), Value::Array(out));
    doc.insert("displayTimeUnit".to_owned(), s("ms"));
    Value::Object(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StallReason;
    use scratch_isa::Opcode;

    #[test]
    fn exports_slices_instants_and_metadata() {
        let events = vec![
            TraceEvent::WaveStart {
                cu: 0,
                wave: 0,
                workgroup: 0,
                now: 0,
            },
            TraceEvent::Issue {
                cu: 0,
                wave: 0,
                pc: 0,
                opcode: Opcode::VAddI32,
                unit: FuncUnit::Simd,
                now: 0,
            },
            TraceEvent::Execute {
                cu: 0,
                wave: 0,
                pc: 0,
                opcode: Opcode::VAddI32,
                unit: FuncUnit::Simd,
                start: 0,
                end: 4,
            },
            TraceEvent::MemStart {
                cu: 0,
                wave: 0,
                pc: 2,
                kind: "VectorLoad".into(),
                addr: 64,
                lanes: 64,
                now: 1,
            },
            TraceEvent::MemComplete {
                cu: 0,
                wave: 0,
                kind: "VectorLoad".into(),
                addr: 64,
                now: 300,
            },
            TraceEvent::Stall {
                cu: 0,
                wave: 0,
                reason: StallReason::WaitcntVm,
                from: 2,
                to: 300,
            },
        ];
        let doc = chrome_trace(&events);
        let Value::Object(m) = &doc else {
            panic!("not an object")
        };
        let Value::Array(evs) = &m["traceEvents"] else {
            panic!("traceEvents missing")
        };
        let json = doc.to_string();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("v_add_i32") || json.contains("VAddI32"));
        assert!(json.contains("waitcnt-vm"));
        // Metadata (process + 3 thread names) + 5 renderable events.
        assert!(evs.len() >= 8, "{}", evs.len());
    }

    #[test]
    fn shard_runs_render_as_engine_worker_tracks() {
        let events = vec![
            TraceEvent::ShardRun {
                cu: 0,
                worker: 0,
                start: 0,
                end: 500,
                job: 7,
            },
            TraceEvent::ShardRun {
                cu: 1,
                worker: 1,
                start: 0,
                end: 480,
                job: 7,
            },
        ];
        let json = chrome_trace(&events).to_string();
        assert!(json.contains("\"engine\""));
        assert!(json.contains("worker 0"));
        assert!(json.contains("worker 1"));
        assert!(json.contains("CU 1"));
        assert!(json.contains("\"job\":7"));
    }

    #[test]
    fn unmatched_memory_requests_still_render() {
        let events = vec![TraceEvent::MemStart {
            cu: 0,
            wave: 1,
            pc: 0,
            kind: "ScalarLoad".into(),
            addr: 4,
            lanes: 1,
            now: 10,
        }];
        let json = chrome_trace(&events).to_string();
        assert!(json.contains("incomplete"));
    }
}
