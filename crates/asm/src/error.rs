use std::fmt;

use scratch_isa::IsaError;

/// Errors produced while building, assembling or disassembling kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// An underlying ISA-level construction or encoding failure.
    Isa(IsaError),
    /// A label was referenced but never bound to a position.
    UnboundLabel {
        /// Label name (builder labels are synthesised as `L<n>`).
        name: String,
    },
    /// A label was bound more than once.
    DuplicateLabel {
        /// Label name.
        name: String,
    },
    /// A branch target is too far away for the 16-bit word offset.
    BranchOutOfRange {
        /// Label name.
        name: String,
        /// Required offset, in words.
        offset: i64,
    },
    /// Text-assembly syntax error.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The kernel contains no `s_endpgm`, so execution would run off the end.
    MissingEndpgm,
}

impl AsmError {
    /// Convenience constructor for syntax errors.
    pub(crate) fn syntax(line: usize, message: impl Into<String>) -> AsmError {
        AsmError::Syntax {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Isa(e) => write!(f, "isa error: {e}"),
            AsmError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            AsmError::DuplicateLabel { name } => write!(f, "label `{name}` bound twice"),
            AsmError::BranchOutOfRange { name, offset } => {
                write!(
                    f,
                    "branch to `{name}` needs offset {offset} words (max ±32767)"
                )
            }
            AsmError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            AsmError::MissingEndpgm => write!(f, "kernel has no s_endpgm"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for AsmError {
    fn from(e: IsaError) -> Self {
        AsmError::Isa(e)
    }
}
