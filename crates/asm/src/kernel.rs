//! Compiled kernel artifacts.

use serde::{Deserialize, Serialize};

use scratch_isa::Instruction;

use crate::AsmError;

/// Launch metadata for a kernel — the information CodeXL's ISA dump provides
/// so the ultra-threaded dispatcher (MicroBlaze in the paper) can initialise
/// compute-unit state before starting a workgroup (§2.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelMeta {
    /// Number of SGPRs the kernel uses per wavefront.
    pub sgprs: u8,
    /// Number of VGPRs the kernel uses per work-item.
    pub vgprs: u8,
    /// Bytes of LDS (local data share) allocated per workgroup.
    pub lds_bytes: u32,
    /// Work-items per workgroup (a multiple of the 64-lane wavefront in
    /// every paper benchmark).
    pub workgroup_size: u32,
}

impl Default for KernelMeta {
    fn default() -> Self {
        KernelMeta {
            sgprs: 32,
            vgprs: 16,
            lds_bytes: 0,
            workgroup_size: 64,
        }
    }
}

/// A compiled kernel: Southern Islands machine words plus launch metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    words: Vec<u32>,
    meta: KernelMeta,
}

impl Kernel {
    /// Wrap raw machine words as a kernel.
    #[must_use]
    pub fn from_words(name: impl Into<String>, words: Vec<u32>, meta: KernelMeta) -> Kernel {
        Kernel {
            name: name.into(),
            words,
            meta,
        }
    }

    /// Kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Raw machine words.
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Launch metadata.
    #[must_use]
    pub fn meta(&self) -> &KernelMeta {
        &self.meta
    }

    /// Size of the binary in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Decode the binary into `(word offset, instruction)` pairs.
    ///
    /// # Errors
    ///
    /// Fails if the binary contains undecodable words (e.g. it was built for
    /// an unsupported instruction set).
    pub fn instructions(&self) -> Result<Vec<(usize, Instruction)>, AsmError> {
        Ok(Instruction::decode_all(&self.words)?)
    }

    /// Disassemble to CodeXL-like text (see [`crate::disassemble`]).
    ///
    /// # Errors
    ///
    /// Fails if the binary contains undecodable words.
    pub fn disassemble(&self) -> Result<String, AsmError> {
        crate::disassemble(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_isa::{Fields, Opcode};

    #[test]
    fn roundtrips_raw_words() {
        let end = Instruction::new(Opcode::SEndpgm, Fields::Sopp { simm16: 0 }).unwrap();
        let k = Kernel::from_words("k", end.encode().unwrap(), KernelMeta::default());
        assert_eq!(k.name(), "k");
        assert_eq!(k.size_bytes(), 4);
        let insts = k.instructions().unwrap();
        assert_eq!(insts.len(), 1);
        assert_eq!(insts[0].1.opcode, Opcode::SEndpgm);
    }

    #[test]
    fn undecodable_binary_reports_error() {
        let k = Kernel::from_words("bad", vec![0xffff_ffff], KernelMeta::default());
        assert!(k.instructions().is_err());
    }
}
