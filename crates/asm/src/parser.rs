//! Text assembler for CodeXL-like Southern Islands assembly.

use std::collections::HashMap;

use scratch_isa::{Fields, Format, Instruction, Opcode, Operand, SmrdOffset};

use crate::builder::waitcnt_imm;
use crate::{AsmError, Kernel, KernelBuilder};

/// Assemble CodeXL-like assembly text into a [`Kernel`].
///
/// The accepted syntax is exactly what [`crate::disassemble`] produces:
/// `.kernel/.sgprs/.vgprs/.lds/.wgsize` directives, `label:` definitions,
/// optional `0x...` address prefixes, comments (`//` or `;`), and one
/// instruction per line. [`assemble`] ∘ [`crate::disassemble`] is the
/// identity on binaries (property-tested).
///
/// # Errors
///
/// Returns [`AsmError::Syntax`] with a 1-based line number on any malformed
/// line, and label/branch errors from the underlying builder.
pub fn assemble(text: &str) -> Result<Kernel, AsmError> {
    let mut builder = KernelBuilder::new("kernel");
    let mut labels: HashMap<String, crate::Label> = HashMap::new();

    // Intern a label by name.
    fn intern(
        builder: &mut KernelBuilder,
        labels: &mut HashMap<String, crate::Label>,
        name: &str,
    ) -> crate::Label {
        if let Some(&l) = labels.get(name) {
            l
        } else {
            let l = builder.new_label();
            labels.insert(name.to_string(), l);
            l
        }
    }

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw
            .split("//")
            .next()
            .unwrap_or("")
            .split(';')
            .next()
            .unwrap_or("")
            .trim();
        if line.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = line.strip_prefix('.') {
            let mut it = rest.split_whitespace();
            let key = it.next().unwrap_or("");
            let val = it.next().unwrap_or("");
            match key {
                "kernel" => {
                    let name = val.to_string();
                    let mut nb = KernelBuilder::new(name);
                    std::mem::swap(&mut builder, &mut nb);
                    // Keep any state accumulated so far (directives must come
                    // first; enforce that).
                    if !nb.is_empty() {
                        return Err(AsmError::syntax(
                            lineno,
                            ".kernel must precede instructions",
                        ));
                    }
                }
                "sgprs" => {
                    builder.sgprs(int_in_range(val, 0..=255, ".sgprs", lineno)? as u8);
                }
                "vgprs" => {
                    builder.vgprs(int_in_range(val, 0..=255, ".vgprs", lineno)? as u8);
                }
                "lds" => {
                    builder.lds_bytes(int_in_range(val, 0..=0xffff_ffff, ".lds", lineno)? as u32);
                }
                "wgsize" => {
                    builder.workgroup_size(
                        int_in_range(val, 0..=0xffff_ffff, ".wgsize", lineno)? as u32
                    );
                }
                other => {
                    return Err(AsmError::syntax(
                        lineno,
                        format!("unknown directive .{other}"),
                    ))
                }
            }
            continue;
        }

        // Label definition.
        if let Some(name) = line.strip_suffix(':') {
            if name.split_whitespace().count() != 1 {
                return Err(AsmError::syntax(lineno, "malformed label"));
            }
            let l = intern(&mut builder, &mut labels, name.trim());
            builder
                .bind(l)
                .map_err(|_| AsmError::syntax(lineno, format!("label `{name}` bound twice")))?;
            continue;
        }

        // Optional address prefix (as printed by the disassembler).
        let mut body = line;
        if let Some(first) = body.split_whitespace().next() {
            if first.starts_with("0x") && body.split_whitespace().nth(1).is_some() {
                body = body[first.len()..].trim_start();
            }
        }

        parse_instruction(body, lineno, &mut builder, &mut labels, intern)?;
    }

    builder.finish()
}

fn parse_int(tok: &str, lineno: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| AsmError::syntax(lineno, format!("bad integer `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

/// Parse an operand token.
fn parse_operand(tok: &str, lineno: usize) -> Result<Operand, AsmError> {
    let t = tok.trim();
    let lower = t.to_ascii_lowercase();
    match lower.as_str() {
        "vcc" | "vcc_lo" => return Ok(Operand::VccLo),
        "vcc_hi" => return Ok(Operand::VccHi),
        "exec" | "exec_lo" => return Ok(Operand::ExecLo),
        "exec_hi" => return Ok(Operand::ExecHi),
        "m0" => return Ok(Operand::M0),
        "scc" => return Ok(Operand::Scc),
        "vccz" => return Ok(Operand::Vccz),
        "execz" => return Ok(Operand::Execz),
        _ => {}
    }
    if let Some(inner) = lower.strip_prefix("lit(").and_then(|s| s.strip_suffix(')')) {
        let v = int_in_range(inner, i64::from(i32::MIN)..=0xffff_ffff, "literal", lineno)?;
        return Ok(Operand::Literal(v as u32));
    }
    if let Some(rest) = lower.strip_prefix("s[") {
        let base = rest
            .split(':')
            .next()
            .ok_or_else(|| AsmError::syntax(lineno, format!("bad register group `{t}`")))?;
        return Ok(Operand::Sgpr(
            int_in_range(base, 0..=255, "sgpr index", lineno)? as u8,
        ));
    }
    if let Some(rest) = lower.strip_prefix("v[") {
        let base = rest
            .split(':')
            .next()
            .ok_or_else(|| AsmError::syntax(lineno, format!("bad register group `{t}`")))?;
        return Ok(Operand::Vgpr(
            int_in_range(base, 0..=255, "vgpr index", lineno)? as u8,
        ));
    }
    if let Some(n) = lower.strip_prefix('s') {
        if let Ok(i) = n.parse::<u8>() {
            return Ok(Operand::Sgpr(i));
        }
    }
    if let Some(n) = lower.strip_prefix('v') {
        if let Ok(i) = n.parse::<u8>() {
            return Ok(Operand::Vgpr(i));
        }
    }
    if lower.contains('.') && !lower.starts_with("0x") {
        let f: f32 = lower
            .parse()
            .map_err(|_| AsmError::syntax(lineno, format!("bad float `{t}`")))?;
        return Ok(KernelBuilder::const_f32(f));
    }
    if lower.starts_with("0x")
        || lower.starts_with('-')
        || lower.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        let v = int_in_range(
            &lower,
            i64::from(i32::MIN)..=0xffff_ffff,
            "integer constant",
            lineno,
        )?;
        return Ok(KernelBuilder::const_u32(v as u32));
    }
    Err(AsmError::syntax(
        lineno,
        format!("unrecognised operand `{t}`"),
    ))
}

fn expect_vgpr(op: Operand, lineno: usize) -> Result<u8, AsmError> {
    op.vgpr_index()
        .ok_or_else(|| AsmError::syntax(lineno, "expected a VGPR operand"))
}

fn expect_sgpr(op: Operand, lineno: usize) -> Result<u8, AsmError> {
    op.sgpr_index()
        .ok_or_else(|| AsmError::syntax(lineno, "expected an SGPR operand"))
}

/// Key:value / flag modifiers that trail the operand list.
#[derive(Default)]
struct Mods {
    offset: Option<i64>,
    offset0: Option<i64>,
    offset1: Option<i64>,
    offen: bool,
    idxen: bool,
    glc: bool,
    gds: bool,
    dfmt: Option<i64>,
    nfmt: Option<i64>,
    abs: Option<i64>,
    neg: Option<i64>,
    clamp: bool,
    omod: Option<i64>,
}

fn parse_mods(tokens: &[&str], lineno: usize) -> Result<Mods, AsmError> {
    let mut m = Mods::default();
    for tok in tokens {
        let t = tok.trim();
        if t.is_empty() {
            continue;
        }
        if let Some((key, val)) = t.split_once(':') {
            let v = parse_int(val, lineno)?;
            match key {
                "offset" => m.offset = Some(v),
                "offset0" => m.offset0 = Some(v),
                "offset1" => m.offset1 = Some(v),
                "dfmt" => m.dfmt = Some(v),
                "nfmt" => m.nfmt = Some(v),
                "abs" => m.abs = Some(v),
                "neg" => m.neg = Some(v),
                "omod" => m.omod = Some(v),
                other => {
                    return Err(AsmError::syntax(
                        lineno,
                        format!("unknown modifier `{other}`"),
                    ))
                }
            }
        } else {
            match t {
                "offen" => m.offen = true,
                "idxen" => m.idxen = true,
                "glc" => m.glc = true,
                "gds" => m.gds = true,
                "clamp" => m.clamp = true,
                other => return Err(AsmError::syntax(lineno, format!("unknown flag `{other}`"))),
            }
        }
    }
    Ok(m)
}

/// Parse `s_waitcnt` operands: `vmcnt(N)` and/or `lgkmcnt(N)` in either
/// order, a raw immediate, or nothing (wait for everything).
fn parse_waitcnt(rest: &str, lineno: usize) -> Result<u16, AsmError> {
    let mut vm = None;
    let mut lgkm = None;
    let mut raw = None;
    for tok in rest.split_whitespace() {
        let t = tok.to_ascii_lowercase();
        if let Some(inner) = t.strip_prefix("vmcnt(").and_then(|s| s.strip_suffix(')')) {
            vm = Some(int_in_range(inner, 0..=0xf, "vmcnt", lineno)? as u8);
        } else if let Some(inner) = t.strip_prefix("lgkmcnt(").and_then(|s| s.strip_suffix(')')) {
            lgkm = Some(int_in_range(inner, 0..=0x1f, "lgkmcnt", lineno)? as u8);
        } else {
            raw = Some(int_in_range(&t, 0..=0xffff, "waitcnt immediate", lineno)? as u16);
        }
    }
    match (vm, lgkm, raw) {
        (None, None, Some(r)) => Ok(r),
        (vm, lgkm, None) => Ok(waitcnt_imm(vm, lgkm)),
        _ => Err(AsmError::syntax(lineno, "mixed waitcnt forms")),
    }
}

/// Range-check an already-parsed optional modifier value (absent → 0).
fn mod_in_range(
    v: Option<i64>,
    range: std::ops::RangeInclusive<i64>,
    what: &str,
    lineno: usize,
) -> Result<i64, AsmError> {
    let v = v.unwrap_or(0);
    if range.contains(&v) {
        Ok(v)
    } else {
        Err(AsmError::syntax(
            lineno,
            format!("{what} {v} outside {}..={}", range.start(), range.end()),
        ))
    }
}

/// Parse an integer and require it to fit `range` — the checked
/// alternative to a silently truncating `as` cast.
fn int_in_range(
    t: &str,
    range: std::ops::RangeInclusive<i64>,
    what: &str,
    lineno: usize,
) -> Result<i64, AsmError> {
    let v = parse_int(t, lineno)?;
    if range.contains(&v) {
        Ok(v)
    } else {
        Err(AsmError::syntax(
            lineno,
            format!("{what} {v} outside {}..={}", range.start(), range.end()),
        ))
    }
}

#[allow(clippy::too_many_lines)]
fn parse_instruction(
    body: &str,
    lineno: usize,
    builder: &mut KernelBuilder,
    labels: &mut HashMap<String, crate::Label>,
    intern: fn(&mut KernelBuilder, &mut HashMap<String, crate::Label>, &str) -> crate::Label,
) -> Result<(), AsmError> {
    let (mn, rest) = match body.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (body, ""),
    };
    // An `_e64` suffix names the VOP3 encoding of an instruction whose
    // natural encoding is narrower; the suffix forces that encoding.
    let (opcode, e64) = match Opcode::from_mnemonic(mn) {
        Some(op) => (op, false),
        None => match mn.strip_suffix("_e64").and_then(Opcode::from_mnemonic) {
            Some(op) => (op, true),
            None => return Err(AsmError::syntax(lineno, format!("unknown mnemonic `{mn}`"))),
        },
    };
    if e64 && !matches!(opcode.format(), Format::Vop2 | Format::Vopc) {
        return Err(AsmError::syntax(
            lineno,
            format!("`_e64` does not apply to {mn}"),
        ));
    }

    // `s_waitcnt` counters (`vmcnt(0) lgkmcnt(0)`) are whitespace-separated
    // and would be misread as trailing flags by the generic modifier split,
    // so handle the mnemonic before that split runs.
    if opcode == Opcode::SWaitcnt {
        let imm = parse_waitcnt(rest, lineno)?;
        builder.sopp(opcode, imm)?;
        return Ok(());
    }

    // Split the operand list on commas; trailing modifiers ride on the last
    // comma field (or on `rest` itself when there are no operands).
    let mut ops: Vec<String> = Vec::new();
    let mut mods_tokens: Vec<&str> = Vec::new();
    if !rest.is_empty() {
        let fields: Vec<&str> = rest.split(',').collect();
        let n = fields.len();
        for (i, f) in fields.iter().enumerate() {
            let f = f.trim();
            if i + 1 == n {
                let mut it = f.split_whitespace();
                if let Some(first) = it.next() {
                    ops.push(first.to_string());
                }
                mods_tokens.extend(it);
            } else {
                ops.push(f.to_string());
            }
        }
    }
    let mods = parse_mods(&mods_tokens, lineno)?;

    let operr = |n: usize| AsmError::syntax(lineno, format!("{mn} expects {n} operands"));
    let op_at = |i: usize| -> Result<Operand, AsmError> {
        ops.get(i)
            .ok_or_else(|| AsmError::syntax(lineno, format!("{mn}: missing operand {i}")))
            .and_then(|t| parse_operand(t, lineno))
    };

    match opcode.format() {
        Format::Sop2 => {
            if ops.len() != 3 {
                return Err(operr(3));
            }
            builder.sop2(opcode, op_at(0)?, op_at(1)?, op_at(2)?)?;
        }
        Format::Sopk => {
            if ops.len() != 2 {
                return Err(operr(2));
            }
            let imm = int_in_range(
                &ops[1],
                i64::from(i16::MIN)..=0xffff,
                "sopk immediate",
                lineno,
            )?;
            builder.sopk(opcode, op_at(0)?, imm as i16)?;
        }
        Format::Sop1 => {
            if ops.len() != 2 {
                return Err(operr(2));
            }
            builder.sop1(opcode, op_at(0)?, op_at(1)?)?;
        }
        Format::Sopc => {
            if ops.len() != 2 {
                return Err(operr(2));
            }
            builder.sopc(opcode, op_at(0)?, op_at(1)?)?;
        }
        Format::Sopp => match opcode {
            Opcode::SEndpgm | Opcode::SBarrier => {
                builder.sopp(opcode, 0)?;
            }
            Opcode::SWaitcnt => unreachable!("s_waitcnt is handled before operand splitting"),
            op if op.is_branch() => {
                let target = rest.trim();
                if target.is_empty() {
                    return Err(AsmError::syntax(lineno, "branch needs a target label"));
                }
                let l = intern(builder, labels, target);
                builder.branch(opcode, l);
            }
            _ => {
                let imm = if rest.is_empty() {
                    0
                } else {
                    int_in_range(rest, 0..=0xffff, "sopp immediate", lineno)? as u16
                };
                builder.sopp(opcode, imm)?;
            }
        },
        Format::Smrd => {
            if ops.len() != 3 {
                return Err(operr(3));
            }
            let sdst = op_at(0)?;
            let sbase = expect_sgpr(op_at(1)?, lineno)?;
            let off_tok = ops[2].trim().to_ascii_lowercase();
            let offset = if off_tok.starts_with('s') && !off_tok.starts_with("0x") {
                SmrdOffset::Sgpr(expect_sgpr(parse_operand(&off_tok, lineno)?, lineno)?)
            } else {
                SmrdOffset::Imm(int_in_range(&off_tok, 0..=255, "smrd offset", lineno)? as u8)
            };
            builder.smrd(opcode, sdst, sbase, offset)?;
        }
        Format::Vop2 => {
            if opcode == Opcode::VCndmaskB32 {
                // v_cndmask_b32 vdst, src0, vsrc1, vcc
                if ops.len() != 4 {
                    return Err(operr(4));
                }
                let vdst = expect_vgpr(op_at(0)?, lineno)?;
                let vsrc1 = expect_vgpr(op_at(2)?, lineno)?;
                builder.vop2(opcode, vdst, op_at(1)?, vsrc1)?;
            } else if opcode.reads_vcc_implicitly() {
                // v_addc_u32 vdst, <carry-out>, src0, vsrc1, <carry-in>
                if ops.len() != 5 {
                    return Err(operr(5));
                }
                let vdst = expect_vgpr(op_at(0)?, lineno)?;
                let cout = op_at(1)?;
                let vsrc1 = expect_vgpr(op_at(3)?, lineno)?;
                let cin = op_at(4)?;
                if cout == Operand::VccLo && cin == Operand::VccLo && !e64 {
                    builder.vop2(opcode, vdst, op_at(2)?, vsrc1)?;
                } else {
                    builder.vop3b(
                        opcode,
                        vdst,
                        cout,
                        op_at(2)?,
                        Operand::Vgpr(vsrc1),
                        Some(cin),
                    )?;
                }
            } else if opcode.writes_vcc_implicitly() {
                // v_add_i32 vdst, <carry-out>, src0, vsrc1
                if ops.len() != 4 {
                    return Err(operr(4));
                }
                let vdst = expect_vgpr(op_at(0)?, lineno)?;
                let cout = op_at(1)?;
                let src1 = op_at(3)?;
                if cout == Operand::VccLo && !e64 {
                    if let Some(v1) = src1.vgpr_index() {
                        builder.vop2(opcode, vdst, op_at(2)?, v1)?;
                        return Ok(());
                    }
                }
                builder.vop3b(opcode, vdst, cout, op_at(2)?, src1, None)?;
            } else {
                if ops.len() != 3 {
                    return Err(operr(3));
                }
                let vdst = expect_vgpr(op_at(0)?, lineno)?;
                let src0 = op_at(1)?;
                let src1 = op_at(2)?;
                match src1.vgpr_index() {
                    Some(v1)
                        if !e64
                            && mods.abs.is_none()
                            && mods.neg.is_none()
                            && mods.omod.is_none()
                            && !mods.clamp =>
                    {
                        builder.vop2(opcode, vdst, src0, v1)?;
                    }
                    _ => {
                        // Promote to VOP3a.
                        builder.push(Instruction::new(
                            opcode,
                            Fields::Vop3a {
                                vdst,
                                src0,
                                src1,
                                src2: None,
                                abs: mod_in_range(mods.abs, 0..=7, "abs", lineno)? as u8,
                                neg: mod_in_range(mods.neg, 0..=7, "neg", lineno)? as u8,
                                clamp: mods.clamp,
                                omod: mod_in_range(mods.omod, 0..=3, "omod", lineno)? as u8,
                            },
                        )?);
                    }
                }
            }
        }
        Format::Vop1 => {
            if ops.len() != 2 {
                return Err(operr(2));
            }
            let dst = op_at(0)?;
            let vdst = if opcode == Opcode::VReadfirstlaneB32 {
                expect_sgpr(dst, lineno)?
            } else {
                expect_vgpr(dst, lineno)?
            };
            builder.vop1(opcode, vdst, op_at(1)?)?;
        }
        Format::Vopc => {
            if ops.len() != 3 {
                return Err(operr(3));
            }
            let dst = op_at(0)?;
            let src0 = op_at(1)?;
            let src1 = op_at(2)?;
            if dst == Operand::VccLo && !e64 {
                if let Some(v1) = src1.vgpr_index() {
                    builder.vopc(opcode, src0, v1)?;
                    return Ok(());
                }
            }
            builder.vop3b(opcode, 0, dst, src0, src1, None)?;
        }
        Format::Vop3a | Format::Vop3b => {
            let want = usize::from(opcode.src_count()) + 1;
            if ops.len() != want {
                return Err(operr(want));
            }
            let vdst = expect_vgpr(op_at(0)?, lineno)?;
            let src2 = if want == 4 { Some(op_at(3)?) } else { None };
            builder.push(Instruction::new(
                opcode,
                Fields::Vop3a {
                    vdst,
                    src0: op_at(1)?,
                    src1: op_at(2)?,
                    src2,
                    abs: mod_in_range(mods.abs, 0..=7, "abs", lineno)? as u8,
                    neg: mod_in_range(mods.neg, 0..=7, "neg", lineno)? as u8,
                    clamp: mods.clamp,
                    omod: mod_in_range(mods.omod, 0..=3, "omod", lineno)? as u8,
                },
            )?);
        }
        Format::Ds => {
            let two = matches!(opcode, Opcode::DsRead2B32 | Opcode::DsWrite2B32);
            let (vdst, addr, data0, data1) = if opcode.is_store() {
                if two {
                    if ops.len() != 3 {
                        return Err(operr(3));
                    }
                    (
                        0,
                        expect_vgpr(op_at(0)?, lineno)?,
                        expect_vgpr(op_at(1)?, lineno)?,
                        expect_vgpr(op_at(2)?, lineno)?,
                    )
                } else {
                    if ops.len() != 2 {
                        return Err(operr(2));
                    }
                    (
                        0,
                        expect_vgpr(op_at(0)?, lineno)?,
                        expect_vgpr(op_at(1)?, lineno)?,
                        0,
                    )
                }
            } else if matches!(opcode, Opcode::DsReadB32 | Opcode::DsRead2B32) {
                if ops.len() != 2 {
                    return Err(operr(2));
                }
                (
                    expect_vgpr(op_at(0)?, lineno)?,
                    expect_vgpr(op_at(1)?, lineno)?,
                    0,
                    0,
                )
            } else {
                // Atomics: addr, data.
                if ops.len() != 2 {
                    return Err(operr(2));
                }
                (
                    0,
                    expect_vgpr(op_at(0)?, lineno)?,
                    expect_vgpr(op_at(1)?, lineno)?,
                    0,
                )
            };
            let byte = |v: Option<i64>, what| mod_in_range(v, 0..=255, what, lineno);
            let (offset0, offset1) = if two {
                (
                    byte(mods.offset0, "offset0")? as u8,
                    byte(mods.offset1, "offset1")? as u8,
                )
            } else {
                (byte(mods.offset, "offset")? as u8, 0)
            };
            builder.push(Instruction::new(
                opcode,
                Fields::Ds {
                    vdst,
                    addr,
                    data0,
                    data1,
                    offset0,
                    offset1,
                    gds: mods.gds,
                },
            )?);
        }
        Format::Mubuf => {
            if ops.len() != 4 {
                return Err(operr(4));
            }
            builder.push(Instruction::new(
                opcode,
                Fields::Mubuf {
                    vdata: expect_vgpr(op_at(0)?, lineno)?,
                    vaddr: expect_vgpr(op_at(1)?, lineno)?,
                    srsrc: expect_sgpr(op_at(2)?, lineno)?,
                    soffset: op_at(3)?,
                    offset: mod_in_range(mods.offset, 0..=0xfff, "offset", lineno)? as u16,
                    offen: mods.offen,
                    idxen: mods.idxen,
                    glc: mods.glc,
                },
            )?);
        }
        Format::Mtbuf => {
            if ops.len() != 4 {
                return Err(operr(4));
            }
            builder.push(Instruction::new(
                opcode,
                Fields::Mtbuf {
                    vdata: expect_vgpr(op_at(0)?, lineno)?,
                    vaddr: expect_vgpr(op_at(1)?, lineno)?,
                    srsrc: expect_sgpr(op_at(2)?, lineno)?,
                    soffset: op_at(3)?,
                    offset: mod_in_range(mods.offset, 0..=0xfff, "offset", lineno)? as u16,
                    offen: mods.offen,
                    idxen: mods.idxen,
                    dfmt: mod_in_range(mods.dfmt.or(Some(4)), 0..=0xf, "dfmt", lineno)? as u8,
                    nfmt: mod_in_range(mods.nfmt.or(Some(4)), 0..=0x7, "nfmt", lineno)? as u8,
                },
            )?);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_simple_kernel() {
        let text = r"
            .kernel add_seven
            .sgprs 8
            .vgprs 4
            // v1 = v0 + 7
            v_add_i32 v1, vcc, 7, v0
            s_endpgm
        ";
        let k = assemble(text).unwrap();
        assert_eq!(k.name(), "add_seven");
        assert_eq!(k.meta().sgprs, 8);
        let insts = k.instructions().unwrap();
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].1.opcode, Opcode::VAddI32);
    }

    #[test]
    fn assembles_fig5_fragment() {
        // A fragment of the conv2D inner loop from the paper's Fig. 5.
        let text = r"
            .kernel conv2d_fragment
            label_0067:
            v_cmp_gt_u32 vcc, v6, v5
            s_and_saveexec_b64 s[8:9], vcc
            v_mov_b32 v8, v1
            v_mov_b32 v10, v3
            label_006f:
            v_add_i32 v11, vcc, s0, v8
            v_add_i32 v12, vcc, s1, v10
            s_waitcnt vmcnt(0)
            v_mul_lo_i32 v8, v8, v10
            v_mov_b32 v8, v11
            v_mov_b32 v10, v12
            s_branch label_006f
            s_mov_b64 exec, s[8:9]
            v_add_i32 v13, vcc, 1, v13
            v_cmp_gt_u32 s[14:15], v13, v4
            v_add_i32 v1, vcc, 4, v1
            s_endpgm
        ";
        let k = assemble(text).unwrap();
        let insts = k.instructions().unwrap();
        assert_eq!(insts.len(), 16);
        // The compare with an SGPR-pair destination must use VOP3b.
        let vop3b = insts
            .iter()
            .find(|(_, i)| matches!(i.fields, Fields::Vop3b { .. }))
            .expect("promoted compare present");
        assert_eq!(vop3b.1.opcode, Opcode::VCmpGtU32);
    }

    #[test]
    fn roundtrip_through_disassembly() {
        let text = r"
            .kernel rt
            s_mov_b32 s0, lit(0xdeadbeef)
            v_mul_f32 v1, 2.0, v0
            v_mac_f32 v2, v1, v3
            buffer_load_dword v4, v0, s[8:11], 0 offen offset:16
            s_waitcnt vmcnt(0)
            buffer_store_dword v4, v0, s[8:11], 0 offen offset:0
            s_endpgm
        ";
        let k1 = assemble(text).unwrap();
        let dis = k1.disassemble().unwrap();
        let k2 = assemble(&dis).unwrap();
        assert_eq!(k1.words(), k2.words(), "disassembly:\n{dis}");
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let text = ".kernel x\n v_frobnicate v0, v1\n s_endpgm\n";
        match assemble(text) {
            Err(AsmError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn bad_operand_count_rejected() {
        let text = ".kernel x\n s_add_u32 s0, s1\n s_endpgm\n";
        assert!(matches!(assemble(text), Err(AsmError::Syntax { .. })));
    }

    #[test]
    fn branch_to_missing_label_rejected() {
        let text = ".kernel x\n s_branch nowhere\n s_endpgm\n";
        assert!(matches!(assemble(text), Err(AsmError::UnboundLabel { .. })));
    }
}
