//! # scratch-asm
//!
//! Assembler, disassembler and programmatic kernel builder for the
//! Southern Islands binaries consumed by the SCRATCH toolchain.
//!
//! In the paper's flow, AMD CodeXL compiles OpenCL kernels and its ISA dump
//! (assembly text + register metadata) feeds both the trimming tool and the
//! MicroBlaze loader. This crate stands in for that path:
//!
//! * [`Kernel`] — a compiled kernel: machine words plus launch metadata
//!   (SGPR/VGPR counts, LDS size) as CodeXL reports them;
//! * [`KernelBuilder`] — programmatic emission with forward-label patching,
//!   used by `scratch-kernels` to author the benchmark suite;
//! * [`assemble`] / [`disassemble`] — text assembly in CodeXL-like syntax,
//!   round-trip safe.
//!
//! # Examples
//!
//! ```
//! use scratch_asm::KernelBuilder;
//! use scratch_isa::{Opcode, Operand};
//!
//! # fn main() -> Result<(), scratch_asm::AsmError> {
//! let mut b = KernelBuilder::new("double_tid");
//! // v1 = v0 + v0  (v0 is pre-initialised with the work-item id)
//! b.vop2(Opcode::VAddI32, 1, Operand::Vgpr(0), 0)?;
//! b.sopp(Opcode::SEndpgm, 0)?;
//! let kernel = b.finish()?;
//! assert_eq!(kernel.instructions()?.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod disasm;
mod error;
mod kernel;
mod parser;

pub use builder::{waitcnt_imm, KernelBuilder, Label};
pub use disasm::disassemble;
pub use error::AsmError;
pub use kernel::{Kernel, KernelMeta};
pub use parser::assemble;
