//! Disassembly to CodeXL-like text.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use scratch_isa::{Fields, Format, Instruction, Opcode, Operand, SmrdOffset};

use crate::{AsmError, Kernel};

/// Render a scalar operand that names a `width`-register group.
fn sgroup(op: Operand, width: u8) -> String {
    match (op, width) {
        (Operand::VccLo, 2) => "vcc".to_string(),
        (Operand::ExecLo, 2) => "exec".to_string(),
        (Operand::Sgpr(n), w) if w > 1 => {
            format!("s[{}:{}]", n, u16::from(n) + u16::from(w) - 1)
        }
        (o, _) => o.to_string(),
    }
}

/// Render a vector register group.
fn vgroup(n: u8, width: u8) -> String {
    if width > 1 {
        format!("v[{}:{}]", n, u16::from(n) + u16::from(width) - 1)
    } else {
        format!("v{n}")
    }
}

fn operand_src(op: Operand, width: u8) -> String {
    match op {
        Operand::Vgpr(n) => vgroup(n, width),
        Operand::Literal(v) => format!("lit({v:#x})"),
        other => sgroup(other, width),
    }
}

/// Disassemble a kernel to text that [`crate::assemble`] parses back to the
/// identical binary.
///
/// The output carries the kernel's metadata as directives, labels every
/// branch target (`label_xxxx`, named by word offset as in the paper's
/// Fig. 5) and prefixes each instruction with its byte address.
///
/// # Errors
///
/// Fails if the binary contains undecodable words.
pub fn disassemble(kernel: &Kernel) -> Result<String, AsmError> {
    let insts = kernel.instructions()?;

    // Collect branch-target word offsets.
    let mut targets = BTreeMap::new();
    for (pos, inst) in &insts {
        if let (true, Fields::Sopp { simm16 }) = (inst.opcode.is_branch(), inst.fields) {
            let target = (*pos as i64 + 1 + i64::from(simm16 as i16)) as usize;
            targets.insert(target, format!("label_{target:04x}"));
        }
    }

    let meta = kernel.meta();
    let mut out = String::new();
    writeln!(out, ".kernel {}", kernel.name()).unwrap();
    writeln!(out, ".sgprs {}", meta.sgprs).unwrap();
    writeln!(out, ".vgprs {}", meta.vgprs).unwrap();
    writeln!(out, ".lds {}", meta.lds_bytes).unwrap();
    writeln!(out, ".wgsize {}", meta.workgroup_size).unwrap();

    for (pos, inst) in &insts {
        if let Some(label) = targets.get(pos) {
            writeln!(out, "{label}:").unwrap();
        }
        writeln!(
            out,
            "  0x{:06X} {}",
            pos * 4,
            format_inst(*pos, inst, &targets)
        )
        .unwrap();
    }
    Ok(out)
}

/// Render one instruction (without address prefix).
pub(crate) fn format_inst(
    pos: usize,
    inst: &Instruction,
    targets: &BTreeMap<usize, String>,
) -> String {
    // VOP3-encoded instructions whose natural encoding is narrower carry
    // an `_e64` suffix, otherwise their text is indistinguishable from the
    // narrow form (e.g. a VOP3b `v_cmp` whose sdst happens to be VCC) and
    // reassembly would silently pick the other encoding.
    let promoted = matches!(inst.fields, Fields::Vop3a { .. } | Fields::Vop3b { .. })
        && !matches!(inst.opcode.format(), Format::Vop3a | Format::Vop3b);
    let mn = if promoted {
        format!("{}_e64", inst.opcode.mnemonic())
    } else {
        inst.opcode.mnemonic().to_string()
    };
    let dw = inst.opcode.dst_width();
    let sw = inst.opcode.src_width();
    match inst.fields {
        Fields::Sop2 { sdst, ssrc0, ssrc1 } => format!(
            "{mn} {}, {}, {}",
            sgroup(sdst, dw),
            operand_src(ssrc0, sw),
            operand_src(ssrc1, sw)
        ),
        Fields::Sopk { sdst, simm16 } => format!("{mn} {}, {simm16}", sgroup(sdst, dw)),
        Fields::Sop1 { sdst, ssrc0 } => {
            format!("{mn} {}, {}", sgroup(sdst, dw), operand_src(ssrc0, sw))
        }
        Fields::Sopc { ssrc0, ssrc1 } => format!(
            "{mn} {}, {}",
            operand_src(ssrc0, sw),
            operand_src(ssrc1, sw)
        ),
        Fields::Sopp { simm16 } => match inst.opcode {
            Opcode::SEndpgm | Opcode::SBarrier => mn.to_string(),
            Opcode::SWaitcnt => {
                let vm = simm16 & 0xf;
                let exp = (simm16 >> 4) & 0x7;
                let lgkm = (simm16 >> 8) & 0x1f;
                let mut parts = Vec::new();
                if vm != 0xf {
                    parts.push(format!("vmcnt({vm})"));
                }
                if lgkm != 0x1f {
                    parts.push(format!("lgkmcnt({lgkm})"));
                }
                // The counter syntax can only express the canonical
                // encoding (expcnt left at don't-care, high bits clear);
                // fall back to the raw immediate for anything else.
                if parts.is_empty() || exp != 0x7 || simm16 >> 13 != 0 {
                    format!("{mn} {simm16:#x}")
                } else {
                    format!("{mn} {}", parts.join(" "))
                }
            }
            _ if inst.opcode.is_branch() => {
                let target = (pos as i64 + 1 + i64::from(simm16 as i16)) as usize;
                match targets.get(&target) {
                    Some(l) => format!("{mn} {l}"),
                    None => format!("{mn} label_{target:04x}"),
                }
            }
            _ => format!("{mn} {simm16}"),
        },
        Fields::Smrd {
            sdst,
            sbase,
            offset,
        } => {
            let off = match offset {
                SmrdOffset::Imm(i) => format!("{i:#x}"),
                SmrdOffset::Sgpr(s) => format!("s{s}"),
            };
            format!(
                "{mn} {}, s[{}:{}], {off}",
                sgroup(sdst, dw),
                sbase,
                sbase + 1
            )
        }
        Fields::Vop2 { vdst, src0, vsrc1 } => {
            if inst.opcode == Opcode::VCndmaskB32 {
                format!("{mn} v{vdst}, {}, v{vsrc1}, vcc", operand_src(src0, 1))
            } else if inst.opcode.reads_vcc_implicitly() {
                // v_addc / v_subb: carry-out and carry-in both VCC.
                format!("{mn} v{vdst}, vcc, {}, v{vsrc1}, vcc", operand_src(src0, 1))
            } else if inst.opcode.writes_vcc_implicitly() {
                format!("{mn} v{vdst}, vcc, {}, v{vsrc1}", operand_src(src0, 1))
            } else {
                format!("{mn} v{vdst}, {}, v{vsrc1}", operand_src(src0, 1))
            }
        }
        Fields::Vop1 { vdst, src0 } => {
            if inst.opcode == Opcode::VReadfirstlaneB32 {
                // Destination is an SGPR carried in the vdst field.
                format!("{mn} s{vdst}, {}", operand_src(src0, 1))
            } else {
                format!("{mn} v{vdst}, {}", operand_src(src0, 1))
            }
        }
        Fields::Vopc { src0, vsrc1 } => {
            format!("{mn} vcc, {}, v{vsrc1}", operand_src(src0, 1))
        }
        Fields::Vop3a {
            vdst,
            src0,
            src1,
            src2,
            abs,
            neg,
            clamp,
            omod,
        } => {
            let mut s = format!(
                "{mn} v{vdst}, {}, {}",
                operand_src(src0, 1),
                operand_src(src1, 1)
            );
            if let Some(s2) = src2 {
                write!(s, ", {}", operand_src(s2, 1)).unwrap();
            }
            if abs != 0 {
                write!(s, " abs:{abs}").unwrap();
            }
            if neg != 0 {
                write!(s, " neg:{neg}").unwrap();
            }
            if clamp {
                s.push_str(" clamp");
            }
            if omod != 0 {
                write!(s, " omod:{omod}").unwrap();
            }
            s
        }
        Fields::Vop3b {
            vdst,
            sdst,
            src0,
            src1,
            src2,
        } => {
            if inst.opcode.is_vector_compare() {
                format!(
                    "{mn} {}, {}, {}",
                    sgroup(sdst, 2),
                    operand_src(src0, 1),
                    operand_src(src1, 1)
                )
            } else {
                let mut s = format!(
                    "{mn} v{vdst}, {}, {}, {}",
                    sgroup(sdst, 2),
                    operand_src(src0, 1),
                    operand_src(src1, 1)
                );
                if let Some(s2) = src2 {
                    write!(s, ", {}", sgroup(s2, 2)).unwrap();
                }
                s
            }
        }
        Fields::Ds {
            vdst,
            addr,
            data0,
            data1,
            offset0,
            offset1,
            gds,
        } => {
            let two = matches!(inst.opcode, Opcode::DsRead2B32 | Opcode::DsWrite2B32);
            let mut s = if inst.opcode.is_store() {
                if two {
                    format!("{mn} v{addr}, v{data0}, v{data1}")
                } else {
                    format!("{mn} v{addr}, v{data0}")
                }
            } else if matches!(inst.opcode, Opcode::DsReadB32 | Opcode::DsRead2B32) {
                if two {
                    format!("{mn} {}, v{addr}", vgroup(vdst, 2))
                } else {
                    format!("{mn} v{vdst}, v{addr}")
                }
            } else {
                // LDS atomics: address + data.
                format!("{mn} v{addr}, v{data0}")
            };
            if two {
                write!(s, " offset0:{offset0} offset1:{offset1}").unwrap();
            } else {
                write!(s, " offset:{offset0}").unwrap();
            }
            if gds {
                s.push_str(" gds");
            }
            s
        }
        Fields::Mubuf {
            vdata,
            vaddr,
            srsrc,
            soffset,
            offset,
            offen,
            idxen,
            glc,
        } => {
            let mut s = format!(
                "{mn} {}, v{vaddr}, s[{}:{}], {}",
                vgroup(vdata, dw),
                srsrc,
                srsrc + 3,
                operand_src(soffset, 1)
            );
            if offen {
                s.push_str(" offen");
            }
            if idxen {
                s.push_str(" idxen");
            }
            write!(s, " offset:{offset}").unwrap();
            if glc {
                s.push_str(" glc");
            }
            s
        }
        Fields::Mtbuf {
            vdata,
            vaddr,
            srsrc,
            soffset,
            offset,
            offen,
            idxen,
            dfmt,
            nfmt,
        } => {
            let mut s = format!(
                "{mn} {}, v{vaddr}, s[{}:{}], {}",
                vgroup(vdata, dw),
                srsrc,
                srsrc + 3,
                operand_src(soffset, 1)
            );
            if offen {
                s.push_str(" offen");
            }
            if idxen {
                s.push_str(" idxen");
            }
            write!(s, " offset:{offset} dfmt:{dfmt} nfmt:{nfmt}").unwrap();
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelBuilder;
    use scratch_isa::Opcode;

    #[test]
    fn disassembly_has_labels_and_addresses() {
        let mut b = KernelBuilder::new("t");
        let top = b.new_label();
        b.bind(top).unwrap();
        b.vop2(Opcode::VAddI32, 1, Operand::Vgpr(0), 0).unwrap();
        b.branch(Opcode::SCbranchVccnz, top);
        b.endpgm().unwrap();
        let text = b.finish().unwrap().disassemble().unwrap();
        assert!(text.contains(".kernel t"), "{text}");
        assert!(text.contains("label_0000:"), "{text}");
        assert!(text.contains("s_cbranch_vccnz label_0000"), "{text}");
        assert!(text.contains("0x000000"), "{text}");
    }

    #[test]
    fn carry_form_matches_codexl_style() {
        let mut b = KernelBuilder::new("t");
        b.vop2(Opcode::VAddI32, 11, Operand::Sgpr(0), 8).unwrap();
        b.endpgm().unwrap();
        let text = b.finish().unwrap().disassemble().unwrap();
        assert!(text.contains("v_add_i32 v11, vcc, s0, v8"), "{text}");
    }

    #[test]
    fn waitcnt_renders_counts() {
        let mut b = KernelBuilder::new("t");
        b.waitcnt(Some(0), None).unwrap();
        b.waitcnt(None, Some(0)).unwrap();
        b.endpgm().unwrap();
        let text = b.finish().unwrap().disassemble().unwrap();
        assert!(text.contains("s_waitcnt vmcnt(0)"), "{text}");
        assert!(text.contains("s_waitcnt lgkmcnt(0)"), "{text}");
    }
}
