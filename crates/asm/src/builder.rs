//! Programmatic kernel construction with forward-label patching.

use scratch_isa::{Fields, Instruction, Opcode, Operand, SmrdOffset};

use crate::{AsmError, Kernel, KernelMeta};

/// A branch target handle created by [`KernelBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone)]
enum Slot {
    Inst(Instruction),
    Branch { opcode: Opcode, target: Label },
}

impl Slot {
    fn size_words(&self) -> usize {
        match self {
            Slot::Inst(i) => i.size_words(),
            Slot::Branch { .. } => 1,
        }
    }
}

/// Incrementally builds a [`Kernel`], standing in for the CodeXL compiler of
/// the paper's toolchain.
///
/// Instructions are validated as they are pushed; branches take [`Label`]s
/// whose 16-bit word offsets are resolved by [`KernelBuilder::finish`].
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    slots: Vec<Slot>,
    labels: Vec<Option<usize>>,
    meta: KernelMeta,
}

impl KernelBuilder {
    /// Start a new kernel with default metadata.
    #[must_use]
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            slots: Vec::new(),
            labels: Vec::new(),
            meta: KernelMeta::default(),
        }
    }

    /// Set the SGPR budget reported to the dispatcher.
    pub fn sgprs(&mut self, n: u8) -> &mut Self {
        self.meta.sgprs = n;
        self
    }

    /// Set the VGPR budget reported to the dispatcher.
    pub fn vgprs(&mut self, n: u8) -> &mut Self {
        self.meta.vgprs = n;
        self
    }

    /// Set the per-workgroup LDS allocation, in bytes.
    pub fn lds_bytes(&mut self, n: u32) -> &mut Self {
        self.meta.lds_bytes = n;
        self
    }

    /// Set the workgroup size, in work-items.
    pub fn workgroup_size(&mut self, n: u32) -> &mut Self {
        self.meta.workgroup_size = n;
        self
    }

    /// Create a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateLabel`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(AsmError::DuplicateLabel {
                name: format!("L{}", label.0),
            });
        }
        *slot = Some(self.slots.len());
        Ok(())
    }

    /// Append a pre-built instruction.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        self.slots.push(Slot::Inst(inst));
        self
    }

    /// Choose the cheapest operand encoding for a 32-bit constant: an inline
    /// constant when the value fits `-16..=64`, a literal otherwise.
    #[must_use]
    pub fn const_u32(value: u32) -> Operand {
        let signed = value as i32;
        if (-16..=64).contains(&signed) {
            Operand::IntConst(signed as i8)
        } else {
            Operand::Literal(value)
        }
    }

    /// Choose the cheapest operand encoding for an `f32` constant.
    #[must_use]
    pub fn const_f32(value: f32) -> Operand {
        if Operand::INLINE_FLOATS
            .iter()
            .any(|&c| c.to_bits() == value.to_bits())
        {
            Operand::FloatConst(value)
        } else {
            Operand::Literal(value.to_bits())
        }
    }

    /// Append a SOP2 instruction.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn sop2(
        &mut self,
        opcode: Opcode,
        sdst: Operand,
        ssrc0: Operand,
        ssrc1: Operand,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(opcode, Fields::Sop2 { sdst, ssrc0, ssrc1 })?;
        Ok(self.push(inst))
    }

    /// Append a SOPK instruction.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn sopk(
        &mut self,
        opcode: Opcode,
        sdst: Operand,
        simm16: i16,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(opcode, Fields::Sopk { sdst, simm16 })?;
        Ok(self.push(inst))
    }

    /// Append a SOP1 instruction.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn sop1(
        &mut self,
        opcode: Opcode,
        sdst: Operand,
        ssrc0: Operand,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(opcode, Fields::Sop1 { sdst, ssrc0 })?;
        Ok(self.push(inst))
    }

    /// Append a SOPC (scalar compare) instruction.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn sopc(
        &mut self,
        opcode: Opcode,
        ssrc0: Operand,
        ssrc1: Operand,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(opcode, Fields::Sopc { ssrc0, ssrc1 })?;
        Ok(self.push(inst))
    }

    /// Append a SOPP instruction with a raw immediate (`s_endpgm`,
    /// `s_barrier`, `s_waitcnt`, …). Use [`KernelBuilder::branch`] for
    /// label-targeted branches.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn sopp(&mut self, opcode: Opcode, simm16: u16) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(opcode, Fields::Sopp { simm16 })?;
        Ok(self.push(inst))
    }

    /// Append a branch (`s_branch` / `s_cbranch_*`) to `target`.
    pub fn branch(&mut self, opcode: Opcode, target: Label) -> &mut Self {
        self.slots.push(Slot::Branch { opcode, target });
        self
    }

    /// Append an SMRD scalar load.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn smrd(
        &mut self,
        opcode: Opcode,
        sdst: Operand,
        sbase: u8,
        offset: SmrdOffset,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(
            opcode,
            Fields::Smrd {
                sdst,
                sbase,
                offset,
            },
        )?;
        Ok(self.push(inst))
    }

    /// Append a VOP2 instruction.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn vop2(
        &mut self,
        opcode: Opcode,
        vdst: u8,
        src0: Operand,
        vsrc1: u8,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(opcode, Fields::Vop2 { vdst, src0, vsrc1 })?;
        Ok(self.push(inst))
    }

    /// Append a VOP1 instruction.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn vop1(&mut self, opcode: Opcode, vdst: u8, src0: Operand) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(opcode, Fields::Vop1 { vdst, src0 })?;
        Ok(self.push(inst))
    }

    /// Append a VOPC compare writing VCC.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn vopc(
        &mut self,
        opcode: Opcode,
        src0: Operand,
        vsrc1: u8,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(opcode, Fields::Vopc { src0, vsrc1 })?;
        Ok(self.push(inst))
    }

    /// Append a VOP3a instruction (no modifiers).
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn vop3a(
        &mut self,
        opcode: Opcode,
        vdst: u8,
        src0: Operand,
        src1: Operand,
        src2: Option<Operand>,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(
            opcode,
            Fields::Vop3a {
                vdst,
                src0,
                src1,
                src2,
                abs: 0,
                neg: 0,
                clamp: false,
                omod: 0,
            },
        )?;
        Ok(self.push(inst))
    }

    /// Append a VOP3b instruction (compare / carry with explicit scalar
    /// destination).
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn vop3b(
        &mut self,
        opcode: Opcode,
        vdst: u8,
        sdst: Operand,
        src0: Operand,
        src1: Operand,
        src2: Option<Operand>,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(
            opcode,
            Fields::Vop3b {
                vdst,
                sdst,
                src0,
                src1,
                src2,
            },
        )?;
        Ok(self.push(inst))
    }

    /// Append an LDS read: `vdst = LDS[v(addr) + offset]`.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn ds_read(
        &mut self,
        opcode: Opcode,
        vdst: u8,
        addr: u8,
        offset: u8,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(
            opcode,
            Fields::Ds {
                vdst,
                addr,
                data0: 0,
                data1: 0,
                offset0: offset,
                offset1: 0,
                gds: false,
            },
        )?;
        Ok(self.push(inst))
    }

    /// Append an LDS write / atomic: `LDS[v(addr) + offset] op= v(data0)`.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn ds_write(
        &mut self,
        opcode: Opcode,
        addr: u8,
        data0: u8,
        offset: u8,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(
            opcode,
            Fields::Ds {
                vdst: 0,
                addr,
                data0,
                data1: 0,
                offset0: offset,
                offset1: 0,
                gds: false,
            },
        )?;
        Ok(self.push(inst))
    }

    /// Append a MUBUF access with `offen` addressing
    /// (`addr = base + v(vaddr) + offset`).
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn mubuf(
        &mut self,
        opcode: Opcode,
        vdata: u8,
        vaddr: u8,
        srsrc: u8,
        soffset: Operand,
        offset: u16,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(
            opcode,
            Fields::Mubuf {
                vdata,
                vaddr,
                srsrc,
                soffset,
                offset,
                offen: true,
                idxen: false,
                glc: false,
            },
        )?;
        Ok(self.push(inst))
    }

    /// Append an MTBUF access with `offen` addressing.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn mtbuf(
        &mut self,
        opcode: Opcode,
        vdata: u8,
        vaddr: u8,
        srsrc: u8,
        soffset: Operand,
        offset: u16,
    ) -> Result<&mut Self, AsmError> {
        let inst = Instruction::new(
            opcode,
            Fields::Mtbuf {
                vdata,
                vaddr,
                srsrc,
                soffset,
                offset,
                offen: true,
                idxen: false,
                dfmt: 4,
                nfmt: 4,
            },
        )?;
        Ok(self.push(inst))
    }

    /// Append `s_waitcnt` for the given counters (`None` = don't wait).
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn waitcnt(
        &mut self,
        vmcnt: Option<u8>,
        lgkmcnt: Option<u8>,
    ) -> Result<&mut Self, AsmError> {
        self.sopp(Opcode::SWaitcnt, waitcnt_imm(vmcnt, lgkmcnt))
    }

    /// Append `s_endpgm`.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn endpgm(&mut self) -> Result<&mut Self, AsmError> {
        self.sopp(Opcode::SEndpgm, 0)
    }

    /// Number of instructions appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no instructions have been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Resolve labels, encode, and produce the [`Kernel`].
    ///
    /// # Errors
    ///
    /// * [`AsmError::UnboundLabel`] for branches to labels never bound;
    /// * [`AsmError::BranchOutOfRange`] when a branch offset exceeds ±32767
    ///   words;
    /// * [`AsmError::MissingEndpgm`] when the kernel cannot terminate.
    pub fn finish(&self) -> Result<Kernel, AsmError> {
        let has_end = self.slots.iter().any(|s| match s {
            Slot::Inst(i) => i.opcode == Opcode::SEndpgm,
            Slot::Branch { .. } => false,
        });
        if !has_end {
            return Err(AsmError::MissingEndpgm);
        }

        // First pass: word offset of every slot (sizes are label-independent).
        let mut offsets = Vec::with_capacity(self.slots.len() + 1);
        let mut pos = 0usize;
        for slot in &self.slots {
            offsets.push(pos);
            pos += slot.size_words();
        }
        offsets.push(pos);

        // Second pass: encode, patching branch offsets.
        let mut words = Vec::with_capacity(pos);
        for (idx, slot) in self.slots.iter().enumerate() {
            match slot {
                Slot::Inst(inst) => words.extend(inst.encode()?),
                Slot::Branch { opcode, target } => {
                    let bound = self.labels[target.0].ok_or_else(|| AsmError::UnboundLabel {
                        name: format!("L{}", target.0),
                    })?;
                    let target_word = offsets[bound] as i64;
                    // Offset is relative to the word after the branch.
                    let delta = target_word - (offsets[idx] as i64 + 1);
                    let simm = i16::try_from(delta).map_err(|_| AsmError::BranchOutOfRange {
                        name: format!("L{}", target.0),
                        offset: delta,
                    })?;
                    let inst = Instruction::new(
                        *opcode,
                        Fields::Sopp {
                            simm16: simm as u16,
                        },
                    )?;
                    words.extend(inst.encode()?);
                }
            }
        }

        Ok(Kernel::from_words(self.name.clone(), words, self.meta))
    }
}

/// Build the `s_waitcnt` immediate: `vmcnt` in bits \[3:0\], `lgkmcnt` in
/// bits \[12:8\]; `None` leaves the counter at its "don't wait" maximum.
#[must_use]
pub fn waitcnt_imm(vmcnt: Option<u8>, lgkmcnt: Option<u8>) -> u16 {
    let vm = u16::from(vmcnt.unwrap_or(0xf).min(0xf));
    let lgkm = u16::from(lgkmcnt.unwrap_or(0x1f).min(0x1f));
    // expcnt (bits 6:4) is kept at don't-care, as MIAOW has no export unit.
    vm | (0x7 << 4) | (lgkm << 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_isa::Instruction;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut b = KernelBuilder::new("loop");
        let top = b.new_label();
        let done = b.new_label();
        b.sopk(Opcode::SMovkI32, Operand::Sgpr(0), 4).unwrap();
        b.bind(top).unwrap();
        b.sop2(
            Opcode::SSubI32,
            Operand::Sgpr(0),
            Operand::Sgpr(0),
            Operand::IntConst(1),
        )
        .unwrap();
        b.sopc(Opcode::SCmpEqI32, Operand::Sgpr(0), Operand::IntConst(0))
            .unwrap();
        b.branch(Opcode::SCbranchScc1, done);
        b.branch(Opcode::SBranch, top);
        b.bind(done).unwrap();
        b.endpgm().unwrap();
        let kernel = b.finish().unwrap();

        let insts = kernel.instructions().unwrap();
        assert_eq!(insts.len(), 6);
        // s_cbranch_scc1 at word 3 jumps to word 5: offset +1.
        let (_, cb) = insts[3];
        match cb.fields {
            Fields::Sopp { simm16 } => assert_eq!(simm16 as i16, 1),
            other => panic!("unexpected fields {other:?}"),
        }
        // s_branch at word 4 jumps back to word 1: offset -4.
        let (_, br) = insts[4];
        match br.fields {
            Fields::Sopp { simm16 } => assert_eq!(simm16 as i16, -4),
            other => panic!("unexpected fields {other:?}"),
        }
    }

    #[test]
    fn branch_offsets_account_for_wide_instructions() {
        let mut b = KernelBuilder::new("wide");
        let done = b.new_label();
        // 2-word instruction (literal) between branch and target.
        b.branch(Opcode::SBranch, done);
        b.sop1(Opcode::SMovB32, Operand::Sgpr(0), Operand::Literal(0xabcd))
            .unwrap();
        b.bind(done).unwrap();
        b.endpgm().unwrap();
        let kernel = b.finish().unwrap();
        let insts = kernel.instructions().unwrap();
        let (_, br) = insts[0];
        match br.fields {
            Fields::Sopp { simm16 } => assert_eq!(simm16 as i16, 2),
            other => panic!("unexpected fields {other:?}"),
        }
    }

    #[test]
    fn unbound_label_rejected() {
        let mut b = KernelBuilder::new("bad");
        let l = b.new_label();
        b.branch(Opcode::SBranch, l);
        b.endpgm().unwrap();
        assert!(matches!(b.finish(), Err(AsmError::UnboundLabel { .. })));
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut b = KernelBuilder::new("bad");
        let l = b.new_label();
        b.bind(l).unwrap();
        assert!(matches!(b.bind(l), Err(AsmError::DuplicateLabel { .. })));
    }

    #[test]
    fn missing_endpgm_rejected() {
        let mut b = KernelBuilder::new("bad");
        b.sop1(Opcode::SMovB32, Operand::Sgpr(0), Operand::Sgpr(1))
            .unwrap();
        assert_eq!(b.finish().unwrap_err(), AsmError::MissingEndpgm);
    }

    #[test]
    fn const_selection() {
        assert_eq!(KernelBuilder::const_u32(7), Operand::IntConst(7));
        assert_eq!(KernelBuilder::const_u32(64), Operand::IntConst(64));
        assert_eq!(KernelBuilder::const_u32(65), Operand::Literal(65));
        assert_eq!(
            KernelBuilder::const_u32(0xffff_fff0),
            Operand::IntConst(-16)
        );
        assert_eq!(KernelBuilder::const_f32(1.0), Operand::FloatConst(1.0));
        assert_eq!(
            KernelBuilder::const_f32(3.5),
            Operand::Literal(3.5f32.to_bits())
        );
    }

    #[test]
    fn waitcnt_bitfield() {
        assert_eq!(waitcnt_imm(Some(0), None) & 0xf, 0);
        assert_eq!(waitcnt_imm(None, Some(0)) >> 8, 0);
        assert_eq!(waitcnt_imm(None, None) & 0xf, 0xf);
        assert_eq!(waitcnt_imm(None, None) >> 8, 0x1f);
    }

    #[test]
    fn meta_builders() {
        let mut b = KernelBuilder::new("m");
        b.sgprs(12).vgprs(6).lds_bytes(256).workgroup_size(128);
        b.endpgm().unwrap();
        let k = b.finish().unwrap();
        assert_eq!(k.meta().sgprs, 12);
        assert_eq!(k.meta().vgprs, 6);
        assert_eq!(k.meta().lds_bytes, 256);
        assert_eq!(k.meta().workgroup_size, 128);
    }

    #[test]
    fn push_accepts_prebuilt() {
        let inst = Instruction::new(Opcode::SEndpgm, Fields::Sopp { simm16: 0 }).unwrap();
        let mut b = KernelBuilder::new("p");
        b.push(inst);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        b.finish().unwrap();
    }
}
