//! Robustness: the assembler must reject arbitrary garbage with an error,
//! never a panic, and must report accurate line numbers.

use proptest::prelude::*;
use scratch_asm::{assemble, AsmError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary text never panics the assembler.
    #[test]
    fn arbitrary_text_never_panics(text in ".{0,400}") {
        let _ = assemble(&text);
    }

    /// Arbitrary lines spliced between valid instructions never panic and
    /// keep line numbers accurate.
    #[test]
    fn garbage_line_reports_its_number(
        garbage in "[a-z_]{1,12}( [a-z0-9_,\\[\\]]{1,10}){0,3}",
        prefix_lines in 0usize..5,
    ) {
        // Skip inputs that accidentally form valid assembly.
        prop_assume!(scratch_isa::Opcode::from_mnemonic(
            garbage.split_whitespace().next().unwrap_or("")
        ).is_none());
        let mut text = String::new();
        for _ in 0..prefix_lines {
            text.push_str("s_mov_b32 s0, s1\n");
        }
        text.push_str(&garbage);
        text.push('\n');
        text.push_str("s_endpgm\n");
        match assemble(&text) {
            Err(AsmError::Syntax { line, .. }) => {
                prop_assert_eq!(line, prefix_lines + 1);
            }
            other => prop_assert!(false, "expected syntax error, got {:?}", other),
        }
    }

    /// Valid numeric immediates in any radix parse consistently.
    #[test]
    fn numeric_immediates_roundtrip(v in any::<i16>()) {
        let text = format!(".kernel n\ns_movk_i32 s0, {v}\ns_endpgm\n");
        let kernel = assemble(&text).unwrap();
        let insts = kernel.instructions().unwrap();
        match insts[0].1.fields {
            scratch_isa::Fields::Sopk { simm16, .. } => prop_assert_eq!(simm16, v),
            ref other => prop_assert!(false, "unexpected fields {:?}", other),
        }
    }
}

#[test]
fn empty_and_comment_only_inputs() {
    assert!(matches!(assemble(""), Err(AsmError::MissingEndpgm)));
    assert!(matches!(
        assemble("// nothing here\n; or here\n"),
        Err(AsmError::MissingEndpgm)
    ));
    assert!(assemble("s_endpgm // trailing comment\n").is_ok());
}

#[test]
fn duplicate_text_labels_rejected() {
    let text = "a:\ns_endpgm\na:\n";
    assert!(matches!(assemble(text), Err(AsmError::Syntax { .. })));
}
