//! Robustness: the assembler must reject arbitrary garbage with an error,
//! never a panic, and must report accurate line numbers.

use proptest::prelude::*;
use scratch_asm::{assemble, AsmError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary text never panics the assembler.
    #[test]
    fn arbitrary_text_never_panics(text in ".{0,400}") {
        let _ = assemble(&text);
    }

    /// Arbitrary lines spliced between valid instructions never panic and
    /// keep line numbers accurate.
    #[test]
    fn garbage_line_reports_its_number(
        garbage in "[a-z_]{1,12}( [a-z0-9_,\\[\\]]{1,10}){0,3}",
        prefix_lines in 0usize..5,
    ) {
        // Skip inputs that accidentally form valid assembly.
        prop_assume!(scratch_isa::Opcode::from_mnemonic(
            garbage.split_whitespace().next().unwrap_or("")
        ).is_none());
        let mut text = String::new();
        for _ in 0..prefix_lines {
            text.push_str("s_mov_b32 s0, s1\n");
        }
        text.push_str(&garbage);
        text.push('\n');
        text.push_str("s_endpgm\n");
        match assemble(&text) {
            Err(AsmError::Syntax { line, .. }) => {
                prop_assert_eq!(line, prefix_lines + 1);
            }
            other => prop_assert!(false, "expected syntax error, got {:?}", other),
        }
    }

    /// Valid numeric immediates in any radix parse consistently.
    #[test]
    fn numeric_immediates_roundtrip(v in any::<i16>()) {
        let text = format!(".kernel n\ns_movk_i32 s0, {v}\ns_endpgm\n");
        let kernel = assemble(&text).unwrap();
        let insts = kernel.instructions().unwrap();
        match insts[0].1.fields {
            scratch_isa::Fields::Sopk { simm16, .. } => prop_assert_eq!(simm16, v),
            ref other => prop_assert!(false, "unexpected fields {:?}", other),
        }
    }
}

#[test]
fn empty_and_comment_only_inputs() {
    assert!(matches!(assemble(""), Err(AsmError::MissingEndpgm)));
    assert!(matches!(
        assemble("// nothing here\n; or here\n"),
        Err(AsmError::MissingEndpgm)
    ));
    assert!(assemble("s_endpgm // trailing comment\n").is_ok());
}

#[test]
fn duplicate_text_labels_rejected() {
    let text = "a:\ns_endpgm\na:\n";
    assert!(matches!(assemble(text), Err(AsmError::Syntax { .. })));
}

/// Every out-of-range immediate is rejected with a syntax error instead of
/// being silently truncated into a different (valid-looking) encoding.
#[test]
fn out_of_range_immediates_rejected() {
    let cases = [
        (".sgprs 300\ns_endpgm\n", ".sgprs"),
        (".vgprs -1\ns_endpgm\n", ".vgprs"),
        (".lds 0x100000000\ns_endpgm\n", ".lds"),
        (".wgsize 4294967296\ns_endpgm\n", ".wgsize"),
        ("s_movk_i32 s0, 65536\ns_endpgm\n", "sopk"),
        ("s_nop 65536\ns_endpgm\n", "sopp"),
        ("s_mov_b32 s0, lit(0x1ffffffff)\ns_endpgm\n", "literal"),
        ("v_add_f32 v1, 4294967296, v0\ns_endpgm\n", "constant"),
        ("s_buffer_load_dword s8, s[4:7], 256\ns_endpgm\n", "smrd"),
        ("s_mov_b32 s[999:1000], s0\ns_endpgm\n", "sgpr group"),
        (
            "buffer_load_dword v1, v2, s[4:7], 0 offset:4096\ns_endpgm\n",
            "mubuf offset",
        ),
        (
            "tbuffer_load_format_x v1, v2, s[4:7], 0 dfmt:16\ns_endpgm\n",
            "dfmt",
        ),
        (
            "tbuffer_load_format_x v1, v2, s[4:7], 0 nfmt:8\ns_endpgm\n",
            "nfmt",
        ),
        ("ds_read_b32 v1, v2 offset:256\ns_endpgm\n", "ds offset"),
        ("v_mul_f32 v1, v2, v3 abs:8\ns_endpgm\n", "abs"),
        ("v_mul_f32 v1, v2, v3 omod:4\ns_endpgm\n", "omod"),
        ("s_waitcnt vmcnt(16)\ns_endpgm\n", "vmcnt"),
        ("s_waitcnt lgkmcnt(32)\ns_endpgm\n", "lgkmcnt"),
        ("s_waitcnt 0x10000\ns_endpgm\n", "waitcnt raw"),
    ];
    for (text, what) in cases {
        assert!(
            matches!(assemble(text), Err(AsmError::Syntax { .. })),
            "{what}: `{}` should be a syntax error, got {:?}",
            text.lines().next().unwrap(),
            assemble(text).map(|k| k.name().to_string())
        );
    }
}

/// Malformed `s_waitcnt` forms error out cleanly.
#[test]
fn malformed_waitcnt_rejected() {
    for text in [
        "s_waitcnt vmcnt(0) 7\ns_endpgm\n",  // mixed counter + raw
        "s_waitcnt vmcnt(\ns_endpgm\n",      // unclosed paren
        "s_waitcnt vmcnt(zero)\ns_endpgm\n", // non-numeric count
        "s_waitcnt expcnt(0)\ns_endpgm\n",   // unsupported counter
    ] {
        assert!(
            matches!(assemble(text), Err(AsmError::Syntax { .. })),
            "`{}` should be rejected",
            text.lines().next().unwrap()
        );
    }
    // ...while the supported forms still parse.
    for text in [
        "s_waitcnt vmcnt(0)\ns_endpgm\n",
        "s_waitcnt lgkmcnt(31)\ns_endpgm\n",
        "s_waitcnt vmcnt(0) lgkmcnt(0)\ns_endpgm\n",
        "s_waitcnt lgkmcnt(3) vmcnt(2)\ns_endpgm\n",
        "s_waitcnt 0x70\ns_endpgm\n",
    ] {
        assert!(assemble(text).is_ok(), "`{}` should parse", text);
    }
}

/// `_e64` forces the VOP3 encoding of a narrow instruction; it is rejected
/// on mnemonics whose natural encoding is already VOP3 (or not vector).
#[test]
fn e64_suffix_forces_wide_encoding() {
    let narrow = assemble(".kernel a\nv_xor_b32 v1, v2, v3\ns_endpgm\n").unwrap();
    let wide = assemble(".kernel a\nv_xor_b32_e64 v1, v2, v3\ns_endpgm\n").unwrap();
    assert_eq!(narrow.words().len() + 1, wide.words().len());
    let wide_insts = wide.instructions().unwrap();
    assert!(matches!(
        wide_insts[0].1.fields,
        scratch_isa::Fields::Vop3a { .. }
    ));

    for text in [
        "s_mov_b32_e64 s0, s1\ns_endpgm\n",             // scalar op
        "v_mad_u32_u24_e64 v1, v2, v3, v4\ns_endpgm\n", // already VOP3
        "v_frobnicate_e64 v1, v2\ns_endpgm\n",          // unknown base mnemonic
    ] {
        assert!(
            matches!(assemble(text), Err(AsmError::Syntax { .. })),
            "`{}` should be rejected",
            text.lines().next().unwrap()
        );
    }
}
