//! Property test: `assemble(disassemble(k))` reproduces the binary exactly,
//! for kernels of random instructions drawn from every format family.

use proptest::prelude::*;
use scratch_asm::{assemble, disassemble, Kernel, KernelMeta};
use scratch_isa::{Fields, Instruction, Opcode, Operand, SmrdOffset};

fn scalar_dst() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u8..100).prop_map(Operand::Sgpr),
        Just(Operand::VccLo),
        Just(Operand::ExecLo),
        Just(Operand::M0),
    ]
}

fn scalar_src() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u8..100).prop_map(Operand::Sgpr),
        Just(Operand::VccLo),
        Just(Operand::ExecLo),
        (-16i8..=64).prop_map(Operand::IntConst),
        any::<u32>().prop_map(Operand::Literal),
    ]
}

fn vector_src() -> impl Strategy<Value = Operand> {
    prop_oneof![
        scalar_src(),
        any::<u8>().prop_map(Operand::Vgpr),
        (0usize..8).prop_map(|i| Operand::FloatConst(Operand::INLINE_FLOATS[i])),
    ]
}

fn no_lit(op: Operand) -> Operand {
    match op {
        Operand::Literal(_) => Operand::IntConst(1),
        o => o,
    }
}

fn opcode_of(pred: fn(&Opcode) -> bool) -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::ALL.iter().copied().filter(pred).collect::<Vec<_>>())
}

fn arb_inst() -> impl Strategy<Value = Instruction> {
    use scratch_isa::Format as F;
    prop_oneof![
        (
            opcode_of(|o| o.format() == F::Sop2),
            scalar_dst(),
            scalar_src(),
            scalar_src()
        )
            .prop_filter_map("v", |(op, d, a, b)| {
                if a.is_literal() && b.is_literal() {
                    return None;
                }
                Instruction::new(
                    op,
                    Fields::Sop2 {
                        sdst: d,
                        ssrc0: a,
                        ssrc1: b,
                    },
                )
                .ok()
            }),
        (
            opcode_of(|o| o.format() == F::Sopk),
            scalar_dst(),
            any::<i16>()
        )
            .prop_filter_map("v", |(op, d, i)| {
                Instruction::new(op, Fields::Sopk { sdst: d, simm16: i }).ok()
            }),
        (
            opcode_of(|o| o.format() == F::Sop1),
            scalar_dst(),
            scalar_src()
        )
            .prop_filter_map("v", |(op, d, a)| {
                Instruction::new(op, Fields::Sop1 { sdst: d, ssrc0: a }).ok()
            }),
        (
            opcode_of(|o| o.format() == F::Sopc),
            scalar_src(),
            scalar_src()
        )
            .prop_filter_map("v", |(op, a, b)| {
                if a.is_literal() && b.is_literal() {
                    return None;
                }
                Instruction::new(op, Fields::Sopc { ssrc0: a, ssrc1: b }).ok()
            }),
        (
            opcode_of(|o| o.format() == F::Smrd),
            scalar_dst(),
            (0u8..50).prop_map(|n| n * 2),
            prop_oneof![
                (0u8..=255).prop_map(SmrdOffset::Imm),
                (0u8..100).prop_map(SmrdOffset::Sgpr)
            ]
        )
            .prop_filter_map("v", |(op, d, b, off)| {
                Instruction::new(
                    op,
                    Fields::Smrd {
                        sdst: d,
                        sbase: b,
                        offset: off,
                    },
                )
                .ok()
            }),
        (
            opcode_of(|o| o.format() == F::Vop2),
            any::<u8>(),
            vector_src(),
            any::<u8>()
        )
            .prop_filter_map("v", |(op, d, a, b)| {
                Instruction::new(
                    op,
                    Fields::Vop2 {
                        vdst: d,
                        src0: a,
                        vsrc1: b,
                    },
                )
                .ok()
            }),
        (
            opcode_of(|o| o.format() == F::Vop1),
            any::<u8>(),
            vector_src()
        )
            .prop_filter_map("v", |(op, d, a)| {
                Instruction::new(op, Fields::Vop1 { vdst: d, src0: a }).ok()
            }),
        (
            opcode_of(|o| o.format() == F::Vopc),
            vector_src(),
            any::<u8>()
        )
            .prop_filter_map("v", |(op, a, b)| {
                Instruction::new(op, Fields::Vopc { src0: a, vsrc1: b }).ok()
            }),
        (
            opcode_of(|o| o.format() == F::Vopc),
            (0u8..50).prop_map(|n| n * 2),
            vector_src(),
            vector_src()
        )
            .prop_filter_map("v", |(op, sd, a, b)| {
                Instruction::new(
                    op,
                    Fields::Vop3b {
                        vdst: 0,
                        sdst: Operand::Sgpr(sd),
                        src0: no_lit(a),
                        src1: no_lit(b),
                        src2: None,
                    },
                )
                .ok()
            }),
        (
            opcode_of(|o| o.format() == F::Vop3a),
            any::<u8>(),
            vector_src(),
            vector_src(),
            vector_src()
        )
            .prop_filter_map("v", |(op, d, a, b, c)| {
                let src2 = (op.src_count() == 3).then_some(no_lit(c));
                Instruction::new(
                    op,
                    Fields::Vop3a {
                        vdst: d,
                        src0: no_lit(a),
                        src1: no_lit(b),
                        src2,
                        abs: 0,
                        neg: 0,
                        clamp: false,
                        omod: 0,
                    },
                )
                .ok()
            }),
        (
            opcode_of(|o| o.format() == F::Ds),
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            any::<u8>()
        )
            .prop_filter_map("v", |(op, vd, addr, d0, d1, off)| {
                let two = matches!(op, Opcode::DsRead2B32 | Opcode::DsWrite2B32);
                Instruction::new(
                    op,
                    Fields::Ds {
                        vdst: vd,
                        addr,
                        data0: d0,
                        data1: if two { d1 } else { 0 },
                        offset0: off,
                        offset1: if two { off / 2 } else { 0 },
                        gds: false,
                    },
                )
                .ok()
            }),
        (
            opcode_of(|o| o.format() == F::Mubuf),
            any::<u8>(),
            any::<u8>(),
            (0u8..26).prop_map(|n| n * 4),
            prop_oneof![
                (0u8..100).prop_map(Operand::Sgpr),
                Just(Operand::IntConst(0))
            ],
            0u16..0x1000,
            any::<bool>(),
            any::<bool>()
        )
            .prop_filter_map("v", |(op, vd, va, sr, so, off, offen, glc)| {
                Instruction::new(
                    op,
                    Fields::Mubuf {
                        vdata: vd,
                        vaddr: va,
                        srsrc: sr,
                        soffset: so,
                        offset: off,
                        offen,
                        idxen: false,
                        glc,
                    },
                )
                .ok()
            }),
        (
            opcode_of(|o| o.format() == F::Mtbuf),
            any::<u8>(),
            any::<u8>(),
            (0u8..26).prop_map(|n| n * 4),
            0u16..0x1000,
            any::<bool>()
        )
            .prop_filter_map("v", |(op, vd, va, sr, off, offen)| {
                Instruction::new(
                    op,
                    Fields::Mtbuf {
                        vdata: vd,
                        vaddr: va,
                        srsrc: sr,
                        soffset: Operand::IntConst(0),
                        offset: off,
                        offen,
                        idxen: false,
                        dfmt: 4,
                        nfmt: 4,
                    },
                )
                .ok()
            }),
    ]
}

// DS vdst on stores/atomics is "don't care" in the text form; normalise it
// (and the unused data fields of reads) the way the parser reconstructs them.
fn normalise(inst: Instruction) -> Instruction {
    match inst.fields {
        Fields::Ds {
            addr,
            data0,
            data1,
            offset0,
            offset1,
            gds,
            vdst,
        } => {
            let op = inst.opcode;
            let is_read = matches!(op, Opcode::DsReadB32 | Opcode::DsRead2B32);
            let fields = Fields::Ds {
                vdst: if is_read { vdst } else { 0 },
                addr,
                data0: if is_read { 0 } else { data0 },
                data1: if matches!(op, Opcode::DsWrite2B32) {
                    data1
                } else {
                    0
                },
                offset0,
                offset1,
                gds,
            };
            Instruction::new(op, fields).unwrap()
        }
        _ => inst,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn text_roundtrip(insts in prop::collection::vec(arb_inst(), 1..40)) {
        let mut words = Vec::new();
        for inst in &insts {
            words.extend(normalise(*inst).encode().unwrap());
        }
        // Terminate so the kernel is well-formed.
        words.extend(
            Instruction::new(Opcode::SEndpgm, Fields::Sopp { simm16: 0 })
                .unwrap()
                .encode()
                .unwrap(),
        );
        let kernel = Kernel::from_words("prop", words.clone(), KernelMeta::default());
        let text = disassemble(&kernel).expect("disassemble");
        let back = assemble(&text).unwrap_or_else(|e| panic!("assemble failed: {e}\n{text}"));
        prop_assert_eq!(back.words(), &words[..], "text:\n{}", text);
        prop_assert_eq!(back.meta(), kernel.meta());
    }
}
