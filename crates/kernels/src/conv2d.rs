//! 2-D convolution (INT32 and SP-FP) — the paper's running example
//! (Fig. 5) and a Fig. 7 sweep workload.

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand, SmrdOffset};
use scratch_system::{abi, RunReport, System, SystemConfig};

use crate::common::{
    arg, check_f32, check_u32, f32_bits, gid_x, load_args, mask_lt, random_f32, random_u32, unmask,
    CountedLoop,
};
use crate::{BenchError, Benchmark};

/// Valid-mode 2-D convolution: input `(b+k-1)²`, mask `k²`, output `b²`.
/// Grid `[ceil(b/64), b, 1]`; mask coefficients stream through scalar
/// loads (they are uniform across the wavefront, as in the paper's Fig. 5
/// code).
#[derive(Debug, Clone, Copy)]
pub struct Conv2d {
    /// Output block dimension.
    pub b: u32,
    /// Convolution kernel dimension.
    pub k: u32,
    /// Single-precision floating point when `true`.
    pub fp: bool,
}

impl Conv2d {
    /// A `b × b` convolution with a `k × k` mask.
    #[must_use]
    pub fn new(b: u32, k: u32, fp: bool) -> Conv2d {
        assert!(k >= 1 && b >= 1);
        Conv2d { b, k, fp }
    }

    fn width(&self) -> u32 {
        self.b + self.k - 1
    }

    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new(self.name());
        b.sgprs(32).vgprs(10);
        // args: [in, mask, out, b, k]
        load_args(&mut b, 5)?;
        gid_x(&mut b, 3, 64)?; // v3 = x
        mask_lt(&mut b, 3, arg(3), 14)?;
        // acc = 0
        b.vop1(Opcode::VMovB32, 5, Operand::IntConst(0))?;
        // s[2:3] = mask pointer.
        b.sop1(Opcode::SMovB32, Operand::Sgpr(2), arg(1))?;
        b.sop1(Opcode::SMovB32, Operand::Sgpr(3), Operand::IntConst(0))?;
        // s26 = input width W = b + k - 1.
        b.sop2(Opcode::SAddU32, Operand::Sgpr(26), arg(3), arg(4))?;
        b.sop2(
            Opcode::SSubU32,
            Operand::Sgpr(26),
            Operand::Sgpr(26),
            Operand::IntConst(1),
        )?;
        // s28 = y + ky (starts at y = wg_id_y).
        b.sop1(
            Opcode::SMovB32,
            Operand::Sgpr(28),
            Operand::Sgpr(abi::WG_ID_Y),
        )?;

        let ky = CountedLoop::begin(&mut b, 19, arg(4))?;
        // s29 = in + (y+ky)*W*4 (row base as soffset).
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(1),
            Operand::Sgpr(28),
            Operand::Sgpr(26),
        )?;
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(1),
            Operand::Sgpr(1),
            Operand::IntConst(2),
        )?;
        b.sop2(Opcode::SAddU32, Operand::Sgpr(29), arg(0), Operand::Sgpr(1))?;
        // v4 = x byte offset (kx advances it by 4 each inner step).
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;

        let kx = CountedLoop::begin(&mut b, 25, arg(4))?;
        b.smrd(Opcode::SLoadDword, Operand::Sgpr(1), 2, SmrdOffset::Imm(0))?;
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(2),
            Operand::Sgpr(2),
            Operand::IntConst(4),
        )?;
        b.mubuf(Opcode::BufferLoadDword, 6, 4, 4, Operand::Sgpr(29), 0)?;
        b.waitcnt(Some(0), Some(0))?;
        if self.fp {
            b.vop2(Opcode::VMacF32, 5, Operand::Sgpr(1), 6)?;
        } else {
            b.vop3a(
                Opcode::VMulLoI32,
                7,
                Operand::Sgpr(1),
                Operand::Vgpr(6),
                None,
            )?;
            b.vop2(Opcode::VAddI32, 5, Operand::Vgpr(7), 5)?;
        }
        b.vop2(Opcode::VAddI32, 4, Operand::IntConst(4), 4)?;
        kx.end(&mut b)?;

        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(28),
            Operand::Sgpr(28),
            Operand::IntConst(1),
        )?;
        ky.end(&mut b)?;

        // Store out[y*b + x].
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(0),
            Operand::Sgpr(abi::WG_ID_Y),
            arg(3),
        )?;
        b.vop2(Opcode::VAddI32, 8, Operand::Sgpr(0), 3)?;
        b.vop2(Opcode::VLshlrevB32, 8, Operand::IntConst(2), 8)?;
        b.mubuf(Opcode::BufferStoreDword, 5, 8, 4, arg(2), 0)?;
        b.waitcnt(Some(0), None)?;
        unmask(&mut b, 14)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for Conv2d {
    fn name(&self) -> String {
        format!("2D Conv ({})", if self.fp { "SP FP" } else { "INT32" })
    }

    fn uses_fp(&self) -> bool {
        self.fp
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let (bsz, k, w) = (self.b as usize, self.k as usize, self.width() as usize);
        let grid = [self.b.div_ceil(64), self.b, 1];

        if self.fp {
            let input = random_f32(w * w, 51);
            let mask = random_f32(k * k, 52);
            let a_in = sys.alloc_words(&f32_bits(&input));
            let a_mask = sys.alloc_words(&f32_bits(&mask));
            let a_out = sys.alloc((bsz * bsz) as u64 * 4);
            sys.set_args(&[a_in as u32, a_mask as u32, a_out as u32, self.b, self.k]);
            sys.dispatch(grid)?;
            let mut expected = vec![0f32; bsz * bsz];
            for y in 0..bsz {
                for x in 0..bsz {
                    let mut acc = 0f32;
                    for ky in 0..k {
                        for kx in 0..k {
                            acc = mask[ky * k + kx].mul_add(input[(y + ky) * w + (x + kx)], acc);
                        }
                    }
                    expected[y * bsz + x] = acc;
                }
            }
            check_f32(
                &self.name(),
                &sys.read_words(a_out, bsz * bsz),
                &expected,
                1e-5,
            )?;
        } else {
            let input = random_u32(w * w, 51, 1 << 10);
            let mask = random_u32(k * k, 52, 1 << 8);
            let a_in = sys.alloc_words(&input);
            let a_mask = sys.alloc_words(&mask);
            let a_out = sys.alloc((bsz * bsz) as u64 * 4);
            sys.set_args(&[a_in as u32, a_mask as u32, a_out as u32, self.b, self.k]);
            sys.dispatch(grid)?;
            let mut expected = vec![0u32; bsz * bsz];
            for y in 0..bsz {
                for x in 0..bsz {
                    let mut acc = 0u32;
                    for ky in 0..k {
                        for kx in 0..k {
                            acc = acc.wrapping_add(
                                mask[ky * k + kx].wrapping_mul(input[(y + ky) * w + (x + kx)]),
                            );
                        }
                    }
                    expected[y * bsz + x] = acc;
                }
            }
            check_u32(&self.name(), &sys.read_words(a_out, bsz * bsz), &expected)?;
        }
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    #[test]
    fn int_conv_validates() {
        Conv2d::new(64, 3, false)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("int conv2d");
    }

    #[test]
    fn fp_conv_validates() {
        Conv2d::new(64, 3, true)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("fp conv2d");
    }

    #[test]
    fn masked_small_block_validates() {
        Conv2d::new(16, 5, false)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("masked conv2d");
    }
}
