//! Matrix multiplication (INT32 and SP-FP) — one work-item per output
//! element, scalar loads streaming the A row (uniform across the row's
//! work-items) and vector loads gathering the B column.

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand, SmrdOffset};
use scratch_system::{abi, RunReport, System, SystemConfig};

use crate::common::{
    arg, check_f32, check_u32, f32_bits, gid_x, load_args, random_f32, random_u32, CountedLoop,
};
use crate::{BenchError, Benchmark};

/// `c = a × b` over `n × n` matrices; grid `[n/64, n, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct MatrixMul {
    /// Matrix dimension (multiple of 64).
    pub n: u32,
    /// Single-precision floating point when `true`.
    pub fp: bool,
}

impl MatrixMul {
    /// A matrix-multiply workload on `n × n` matrices.
    #[must_use]
    pub fn new(n: u32, fp: bool) -> MatrixMul {
        assert!(
            n.is_multiple_of(64),
            "n must be a multiple of the wavefront"
        );
        MatrixMul { n, fp }
    }

    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new(self.name());
        b.sgprs(32).vgprs(10);
        // args: [a, b, c, n]
        load_args(&mut b, 4)?;
        gid_x(&mut b, 3, 64)?; // v3 = column
        b.vop1(Opcode::VMovB32, 5, Operand::IntConst(0))?; // acc
                                                           // s[2:3] = &A[row][0]; row = wg_id_y.
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(1),
            Operand::Sgpr(abi::WG_ID_Y),
            arg(3),
        )?;
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(1),
            Operand::Sgpr(1),
            Operand::IntConst(2),
        )?;
        b.sop2(Opcode::SAddU32, Operand::Sgpr(2), arg(0), Operand::Sgpr(1))?;
        b.sop1(Opcode::SMovB32, Operand::Sgpr(3), Operand::IntConst(0))?;
        // v4 = B column byte offset; s25 = B row stride in bytes.
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(25),
            arg(3),
            Operand::IntConst(2),
        )?;

        let k_loop = CountedLoop::begin(&mut b, 19, arg(3))?;
        b.smrd(Opcode::SLoadDword, Operand::Sgpr(1), 2, SmrdOffset::Imm(0))?;
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(2),
            Operand::Sgpr(2),
            Operand::IntConst(4),
        )?;
        b.mubuf(Opcode::BufferLoadDword, 6, 4, 4, arg(1), 0)?;
        b.waitcnt(Some(0), Some(0))?;
        if self.fp {
            b.vop2(Opcode::VMacF32, 5, Operand::Sgpr(1), 6)?;
        } else {
            b.vop3a(
                Opcode::VMulLoI32,
                7,
                Operand::Sgpr(1),
                Operand::Vgpr(6),
                None,
            )?;
            b.vop2(Opcode::VAddI32, 5, Operand::Vgpr(7), 5)?;
        }
        b.vop2(Opcode::VAddI32, 4, Operand::Sgpr(25), 4)?;
        k_loop.end(&mut b)?;

        // Store C[row][col].
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(0),
            Operand::Sgpr(abi::WG_ID_Y),
            arg(3),
        )?;
        b.vop2(Opcode::VAddI32, 8, Operand::Sgpr(0), 3)?;
        b.vop2(Opcode::VLshlrevB32, 8, Operand::IntConst(2), 8)?;
        b.mubuf(Opcode::BufferStoreDword, 5, 8, 4, arg(2), 0)?;
        b.waitcnt(Some(0), None)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for MatrixMul {
    fn name(&self) -> String {
        format!(
            "Matrix Multiplication ({})",
            if self.fp { "SP FP" } else { "INT32" }
        )
    }

    fn uses_fp(&self) -> bool {
        self.fp
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.n as usize;
        let grid = [self.n / 64, self.n, 1];

        if self.fp {
            let a = random_f32(n * n, 41);
            let bm = random_f32(n * n, 42);
            let a_dev = sys.alloc_words(&f32_bits(&a));
            let b_dev = sys.alloc_words(&f32_bits(&bm));
            let c_dev = sys.alloc((n * n) as u64 * 4);
            sys.set_args(&[a_dev as u32, b_dev as u32, c_dev as u32, self.n]);
            sys.dispatch(grid)?;
            let mut expected = vec![0f32; n * n];
            for y in 0..n {
                for x in 0..n {
                    let mut acc = 0f32;
                    for k in 0..n {
                        // Same order and FMA contraction as v_mac_f32.
                        acc = a[y * n + k].mul_add(bm[k * n + x], acc);
                    }
                    expected[y * n + x] = acc;
                }
            }
            check_f32(&self.name(), &sys.read_words(c_dev, n * n), &expected, 1e-5)?;
        } else {
            let a = random_u32(n * n, 41, 1 << 10);
            let bm = random_u32(n * n, 42, 1 << 10);
            let a_dev = sys.alloc_words(&a);
            let b_dev = sys.alloc_words(&bm);
            let c_dev = sys.alloc((n * n) as u64 * 4);
            sys.set_args(&[a_dev as u32, b_dev as u32, c_dev as u32, self.n]);
            sys.dispatch(grid)?;
            let mut expected = vec![0u32; n * n];
            for y in 0..n {
                for x in 0..n {
                    let mut acc = 0u32;
                    for k in 0..n {
                        acc = acc.wrapping_add(a[y * n + k].wrapping_mul(bm[k * n + x]));
                    }
                    expected[y * n + x] = acc;
                }
            }
            check_u32(&self.name(), &sys.read_words(c_dev, n * n), &expected)?;
        }
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    #[test]
    fn int_matmul_validates() {
        MatrixMul::new(64, false)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("int matmul");
    }

    #[test]
    fn fp_matmul_validates() {
        MatrixMul::new(64, true)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("fp matmul");
    }

    #[test]
    fn fp_kernel_keeps_simf_int_kernel_does_not() {
        use scratch_core::trim_kernel;
        let fp = trim_kernel(&MatrixMul::new(64, true).kernels().unwrap()[0]).unwrap();
        let int = trim_kernel(&MatrixMul::new(64, false).kernels().unwrap()[0]).unwrap();
        assert!(fp.uses_fp);
        assert!(!int.uses_fp);
    }
}
