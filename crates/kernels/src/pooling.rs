//! 2×2 pooling (max / median / average) — the paper's dedicated pooling
//! benchmarks, also reused as the CNN's pooling stage.

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand};
use scratch_system::{abi, RunReport, System, SystemConfig};

use crate::common::{arg, check_u32, gid_x, load_args, mask_lt, random_u32, unmask};
use crate::{BenchError, Benchmark};

/// The pooling function applied to each 2×2 window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Maximum of the four values.
    Max,
    /// Median of four: the mean of the two middle values.
    Median,
    /// Arithmetic mean (floor).
    Average,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Max => "Max",
            Mode::Median => "Median",
            Mode::Average => "Average",
        }
    }
}

/// Build the pooling kernel: input `2b × 2b`, output `b × b`, grid
/// `[ceil(b/64), b, 1]` with lane masking for `b < 64`.
///
/// Args: `[in, out, b]`. When `fp` is set the max mode uses `v_max_f32`
/// (as the CNN layers need); median/average remain integer.
pub(crate) fn pool_kernel(mode: Mode, fp: bool) -> Result<Kernel, AsmError> {
    let mut b = KernelBuilder::new(format!("pool_{}", mode.label().to_lowercase()));
    b.sgprs(32).vgprs(12);
    load_args(&mut b, 3)?;
    gid_x(&mut b, 3, 64)?; // v3 = x
    mask_lt(&mut b, 3, arg(2), 14)?;
    // Row bases: s1 = y*16b (bytes of row 2y), s25 = s1 + 8b.
    b.sop2(
        Opcode::SMulI32,
        Operand::Sgpr(1),
        Operand::Sgpr(abi::WG_ID_Y),
        arg(2),
    )?;
    b.sop2(
        Opcode::SLshlB32,
        Operand::Sgpr(1),
        Operand::Sgpr(1),
        Operand::IntConst(4),
    )?;
    b.sop2(
        Opcode::SLshlB32,
        Operand::Sgpr(25),
        arg(2),
        Operand::IntConst(3),
    )?;
    b.sop2(
        Opcode::SAddU32,
        Operand::Sgpr(25),
        Operand::Sgpr(1),
        Operand::Sgpr(25),
    )?;
    // Absolute row addresses via soffset.
    b.sop2(Opcode::SAddU32, Operand::Sgpr(27), arg(0), Operand::Sgpr(1))?;
    b.sop2(
        Opcode::SAddU32,
        Operand::Sgpr(28),
        arg(0),
        Operand::Sgpr(25),
    )?;
    // v4 = x*8 bytes (two elements per output column).
    b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(3), 3)?;
    b.mubuf(Opcode::BufferLoadDword, 5, 4, 4, Operand::Sgpr(27), 0)?;
    b.mubuf(Opcode::BufferLoadDword, 6, 4, 4, Operand::Sgpr(27), 4)?;
    b.mubuf(Opcode::BufferLoadDword, 7, 4, 4, Operand::Sgpr(28), 0)?;
    b.mubuf(Opcode::BufferLoadDword, 8, 4, 4, Operand::Sgpr(28), 4)?;
    b.waitcnt(Some(0), None)?;

    match (mode, fp) {
        (Mode::Max, false) => {
            b.vop3a(
                Opcode::VMax3I32,
                9,
                Operand::Vgpr(5),
                Operand::Vgpr(6),
                Some(Operand::Vgpr(7)),
            )?;
            b.vop2(Opcode::VMaxI32, 9, Operand::Vgpr(9), 8)?;
        }
        (Mode::Max, true) => {
            b.vop3a(
                Opcode::VMax3F32,
                9,
                Operand::Vgpr(5),
                Operand::Vgpr(6),
                Some(Operand::Vgpr(7)),
            )?;
            b.vop2(Opcode::VMaxF32, 9, Operand::Vgpr(9), 8)?;
        }
        (Mode::Average, _) => {
            b.vop2(Opcode::VAddI32, 9, Operand::Vgpr(5), 6)?;
            b.vop2(Opcode::VAddI32, 9, Operand::Vgpr(9), 7)?;
            b.vop2(Opcode::VAddI32, 9, Operand::Vgpr(9), 8)?;
            b.vop2(Opcode::VLshrrevB32, 9, Operand::IntConst(2), 9)?;
        }
        (Mode::Median, _) => {
            // median of four = (sum - min - max) / 2.
            b.vop2(Opcode::VAddI32, 9, Operand::Vgpr(5), 6)?;
            b.vop2(Opcode::VAddI32, 9, Operand::Vgpr(9), 7)?;
            b.vop2(Opcode::VAddI32, 9, Operand::Vgpr(9), 8)?;
            b.vop3a(
                Opcode::VMin3U32,
                10,
                Operand::Vgpr(5),
                Operand::Vgpr(6),
                Some(Operand::Vgpr(7)),
            )?;
            b.vop2(Opcode::VMinU32, 10, Operand::Vgpr(10), 8)?;
            b.vop3a(
                Opcode::VMax3U32,
                11,
                Operand::Vgpr(5),
                Operand::Vgpr(6),
                Some(Operand::Vgpr(7)),
            )?;
            b.vop2(Opcode::VMaxU32, 11, Operand::Vgpr(11), 8)?;
            b.vop2(Opcode::VSubI32, 9, Operand::Vgpr(9), 10)?;
            b.vop2(Opcode::VSubI32, 9, Operand::Vgpr(9), 11)?;
            b.vop2(Opcode::VLshrrevB32, 9, Operand::IntConst(1), 9)?;
        }
    }

    // Out offset (y*b + x) * 4.
    b.sop2(
        Opcode::SMulI32,
        Operand::Sgpr(0),
        Operand::Sgpr(abi::WG_ID_Y),
        arg(2),
    )?;
    b.vop2(Opcode::VAddI32, 10, Operand::Sgpr(0), 3)?;
    b.vop2(Opcode::VLshlrevB32, 10, Operand::IntConst(2), 10)?;
    b.mubuf(Opcode::BufferStoreDword, 9, 10, 4, arg(1), 0)?;
    b.waitcnt(Some(0), None)?;
    unmask(&mut b, 14)?;
    b.endpgm()?;
    b.finish()
}

/// CPU reference for one 2×2 window.
pub(crate) fn pool_reference(mode: Mode, vals: [u32; 4]) -> u32 {
    match mode {
        Mode::Max => *vals.iter().max_by_key(|&&v| v as i32).unwrap(),
        Mode::Average => (vals.iter().map(|&v| u64::from(v)).sum::<u64>() / 4) as u32,
        Mode::Median => {
            let sum: u64 = vals.iter().map(|&v| u64::from(v)).sum();
            let min = u64::from(*vals.iter().min().unwrap());
            let max = u64::from(*vals.iter().max().unwrap());
            ((sum - min - max) / 2) as u32
        }
    }
}

/// The standalone pooling benchmark: input `2b × 2b` INT32 image.
#[derive(Debug, Clone, Copy)]
pub struct Pooling {
    /// Output dimension.
    pub b: u32,
    /// Pooling function.
    pub mode: Mode,
}

impl Pooling {
    /// A pooling workload with output `b × b`.
    #[must_use]
    pub fn new(b: u32, mode: Mode) -> Pooling {
        Pooling { b, mode }
    }
}

impl Benchmark for Pooling {
    fn name(&self) -> String {
        format!("{} Pooling (INT32)", self.mode.label())
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![pool_kernel(self.mode, false)?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = pool_kernel(self.mode, false)?;
        let mut sys = System::new(config, &kernel)?;
        let b = self.b as usize;
        let w = 2 * b;
        // Positive int32 pixels.
        let input = random_u32(w * w, 31, 1 << 20);
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc((b * b) as u64 * 4);
        sys.set_args(&[a_in as u32, a_out as u32, self.b]);
        sys.dispatch([self.b.div_ceil(64), self.b, 1])?;

        let mut expected = vec![0u32; b * b];
        for y in 0..b {
            for x in 0..b {
                let vals = [
                    input[(2 * y) * w + 2 * x],
                    input[(2 * y) * w + 2 * x + 1],
                    input[(2 * y + 1) * w + 2 * x],
                    input[(2 * y + 1) * w + 2 * x + 1],
                ];
                expected[y * b + x] = pool_reference(self.mode, vals);
            }
        }
        check_u32(&self.name(), &sys.read_words(a_out, b * b), &expected)?;
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    #[test]
    fn all_modes_validate() {
        for mode in [Mode::Max, Mode::Median, Mode::Average] {
            Pooling::new(64, mode)
                .run(SystemConfig::preset(SystemKind::DcdPm))
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn small_output_uses_lane_masking() {
        // b = 16 < wavefront: upper lanes must be masked off.
        Pooling::new(16, Mode::Max)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("masked pooling");
    }

    #[test]
    fn median_reference_is_middle_mean() {
        assert_eq!(pool_reference(Mode::Median, [1, 2, 3, 4]), 2);
        assert_eq!(pool_reference(Mode::Median, [10, 10, 10, 10]), 10);
        assert_eq!(pool_reference(Mode::Max, [4, 9, 2, 7]), 9);
        assert_eq!(pool_reference(Mode::Average, [1, 2, 3, 4]), 2);
    }
}
