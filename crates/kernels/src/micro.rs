//! Characterisation workloads for the Fig. 4 instruction-mix study and the
//! instruction-domain validation of §2.3: reduction, prefix sum, histogram,
//! binary search and the fast Walsh transform. They exercise the LDS,
//! barriers, atomics, bit operations and data-dependent control flow that
//! the 17 main applications touch only lightly.

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand};
use scratch_system::{RunReport, System, SystemConfig};

use crate::common::{arg, check_u32, gid_x, load_args, random_u32, smov, unmask, CountedLoop};
use crate::{BenchError, Benchmark};

// --------------------------------------------------------------- Reduction

/// Per-workgroup tree reduction in the LDS; the host sums the partials.
#[derive(Debug, Clone, Copy)]
pub struct Reduction {
    /// Elements (multiple of 64).
    pub n: u32,
}

impl Reduction {
    /// A sum-reduction of `n` values.
    #[must_use]
    pub fn new(n: u32) -> Reduction {
        assert!(n.is_multiple_of(64));
        Reduction { n }
    }

    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("reduction");
        b.sgprs(32).vgprs(12).lds_bytes(64 * 4);
        load_args(&mut b, 2)?;
        gid_x(&mut b, 3, 64)?;
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
        b.mubuf(Opcode::BufferLoadDword, 5, 4, 4, arg(0), 0)?;
        b.waitcnt(Some(0), None)?;
        // lds[tid] = x.
        b.vop2(Opcode::VLshlrevB32, 6, Operand::IntConst(2), 0)?;
        b.ds_write(Opcode::DsWriteB32, 6, 5, 0)?;
        b.waitcnt(None, Some(0))?;
        b.sopp(Opcode::SBarrier, 0)?;
        // Tree: strides 32..1.
        for stride in [32u32, 16, 8, 4, 2, 1] {
            smov(&mut b, 27, stride)?;
            // lanes tid < stride participate.
            b.vopc(Opcode::VCmpGtU32, Operand::Sgpr(27), 0)?;
            b.sop1(Opcode::SAndSaveexecB64, Operand::Sgpr(14), Operand::VccLo)?;
            b.vop2(Opcode::VAddI32, 8, Operand::Sgpr(27), 0)?;
            b.vop2(Opcode::VLshlrevB32, 8, Operand::IntConst(2), 8)?;
            b.ds_read(Opcode::DsReadB32, 9, 8, 0)?;
            b.waitcnt(None, Some(0))?;
            b.vop2(Opcode::VAddI32, 5, Operand::Vgpr(9), 5)?;
            b.ds_write(Opcode::DsWriteB32, 6, 5, 0)?;
            b.waitcnt(None, Some(0))?;
            unmask(&mut b, 14)?;
            b.sopp(Opcode::SBarrier, 0)?;
        }
        // Lane 0 stores the partial to out[wg_id].
        b.vopc(Opcode::VCmpEqU32, Operand::IntConst(0), 0)?;
        b.sop1(Opcode::SAndSaveexecB64, Operand::Sgpr(14), Operand::VccLo)?;
        b.vop1(Opcode::VMovB32, 10, Operand::Sgpr(16))?;
        b.vop2(Opcode::VLshlrevB32, 10, Operand::IntConst(2), 10)?;
        b.mubuf(Opcode::BufferStoreDword, 5, 10, 4, arg(1), 0)?;
        b.waitcnt(Some(0), None)?;
        unmask(&mut b, 14)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for Reduction {
    fn name(&self) -> String {
        "Reduction (INT32)".to_string()
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.n as usize;
        let wgs = self.n / 64;
        let input = random_u32(n, 101, 1 << 20);
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc(u64::from(wgs) * 4);
        sys.set_args(&[a_in as u32, a_out as u32]);
        sys.dispatch([wgs, 1, 1])?;

        let expected: Vec<u32> = input
            .chunks(64)
            .map(|c| c.iter().fold(0u32, |a, &x| a.wrapping_add(x)))
            .collect();
        check_u32(
            &self.name(),
            &sys.read_words(a_out, wgs as usize),
            &expected,
        )?;
        Ok(sys.report())
    }
}

// --------------------------------------------------------------- PrefixSum

/// Inclusive per-workgroup scan (Hillis-Steele in the LDS).
#[derive(Debug, Clone, Copy)]
pub struct PrefixSum {
    /// Elements (multiple of 64).
    pub n: u32,
}

impl PrefixSum {
    /// An inclusive scan of `n` values (per 64-element block).
    #[must_use]
    pub fn new(n: u32) -> PrefixSum {
        assert!(n.is_multiple_of(64));
        PrefixSum { n }
    }

    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("prefix_sum");
        b.sgprs(32).vgprs(12).lds_bytes(64 * 4);
        load_args(&mut b, 2)?;
        gid_x(&mut b, 3, 64)?;
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
        b.mubuf(Opcode::BufferLoadDword, 5, 4, 4, arg(0), 0)?;
        b.waitcnt(Some(0), None)?;
        b.vop2(Opcode::VLshlrevB32, 6, Operand::IntConst(2), 0)?;
        b.ds_write(Opcode::DsWriteB32, 6, 5, 0)?;
        b.waitcnt(None, Some(0))?;
        b.sopp(Opcode::SBarrier, 0)?;
        for offset in [1u32, 2, 4, 8, 16, 32] {
            smov(&mut b, 27, offset)?;
            // lanes tid >= offset participate.
            b.vopc(Opcode::VCmpLeU32, Operand::Sgpr(27), 0)?;
            b.sop1(Opcode::SAndSaveexecB64, Operand::Sgpr(14), Operand::VccLo)?;
            b.vop2(Opcode::VSubrevI32, 8, Operand::Sgpr(27), 0)?; // tid - offset
            b.vop2(Opcode::VLshlrevB32, 8, Operand::IntConst(2), 8)?;
            b.ds_read(Opcode::DsReadB32, 9, 8, 0)?;
            b.waitcnt(None, Some(0))?;
            b.vop2(Opcode::VAddI32, 5, Operand::Vgpr(9), 5)?;
            unmask(&mut b, 14)?;
            b.sopp(Opcode::SBarrier, 0)?;
            // Publish after everyone has read the previous round.
            b.ds_write(Opcode::DsWriteB32, 6, 5, 0)?;
            b.waitcnt(None, Some(0))?;
            b.sopp(Opcode::SBarrier, 0)?;
        }
        b.mubuf(Opcode::BufferStoreDword, 5, 4, 4, arg(1), 0)?;
        b.waitcnt(Some(0), None)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for PrefixSum {
    fn name(&self) -> String {
        "Prefix Sum (INT32)".to_string()
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.n as usize;
        let input = random_u32(n, 102, 1 << 16);
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc(n as u64 * 4);
        sys.set_args(&[a_in as u32, a_out as u32]);
        sys.dispatch([self.n / 64, 1, 1])?;

        let mut expected = vec![0u32; n];
        for (ci, chunk) in input.chunks(64).enumerate() {
            let mut acc = 0u32;
            for (i, &x) in chunk.iter().enumerate() {
                acc = acc.wrapping_add(x);
                expected[ci * 64 + i] = acc;
            }
        }
        check_u32(&self.name(), &sys.read_words(a_out, n), &expected)?;
        Ok(sys.report())
    }
}

// --------------------------------------------------------------- Histogram

/// Per-workgroup 16-bin histogram with LDS atomics.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    /// Elements (multiple of 64).
    pub n: u32,
}

impl Histogram {
    /// A 16-bin histogram over `n` values.
    #[must_use]
    pub fn new(n: u32) -> Histogram {
        assert!(n.is_multiple_of(64));
        Histogram { n }
    }

    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("histogram");
        b.sgprs(32).vgprs(12).lds_bytes(16 * 4);
        load_args(&mut b, 2)?;
        gid_x(&mut b, 3, 64)?;
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
        b.mubuf(Opcode::BufferLoadDword, 5, 4, 4, arg(0), 0)?;
        b.waitcnt(Some(0), None)?;
        // bin = value & 15; LDS atomic add 1.
        b.vop2(Opcode::VAndB32, 6, Operand::IntConst(15), 5)?;
        b.vop2(Opcode::VLshlrevB32, 6, Operand::IntConst(2), 6)?;
        b.vop1(Opcode::VMovB32, 7, Operand::IntConst(1))?;
        b.ds_write(Opcode::DsAddU32, 6, 7, 0)?;
        b.waitcnt(None, Some(0))?;
        b.sopp(Opcode::SBarrier, 0)?;
        // Lanes 0..16 publish the workgroup histogram.
        b.vopc(Opcode::VCmpGtU32, Operand::IntConst(16), 0)?;
        b.sop1(Opcode::SAndSaveexecB64, Operand::Sgpr(14), Operand::VccLo)?;
        b.vop2(Opcode::VLshlrevB32, 8, Operand::IntConst(2), 0)?;
        b.ds_read(Opcode::DsReadB32, 9, 8, 0)?;
        b.waitcnt(None, Some(0))?;
        // out[(wg*16 + tid)].
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(0),
            Operand::Sgpr(16),
            Operand::IntConst(4),
        )?;
        b.vop2(Opcode::VAddI32, 10, Operand::Sgpr(0), 0)?;
        b.vop2(Opcode::VLshlrevB32, 10, Operand::IntConst(2), 10)?;
        b.mubuf(Opcode::BufferStoreDword, 9, 10, 4, arg(1), 0)?;
        b.waitcnt(Some(0), None)?;
        unmask(&mut b, 14)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for Histogram {
    fn name(&self) -> String {
        "Histogram (INT32)".to_string()
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.n as usize;
        let wgs = (self.n / 64) as usize;
        let input = random_u32(n, 103, u32::MAX);
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc((wgs * 16) as u64 * 4);
        sys.set_args(&[a_in as u32, a_out as u32]);
        sys.dispatch([self.n / 64, 1, 1])?;

        let mut expected = vec![0u32; wgs * 16];
        for (ci, chunk) in input.chunks(64).enumerate() {
            for &v in chunk {
                expected[ci * 16 + (v & 15) as usize] += 1;
            }
        }
        check_u32(&self.name(), &sys.read_words(a_out, wgs * 16), &expected)?;
        Ok(sys.report())
    }
}

// ------------------------------------------------------------ BinarySearch

/// Vectorised lower-bound: every work-item bit-descends a sorted table.
#[derive(Debug, Clone, Copy)]
pub struct BinarySearch {
    /// Sorted-table size (power of two).
    pub table: u32,
    /// Number of keys (multiple of 64).
    pub keys: u32,
}

impl BinarySearch {
    /// Search `keys` keys in a table of `table` sorted values.
    #[must_use]
    pub fn new(table: u32, keys: u32) -> BinarySearch {
        assert!(table.is_power_of_two() && keys.is_multiple_of(64));
        BinarySearch { table, keys }
    }

    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("binary_search");
        b.sgprs(32).vgprs(12);
        // args: [table, keys, out, half, log2n]
        load_args(&mut b, 5)?;
        gid_x(&mut b, 3, 64)?;
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
        b.mubuf(Opcode::BufferLoadDword, 5, 4, 4, arg(1), 0)?; // key
        b.waitcnt(Some(0), None)?;
        b.vop1(Opcode::VMovB32, 6, Operand::IntConst(0))?; // pos
        b.sop1(Opcode::SMovB32, Operand::Sgpr(27), arg(3))?; // bit = n/2
        let l = CountedLoop::begin(&mut b, 19, arg(4))?;
        // probe = pos + bit; inspect table[probe-1].
        b.vop2(Opcode::VAddI32, 7, Operand::Sgpr(27), 6)?;
        b.vop2(Opcode::VAddI32, 8, Operand::IntConst(-1), 7)?;
        b.vop2(Opcode::VLshlrevB32, 8, Operand::IntConst(2), 8)?;
        b.mubuf(Opcode::BufferLoadDword, 9, 8, 4, arg(0), 0)?;
        b.waitcnt(Some(0), None)?;
        // table[probe-1] < key  =>  pos = probe.
        b.vopc(Opcode::VCmpGtU32, Operand::Vgpr(5), 9)?;
        b.vop2(Opcode::VCndmaskB32, 6, Operand::Vgpr(6), 7)?;
        b.sop2(
            Opcode::SLshrB32,
            Operand::Sgpr(27),
            Operand::Sgpr(27),
            Operand::IntConst(1),
        )?;
        l.end(&mut b)?;
        b.mubuf(Opcode::BufferStoreDword, 6, 4, 4, arg(2), 0)?;
        b.waitcnt(Some(0), None)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for BinarySearch {
    fn name(&self) -> String {
        "Binary Search (INT32)".to_string()
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let mut table = random_u32(self.table as usize, 104, u32::MAX - 2);
        table.sort_unstable();
        // The bit-descent computes ranks in [0, n-1]; keep every key below
        // the table maximum so the lower bound never reaches n.
        *table.last_mut().unwrap() = u32::MAX;
        let keys = random_u32(self.keys as usize, 105, u32::MAX - 2);
        let a_table = sys.alloc_words(&table);
        let a_keys = sys.alloc_words(&keys);
        let a_out = sys.alloc(u64::from(self.keys) * 4);
        sys.set_args(&[
            a_table as u32,
            a_keys as u32,
            a_out as u32,
            self.table / 2,
            self.table.ilog2(),
        ]);
        sys.dispatch([self.keys / 64, 1, 1])?;

        let expected: Vec<u32> = keys
            .iter()
            .map(|&k| table.partition_point(|&v| v < k) as u32)
            .collect();
        check_u32(
            &self.name(),
            &sys.read_words(a_out, self.keys as usize),
            &expected,
        )?;
        Ok(sys.report())
    }
}

// --------------------------------------------------------------- FastWalsh

/// Fast Walsh-Hadamard transform: one butterfly pass per dispatch.
#[derive(Debug, Clone, Copy)]
pub struct FastWalsh {
    /// Elements (power of two, ≥ 64).
    pub n: u32,
}

impl FastWalsh {
    /// An `n`-point transform.
    #[must_use]
    pub fn new(n: u32) -> FastWalsh {
        assert!(n.is_power_of_two() && n >= 64);
        FastWalsh { n }
    }

    /// One pass. Args: `[data, j]`.
    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("fwt_pass");
        b.sgprs(32).vgprs(16);
        load_args(&mut b, 2)?;
        gid_x(&mut b, 3, 64)?;
        b.vop2(Opcode::VXorB32, 4, arg(1), 3)?;
        b.vopc(Opcode::VCmpGtU32, Operand::Vgpr(4), 3)?;
        b.sop1(Opcode::SAndSaveexecB64, Operand::Sgpr(14), Operand::VccLo)?;
        b.vop2(Opcode::VLshlrevB32, 5, Operand::IntConst(2), 3)?;
        b.vop2(Opcode::VLshlrevB32, 6, Operand::IntConst(2), 4)?;
        b.mubuf(Opcode::BufferLoadDword, 7, 5, 4, arg(0), 0)?;
        b.mubuf(Opcode::BufferLoadDword, 8, 6, 4, arg(0), 0)?;
        b.waitcnt(Some(0), None)?;
        b.vop2(Opcode::VAddI32, 10, Operand::Vgpr(7), 8)?;
        b.vop2(Opcode::VSubI32, 11, Operand::Vgpr(7), 8)?;
        b.mubuf(Opcode::BufferStoreDword, 10, 5, 4, arg(0), 0)?;
        b.mubuf(Opcode::BufferStoreDword, 11, 6, 4, arg(0), 0)?;
        b.waitcnt(Some(0), None)?;
        unmask(&mut b, 14)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for FastWalsh {
    fn name(&self) -> String {
        "Fast Walsh Transform (INT32)".to_string()
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.n as usize;
        let input = random_u32(n, 106, 1 << 16);
        let data = sys.alloc_words(&input);

        let mut j = 1u32;
        while j < self.n {
            sys.set_args(&[data as u32, j]);
            sys.dispatch([self.n / 64, 1, 1])?;
            j *= 2;
        }

        let mut expected = input;
        let mut stride = 1usize;
        while stride < n {
            for i in 0..n {
                let p = i ^ stride;
                if p > i {
                    let (a, b) = (expected[i], expected[p]);
                    expected[i] = a.wrapping_add(b);
                    expected[p] = a.wrapping_sub(b);
                }
            }
            stride *= 2;
        }
        check_u32(&self.name(), &sys.read_words(data, n), &expected)?;
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    fn cfg() -> SystemConfig {
        SystemConfig::preset(SystemKind::DcdPm)
    }

    #[test]
    fn reduction_validates() {
        Reduction::new(256).run(cfg()).expect("reduction");
    }

    #[test]
    fn prefix_sum_validates() {
        PrefixSum::new(256).run(cfg()).expect("prefix sum");
    }

    #[test]
    fn histogram_validates() {
        Histogram::new(256).run(cfg()).expect("histogram");
    }

    #[test]
    fn binary_search_validates() {
        BinarySearch::new(256, 128)
            .run(cfg())
            .expect("binary search");
    }

    #[test]
    fn fast_walsh_validates() {
        FastWalsh::new(128).run(cfg()).expect("fwt");
    }
}
