//! Shared kernel-authoring helpers and validation utilities.
//!
//! Register conventions used by every benchmark kernel:
//!
//! * `s0`–`s3`   — scratch (including `s[2:3]` as a scalar-load address pair);
//! * `s[4:7]`    — the UAV buffer descriptor (dispatcher ABI);
//! * `s[8:15]`   — `IMM_CONST_BUFFER0/1` descriptors (dispatcher ABI);
//! * `s16`–`s18` — workgroup ids (dispatcher ABI);
//! * `s19`, `s25`–`s31` — loop counters and kernel-local scalars;
//! * `s20`–`s24` — kernel arguments (loaded by [`load_args`]);
//! * `v0`        — work-item id X (dispatcher ABI).

use scratch_asm::{AsmError, KernelBuilder, Label};
use scratch_isa::{Opcode, Operand, SmrdOffset};
use scratch_system::abi;

use crate::BenchError;

/// First SGPR holding kernel arguments.
pub const ARG_BASE: u8 = 20;

/// The SGPR holding kernel argument `i`.
#[must_use]
pub fn arg(i: u8) -> Operand {
    Operand::Sgpr(ARG_BASE + i)
}

/// Emit the argument-loading prologue: read `n` dwords of
/// `IMM_CONST_BUFFER1` into `s20..`, then wait for the scalar loads.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn load_args(b: &mut KernelBuilder, n: u8) -> Result<(), AsmError> {
    let mut i = 0;
    while i < n {
        let remaining = n - i;
        let (op, step) = if remaining >= 4 {
            (Opcode::SBufferLoadDwordx4, 4)
        } else if remaining >= 2 {
            (Opcode::SBufferLoadDwordx2, 2)
        } else {
            (Opcode::SBufferLoadDword, 1)
        };
        b.smrd(
            op,
            Operand::Sgpr(ARG_BASE + i),
            abi::CONST_BUF1,
            SmrdOffset::Imm(i),
        )?;
        i += step;
    }
    b.waitcnt(None, Some(0))?;
    Ok(())
}

/// Emit `v[dst] = wg_id_x * wg_size + tid_x` (the flat X global id).
/// Clobbers `s0`.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn gid_x(b: &mut KernelBuilder, dst: u8, wg_size: u32) -> Result<(), AsmError> {
    b.sop2(
        Opcode::SMulI32,
        Operand::Sgpr(0),
        Operand::Sgpr(abi::WG_ID_X),
        KernelBuilder::const_u32(wg_size),
    )?;
    b.vop2(Opcode::VAddI32, dst, Operand::Sgpr(0), abi::TID_X)?;
    Ok(())
}

/// Emit `v[dst] = v[idx] << 2` (element index to byte offset).
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn byte_offset(b: &mut KernelBuilder, dst: u8, idx: u8) -> Result<(), AsmError> {
    b.vop2(Opcode::VLshlrevB32, dst, Operand::IntConst(2), idx)?;
    Ok(())
}

/// Emit `s[dst] = value` using the cheapest encoding.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn smov(b: &mut KernelBuilder, dst: u8, value: u32) -> Result<(), AsmError> {
    b.sop1(
        Opcode::SMovB32,
        Operand::Sgpr(dst),
        KernelBuilder::const_u32(value),
    )?;
    Ok(())
}

/// A scalar counted loop: `s[counter]` runs from `count` down to 1.
pub struct CountedLoop {
    counter: u8,
    top: Label,
}

impl CountedLoop {
    /// Open the loop with a trip count taken from an operand.
    ///
    /// # Errors
    ///
    /// Propagates builder validation failures.
    pub fn begin(
        b: &mut KernelBuilder,
        counter: u8,
        count: Operand,
    ) -> Result<CountedLoop, AsmError> {
        b.sop1(Opcode::SMovB32, Operand::Sgpr(counter), count)?;
        let top = b.new_label();
        b.bind(top)?;
        Ok(CountedLoop { counter, top })
    }

    /// Close the loop: decrement and branch while non-zero.
    ///
    /// # Errors
    ///
    /// Propagates builder validation failures.
    pub fn end(self, b: &mut KernelBuilder) -> Result<(), AsmError> {
        b.sop2(
            Opcode::SSubI32,
            Operand::Sgpr(self.counter),
            Operand::Sgpr(self.counter),
            Operand::IntConst(1),
        )?;
        b.sopc(
            Opcode::SCmpLgI32,
            Operand::Sgpr(self.counter),
            Operand::IntConst(0),
        )?;
        b.branch(Opcode::SCbranchScc1, self.top);
        Ok(())
    }
}

/// Emit a lane mask limiting execution to lanes where `v[vx] < s[bound]`,
/// saving the old EXEC in `s[save:save+1]`.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn mask_lt(b: &mut KernelBuilder, vx: u8, bound: Operand, save: u8) -> Result<(), AsmError> {
    // bound > v[vx]  <=>  v[vx] < bound.
    b.vopc(Opcode::VCmpGtU32, bound, vx)?;
    b.sop1(Opcode::SAndSaveexecB64, Operand::Sgpr(save), Operand::VccLo)?;
    Ok(())
}

/// Restore EXEC from `s[save:save+1]`.
///
/// # Errors
///
/// Propagates builder validation failures.
pub fn unmask(b: &mut KernelBuilder, save: u8) -> Result<(), AsmError> {
    b.sop1(Opcode::SMovB64, Operand::ExecLo, Operand::Sgpr(save))?;
    Ok(())
}

/// Compare a `u32` output buffer against the reference.
///
/// # Errors
///
/// Returns [`BenchError::Mismatch`] on the first differing element.
pub fn check_u32(bench: &str, got: &[u32], expected: &[u32]) -> Result<(), BenchError> {
    for (i, (&g, &e)) in got.iter().zip(expected).enumerate() {
        if g != e {
            return Err(BenchError::Mismatch {
                bench: bench.to_string(),
                index: i,
                expected: e,
                got: g,
            });
        }
    }
    Ok(())
}

/// Compare an `f32` output (read back as bits) against the reference with a
/// relative tolerance.
///
/// # Errors
///
/// Returns [`BenchError::Mismatch`] on the first element outside tolerance.
pub fn check_f32(
    bench: &str,
    got_bits: &[u32],
    expected: &[f32],
    tol: f32,
) -> Result<(), BenchError> {
    for (i, (&g, &e)) in got_bits.iter().zip(expected).enumerate() {
        let gf = f32::from_bits(g);
        let err = (gf - e).abs();
        let bound = tol * e.abs().max(1.0);
        // Negated on purpose: NaN must fail the check.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(err <= bound) {
            return Err(BenchError::Mismatch {
                bench: bench.to_string(),
                index: i,
                expected: e.to_bits(),
                got: g,
            });
        }
    }
    Ok(())
}

/// Deterministic pseudo-random `u32` data (small values, multiply-safe).
#[must_use]
pub fn random_u32(n: usize, seed: u64, modulus: u32) -> Vec<u32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..modulus)).collect()
}

/// Deterministic pseudo-random `f32` data in `[-1, 1)`.
#[must_use]
pub fn random_f32(n: usize, seed: u64) -> Vec<f32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Bit-cast a float slice for host-side memory writes.
#[must_use]
pub fn f32_bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|f| f.to_bits()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::{System, SystemConfig, SystemKind};

    #[test]
    fn counted_loop_runs_exact_trip_count() {
        let mut b = KernelBuilder::new("loop");
        b.sgprs(32).vgprs(4);
        smov(&mut b, 25, 0).unwrap();
        let l = CountedLoop::begin(&mut b, 19, Operand::IntConst(7)).unwrap();
        b.sop2(
            Opcode::SAddI32,
            Operand::Sgpr(25),
            Operand::Sgpr(25),
            Operand::IntConst(3),
        )
        .unwrap();
        l.end(&mut b).unwrap();
        // Store s25 via v1 so the host can read it back.
        b.vop1(Opcode::VMovB32, 1, Operand::Sgpr(25)).unwrap();
        b.vop1(Opcode::VMovB32, 2, Operand::IntConst(0)).unwrap();
        b.mubuf(Opcode::BufferStoreDword, 1, 2, 4, arg(0), 0)
            .unwrap();
        b.waitcnt(Some(0), None).unwrap();
        b.endpgm().unwrap();
        let kernel = b.finish().unwrap();

        let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel).unwrap();
        let out = sys.alloc(64 * 4);
        sys.set_args(&[out as u32]);
        // load args isn't used here; pass the address directly in s20 via args
        // convention (s20 loaded by prologue in real kernels; here we check
        // the loop itself using the dispatcher-provided arg pointer).
        // Instead, emit load_args-style kernels in the real benchmarks.
        // For this test just verify via the first lane's store.
        // s20 is uninitialised (0) -> store to absolute `out`? Use soffset=arg(0)
        // which reads s20=0; the store then goes to byte 0.. of memory.
        // To keep it valid, re-run with explicit set-up:
        let _ = out;
        // s25 = 7 * 3 = 21 must be stored at address s20 + 0 = 0; read it.
        sys.dispatch([1, 1, 1]).unwrap();
        assert_eq!(sys.read_words(0, 1)[0], 21);
    }

    #[test]
    fn load_args_prologue_reads_argument_words() {
        let mut b = KernelBuilder::new("args");
        b.sgprs(32).vgprs(8);
        load_args(&mut b, 3).unwrap();
        // v1 = s22 (third arg), store at out (first arg).
        b.vop1(Opcode::VMovB32, 1, arg(2)).unwrap();
        b.vop1(Opcode::VMovB32, 2, Operand::IntConst(0)).unwrap();
        b.mubuf(Opcode::BufferStoreDword, 1, 2, 4, arg(0), 0)
            .unwrap();
        b.waitcnt(Some(0), None).unwrap();
        b.endpgm().unwrap();
        let kernel = b.finish().unwrap();

        let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel).unwrap();
        let out = sys.alloc(256);
        sys.set_args(&[out as u32, 0xdead, 0xbeef]);
        sys.dispatch([1, 1, 1]).unwrap();
        assert_eq!(sys.read_words(out, 1)[0], 0xbeef);
    }

    #[test]
    fn mask_lt_limits_lanes() {
        let mut b = KernelBuilder::new("mask");
        b.sgprs(32).vgprs(8);
        load_args(&mut b, 1).unwrap();
        smov(&mut b, 26, 20).unwrap(); // bound = 20
        mask_lt(&mut b, 0, Operand::Sgpr(26), 14).unwrap();
        b.vop1(Opcode::VMovB32, 1, Operand::IntConst(1)).unwrap();
        byte_offset(&mut b, 2, 0).unwrap();
        b.mubuf(Opcode::BufferStoreDword, 1, 2, 4, arg(0), 0)
            .unwrap();
        b.waitcnt(Some(0), None).unwrap();
        unmask(&mut b, 14).unwrap();
        b.endpgm().unwrap();
        let kernel = b.finish().unwrap();

        let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel).unwrap();
        let out = sys.alloc(64 * 4);
        sys.set_args(&[out as u32]);
        sys.dispatch([1, 1, 1]).unwrap();
        let words = sys.read_words(out, 64);
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(w, u32::from(i < 20), "lane {i}");
        }
    }

    #[test]
    fn checkers_report_first_mismatch() {
        assert!(check_u32("t", &[1, 2, 3], &[1, 2, 3]).is_ok());
        match check_u32("t", &[1, 9, 3], &[1, 2, 3]) {
            Err(BenchError::Mismatch { index, .. }) => assert_eq!(index, 1),
            other => panic!("{other:?}"),
        }
        assert!(check_f32("t", &f32_bits(&[1.0, 2.0]), &[1.0, 2.0000001], 1e-5).is_ok());
        assert!(check_f32("t", &f32_bits(&[1.0, 2.5]), &[1.0, 2.0], 1e-5).is_err());
        // NaN must never pass.
        assert!(check_f32("t", &[f32::NAN.to_bits()], &[0.0], 1e-5).is_err());
    }

    #[test]
    fn deterministic_generators() {
        assert_eq!(random_u32(8, 1, 100), random_u32(8, 1, 100));
        assert_ne!(random_u32(8, 1, 100), random_u32(8, 2, 100));
        let f = random_f32(8, 3);
        assert_eq!(f, random_f32(8, 3));
        assert!(f.iter().all(|x| (-1.0..1.0).contains(x)));
    }
}
