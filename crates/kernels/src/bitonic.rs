//! Bitonic sort (INT32) — one compare-exchange pass per dispatch, driven by
//! a host loop over `(k, j)` stages, exactly as the AMD SDK OpenCL version.

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand};
use scratch_system::{RunReport, System, SystemConfig};

use crate::common::{arg, check_u32, gid_x, load_args, random_u32, unmask};
use crate::{BenchError, Benchmark};

/// Ascending bitonic sort of `n` unsigned keys (`n` a power of two and a
/// multiple of 64).
#[derive(Debug, Clone, Copy)]
pub struct BitonicSort {
    /// Number of keys.
    pub n: u32,
}

impl BitonicSort {
    /// A sort of `n` keys.
    #[must_use]
    pub fn new(n: u32) -> BitonicSort {
        assert!(
            n.is_power_of_two() && n >= 64,
            "n must be a power of two ≥ 64"
        );
        BitonicSort { n }
    }

    /// One compare-exchange pass. Args: `[data, j, k]`.
    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("bitonic_pass");
        b.sgprs(32).vgprs(16);
        load_args(&mut b, 3)?;
        gid_x(&mut b, 3, 64)?;
        // partner = gid ^ j.
        b.vop2(Opcode::VXorB32, 4, arg(1), 3)?;
        // Only the lower element of each pair does the exchange.
        b.vopc(Opcode::VCmpGtU32, Operand::Vgpr(4), 3)?;
        b.sop1(Opcode::SAndSaveexecB64, Operand::Sgpr(14), Operand::VccLo)?;
        // Load both elements.
        b.vop2(Opcode::VLshlrevB32, 5, Operand::IntConst(2), 3)?;
        b.vop2(Opcode::VLshlrevB32, 6, Operand::IntConst(2), 4)?;
        b.mubuf(Opcode::BufferLoadDword, 7, 5, 4, arg(0), 0)?;
        b.mubuf(Opcode::BufferLoadDword, 8, 6, 4, arg(0), 0)?;
        b.waitcnt(Some(0), None)?;
        // dir: ascending iff (gid & k) == 0.
        b.vop2(Opcode::VAndB32, 9, arg(2), 3)?;
        b.vopc(Opcode::VCmpEqU32, Operand::IntConst(0), 9)?;
        // lo/hi of the pair.
        b.vop2(Opcode::VMinU32, 10, Operand::Vgpr(7), 8)?;
        b.vop2(Opcode::VMaxU32, 11, Operand::Vgpr(7), 8)?;
        // own = dir ? lo : hi ; partner = dir ? hi : lo.
        b.vop2(Opcode::VCndmaskB32, 12, Operand::Vgpr(11), 10)?;
        b.vop2(Opcode::VCndmaskB32, 13, Operand::Vgpr(10), 11)?;
        b.mubuf(Opcode::BufferStoreDword, 12, 5, 4, arg(0), 0)?;
        b.mubuf(Opcode::BufferStoreDword, 13, 6, 4, arg(0), 0)?;
        b.waitcnt(Some(0), None)?;
        unmask(&mut b, 14)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for BitonicSort {
    fn name(&self) -> String {
        "Bitonic Sort (INT32)".to_string()
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.n as usize;
        let input = random_u32(n, 61, u32::MAX);
        let data = sys.alloc_words(&input);

        // Host stage loop: for k in 2,4,..,n; for j in k/2,..,1.
        let mut k = 2u32;
        while k <= self.n {
            let mut j = k / 2;
            while j >= 1 {
                sys.set_args(&[data as u32, j, k]);
                sys.dispatch([self.n / 64, 1, 1])?;
                j /= 2;
            }
            k *= 2;
        }

        let mut expected = input;
        expected.sort_unstable();
        check_u32(&self.name(), &sys.read_words(data, n), &expected)?;
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    #[test]
    fn sorts_256_keys() {
        BitonicSort::new(256)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("bitonic sort");
    }

    #[test]
    fn cndmask_direction_logic() {
        // Spot-check one pass by hand: k=2, j=1 on 64 keys pairs (0,1),(2,3)...
        // with alternating direction. Run a full small sort instead (the
        // network is only correct end-to-end).
        BitonicSort::new(64)
            .run(SystemConfig::preset(SystemKind::Dcd))
            .expect("bitonic 64");
    }
}
