//! Matrix addition (INT32 and SP-FP) — the element-wise AMD SDK workload.

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand};
use scratch_system::{RunReport, System, SystemConfig};

use crate::common::{
    byte_offset, check_f32, check_u32, f32_bits, gid_x, load_args, random_f32, random_u32,
};
use crate::{BenchError, Benchmark};

/// `out = a + b` over an `n × n` matrix, one work-item per element.
#[derive(Debug, Clone, Copy)]
pub struct MatrixAdd {
    /// Matrix dimension.
    pub n: u32,
    /// Single-precision floating point when `true`, INT32 otherwise.
    pub fp: bool,
}

impl MatrixAdd {
    /// A matrix-add workload on an `n × n` matrix (`n·n` must be a
    /// multiple of 64).
    #[must_use]
    pub fn new(n: u32, fp: bool) -> MatrixAdd {
        assert!(
            (n * n).is_multiple_of(64),
            "n*n must be a multiple of the wavefront"
        );
        MatrixAdd { n, fp }
    }

    fn elements(&self) -> usize {
        (self.n * self.n) as usize
    }

    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new(self.name());
        b.sgprs(32).vgprs(8);
        // args: [a, b, out]
        load_args(&mut b, 3)?;
        gid_x(&mut b, 3, 64)?;
        byte_offset(&mut b, 4, 3)?;
        b.mubuf(Opcode::BufferLoadDword, 5, 4, 4, crate::common::arg(0), 0)?;
        b.mubuf(Opcode::BufferLoadDword, 6, 4, 4, crate::common::arg(1), 0)?;
        b.waitcnt(Some(0), None)?;
        if self.fp {
            b.vop2(Opcode::VAddF32, 5, Operand::Vgpr(5), 6)?;
        } else {
            b.vop2(Opcode::VAddI32, 5, Operand::Vgpr(5), 6)?;
        }
        b.mubuf(Opcode::BufferStoreDword, 5, 4, 4, crate::common::arg(2), 0)?;
        b.waitcnt(Some(0), None)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for MatrixAdd {
    fn name(&self) -> String {
        format!("Matrix Add ({})", if self.fp { "SP FP" } else { "INT32" })
    }

    fn uses_fp(&self) -> bool {
        self.fp
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.elements();

        if self.fp {
            let a = random_f32(n, 11);
            let c = random_f32(n, 12);
            let a_dev = sys.alloc_words(&f32_bits(&a));
            let b_dev = sys.alloc_words(&f32_bits(&c));
            let out = sys.alloc(n as u64 * 4);
            sys.set_args(&[a_dev as u32, b_dev as u32, out as u32]);
            sys.dispatch([(n as u32).div_ceil(64), 1, 1])?;
            let expected: Vec<f32> = a.iter().zip(&c).map(|(x, y)| x + y).collect();
            check_f32(&self.name(), &sys.read_words(out, n), &expected, 0.0)?;
        } else {
            let a = random_u32(n, 11, 1 << 16);
            let c = random_u32(n, 12, 1 << 16);
            let a_dev = sys.alloc_words(&a);
            let b_dev = sys.alloc_words(&c);
            let out = sys.alloc(n as u64 * 4);
            sys.set_args(&[a_dev as u32, b_dev as u32, out as u32]);
            sys.dispatch([(n as u32).div_ceil(64), 1, 1])?;
            let expected: Vec<u32> = a.iter().zip(&c).map(|(x, y)| x.wrapping_add(*y)).collect();
            check_u32(&self.name(), &sys.read_words(out, n), &expected)?;
        }
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    #[test]
    fn int_add_validates() {
        let bench = MatrixAdd::new(16, false);
        let report = bench
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("int matrix add");
        assert!(report.instructions() > 0);
        assert_eq!(report.stats.wavefronts_retired, 4);
    }

    #[test]
    fn fp_add_validates() {
        let bench = MatrixAdd::new(16, true);
        bench
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("fp matrix add");
    }

    #[test]
    fn runs_on_all_system_kinds() {
        for kind in [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm] {
            MatrixAdd::new(8, false)
                .run(SystemConfig::preset(kind))
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }
}
