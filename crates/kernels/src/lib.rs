//! # scratch-kernels
//!
//! The SCRATCH evaluation workloads (paper §4): the 17 fixed- and
//! floating-point applications benchmarked on the FPGA, written in
//! Southern Islands assembly through the [`scratch_asm::KernelBuilder`],
//! each with a workload generator, a CPU reference implementation and an
//! output validator — plus additional characterisation kernels used to
//! populate the Fig. 4 instruction-mix study.
//!
//! Every workload implements [`Benchmark`]: it builds its kernels, runs
//! them on a configured [`scratch_system::System`] (including any host
//! phases the MicroBlaze would perform, such as K-means recentering or the
//! Gaussian back-substitution), validates the device results against the
//! reference, and returns the measured [`scratch_system::RunReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod cnn;
pub mod common;
pub mod conv2d;
pub mod extra;
pub mod gaussian;
pub mod kmeans;
pub mod matmul;
pub mod micro;
pub mod nin;
pub mod pooling;
pub mod transpose;
pub mod vec_ops;

use std::fmt;

use scratch_asm::{AsmError, Kernel};
use scratch_system::{RunReport, SystemConfig, SystemError};

/// Errors raised while running a benchmark.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BenchError {
    /// Kernel construction failed.
    Asm(AsmError),
    /// The system simulator failed.
    System(SystemError),
    /// Device output disagreed with the CPU reference.
    Mismatch {
        /// Which benchmark failed.
        bench: String,
        /// First mismatching element.
        index: usize,
        /// Expected value (as bits for FP).
        expected: u32,
        /// Device value.
        got: u32,
    },
    /// The execution engine lost the job (worker panic or pool failure).
    Engine(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Asm(e) => write!(f, "kernel: {e}"),
            BenchError::System(e) => write!(f, "system: {e}"),
            BenchError::Mismatch {
                bench,
                index,
                expected,
                got,
            } => write!(
                f,
                "{bench}: output[{index}] = {got:#x}, reference says {expected:#x}"
            ),
            BenchError::Engine(msg) => write!(f, "engine: {msg}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<AsmError> for BenchError {
    fn from(e: AsmError) -> Self {
        BenchError::Asm(e)
    }
}

impl From<SystemError> for BenchError {
    fn from(e: SystemError) -> Self {
        BenchError::System(e)
    }
}

/// A runnable, self-validating workload.
///
/// `Send` so boxed benchmarks can move onto `scratch-engine` pool workers
/// (every workload is a plain parameter struct).
pub trait Benchmark: Send {
    /// Display name, e.g. `"2D Conv (INT32)"`.
    fn name(&self) -> String;

    /// `true` when the workload uses single-precision floating point.
    fn uses_fp(&self) -> bool;

    /// The application's kernels (one or more).
    ///
    /// # Errors
    ///
    /// Fails when a kernel does not assemble.
    fn kernels(&self) -> Result<Vec<Kernel>, AsmError>;

    /// Run on a system with `config`, validate the outputs against the CPU
    /// reference, and return the measurement.
    ///
    /// # Errors
    ///
    /// Simulation failures or output mismatches.
    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError>;
}

/// The paper's 17 evaluated applications at their default sizes
/// (Fig. 6 columns).
#[must_use]
pub fn paper_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(vec_ops::MatrixAdd::new(128, false)),
        Box::new(vec_ops::MatrixAdd::new(128, true)),
        Box::new(matmul::MatrixMul::new(64, false)),
        Box::new(matmul::MatrixMul::new(64, true)),
        Box::new(conv2d::Conv2d::new(64, 5, false)),
        Box::new(conv2d::Conv2d::new(64, 5, true)),
        Box::new(bitonic::BitonicSort::new(1024)),
        Box::new(transpose::Transpose::new(128)),
        Box::new(pooling::Pooling::new(64, pooling::Mode::Max)),
        Box::new(pooling::Pooling::new(64, pooling::Mode::Median)),
        Box::new(pooling::Pooling::new(64, pooling::Mode::Average)),
        Box::new(cnn::Cnn::new(32, false)),
        Box::new(cnn::Cnn::new(32, true)),
        Box::new(nin::Nin::new(32, 32)),
        Box::new(nin::Nin::new(32, 8)),
        Box::new(kmeans::KMeans::new(512, 5, 4)),
        Box::new(gaussian::Gaussian::new(32)),
    ]
}

/// Additional kernels for the Fig. 4 characterisation study.
#[must_use]
pub fn characterization_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(micro::Reduction::new(4096)),
        Box::new(micro::PrefixSum::new(2048)),
        Box::new(micro::Histogram::new(4096)),
        Box::new(micro::BinarySearch::new(1024, 256)),
        Box::new(micro::FastWalsh::new(1024)),
        Box::new(extra::BlackScholes::new(2048)),
        Box::new(extra::Sobel::new(128)),
        Box::new(extra::Dct::new(64)),
        Box::new(extra::FloydWarshall::new(64)),
        Box::new(extra::NoiseGen::new(2048, 16)),
    ]
}
