//! K-means clustering (SP-FP) — the Rodinia workload with MicroBlaze host
//! phases: the device assigns points to the nearest center, the host
//! recomputes the centers of mass between iterations (§4).

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand, SmrdOffset};
use scratch_system::{RunReport, System, SystemConfig};

use crate::common::{arg, check_u32, f32_bits, gid_x, load_args, random_f32, CountedLoop};
use crate::{BenchError, Benchmark};

/// K-means over `n` two-dimensional points and `k` clusters, iterated a
/// fixed number of times (the paper uses 512 points, 5 or 10 clusters).
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    /// Number of points (multiple of 64).
    pub n: u32,
    /// Number of clusters.
    pub k: u32,
    /// Assignment/update iterations.
    pub iters: u32,
}

impl KMeans {
    /// A K-means workload.
    #[must_use]
    pub fn new(n: u32, k: u32, iters: u32) -> KMeans {
        assert!(n.is_multiple_of(64) && k >= 1 && iters >= 1);
        KMeans { n, k, iters }
    }

    /// The assignment kernel. Args: `[px, py, centers, assign, k]`
    /// (centers as interleaved x,y pairs).
    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("kmeans_assign");
        b.sgprs(32).vgprs(16);
        load_args(&mut b, 5)?;
        gid_x(&mut b, 3, 64)?;
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
        b.mubuf(Opcode::BufferLoadDword, 5, 4, 4, arg(0), 0)?; // px
        b.mubuf(Opcode::BufferLoadDword, 6, 4, 4, arg(1), 0)?; // py
        b.waitcnt(Some(0), None)?;
        // best distance = +inf, best index = 0, current index s27 = 0.
        b.vop1(
            Opcode::VMovB32,
            9,
            Operand::Literal(f32::INFINITY.to_bits()),
        )?;
        b.vop1(Opcode::VMovB32, 10, Operand::IntConst(0))?;
        b.sop1(Opcode::SMovB32, Operand::Sgpr(27), Operand::IntConst(0))?;
        // s[2:3] = centers pointer.
        b.sop1(Opcode::SMovB32, Operand::Sgpr(2), arg(2))?;
        b.sop1(Opcode::SMovB32, Operand::Sgpr(3), Operand::IntConst(0))?;

        let lk = CountedLoop::begin(&mut b, 19, arg(4))?;
        // Load center (cx, cy) as scalars.
        b.smrd(
            Opcode::SLoadDwordx2,
            Operand::Sgpr(30),
            2,
            SmrdOffset::Imm(0),
        )?;
        b.waitcnt(None, Some(0))?;
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(2),
            Operand::Sgpr(2),
            Operand::IntConst(8),
        )?;
        // dx = px - cx ; dy = py - cy.
        b.vop2(Opcode::VSubrevF32, 7, Operand::Sgpr(30), 5)?;
        b.vop2(Opcode::VSubrevF32, 8, Operand::Sgpr(31), 6)?;
        // dist = dx*dx + dy*dy (FMA on the dy term, like the device).
        b.vop2(Opcode::VMulF32, 11, Operand::Vgpr(7), 7)?;
        b.vop2(Opcode::VMacF32, 11, Operand::Vgpr(8), 8)?;
        // Strictly closer? Update best distance and index.
        b.vopc(Opcode::VCmpLtF32, Operand::Vgpr(11), 9)?;
        b.vop2(Opcode::VCndmaskB32, 9, Operand::Vgpr(9), 11)?;
        b.vop1(Opcode::VMovB32, 12, Operand::Sgpr(27))?;
        b.vop2(Opcode::VCndmaskB32, 10, Operand::Vgpr(10), 12)?;
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(27),
            Operand::Sgpr(27),
            Operand::IntConst(1),
        )?;
        lk.end(&mut b)?;

        b.mubuf(Opcode::BufferStoreDword, 10, 4, 4, arg(3), 0)?;
        b.waitcnt(Some(0), None)?;
        b.endpgm()?;
        b.finish()
    }
}

/// Reference assignment with the device's exact arithmetic.
fn assign_reference(px: &[f32], py: &[f32], centers: &[(f32, f32)]) -> Vec<u32> {
    px.iter()
        .zip(py)
        .map(|(&x, &y)| {
            let mut best = f32::INFINITY;
            let mut idx = 0u32;
            for (i, &(cx, cy)) in centers.iter().enumerate() {
                let dx = x - cx;
                let dy = y - cy;
                let dist = dy.mul_add(dy, dx * dx);
                if dist < best {
                    best = dist;
                    idx = i as u32;
                }
            }
            idx
        })
        .collect()
}

/// Host recentering: mean of assigned points (empty clusters keep their
/// center).
fn recenter(px: &[f32], py: &[f32], assign: &[u32], centers: &mut [(f32, f32)]) {
    let k = centers.len();
    let mut sum = vec![(0f64, 0f64, 0u32); k];
    for ((&x, &y), &a) in px.iter().zip(py).zip(assign) {
        let s = &mut sum[a as usize];
        s.0 += f64::from(x);
        s.1 += f64::from(y);
        s.2 += 1;
    }
    for (c, s) in centers.iter_mut().zip(sum) {
        if s.2 > 0 {
            *c = ((s.0 / f64::from(s.2)) as f32, (s.1 / f64::from(s.2)) as f32);
        }
    }
}

impl Benchmark for KMeans {
    fn name(&self) -> String {
        format!("K-Means (SP FP, k={})", self.k)
    }

    fn uses_fp(&self) -> bool {
        true
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.n as usize;
        let k = self.k as usize;

        let px = random_f32(n, 91);
        let py = random_f32(n, 92);
        let mut centers: Vec<(f32, f32)> = (0..k).map(|i| (px[i], py[i])).collect();
        let mut ref_centers = centers.clone();

        let a_px = sys.alloc_words(&f32_bits(&px));
        let a_py = sys.alloc_words(&f32_bits(&py));
        let a_centers = sys.alloc(k as u64 * 8);
        let a_assign = sys.alloc(u64::from(self.n) * 4);

        let mut device_assign = vec![0u32; n];
        for _ in 0..self.iters {
            let interleaved: Vec<u32> = centers
                .iter()
                .flat_map(|&(x, y)| [x.to_bits(), y.to_bits()])
                .collect();
            sys.write_words(a_centers, &interleaved);
            sys.set_args(&[
                a_px as u32,
                a_py as u32,
                a_centers as u32,
                a_assign as u32,
                self.k,
            ]);
            sys.dispatch([self.n / 64, 1, 1])?;
            device_assign = sys.read_words(a_assign, n);

            // MicroBlaze recomputes the centers of mass between iterations.
            recenter(&px, &py, &device_assign, &mut centers);
            sys.host_work(u64::from(self.n) * 6 + u64::from(self.k) * 8);
        }

        // Reference: identical loop.
        let mut ref_assign = vec![0u32; n];
        for _ in 0..self.iters {
            ref_assign = assign_reference(&px, &py, &ref_centers);
            recenter(&px, &py, &ref_assign, &mut ref_centers);
        }
        check_u32(&self.name(), &device_assign, &ref_assign)?;
        for (got, expect) in centers.iter().zip(&ref_centers) {
            if got != expect {
                return Err(BenchError::Mismatch {
                    bench: self.name(),
                    index: 0,
                    expected: expect.0.to_bits(),
                    got: got.0.to_bits(),
                });
            }
        }
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    #[test]
    fn kmeans_validates() {
        KMeans::new(128, 5, 3)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("kmeans");
    }

    #[test]
    fn kmeans_ten_clusters() {
        KMeans::new(64, 10, 2)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("kmeans k=10");
    }

    #[test]
    fn recenter_means() {
        let px = [0.0, 2.0, 10.0];
        let py = [0.0, 2.0, 10.0];
        let assign = [0, 0, 1];
        let mut centers = vec![(5.0, 5.0), (0.0, 0.0), (7.0, 7.0)];
        recenter(&px, &py, &assign, &mut centers);
        assert_eq!(centers[0], (1.0, 1.0));
        assert_eq!(centers[1], (10.0, 10.0));
        assert_eq!(centers[2], (7.0, 7.0), "empty cluster keeps its center");
    }
}
