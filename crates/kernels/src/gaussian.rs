//! Gaussian elimination (SP-FP) — the Rodinia workload: the CU reduces the
//! augmented matrix to triangular form (Fan1/Fan2 kernels per pivot), then
//! the MicroBlaze performs the back-substitution (§4).

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand, SmrdOffset};
use scratch_system::{abi, RunReport, System, SystemConfig};

use crate::common::{arg, check_f32, f32_bits, gid_x, load_args, random_f32, unmask};
use crate::{BenchError, Benchmark};

/// Solve `A·x = b` for an `n × n` diagonally dominant system using the
/// augmented `n × (n+1)` matrix layout.
#[derive(Debug, Clone, Copy)]
pub struct Gaussian {
    /// System dimension.
    pub n: u32,
}

impl Gaussian {
    /// A Gaussian-elimination workload.
    #[must_use]
    pub fn new(n: u32) -> Gaussian {
        assert!(n >= 2);
        Gaussian { n }
    }

    /// Fan1: `m[i] = A[i][k] · rcp(A[k][k])` for `i > k`.
    /// Args: `[m, a, k, n]`; grid `[ceil(n/64), 1, 1]`.
    fn fan1(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("gaussian_fan1");
        b.sgprs(32).vgprs(12);
        load_args(&mut b, 4)?;
        gid_x(&mut b, 3, 64)?; // v3 = i
                               // exec &= (i < n) & (i > k).
        b.vopc(Opcode::VCmpGtU32, arg(3), 3)?;
        b.sop1(Opcode::SMovB64, Operand::Sgpr(0), Operand::VccLo)?;
        b.vopc(Opcode::VCmpLtU32, arg(2), 3)?;
        b.sop2(
            Opcode::SAndB64,
            Operand::VccLo,
            Operand::Sgpr(0),
            Operand::VccLo,
        )?;
        b.sop1(Opcode::SAndSaveexecB64, Operand::Sgpr(14), Operand::VccLo)?;
        // s26 = width = n + 1.
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(26),
            arg(3),
            Operand::IntConst(1),
        )?;
        // Pivot A[k][k]: scalar load.
        b.sop2(Opcode::SMulI32, Operand::Sgpr(1), arg(2), Operand::Sgpr(26))?;
        b.sop2(Opcode::SAddU32, Operand::Sgpr(1), Operand::Sgpr(1), arg(2))?;
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(1),
            Operand::Sgpr(1),
            Operand::IntConst(2),
        )?;
        b.sop2(Opcode::SAddU32, Operand::Sgpr(2), arg(1), Operand::Sgpr(1))?;
        b.sop1(Opcode::SMovB32, Operand::Sgpr(3), Operand::IntConst(0))?;
        b.smrd(Opcode::SLoadDword, Operand::Sgpr(30), 2, SmrdOffset::Imm(0))?;
        b.waitcnt(None, Some(0))?;
        // v6 = rcp(pivot).
        b.vop1(Opcode::VRcpF32, 6, Operand::Sgpr(30))?;
        // A[i][k]: offset (i*(n+1) + k) * 4.
        b.vop3a(
            Opcode::VMulLoU32,
            7,
            Operand::Vgpr(3),
            Operand::Sgpr(26),
            None,
        )?;
        b.vop2(Opcode::VAddI32, 7, arg(2), 7)?;
        b.vop2(Opcode::VLshlrevB32, 7, Operand::IntConst(2), 7)?;
        b.mubuf(Opcode::BufferLoadDword, 8, 7, 4, arg(1), 0)?;
        b.waitcnt(Some(0), None)?;
        // m[i] = A[i][k] * rcp.
        b.vop2(Opcode::VMulF32, 9, Operand::Vgpr(8), 6)?;
        b.vop2(Opcode::VLshlrevB32, 10, Operand::IntConst(2), 3)?;
        b.mubuf(Opcode::BufferStoreDword, 9, 10, 4, arg(0), 0)?;
        b.waitcnt(Some(0), None)?;
        unmask(&mut b, 14)?;
        b.endpgm()?;
        b.finish()
    }

    /// Fan2: `A[i][j] -= m[i] · A[k][j]` for `i > k`, `j ≥ k`.
    /// Args: `[m, a, k, n]`; grid `[ceil((n+1)/64), n, 1]` (row = wg Y).
    fn fan2(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("gaussian_fan2");
        b.sgprs(32).vgprs(12);
        load_args(&mut b, 4)?;
        // Whole-row early out: if i <= k, nothing to do.
        b.sopc(Opcode::SCmpLeU32, Operand::Sgpr(abi::WG_ID_Y), arg(2))?;
        let done = b.new_label();
        b.branch(Opcode::SCbranchScc1, done);
        gid_x(&mut b, 3, 64)?; // v3 = j
                               // s26 = width = n + 1.
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(26),
            arg(3),
            Operand::IntConst(1),
        )?;
        // exec &= (j < n+1) & (j >= k).
        b.vopc(Opcode::VCmpGtU32, Operand::Sgpr(26), 3)?;
        b.sop1(Opcode::SMovB64, Operand::Sgpr(0), Operand::VccLo)?;
        b.vopc(Opcode::VCmpLeU32, arg(2), 3)?;
        b.sop2(
            Opcode::SAndB64,
            Operand::VccLo,
            Operand::Sgpr(0),
            Operand::VccLo,
        )?;
        b.sop1(Opcode::SAndSaveexecB64, Operand::Sgpr(14), Operand::VccLo)?;
        // m[i] scalar.
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(1),
            Operand::Sgpr(abi::WG_ID_Y),
            Operand::IntConst(2),
        )?;
        b.sop2(Opcode::SAddU32, Operand::Sgpr(2), arg(0), Operand::Sgpr(1))?;
        b.sop1(Opcode::SMovB32, Operand::Sgpr(3), Operand::IntConst(0))?;
        b.smrd(Opcode::SLoadDword, Operand::Sgpr(30), 2, SmrdOffset::Imm(0))?;
        b.waitcnt(None, Some(0))?;
        // v4 = byte offset of A[k][j].
        b.sop2(Opcode::SMulI32, Operand::Sgpr(1), arg(2), Operand::Sgpr(26))?;
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(1),
            Operand::Sgpr(1),
            Operand::IntConst(2),
        )?;
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
        b.vop2(Opcode::VAddI32, 5, Operand::Sgpr(1), 4)?;
        b.mubuf(Opcode::BufferLoadDword, 6, 5, 4, arg(1), 0)?;
        // v7 = byte offset of A[i][j].
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(1),
            Operand::Sgpr(abi::WG_ID_Y),
            Operand::Sgpr(26),
        )?;
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(1),
            Operand::Sgpr(1),
            Operand::IntConst(2),
        )?;
        b.vop2(Opcode::VAddI32, 7, Operand::Sgpr(1), 4)?;
        b.mubuf(Opcode::BufferLoadDword, 8, 7, 4, arg(1), 0)?;
        b.waitcnt(Some(0), None)?;
        // A[i][j] -= m[i] * A[k][j].
        b.vop2(Opcode::VMulF32, 9, Operand::Sgpr(30), 6)?;
        b.vop2(Opcode::VSubF32, 8, Operand::Vgpr(8), 9)?;
        b.mubuf(Opcode::BufferStoreDword, 8, 7, 4, arg(1), 0)?;
        b.waitcnt(Some(0), None)?;
        unmask(&mut b, 14)?;
        b.bind(done)?;
        b.endpgm()?;
        b.finish()
    }
}

/// Reference elimination with the device's exact arithmetic (including the
/// multiply-by-reciprocal).
fn eliminate_reference(aug: &mut [f32], n: usize) {
    let w = n + 1;
    for k in 0..n - 1 {
        let rcp = 1.0 / aug[k * w + k];
        let m: Vec<f32> = (0..n)
            .map(|i| if i > k { aug[i * w + k] * rcp } else { 0.0 })
            .collect();
        for i in (k + 1)..n {
            for j in k..w {
                aug[i * w + j] -= m[i] * aug[k * w + j];
            }
        }
    }
}

/// Back substitution (the MicroBlaze's phase).
fn back_substitute(aug: &[f32], n: usize) -> Vec<f32> {
    let w = n + 1;
    let mut x = vec![0f32; n];
    for i in (0..n).rev() {
        let mut sum = aug[i * w + n];
        for (j, &xj) in x.iter().enumerate().skip(i + 1) {
            sum -= aug[i * w + j] * xj;
        }
        x[i] = sum / aug[i * w + i];
    }
    x
}

impl Benchmark for Gaussian {
    fn name(&self) -> String {
        "Gaussian Elimination (SP FP)".to_string()
    }

    fn uses_fp(&self) -> bool {
        true
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.fan1()?, self.fan2()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernels = self.kernels()?;
        let mut sys = System::with_kernels(config, &kernels)?;
        let n = self.n as usize;
        let w = n + 1;

        // Diagonally dominant augmented system.
        let mut aug = random_f32(n * w, 95);
        for i in 0..n {
            aug[i * w + i] = 4.0 + aug[i * w + i].abs() + n as f32 * 0.5;
        }
        let reference_input = aug.clone();

        let a_m = sys.alloc(u64::from(self.n) * 4);
        let a_aug = sys.alloc_words(&f32_bits(&aug));

        for k in 0..self.n - 1 {
            sys.set_args(&[a_m as u32, a_aug as u32, k, self.n]);
            sys.dispatch_kernel(0, [self.n.div_ceil(64), 1, 1])?;
            sys.dispatch_kernel(1, [(self.n + 1).div_ceil(64), self.n, 1])?;
        }

        // MicroBlaze back-substitution on the triangularised matrix.
        let device_aug: Vec<f32> = sys
            .read_words(a_aug, n * w)
            .iter()
            .map(|&b| f32::from_bits(b))
            .collect();
        let x_device = back_substitute(&device_aug, n);
        sys.host_work(u64::from(self.n) * u64::from(self.n) * 4);

        // Reference.
        let mut ref_aug = reference_input.clone();
        eliminate_reference(&mut ref_aug, n);
        let x_ref = back_substitute(&ref_aug, n);

        check_f32(&self.name(), &f32_bits(&x_device), &x_ref, 1e-4)?;

        // Confirm the solution actually solves the original system.
        for i in 0..n {
            let mut lhs = 0f64;
            for (j, &xj) in x_device.iter().enumerate() {
                lhs += f64::from(reference_input[i * w + j]) * f64::from(xj);
            }
            let rhs = f64::from(reference_input[i * w + n]);
            if (lhs - rhs).abs() > 1e-2 {
                return Err(BenchError::Mismatch {
                    bench: self.name(),
                    index: i,
                    expected: (rhs as f32).to_bits(),
                    got: (lhs as f32).to_bits(),
                });
            }
        }
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    #[test]
    fn gaussian_validates() {
        Gaussian::new(16)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("gaussian");
    }

    #[test]
    fn reference_solver_residual_is_small() {
        let n = 8;
        let w = n + 1;
        let mut aug = random_f32(n * w, 95);
        for i in 0..n {
            aug[i * w + i] = 4.0 + aug[i * w + i].abs() + n as f32 * 0.5;
        }
        let original = aug.clone();
        eliminate_reference(&mut aug, n);
        let x = back_substitute(&aug, n);
        for i in 0..n {
            let mut lhs = 0f64;
            for j in 0..n {
                lhs += f64::from(original[i * w + j]) * f64::from(x[j]);
            }
            let rhs = f64::from(original[i * w + n]);
            assert!((lhs - rhs).abs() < 1e-3, "row {i}: {lhs} vs {rhs}");
        }
    }
}
