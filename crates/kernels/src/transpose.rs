//! Matrix transpose (INT32) — the AMD SDK workload with the paper's
//! highest trimming potential (72 % FF savings).

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand};
use scratch_system::{abi, RunReport, System, SystemConfig};

use crate::common::{arg, check_u32, gid_x, load_args, random_u32};
use crate::{BenchError, Benchmark};

/// `out[x][y] = in[y][x]` over an `n × n` matrix; grid `[n/64, n, 1]`
/// (row = workgroup id Y, column = flat X id).
#[derive(Debug, Clone, Copy)]
pub struct Transpose {
    /// Matrix dimension (multiple of 64).
    pub n: u32,
}

impl Transpose {
    /// A transpose workload on an `n × n` matrix.
    #[must_use]
    pub fn new(n: u32) -> Transpose {
        assert!(
            n.is_multiple_of(64),
            "n must be a multiple of the wavefront"
        );
        Transpose { n }
    }

    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new(self.name());
        b.sgprs(32).vgprs(8);
        // args: [in, out, n]
        load_args(&mut b, 3)?;
        gid_x(&mut b, 3, 64)?; // v3 = x
                               // In offset: (y*n + x) * 4; y = wg_id_y.
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(1),
            Operand::Sgpr(abi::WG_ID_Y),
            arg(2),
        )?;
        b.vop2(Opcode::VAddI32, 4, Operand::Sgpr(1), 3)?;
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 4)?;
        // Out offset: (x*n + y) * 4.
        b.vop3a(Opcode::VMulLoU32, 5, Operand::Vgpr(3), arg(2), None)?;
        b.vop2(Opcode::VAddI32, 5, Operand::Sgpr(abi::WG_ID_Y), 5)?;
        b.vop2(Opcode::VLshlrevB32, 5, Operand::IntConst(2), 5)?;
        b.mubuf(Opcode::BufferLoadDword, 6, 4, 4, arg(0), 0)?;
        b.waitcnt(Some(0), None)?;
        b.mubuf(Opcode::BufferStoreDword, 6, 5, 4, arg(1), 0)?;
        b.waitcnt(Some(0), None)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for Transpose {
    fn name(&self) -> String {
        "Matrix Transpose (INT32)".to_string()
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.n as usize;
        let input = random_u32(n * n, 21, u32::MAX);
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc((n * n) as u64 * 4);
        sys.set_args(&[a_in as u32, a_out as u32, self.n]);
        sys.dispatch([self.n / 64, self.n, 1])?;

        let mut expected = vec![0u32; n * n];
        for y in 0..n {
            for x in 0..n {
                expected[x * n + y] = input[y * n + x];
            }
        }
        check_u32(&self.name(), &sys.read_words(a_out, n * n), &expected)?;
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    #[test]
    fn transpose_validates() {
        Transpose::new(64)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("transpose");
    }

    #[test]
    fn transpose_is_integer_only() {
        use scratch_core::trim_kernel;
        let k = Transpose::new(64).kernels().unwrap().pop().unwrap();
        let trim = trim_kernel(&k).unwrap();
        assert!(!trim.uses_fp);
        assert!(trim.removed_units.contains(&scratch_isa::FuncUnit::Simf));
    }
}
