//! Further AMD APP SDK workloads from the paper's Fig. 4 characterisation
//! set: Black-Scholes (the benchmark the paper singles out for its wide
//! arithmetic range, including transcendentals), Sobel filter, DCT,
//! Floyd-Warshall and uniform random-noise generation.

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand, SmrdOffset};
use scratch_system::{abi, RunReport, System, SystemConfig};

use crate::common::{
    arg, check_f32, check_u32, f32_bits, gid_x, load_args, mask_lt, random_f32, random_u32, unmask,
    CountedLoop,
};
use crate::{BenchError, Benchmark};

// ------------------------------------------------------------ BlackScholes

/// European call-option pricing with the Abramowitz–Stegun normal-CDF
/// polynomial — logarithms, exponentials, reciprocals, square roots and MAD
/// chains (the div/trans arithmetic groups of Fig. 4 that the paper calls
/// out for Black-Scholes).
#[derive(Debug, Clone, Copy)]
pub struct BlackScholes {
    /// Number of options (multiple of 64).
    pub n: u32,
}

impl BlackScholes {
    const RATE: f32 = 0.02;
    const VOL: f32 = 0.30;
    const T: f32 = 1.5;
    const C1: f32 = 0.319_381_53;
    const C2: f32 = -0.356_563_78;
    const C3: f32 = 1.781_477_9;
    const C4: f32 = -1.821_256;
    const C5: f32 = 1.330_274_4;
    const INV_SQRT_2PI: f32 = 0.398_942_3;

    /// Price `n` options.
    #[must_use]
    pub fn new(n: u32) -> BlackScholes {
        assert!(n.is_multiple_of(64));
        BlackScholes { n }
    }

    /// The device CND, mirrored operation-for-operation by
    /// [`BlackScholes::cnd_reference`]. `x` is the input VGPR, `out` the
    /// result VGPR; v14–v17 are scratch; v20–v24 hold the polynomial
    /// coefficients.
    fn emit_cnd(b: &mut KernelBuilder, x: u8, out: u8) -> Result<(), AsmError> {
        let lit = KernelBuilder::const_f32;
        // v14 = |x|
        b.vop2(Opcode::VAndB32, 14, Operand::Literal(0x7fff_ffff), x)?;
        // v15 = k = 1 / (1 + 0.2316419 |x|)
        b.vop1(Opcode::VMovB32, 15, lit(0.231_641_9))?;
        b.vop3a(
            Opcode::VMadF32,
            15,
            Operand::Vgpr(15),
            Operand::Vgpr(14),
            Some(Operand::FloatConst(1.0)),
        )?;
        b.vop1(Opcode::VRcpF32, 15, Operand::Vgpr(15))?;
        // v16 = Horner polynomial in k.
        b.vop1(Opcode::VMovB32, 16, Operand::Vgpr(20))?; // c5
        for coeff in [21u8, 22, 23, 24] {
            b.vop3a(
                Opcode::VMadF32,
                16,
                Operand::Vgpr(16),
                Operand::Vgpr(15),
                Some(Operand::Vgpr(coeff)),
            )?;
        }
        b.vop2(Opcode::VMulF32, 16, Operand::Vgpr(16), 15)?;
        // v17 = pdf(|x|) = inv_sqrt_2pi * exp2(-x^2/2 * log2(e))
        b.vop2(Opcode::VMulF32, 17, Operand::Vgpr(14), 14)?;
        b.vop1(Opcode::VMovB32, 18, lit(-0.5 * std::f32::consts::LOG2_E))?;
        b.vop2(Opcode::VMulF32, 17, Operand::Vgpr(17), 18)?;
        b.vop1(Opcode::VExpF32, 17, Operand::Vgpr(17))?;
        b.vop1(Opcode::VMovB32, 18, lit(Self::INV_SQRT_2PI))?;
        b.vop2(Opcode::VMulF32, 17, Operand::Vgpr(17), 18)?;
        // out = 1 - pdf * poly
        b.vop2(Opcode::VMulF32, 16, Operand::Vgpr(17), 16)?;
        b.vop2(Opcode::VSubrevF32, out, Operand::Vgpr(16), 19)?; // v19 = 1.0
                                                                 // x < 0 => out = 1 - out (mirror).
        b.vop2(Opcode::VSubF32, 18, Operand::Vgpr(19), out)?;
        b.vopc(Opcode::VCmpGtF32, Operand::IntConst(0), x)?; // 0 > x
        b.vop2(Opcode::VCndmaskB32, out, Operand::Vgpr(out), 18)?;
        Ok(())
    }

    /// Host mirror of [`BlackScholes::emit_cnd`].
    fn cnd_reference(x: f32) -> f32 {
        let a = x.abs();
        let k = 1.0 / (0.231_641_9f32 * a + 1.0);
        let mut poly = Self::C5;
        for c in [Self::C4, Self::C3, Self::C2, Self::C1] {
            poly = poly * k + c;
        }
        poly *= k;
        let pdf = (a * a * (-0.5 * std::f32::consts::LOG2_E)).exp2() * Self::INV_SQRT_2PI;
        let cnd = 1.0 - pdf * poly;
        if 0.0 > x {
            1.0 - cnd
        } else {
            cnd
        }
    }

    /// Host mirror of the whole kernel for one option.
    fn price_reference(s: f32, k: f32) -> f32 {
        let ln_sk = (s.log2() - k.log2()) * (1.0 / std::f32::consts::LOG2_E);
        let vsqrt = Self::T.sqrt() * Self::VOL;
        let drift = (Self::RATE + Self::VOL * Self::VOL * 0.5) * Self::T;
        let d1 = (ln_sk + drift) * (1.0 / vsqrt);
        let d2 = d1 - vsqrt;
        let disc = (-Self::RATE * Self::T).exp();
        s * Self::cnd_reference(d1) - k * disc * Self::cnd_reference(d2)
    }

    /// Args: `[spot, strike, out]`; one work-item per option.
    fn build(&self) -> Result<Kernel, AsmError> {
        let lit = KernelBuilder::const_f32;
        let mut b = KernelBuilder::new("black_scholes");
        b.sgprs(32).vgprs(28);
        load_args(&mut b, 3)?;
        gid_x(&mut b, 3, 64)?;
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
        b.mubuf(Opcode::BufferLoadDword, 5, 4, 4, arg(0), 0)?; // S
        b.mubuf(Opcode::BufferLoadDword, 6, 4, 4, arg(1), 0)?; // K
        b.waitcnt(Some(0), None)?;

        // Polynomial coefficients and the constant one.
        b.vop1(Opcode::VMovB32, 20, lit(Self::C5))?;
        b.vop1(Opcode::VMovB32, 21, lit(Self::C4))?;
        b.vop1(Opcode::VMovB32, 22, lit(Self::C3))?;
        b.vop1(Opcode::VMovB32, 23, lit(Self::C2))?;
        b.vop1(Opcode::VMovB32, 24, lit(Self::C1))?;
        b.vop1(Opcode::VMovB32, 19, Operand::FloatConst(1.0))?;

        // v7 = ln(S/K) = (log2 S - log2 K) / log2 e.
        b.vop1(Opcode::VLogF32, 7, Operand::Vgpr(5))?;
        b.vop1(Opcode::VLogF32, 8, Operand::Vgpr(6))?;
        b.vop2(Opcode::VSubF32, 7, Operand::Vgpr(7), 8)?;
        b.vop1(Opcode::VMovB32, 8, lit(1.0 / std::f32::consts::LOG2_E))?;
        b.vop2(Opcode::VMulF32, 7, Operand::Vgpr(7), 8)?;
        // v9 = sigma * sqrt(T)
        b.vop1(Opcode::VSqrtF32, 9, lit(Self::T))?;
        b.vop2(Opcode::VMulF32, 9, lit(Self::VOL), 9)?;
        // v10 = d1 = (lnSK + drift) / (sigma sqrt T)
        let drift = (Self::RATE + Self::VOL * Self::VOL * 0.5) * Self::T;
        b.vop2(Opcode::VAddF32, 10, lit(drift), 7)?;
        b.vop1(Opcode::VRcpF32, 11, Operand::Vgpr(9))?;
        b.vop2(Opcode::VMulF32, 10, Operand::Vgpr(10), 11)?;
        // v11 = d2 = d1 - sigma sqrt T
        b.vop2(Opcode::VSubF32, 11, Operand::Vgpr(10), 9)?;

        Self::emit_cnd(&mut b, 10, 12)?;
        Self::emit_cnd(&mut b, 11, 13)?;

        // price = S cnd1 - K e^{-rT} cnd2.
        let disc = (-Self::RATE * Self::T).exp();
        b.vop2(Opcode::VMulF32, 25, Operand::Vgpr(5), 12)?;
        b.vop1(Opcode::VMovB32, 26, lit(disc))?;
        b.vop2(Opcode::VMulF32, 26, Operand::Vgpr(6), 26)?;
        b.vop2(Opcode::VMulF32, 26, Operand::Vgpr(26), 13)?;
        b.vop2(Opcode::VSubF32, 25, Operand::Vgpr(25), 26)?;

        b.mubuf(Opcode::BufferStoreDword, 25, 4, 4, arg(2), 0)?;
        b.waitcnt(Some(0), None)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for BlackScholes {
    fn name(&self) -> String {
        "Black-Scholes (SP FP)".to_string()
    }

    fn uses_fp(&self) -> bool {
        true
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.n as usize;
        let spot: Vec<f32> = random_f32(n, 111).iter().map(|v| 40.0 + v * 20.0).collect();
        let strike: Vec<f32> = random_f32(n, 112).iter().map(|v| 40.0 + v * 20.0).collect();
        let a_s = sys.alloc_words(&f32_bits(&spot));
        let a_k = sys.alloc_words(&f32_bits(&strike));
        let a_out = sys.alloc(n as u64 * 4);
        sys.set_args(&[a_s as u32, a_k as u32, a_out as u32]);
        sys.dispatch([self.n / 64, 1, 1])?;

        let expected: Vec<f32> = spot
            .iter()
            .zip(&strike)
            .map(|(&s, &k)| Self::price_reference(s, k))
            .collect();
        check_f32(&self.name(), &sys.read_words(a_out, n), &expected, 1e-4)?;
        Ok(sys.report())
    }
}

// ------------------------------------------------------------------ Sobel

/// Sobel edge filter (INT32): two fixed 3×3 masks and an |gx|+|gy|
/// magnitude — the image-processing staple of the SDK set.
#[derive(Debug, Clone, Copy)]
pub struct Sobel {
    /// Output dimension.
    pub b: u32,
}

impl Sobel {
    /// Filter a `(b+2)²` image into a `b²` edge map.
    #[must_use]
    pub fn new(b: u32) -> Sobel {
        Sobel { b }
    }

    /// Args: `[in, out, b]`; grid `[ceil(b/64), b, 1]`.
    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("sobel");
        b.sgprs(32).vgprs(24);
        load_args(&mut b, 3)?;
        gid_x(&mut b, 3, 64)?;
        mask_lt(&mut b, 3, arg(2), 14)?;
        // Row base soffsets: s27/s28/s29 = in + (y+r) * (b+2) * 4.
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(26),
            arg(2),
            Operand::IntConst(2),
        )?;
        for r in 0..3u8 {
            b.sop2(
                Opcode::SAddU32,
                Operand::Sgpr(1),
                Operand::Sgpr(abi::WG_ID_Y),
                KernelBuilder::const_u32(r.into()),
            )?;
            b.sop2(
                Opcode::SMulI32,
                Operand::Sgpr(1),
                Operand::Sgpr(1),
                Operand::Sgpr(26),
            )?;
            b.sop2(
                Opcode::SLshlB32,
                Operand::Sgpr(1),
                Operand::Sgpr(1),
                Operand::IntConst(2),
            )?;
            b.sop2(
                Opcode::SAddU32,
                Operand::Sgpr(27 + r),
                arg(0),
                Operand::Sgpr(1),
            )?;
        }
        // v4 = x * 4.
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
        // Load the 3x3 neighbourhood into v5..v13 (row-major).
        for r in 0..3u8 {
            for c in 0..3u16 {
                b.mubuf(
                    Opcode::BufferLoadDword,
                    5 + r * 3 + c as u8,
                    4,
                    4,
                    Operand::Sgpr(27 + r),
                    c * 4,
                )?;
            }
        }
        b.waitcnt(Some(0), None)?;
        // gx = (p02 + 2 p12 + p22) - (p00 + 2 p10 + p20)  -> v15
        b.vop2(Opcode::VAddI32, 15, Operand::Vgpr(7), 10)?; // p02 + p12
        b.vop2(Opcode::VAddI32, 15, Operand::Vgpr(15), 10)?; // + p12 again
        b.vop2(Opcode::VAddI32, 15, Operand::Vgpr(15), 13)?; // + p22
        b.vop2(Opcode::VAddI32, 16, Operand::Vgpr(5), 8)?;
        b.vop2(Opcode::VAddI32, 16, Operand::Vgpr(16), 8)?;
        b.vop2(Opcode::VAddI32, 16, Operand::Vgpr(16), 11)?;
        b.vop2(Opcode::VSubI32, 15, Operand::Vgpr(15), 16)?;
        // gy = (p20 + 2 p21 + p22) - (p00 + 2 p01 + p02)  -> v17
        b.vop2(Opcode::VAddI32, 17, Operand::Vgpr(11), 12)?;
        b.vop2(Opcode::VAddI32, 17, Operand::Vgpr(17), 12)?;
        b.vop2(Opcode::VAddI32, 17, Operand::Vgpr(17), 13)?;
        b.vop2(Opcode::VAddI32, 18, Operand::Vgpr(5), 6)?;
        b.vop2(Opcode::VAddI32, 18, Operand::Vgpr(18), 6)?;
        b.vop2(Opcode::VAddI32, 18, Operand::Vgpr(18), 7)?;
        b.vop2(Opcode::VSubI32, 17, Operand::Vgpr(17), 18)?;
        // |gx| + |gy| via max(x, -x).
        b.vop1(Opcode::VMovB32, 20, Operand::IntConst(0))?;
        b.vop2(Opcode::VSubI32, 19, Operand::Vgpr(20), 15)?; // -gx
        b.vop2(Opcode::VMaxI32, 15, Operand::Vgpr(15), 19)?;
        b.vop2(Opcode::VSubI32, 19, Operand::Vgpr(20), 17)?; // -gy
        b.vop2(Opcode::VMaxI32, 17, Operand::Vgpr(17), 19)?;
        b.vop2(Opcode::VAddI32, 15, Operand::Vgpr(15), 17)?;
        // Store out[y*b + x].
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(0),
            Operand::Sgpr(abi::WG_ID_Y),
            arg(2),
        )?;
        b.vop2(Opcode::VAddI32, 21, Operand::Sgpr(0), 3)?;
        b.vop2(Opcode::VLshlrevB32, 21, Operand::IntConst(2), 21)?;
        b.mubuf(Opcode::BufferStoreDword, 15, 21, 4, arg(1), 0)?;
        b.waitcnt(Some(0), None)?;
        unmask(&mut b, 14)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for Sobel {
    fn name(&self) -> String {
        "Sobel Filter (INT32)".to_string()
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let bsz = self.b as usize;
        let w = bsz + 2;
        let input = random_u32(w * w, 121, 256);
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc((bsz * bsz) as u64 * 4);
        sys.set_args(&[a_in as u32, a_out as u32, self.b]);
        sys.dispatch([self.b.div_ceil(64), self.b, 1])?;

        let px = |y: usize, x: usize| input[y * w + x] as i32;
        let mut expected = vec![0u32; bsz * bsz];
        for y in 0..bsz {
            for x in 0..bsz {
                let gx = (px(y, x + 2) + 2 * px(y + 1, x + 2) + px(y + 2, x + 2))
                    - (px(y, x) + 2 * px(y + 1, x) + px(y + 2, x));
                let gy = (px(y + 2, x) + 2 * px(y + 2, x + 1) + px(y + 2, x + 2))
                    - (px(y, x) + 2 * px(y, x + 1) + px(y, x + 2));
                expected[y * bsz + x] = (gx.abs() + gy.abs()) as u32;
            }
        }
        check_u32(&self.name(), &sys.read_words(a_out, bsz * bsz), &expected)?;
        Ok(sys.report())
    }
}

// -------------------------------------------------------------------- DCT

/// 8×8 block DCT (SP FP): one workgroup per block, one work-item per
/// output coefficient, as a dot product with the host-precomputed 64×64
/// transform matrix.
#[derive(Debug, Clone, Copy)]
pub struct Dct {
    /// Number of 8×8 blocks.
    pub blocks: u32,
}

impl Dct {
    /// Transform `blocks` 8×8 blocks.
    #[must_use]
    pub fn new(blocks: u32) -> Dct {
        assert!(blocks >= 1);
        Dct { blocks }
    }

    /// The 64×64 DCT-II matrix, laid out `m[xy][uv]` so work-item `uv` can
    /// gather its column at stride 64.
    fn matrix() -> Vec<f32> {
        let mut m = vec![0f32; 64 * 64];
        for u in 0..8usize {
            for v in 0..8 {
                let alpha = |k: usize| {
                    if k == 0 {
                        (1.0f32 / 8.0).sqrt()
                    } else {
                        (2.0f32 / 8.0).sqrt()
                    }
                };
                for x in 0..8 {
                    for y in 0..8 {
                        let cu =
                            ((2 * x + 1) as f32 * u as f32 * std::f32::consts::PI / 16.0).cos();
                        let cv =
                            ((2 * y + 1) as f32 * v as f32 * std::f32::consts::PI / 16.0).cos();
                        m[(x * 8 + y) * 64 + (u * 8 + v)] = alpha(u) * alpha(v) * cu * cv;
                    }
                }
            }
        }
        m
    }

    /// Args: `[in, matrix, out]`; grid `[blocks, 1, 1]`, wg = 64.
    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("dct8x8");
        b.sgprs(32).vgprs(12);
        load_args(&mut b, 3)?;
        // Block base bytes: s25 = wg_id * 64 * 4; pixel pointer s[2:3].
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(25),
            Operand::Sgpr(abi::WG_ID_X),
            Operand::IntConst(8),
        )?;
        b.sop2(Opcode::SAddU32, Operand::Sgpr(2), arg(0), Operand::Sgpr(25))?;
        b.sop1(Opcode::SMovB32, Operand::Sgpr(3), Operand::IntConst(0))?;
        // Matrix row offset advances 64*4 bytes per step; v4 = tid*4 within
        // the row; acc v5 = 0; s26 walks the row base.
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 0)?;
        b.vop1(Opcode::VMovB32, 5, Operand::IntConst(0))?;
        b.sop1(Opcode::SMovB32, Operand::Sgpr(26), arg(1))?;

        let l = CountedLoop::begin(&mut b, 19, Operand::IntConst(64))?;
        b.smrd(Opcode::SLoadDword, Operand::Sgpr(1), 2, SmrdOffset::Imm(0))?;
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(2),
            Operand::Sgpr(2),
            Operand::IntConst(4),
        )?;
        b.mubuf(Opcode::BufferLoadDword, 6, 4, 4, Operand::Sgpr(26), 0)?;
        b.waitcnt(Some(0), Some(0))?;
        b.vop2(Opcode::VMacF32, 5, Operand::Sgpr(1), 6)?;
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(26),
            Operand::Sgpr(26),
            Operand::Literal(256),
        )?;
        l.end(&mut b)?;

        // out[wg*64 + tid].
        b.vop2(Opcode::VAddI32, 7, Operand::Sgpr(25), 4)?;
        b.mubuf(Opcode::BufferStoreDword, 5, 7, 4, arg(2), 0)?;
        b.waitcnt(Some(0), None)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for Dct {
    fn name(&self) -> String {
        "DCT (SP FP)".to_string()
    }

    fn uses_fp(&self) -> bool {
        true
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.blocks as usize * 64;
        let input = random_f32(n, 131);
        let matrix = Self::matrix();
        let a_in = sys.alloc_words(&f32_bits(&input));
        let a_m = sys.alloc_words(&f32_bits(&matrix));
        let a_out = sys.alloc(n as u64 * 4);
        sys.set_args(&[a_in as u32, a_m as u32, a_out as u32]);
        sys.dispatch([self.blocks, 1, 1])?;

        let mut expected = vec![0f32; n];
        for blk in 0..self.blocks as usize {
            for uv in 0..64 {
                let mut acc = 0f32;
                for xy in 0..64 {
                    acc = matrix[xy * 64 + uv].mul_add(input[blk * 64 + xy], acc);
                }
                expected[blk * 64 + uv] = acc;
            }
        }
        check_f32(&self.name(), &sys.read_words(a_out, n), &expected, 1e-4)?;
        Ok(sys.report())
    }
}

// ---------------------------------------------------------- FloydWarshall

/// All-pairs shortest paths (INT32): one relaxation kernel per pivot `k`,
/// driven by a host loop — the classic SDK formulation.
#[derive(Debug, Clone, Copy)]
pub struct FloydWarshall {
    /// Vertex count (multiple of 64 keeps lanes full; smaller is masked).
    pub v: u32,
}

impl FloydWarshall {
    const INF: u32 = 1 << 20;

    /// Shortest paths over `v` vertices.
    #[must_use]
    pub fn new(v: u32) -> FloydWarshall {
        FloydWarshall { v }
    }

    /// Args: `[d, k, v]`; grid `[ceil(v/64), v, 1]`; i = wg Y, j = flat X.
    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("floyd_warshall");
        b.sgprs(32).vgprs(12);
        load_args(&mut b, 3)?;
        gid_x(&mut b, 3, 64)?; // j
        mask_lt(&mut b, 3, arg(2), 14)?;
        // s25 = i*v*4 (row i base), s26 = k*v*4 (row k base).
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(25),
            Operand::Sgpr(abi::WG_ID_Y),
            arg(2),
        )?;
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(25),
            Operand::Sgpr(25),
            Operand::IntConst(2),
        )?;
        b.sop2(Opcode::SMulI32, Operand::Sgpr(26), arg(1), arg(2))?;
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(26),
            Operand::Sgpr(26),
            Operand::IntConst(2),
        )?;
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(27),
            arg(0),
            Operand::Sgpr(25),
        )?;
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(28),
            arg(0),
            Operand::Sgpr(26),
        )?;
        // d[i][k] is wavefront-uniform: scalar load via s[2:3].
        b.sop2(
            Opcode::SLshlB32,
            Operand::Sgpr(1),
            arg(1),
            Operand::IntConst(2),
        )?;
        b.sop2(
            Opcode::SAddU32,
            Operand::Sgpr(2),
            Operand::Sgpr(27),
            Operand::Sgpr(1),
        )?;
        b.sop1(Opcode::SMovB32, Operand::Sgpr(3), Operand::IntConst(0))?;
        b.smrd(Opcode::SLoadDword, Operand::Sgpr(30), 2, SmrdOffset::Imm(0))?;
        // d[i][j] and d[k][j].
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
        b.mubuf(Opcode::BufferLoadDword, 5, 4, 4, Operand::Sgpr(27), 0)?;
        b.mubuf(Opcode::BufferLoadDword, 6, 4, 4, Operand::Sgpr(28), 0)?;
        b.waitcnt(Some(0), Some(0))?;
        // candidate = d[i][k] + d[k][j]; d[i][j] = min(d[i][j], candidate).
        b.vop2(Opcode::VAddI32, 7, Operand::Sgpr(30), 6)?;
        b.vop2(Opcode::VMinU32, 5, Operand::Vgpr(5), 7)?;
        b.mubuf(Opcode::BufferStoreDword, 5, 4, 4, Operand::Sgpr(27), 0)?;
        b.waitcnt(Some(0), None)?;
        unmask(&mut b, 14)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for FloydWarshall {
    fn name(&self) -> String {
        "Floyd-Warshall (INT32)".to_string()
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let v = self.v as usize;
        // Sparse random digraph.
        let raw = random_u32(v * v, 141, 100);
        let mut d: Vec<u32> = raw
            .iter()
            .map(|&x| if x < 20 { x + 1 } else { Self::INF })
            .collect();
        for i in 0..v {
            d[i * v + i] = 0;
        }
        let dev = sys.alloc_words(&d);
        for k in 0..self.v {
            sys.set_args(&[dev as u32, k, self.v]);
            sys.dispatch([self.v.div_ceil(64), self.v, 1])?;
        }

        let mut expected = d;
        for k in 0..v {
            for i in 0..v {
                let dik = expected[i * v + k];
                for j in 0..v {
                    let cand = dik + expected[k * v + j];
                    if cand < expected[i * v + j] {
                        expected[i * v + j] = cand;
                    }
                }
            }
        }
        check_u32(&self.name(), &sys.read_words(dev, v * v), &expected)?;
        Ok(sys.report())
    }
}

// ------------------------------------------------------------------ Noise

/// Uniform random noise generation (INT32): per-work-item xorshift32
/// iterated `rounds` times — the shift/logic-dominated profile Fig. 4
/// shows for the SDK's noise generator.
#[derive(Debug, Clone, Copy)]
pub struct NoiseGen {
    /// Values to generate (multiple of 64).
    pub n: u32,
    /// Xorshift rounds per value.
    pub rounds: u32,
}

impl NoiseGen {
    /// Generate `n` values with `rounds` xorshift rounds each.
    #[must_use]
    pub fn new(n: u32, rounds: u32) -> NoiseGen {
        assert!(n.is_multiple_of(64) && rounds >= 1);
        NoiseGen { n, rounds }
    }

    /// Args: `[seeds, out, rounds]`.
    fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new("noise_gen");
        b.sgprs(32).vgprs(12);
        load_args(&mut b, 3)?;
        gid_x(&mut b, 3, 64)?;
        b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
        b.mubuf(Opcode::BufferLoadDword, 5, 4, 4, arg(0), 0)?;
        b.waitcnt(Some(0), None)?;
        let l = CountedLoop::begin(&mut b, 19, arg(2))?;
        // x ^= x << 13 ; x ^= x >> 17 ; x ^= x << 5.
        b.vop2(Opcode::VLshlrevB32, 6, Operand::IntConst(13), 5)?;
        b.vop2(Opcode::VXorB32, 5, Operand::Vgpr(5), 6)?;
        b.vop2(Opcode::VLshrrevB32, 6, Operand::IntConst(17), 5)?;
        b.vop2(Opcode::VXorB32, 5, Operand::Vgpr(5), 6)?;
        b.vop2(Opcode::VLshlrevB32, 6, Operand::IntConst(5), 5)?;
        b.vop2(Opcode::VXorB32, 5, Operand::Vgpr(5), 6)?;
        l.end(&mut b)?;
        b.mubuf(Opcode::BufferStoreDword, 5, 4, 4, arg(1), 0)?;
        b.waitcnt(Some(0), None)?;
        b.endpgm()?;
        b.finish()
    }
}

impl Benchmark for NoiseGen {
    fn name(&self) -> String {
        "Uniform Random Noise (INT32)".to_string()
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![self.build()?])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernel = self.build()?;
        let mut sys = System::new(config, &kernel)?;
        let n = self.n as usize;
        // Seeds must be nonzero for xorshift.
        let seeds: Vec<u32> = random_u32(n, 151, u32::MAX - 1)
            .iter()
            .map(|&s| s | 1)
            .collect();
        let a_in = sys.alloc_words(&seeds);
        let a_out = sys.alloc(n as u64 * 4);
        sys.set_args(&[a_in as u32, a_out as u32, self.rounds]);
        sys.dispatch([self.n / 64, 1, 1])?;

        let expected: Vec<u32> = seeds
            .iter()
            .map(|&s| {
                let mut x = s;
                for _ in 0..self.rounds {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                }
                x
            })
            .collect();
        check_u32(&self.name(), &sys.read_words(a_out, n), &expected)?;
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    fn cfg() -> SystemConfig {
        SystemConfig::preset(SystemKind::DcdPm)
    }

    #[test]
    fn black_scholes_validates() {
        BlackScholes::new(128).run(cfg()).expect("black-scholes");
    }

    #[test]
    fn black_scholes_prices_are_sane() {
        // Deep in-the-money call ~ S - K e^{-rT}; worthless when S << K.
        let deep = BlackScholes::price_reference(100.0, 10.0);
        assert!(
            (deep - (100.0 - 10.0 * (-0.03f32).exp())).abs() < 0.5,
            "{deep}"
        );
        let worthless = BlackScholes::price_reference(10.0, 100.0);
        assert!(worthless < 0.5, "{worthless}");
    }

    #[test]
    fn black_scholes_uses_trans_and_div_units() {
        use scratch_isa::Category;
        let k = BlackScholes::new(64).kernels().unwrap().remove(0);
        let cats: std::collections::BTreeSet<Category> = k
            .instructions()
            .unwrap()
            .iter()
            .map(|(_, i)| i.opcode.category())
            .collect();
        assert!(cats.contains(&Category::Trans), "log/exp/sqrt present");
        assert!(cats.contains(&Category::Div), "rcp present");
    }

    #[test]
    fn sobel_validates() {
        Sobel::new(64).run(cfg()).expect("sobel");
        Sobel::new(16).run(cfg()).expect("masked sobel");
    }

    #[test]
    fn dct_validates() {
        Dct::new(4).run(cfg()).expect("dct");
    }

    #[test]
    fn floyd_warshall_validates() {
        FloydWarshall::new(16).run(cfg()).expect("floyd-warshall");
    }

    #[test]
    fn noise_gen_validates() {
        NoiseGen::new(128, 8).run(cfg()).expect("noise");
    }
}
