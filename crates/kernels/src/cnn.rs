//! Convolutional neural network inference (INT32 fixed-point and SP-FP) —
//! the paper's AI workload: a 3-layer topology with 16 feature maps per
//! layer and 2×2 max pooling after each layer, classifying square RGB
//! images (32×32 = CIFAR-10 up to 512×512).

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_isa::{Opcode, Operand, SmrdOffset};
use scratch_system::{abi, RunReport, System, SystemConfig};

use crate::common::{
    arg, check_f32, check_u32, f32_bits, gid_x, load_args, mask_lt, random_f32, random_u32, unmask,
    CountedLoop,
};
use crate::pooling::pool_kernel;
use crate::{BenchError, Benchmark};

/// Numeric behaviour of a convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LayerMath {
    /// Q8 fixed point: accumulate int32, shift right 8, ReLU.
    IntQ8,
    /// Q8 fixed point clamped to the int8 range after ReLU (NIN INT8).
    Int8Q8,
    /// Single-precision float with ReLU.
    Fp32,
}

/// Multi-channel convolution layer kernel.
///
/// Args: `[in, w, out, b, k, c, plane_bytes]` — padded input planes of
/// width `b+k-1` laid out channel-major, weights `[c][k][k]` streamed by
/// scalar loads, output one `b × b` feature map. Grid `[ceil(b/64), b, 1]`.
pub(crate) fn conv_layer_kernel(math: LayerMath) -> Result<Kernel, AsmError> {
    let mut b = KernelBuilder::new(match math {
        LayerMath::IntQ8 => "conv_layer_int",
        LayerMath::Int8Q8 => "conv_layer_int8",
        LayerMath::Fp32 => "conv_layer_fp",
    });
    b.sgprs(40).vgprs(12);
    load_args(&mut b, 7)?;
    gid_x(&mut b, 3, 64)?; // v3 = x
    mask_lt(&mut b, 3, arg(3), 14)?;
    b.vop1(Opcode::VMovB32, 5, Operand::IntConst(0))?; // acc
                                                       // Weights pointer.
    b.sop1(Opcode::SMovB32, Operand::Sgpr(2), arg(1))?;
    b.sop1(Opcode::SMovB32, Operand::Sgpr(3), Operand::IntConst(0))?;
    // s32 = W = b + k - 1 (scratch registers live above the arg window).
    b.sop2(Opcode::SAddU32, Operand::Sgpr(32), arg(3), arg(4))?;
    b.sop2(
        Opcode::SSubU32,
        Operand::Sgpr(32),
        Operand::Sgpr(32),
        Operand::IntConst(1),
    )?;
    // s33 = current channel plane base (starts at `in`).
    b.sop1(Opcode::SMovB32, Operand::Sgpr(33), arg(0))?;

    let ch = CountedLoop::begin(&mut b, 30, arg(5))?;
    // s28 = y + ky (restarts at y for each channel).
    b.sop1(
        Opcode::SMovB32,
        Operand::Sgpr(28),
        Operand::Sgpr(abi::WG_ID_Y),
    )?;
    let ky = CountedLoop::begin(&mut b, 19, arg(4))?;
    b.sop2(
        Opcode::SMulI32,
        Operand::Sgpr(1),
        Operand::Sgpr(28),
        Operand::Sgpr(32),
    )?;
    b.sop2(
        Opcode::SLshlB32,
        Operand::Sgpr(1),
        Operand::Sgpr(1),
        Operand::IntConst(2),
    )?;
    b.sop2(
        Opcode::SAddU32,
        Operand::Sgpr(29),
        Operand::Sgpr(33),
        Operand::Sgpr(1),
    )?;
    b.vop2(Opcode::VLshlrevB32, 4, Operand::IntConst(2), 3)?;
    let kx = CountedLoop::begin(&mut b, 27, arg(4))?;
    b.smrd(Opcode::SLoadDword, Operand::Sgpr(1), 2, SmrdOffset::Imm(0))?;
    b.sop2(
        Opcode::SAddU32,
        Operand::Sgpr(2),
        Operand::Sgpr(2),
        Operand::IntConst(4),
    )?;
    b.mubuf(Opcode::BufferLoadDword, 6, 4, 4, Operand::Sgpr(29), 0)?;
    b.waitcnt(Some(0), Some(0))?;
    match math {
        LayerMath::Fp32 => {
            b.vop2(Opcode::VMacF32, 5, Operand::Sgpr(1), 6)?;
        }
        LayerMath::IntQ8 | LayerMath::Int8Q8 => {
            b.vop3a(
                Opcode::VMulLoI32,
                7,
                Operand::Sgpr(1),
                Operand::Vgpr(6),
                None,
            )?;
            b.vop2(Opcode::VAddI32, 5, Operand::Vgpr(7), 5)?;
        }
    }
    b.vop2(Opcode::VAddI32, 4, Operand::IntConst(4), 4)?;
    kx.end(&mut b)?;
    b.sop2(
        Opcode::SAddU32,
        Operand::Sgpr(28),
        Operand::Sgpr(28),
        Operand::IntConst(1),
    )?;
    ky.end(&mut b)?;
    b.sop2(
        Opcode::SAddU32,
        Operand::Sgpr(33),
        Operand::Sgpr(33),
        arg(6),
    )?;
    ch.end(&mut b)?;

    // Activation.
    match math {
        LayerMath::Fp32 => {
            b.vop2(Opcode::VMaxF32, 5, Operand::IntConst(0), 5)?; // ReLU
        }
        LayerMath::IntQ8 => {
            b.vop2(Opcode::VAshrrevI32, 5, Operand::IntConst(8), 5)?;
            b.vop2(Opcode::VMaxI32, 5, Operand::IntConst(0), 5)?;
        }
        LayerMath::Int8Q8 => {
            b.vop2(Opcode::VAshrrevI32, 5, Operand::IntConst(8), 5)?;
            b.vop2(Opcode::VMaxI32, 5, Operand::IntConst(0), 5)?;
            b.vop2(Opcode::VMinI32, 5, Operand::Literal(127), 5)?;
        }
    }

    // Store out[y*b + x].
    b.sop2(
        Opcode::SMulI32,
        Operand::Sgpr(0),
        Operand::Sgpr(abi::WG_ID_Y),
        arg(3),
    )?;
    b.vop2(Opcode::VAddI32, 8, Operand::Sgpr(0), 3)?;
    b.vop2(Opcode::VLshlrevB32, 8, Operand::IntConst(2), 8)?;
    b.mubuf(Opcode::BufferStoreDword, 5, 8, 4, arg(2), 0)?;
    b.waitcnt(Some(0), None)?;
    unmask(&mut b, 14)?;
    b.endpgm()?;
    b.finish()
}

/// Host-side reference of one conv layer output map (same operation order
/// as the kernel: channel-major, then ky, kx).
pub(crate) fn conv_reference_int(
    padded: &[Vec<u32>],
    weights: &[u32],
    b: usize,
    k: usize,
    clamp8: bool,
) -> Vec<u32> {
    let w = b + k - 1;
    let mut out = vec![0u32; b * b];
    for y in 0..b {
        for x in 0..b {
            let mut acc = 0u32;
            let mut wi = 0;
            for plane in padded {
                for ky in 0..k {
                    for kx in 0..k {
                        acc = acc
                            .wrapping_add(weights[wi].wrapping_mul(plane[(y + ky) * w + x + kx]));
                        wi += 1;
                    }
                }
            }
            let mut v = (acc as i32) >> 8;
            v = v.max(0);
            if clamp8 {
                v = v.min(127);
            }
            out[y * b + x] = v as u32;
        }
    }
    out
}

pub(crate) fn conv_reference_fp(
    padded: &[Vec<f32>],
    weights: &[f32],
    b: usize,
    k: usize,
) -> Vec<f32> {
    let w = b + k - 1;
    let mut out = vec![0f32; b * b];
    for y in 0..b {
        for x in 0..b {
            let mut acc = 0f32;
            let mut wi = 0;
            for plane in padded {
                for ky in 0..k {
                    for kx in 0..k {
                        acc = weights[wi].mul_add(plane[(y + ky) * w + x + kx], acc);
                        wi += 1;
                    }
                }
            }
            out[y * b + x] = acc.max(0.0);
        }
    }
    out
}

/// Zero-pad a `b × b` plane to `(b+k-1)²` with the (k-1)/2 border the host
/// prepares before each layer.
pub(crate) fn pad_plane(plane: &[u32], b: usize, k: usize) -> Vec<u32> {
    let w = b + k - 1;
    let pad = (k - 1) / 2;
    let mut out = vec![0u32; w * w];
    for y in 0..b {
        for x in 0..b {
            out[(y + pad) * w + x + pad] = plane[y * b + x];
        }
    }
    out
}

/// 2×2 max-pool reference.
pub(crate) fn maxpool_reference_int(plane: &[u32], b_out: usize) -> Vec<u32> {
    let w = 2 * b_out;
    let mut out = vec![0u32; b_out * b_out];
    for y in 0..b_out {
        for x in 0..b_out {
            let vals = [
                plane[(2 * y) * w + 2 * x] as i32,
                plane[(2 * y) * w + 2 * x + 1] as i32,
                plane[(2 * y + 1) * w + 2 * x] as i32,
                plane[(2 * y + 1) * w + 2 * x + 1] as i32,
            ];
            out[y * b_out + x] = (*vals.iter().max().unwrap()) as u32;
        }
    }
    out
}

/// The CNN benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Cnn {
    /// Input image dimension.
    pub size: u32,
    /// SP-FP arithmetic when `true`, Q8 fixed point otherwise.
    pub fp: bool,
    /// Convolutional layers (paper default 3; Fig. 7 sweeps 3–15).
    pub layers: u32,
    /// Feature maps per layer (paper default 16).
    pub maps: u32,
}

impl Cnn {
    /// A 3-layer CNN with 16 feature maps on `size × size` RGB images.
    #[must_use]
    pub fn new(size: u32, fp: bool) -> Cnn {
        Cnn {
            size,
            fp,
            layers: 3,
            maps: 16,
        }
    }

    /// Override the layer count (Fig. 7 sweep).
    #[must_use]
    pub fn with_layers(mut self, layers: u32) -> Cnn {
        self.layers = layers;
        self
    }

    const K: u32 = 3;

    fn math(&self) -> LayerMath {
        if self.fp {
            LayerMath::Fp32
        } else {
            LayerMath::IntQ8
        }
    }
}

impl Benchmark for Cnn {
    fn name(&self) -> String {
        format!("CNN ({})", if self.fp { "SP FP" } else { "INT32" })
    }

    fn uses_fp(&self) -> bool {
        self.fp
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![
            conv_layer_kernel(self.math())?,
            pool_kernel(crate::pooling::Mode::Max, self.fp)?,
        ])
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernels = self.kernels()?;
        let mut sys = System::with_kernels(config, &kernels)?;
        let k = Cnn::K as usize;
        let maps = self.maps as usize;

        // Input channels (3 = RGB); Q8 pixel values, or floats scaled small.
        let mut b_cur = self.size as usize;
        let mut channels: Vec<Vec<u32>> = (0..3)
            .map(|c| {
                if self.fp {
                    f32_bits(
                        &random_f32(b_cur * b_cur, 70 + c)
                            .iter()
                            .map(|v| v * 0.5)
                            .collect::<Vec<_>>(),
                    )
                } else {
                    random_u32(b_cur * b_cur, 70 + c, 256)
                }
            })
            .collect();

        // Per-layer weights [map][channel*k*k], small Q8 / small floats.
        let weight_value = |seed: u64, n: usize| -> Vec<u32> {
            if self.fp {
                f32_bits(
                    &random_f32(n, seed)
                        .iter()
                        .map(|v| v * 0.25)
                        .collect::<Vec<_>>(),
                )
            } else {
                random_u32(n, seed, 8)
            }
        };

        for layer in 0..self.layers {
            let c = channels.len();
            let w = b_cur + k - 1;
            let plane_bytes = (w * w * 4) as u32;

            // Host pads the input planes (data handling the MicroBlaze
            // templates perform between kernels, §3.3).
            let padded: Vec<Vec<u32>> = channels.iter().map(|p| pad_plane(p, b_cur, k)).collect();
            sys.host_work((c * w * w) as u64);
            // Channel planes must be contiguous at `plane_bytes` stride.
            let flat: Vec<u32> = padded.iter().flatten().copied().collect();
            let in_base = sys.alloc_words(&flat);

            let do_pool = b_cur.is_multiple_of(2) && b_cur >= 8;
            let mut next_channels = Vec::with_capacity(maps);
            for m in 0..maps {
                let weights = weight_value(100 + u64::from(layer) * 64 + m as u64, c * k * k);
                let w_dev = sys.alloc_words(&weights);
                let conv_out = sys.alloc((b_cur * b_cur) as u64 * 4);
                sys.set_args(&[
                    in_base as u32,
                    w_dev as u32,
                    conv_out as u32,
                    b_cur as u32,
                    Cnn::K,
                    c as u32,
                    plane_bytes,
                ]);
                sys.dispatch_kernel(0, [(b_cur as u32).div_ceil(64), b_cur as u32, 1])?;

                let final_plane = if do_pool {
                    let pooled = sys.alloc((b_cur * b_cur / 4) as u64 * 4);
                    sys.set_args(&[conv_out as u32, pooled as u32, (b_cur / 2) as u32]);
                    sys.dispatch_kernel(
                        1,
                        [((b_cur / 2) as u32).div_ceil(64), (b_cur / 2) as u32, 1],
                    )?;
                    sys.read_words(pooled, b_cur * b_cur / 4)
                } else {
                    sys.read_words(conv_out, b_cur * b_cur)
                };
                next_channels.push(final_plane);
            }
            sys.host_work((maps * b_cur * b_cur / 2) as u64);
            channels = next_channels;
            if do_pool {
                b_cur /= 2;
            }
        }

        // Reference pipeline (identical order and arithmetic).
        let mut rb = self.size as usize;
        let mut ref_channels: Vec<Vec<u32>> = (0..3)
            .map(|c| {
                if self.fp {
                    f32_bits(
                        &random_f32(rb * rb, 70 + c)
                            .iter()
                            .map(|v| v * 0.5)
                            .collect::<Vec<_>>(),
                    )
                } else {
                    random_u32(rb * rb, 70 + c, 256)
                }
            })
            .collect();
        for layer in 0..self.layers {
            let c = ref_channels.len();
            let do_pool = rb.is_multiple_of(2) && rb >= 8;
            let mut next = Vec::with_capacity(maps);
            for m in 0..maps {
                let weights = weight_value(100 + u64::from(layer) * 64 + m as u64, c * k * k);
                let plane = if self.fp {
                    let padded: Vec<Vec<f32>> = ref_channels
                        .iter()
                        .map(|p| {
                            pad_plane(p, rb, k)
                                .iter()
                                .map(|&b| f32::from_bits(b))
                                .collect()
                        })
                        .collect();
                    let wts: Vec<f32> = weights.iter().map(|&b| f32::from_bits(b)).collect();
                    f32_bits(&conv_reference_fp(&padded, &wts, rb, k))
                } else {
                    let padded: Vec<Vec<u32>> =
                        ref_channels.iter().map(|p| pad_plane(p, rb, k)).collect();
                    conv_reference_int(&padded, &weights, rb, k, false)
                };
                let plane = if do_pool {
                    if self.fp {
                        // FP max-pool: same as int max on non-negative floats
                        // (ReLU output), which compare identically as bits.
                        maxpool_reference_int(&plane, rb / 2)
                    } else {
                        maxpool_reference_int(&plane, rb / 2)
                    }
                } else {
                    plane
                };
                next.push(plane);
            }
            ref_channels = next;
            if do_pool {
                rb /= 2;
            }
        }

        for (m, (got, expect)) in channels.iter().zip(&ref_channels).enumerate() {
            if self.fp {
                let exp: Vec<f32> = expect.iter().map(|&b| f32::from_bits(b)).collect();
                check_f32(&format!("{} map {m}", self.name()), got, &exp, 1e-4)?;
            } else {
                check_u32(&format!("{} map {m}", self.name()), got, expect)?;
            }
        }
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    fn tiny(fp: bool) -> Cnn {
        Cnn {
            size: 8,
            fp,
            layers: 2,
            maps: 4,
        }
    }

    #[test]
    fn int_cnn_validates() {
        tiny(false)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("int CNN");
    }

    #[test]
    fn fp_cnn_validates() {
        tiny(true)
            .run(SystemConfig::preset(SystemKind::DcdPm))
            .expect("fp CNN");
    }

    #[test]
    fn padding_reference() {
        let plane = vec![1, 2, 3, 4];
        let padded = pad_plane(&plane, 2, 3);
        // 4x4 with 1-pixel zero border.
        assert_eq!(padded.len(), 16);
        assert_eq!(padded[5], 1);
        assert_eq!(padded[6], 2);
        assert_eq!(padded[9], 3);
        assert_eq!(padded[10], 4);
        assert_eq!(padded[0], 0);
    }
}
