//! Network-in-Network inference (fixed point, 32-bit and shortened 8-bit)
//! — the paper's NIN workload: a convolutional MLP layer (16 feature
//! maps), a partially sparse MLP-010 middle layer, and average pooling at
//! the output.

use scratch_asm::{AsmError, Kernel, KernelBuilder};
use scratch_system::{RunReport, System, SystemConfig};

use crate::cnn::{conv_layer_kernel, conv_reference_int, pad_plane, LayerMath};
use crate::common::{check_u32, random_u32};
use crate::pooling::{pool_kernel, pool_reference, Mode};
use crate::{BenchError, Benchmark};

// Silence an unused-import lint gate: the kernel builder is used by the
// shared conv kernel; NIN itself only drives dispatches.
#[allow(unused)]
fn _builder_marker(_b: KernelBuilder) {}

/// The NIN benchmark: `conv k×k` → `MLP 1×1` (sparse 010) → `MLP 1×1` →
/// 2×2 average pool.
#[derive(Debug, Clone, Copy)]
pub struct Nin {
    /// Input image dimension.
    pub size: u32,
    /// Numerical precision: 32 or 8 (the Fig. 7 INT8 variant).
    pub bits: u8,
    /// Feature maps per MLP layer (paper default 16; Fig. 7 sweeps 4–64).
    pub maps: u32,
    /// Spatial convolution kernel size.
    pub k: u32,
}

impl Nin {
    /// A NIN on `size × size` RGB images at the given precision.
    #[must_use]
    pub fn new(size: u32, bits: u8) -> Nin {
        assert!(
            bits == 32 || bits == 8,
            "NIN supports 32- or 8-bit precision"
        );
        Nin {
            size,
            bits,
            maps: 16,
            k: 3,
        }
    }

    /// Override the feature-map count (Fig. 7 sweep).
    #[must_use]
    pub fn with_maps(mut self, maps: u32) -> Nin {
        self.maps = maps;
        self
    }

    fn math(&self) -> LayerMath {
        if self.bits == 8 {
            LayerMath::Int8Q8
        } else {
            LayerMath::IntQ8
        }
    }
}

struct LayerSpec {
    k: usize,
    /// Take every `stride`-th input channel (2 for the sparse MLP-010).
    channel_stride: usize,
}

impl Benchmark for Nin {
    fn name(&self) -> String {
        format!("NiN (INT{})", self.bits)
    }

    fn uses_fp(&self) -> bool {
        false
    }

    fn kernels(&self) -> Result<Vec<Kernel>, AsmError> {
        Ok(vec![
            conv_layer_kernel(self.math())?,
            pool_kernel(Mode::Average, false)?,
        ])
    }

    fn run(&self, config: SystemConfig) -> Result<RunReport, BenchError> {
        let kernels = self.kernels()?;
        let mut sys = System::with_kernels(config, &kernels)?;
        let b = self.size as usize;
        let maps = self.maps as usize;
        let clamp8 = self.bits == 8;

        let layers = [
            LayerSpec {
                k: self.k as usize,
                channel_stride: 1,
            },
            // MLP-010: partially sparse 1x1 layer over every other channel.
            LayerSpec {
                k: 1,
                channel_stride: 2,
            },
            LayerSpec {
                k: 1,
                channel_stride: 1,
            },
        ];

        let gen_input = |c: u64| random_u32(b * b, 80 + c, 256);
        let weights_of = |layer: usize, m: usize, n: usize| {
            random_u32(n, 200 + (layer as u64) * 128 + m as u64, 8)
        };

        // --- device pipeline ---
        let mut channels: Vec<Vec<u32>> = (0..3).map(gen_input).collect();
        for (li, spec) in layers.iter().enumerate() {
            let picked: Vec<&Vec<u32>> = channels.iter().step_by(spec.channel_stride).collect();
            let c = picked.len();
            let w = b + spec.k - 1;
            let plane_bytes = (w * w * 4) as u32;
            let padded: Vec<Vec<u32>> = picked.iter().map(|p| pad_plane(p, b, spec.k)).collect();
            sys.host_work((c * w * w) as u64);
            // Channel planes must be contiguous at `plane_bytes` stride.
            let flat: Vec<u32> = padded.iter().flatten().copied().collect();
            let in_base = sys.alloc_words(&flat);
            let mut next = Vec::with_capacity(maps);
            for m in 0..maps {
                let weights = weights_of(li, m, c * spec.k * spec.k);
                let w_dev = sys.alloc_words(&weights);
                let out = sys.alloc((b * b) as u64 * 4);
                sys.set_args(&[
                    in_base as u32,
                    w_dev as u32,
                    out as u32,
                    b as u32,
                    spec.k as u32,
                    c as u32,
                    plane_bytes,
                ]);
                sys.dispatch_kernel(0, [(b as u32).div_ceil(64), b as u32, 1])?;
                next.push(sys.read_words(out, b * b));
            }
            channels = next;
        }
        // Average pool the output maps.
        let b_out = b / 2;
        let mut device_out = Vec::with_capacity(maps);
        for plane in &channels {
            let a_in = sys.alloc_words(plane);
            let a_out = sys.alloc((b_out * b_out) as u64 * 4);
            sys.set_args(&[a_in as u32, a_out as u32, b_out as u32]);
            sys.dispatch_kernel(1, [(b_out as u32).div_ceil(64), b_out as u32, 1])?;
            device_out.push(sys.read_words(a_out, b_out * b_out));
        }

        // --- reference pipeline ---
        let mut ref_channels: Vec<Vec<u32>> = (0..3).map(gen_input).collect();
        for (li, spec) in layers.iter().enumerate() {
            let picked: Vec<Vec<u32>> = ref_channels
                .iter()
                .step_by(spec.channel_stride)
                .cloned()
                .collect();
            let padded: Vec<Vec<u32>> = picked.iter().map(|p| pad_plane(p, b, spec.k)).collect();
            let c = padded.len();
            let mut next = Vec::with_capacity(maps);
            for m in 0..maps {
                let weights = weights_of(li, m, c * spec.k * spec.k);
                next.push(conv_reference_int(&padded, &weights, b, spec.k, clamp8));
            }
            ref_channels = next;
        }
        for (m, plane) in ref_channels.iter().enumerate() {
            let wdim = 2 * b_out;
            let mut expected = vec![0u32; b_out * b_out];
            for y in 0..b_out {
                for x in 0..b_out {
                    expected[y * b_out + x] = pool_reference(
                        Mode::Average,
                        [
                            plane[(2 * y) * wdim + 2 * x],
                            plane[(2 * y) * wdim + 2 * x + 1],
                            plane[(2 * y + 1) * wdim + 2 * x],
                            plane[(2 * y + 1) * wdim + 2 * x + 1],
                        ],
                    );
                }
            }
            check_u32(
                &format!("{} map {m}", self.name()),
                &device_out[m],
                &expected,
            )?;
        }
        Ok(sys.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_system::SystemKind;

    #[test]
    fn nin_int32_validates() {
        Nin {
            size: 8,
            bits: 32,
            maps: 4,
            k: 3,
        }
        .run(SystemConfig::preset(SystemKind::DcdPm))
        .expect("NIN int32");
    }

    #[test]
    fn nin_int8_validates_and_clamps() {
        Nin {
            size: 8,
            bits: 8,
            maps: 4,
            k: 3,
        }
        .run(SystemConfig::preset(SystemKind::DcdPm))
        .expect("NIN int8");
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn rejects_other_precisions() {
        let _ = Nin::new(8, 16);
    }
}
