//! End-to-end resilience contract tests: seeded campaigns are
//! bit-reproducible, never silent under a detecting mode, and the
//! recovery paths actually restore golden output.

use scratch_fault::{
    run_campaign, CampaignConfig, Classification, FaultClass, FaultError, FaultPlan, KernelProfile,
    Mode,
};

fn small(mode: Mode) -> CampaignConfig {
    CampaignConfig {
        seed: 100,
        kernels: 3,
        classes: FaultClass::ALL.to_vec(),
        per_cell: 2,
        mode,
        jobs: 1,
    }
}

#[test]
fn campaign_is_bit_reproducible_from_its_seed() {
    let a = run_campaign(&small(Mode::Crc)).unwrap();
    let b = run_campaign(&small(Mode::Crc)).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.totals.injected, 3 * 6 * 2);
}

#[test]
fn crc_mode_is_never_silent() {
    let r = run_campaign(&small(Mode::Crc)).unwrap();
    assert_eq!(r.totals.silent, 0, "{}", r.table());
    assert_eq!(
        r.totals.masked + r.totals.detected + r.totals.recovered,
        r.totals.injected
    );
    // Every class was actually exercised.
    for class in FaultClass::ALL {
        assert!(
            r.rows
                .iter()
                .any(|row| row.class == class && row.stats.injected > 0),
            "class {class} never injected"
        );
    }
}

#[test]
fn dmr_mode_is_never_silent_and_recovers_transients() {
    let r = run_campaign(&small(Mode::Dmr)).unwrap();
    assert_eq!(r.totals.silent, 0, "{}", r.table());
    // At least one corrupting transient was caught by the replica vote
    // and repaired by a clean re-dispatch — the DMR + retry path
    // end-to-end.
    assert!(
        r.outcomes.iter().any(|o| {
            o.classification == Classification::Recovered
                && o.detector.as_deref() == Some("dmr")
                && o.recovery.as_deref() == Some("retry")
        }),
        "no DMR-detected, retry-recovered fault in:\n{}",
        r.table()
    );
}

#[test]
fn plain_mode_exposes_silent_corruption() {
    // Without detectors some corrupting faults must slip through — this
    // is the measurement that justifies the subsystem. (Seeded, so the
    // count is stable.)
    let r = run_campaign(&small(Mode::Plain)).unwrap();
    assert!(r.totals.silent > 0, "{}", r.table());
}

#[test]
fn parallel_campaign_matches_serial_bit_for_bit() {
    let serial = run_campaign(&small(Mode::Crc)).unwrap();
    let parallel = run_campaign(&CampaignConfig {
        jobs: 4,
        ..small(Mode::Crc)
    })
    .unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn empty_campaigns_are_rejected() {
    let cfg = CampaignConfig {
        per_cell: 0,
        ..small(Mode::Crc)
    };
    assert!(matches!(run_campaign(&cfg), Err(FaultError::EmptyCampaign)));
    let cfg = CampaignConfig {
        classes: Vec::new(),
        ..small(Mode::Crc)
    };
    assert!(matches!(run_campaign(&cfg), Err(FaultError::EmptyCampaign)));
}

#[test]
fn plan_and_report_round_trip_through_json() {
    let profiles = [KernelProfile {
        seed: 9,
        words: 30,
        image_words: 4096,
        issues: 400,
        cycles: 1500,
    }];
    let plan = FaultPlan::generate(7, &profiles, &FaultClass::ALL, 3);
    let json = serde_json::to_string(&plan).unwrap();
    let back: FaultPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(plan, back);

    let report = run_campaign(&small(Mode::Crc)).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: scratch_fault::CampaignReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn campaign_emits_detection_trace_events() {
    let r = run_campaign(&small(Mode::Crc)).unwrap();
    let events = r.trace_events();
    let detected = r.totals.detected + r.totals.recovered;
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, scratch_trace::TraceEvent::FaultDetected { .. }))
            .count() as u64,
        detected
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, scratch_trace::TraceEvent::FaultRecovered { .. }))
            .count() as u64,
        r.totals.recovered
    );
}
