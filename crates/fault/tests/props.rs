//! Property tests for the fault-injection invariants:
//!
//! * an empty (or armed-but-never-firing) fault schedule perturbs
//!   nothing — output and cycle counts are bit-identical to a run with no
//!   injection machinery at all;
//! * DMR with no injected faults never votes mismatch (the simulator is
//!   deterministic, so a replica disagreement always means a fault).

use proptest::prelude::*;

use scratch_check::GenKernel;
use scratch_cu::CuConfig;
use scratch_fault::{CuFault, CuUpset, FaultSpec, FaultTarget};
use scratch_system::{System, SystemConfig, SystemKind};

/// Run a generated kernel, returning (output words, cycles).
fn run(seed: u64, spec: FaultSpec) -> (Vec<u32>, u64) {
    let gk = GenKernel::generate(seed);
    let kernel = gk.build().expect("generated kernels assemble");
    let cfg = SystemConfig::preset(SystemKind::DcdPm)
        .with_cu_config(CuConfig::default())
        .with_metrics(false)
        .with_faults(spec);
    let mut sys = System::new(cfg, &kernel).expect("kernel decodes");
    let out = sys.alloc(gk.out_bytes());
    let inp = sys.alloc_words(&gk.image);
    sys.set_args(&[out as u32, inp as u32]);
    let cycles = sys
        .dispatch([gk.wgs, 1, 1])
        .expect("fault-free runs complete");
    (sys.read_words(out, (gk.out_bytes() / 4) as usize), cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Empty `FaultSpec` and a hook armed with a fault that never fires
    /// are both bit-identical (output *and* timing) to no injection.
    #[test]
    fn empty_plan_is_bit_identical_to_no_injection(seed in 0u64..500) {
        let plain = run(seed, FaultSpec::default());
        let empty = run(seed, FaultSpec { cu: Vec::new(), mem: Vec::new() });
        prop_assert_eq!(&plain, &empty);

        // Hook installed but scheduled past the end of execution: the
        // injection machinery itself must not perturb the run.
        let armed = FaultSpec {
            cu: vec![CuUpset {
                cu: 0,
                fault: CuFault {
                    at_issue: u64::MAX,
                    target: FaultTarget::Sgpr { reg: 0, bit: 0 },
                },
            }],
            mem: Vec::new(),
        };
        prop_assert_eq!(&plain, &run(seed, armed));
    }

    /// DMR with no faults never mismatches: two clean executions of the
    /// same kernel agree word-for-word.
    #[test]
    fn dmr_with_no_faults_never_mismatches(seed in 0u64..500) {
        let a = run(seed, FaultSpec::default());
        let b = run(seed, FaultSpec::default());
        prop_assert_eq!(a, b);
    }
}

#[test]
fn error_sources_chain_end_to_end() {
    use std::error::Error;

    use scratch_engine::JobError;
    use scratch_fault::FaultError;
    use scratch_system::{CuError, SystemError};

    // CuError -> SystemError -> FaultError, walkable via source().
    let cu = CuError::CycleLimit { limit: 7 };
    let sys = SystemError::Cu(cu.clone());
    let fault = FaultError::from(sys.clone());
    let level1 = fault.source().expect("FaultError::System chains");
    assert_eq!(level1.to_string(), sys.to_string());
    let level2 = level1.source().expect("SystemError::Cu chains");
    assert_eq!(level2.to_string(), cu.to_string());
    assert!(level2.source().is_none());

    // SystemError -> JobError likewise.
    let job = JobError::System(sys.clone());
    assert_eq!(
        job.source().expect("JobError::System chains").to_string(),
        sys.to_string()
    );
}
