//! Seeded fault plans: what gets corrupted, where, and when.
//!
//! A [`FaultPlan`] is the reproducibility unit of the subsystem: generated
//! from a seed against a set of kernel profiles, serde round-trippable, and
//! executed fault-by-fault by the injection runner. Two runs of the same
//! plan produce bit-identical campaigns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use scratch_system::{CuFault, CuUpset, FaultTarget};

/// The injected fault taxonomy (the failure modes of §6's FPGA
/// deployment argument: SEUs in register files, LDS and DRAM, corrupted
/// instruction words, and transient datapath errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// Bit-flip in a scalar register.
    Sgpr,
    /// Bit-flip in a vector register lane.
    Vgpr,
    /// Bit-flip in workgroup LDS.
    Lds,
    /// Bit-flip in global memory (the kernel's input image).
    Mem,
    /// Bit-flip in an instruction word of the kernel binary.
    Inst,
    /// Transient functional-unit error (condition-code output path).
    Fu,
}

impl FaultClass {
    /// Every class, in reporting order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::Sgpr,
        FaultClass::Vgpr,
        FaultClass::Lds,
        FaultClass::Mem,
        FaultClass::Inst,
        FaultClass::Fu,
    ];

    /// Stable command-line name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Sgpr => "sgpr",
            FaultClass::Vgpr => "vgpr",
            FaultClass::Lds => "lds",
            FaultClass::Mem => "mem",
            FaultClass::Inst => "inst",
            FaultClass::Fu => "fu",
        }
    }

    /// Parse a command-line name.
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where one planned fault lands, in kernel-relative coordinates so a plan
/// stays meaningful for any kernel it is resolved against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPayload {
    /// A pipeline upset executed by the CU's fault hook.
    Cu(CuUpset),
    /// A global-memory upset: word index into the kernel's input image
    /// (resolved to an absolute address at run time) and bit position.
    Mem {
        /// Word offset into the input image.
        word: u32,
        /// Bit within the word.
        bit: u8,
    },
    /// Corruption of one instruction word of the kernel binary, applied
    /// before the program loads.
    Inst {
        /// Word index into the kernel binary (modulo its length).
        word: u32,
        /// Bit within the word.
        bit: u8,
    },
}

/// One scheduled fault of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedFault {
    /// Position in the plan (stable id for reports).
    pub id: u64,
    /// The fault class the payload belongs to.
    pub class: FaultClass,
    /// Seed of the generated kernel the fault is injected into.
    pub kernel_seed: u64,
    /// The upset itself.
    pub payload: FaultPayload,
}

/// What the planner needs to know about a kernel to schedule applicable
/// faults: its static shape plus the dynamic issue count of a fault-free
/// run (so `at_issue` always lands inside the execution window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Generator seed.
    pub seed: u64,
    /// Kernel binary length in words.
    pub words: u32,
    /// Input image length in words.
    pub image_words: u32,
    /// Dynamic instructions a fault-free run issues.
    pub issues: u64,
    /// Cycles the fault-free run took (the watchdog budget baseline).
    pub cycles: u64,
}

/// A complete, reproducible fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// Every scheduled fault.
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// Generate a plan: `per_cell` faults for every (kernel, class) pair,
    /// deterministically from `seed`.
    #[must_use]
    pub fn generate(
        seed: u64,
        profiles: &[KernelProfile],
        classes: &[FaultClass],
        per_cell: u32,
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        let mut id = 0u64;
        for profile in profiles {
            for &class in classes {
                for _ in 0..per_cell {
                    let payload = plan_one(&mut rng, class, profile);
                    faults.push(PlannedFault {
                        id,
                        class,
                        kernel_seed: profile.seed,
                        payload,
                    });
                    id += 1;
                }
            }
        }
        FaultPlan { seed, faults }
    }

    /// Faults scheduled against `kernel_seed`.
    pub fn for_kernel(&self, kernel_seed: u64) -> impl Iterator<Item = &PlannedFault> {
        self.faults
            .iter()
            .filter(move |f| f.kernel_seed == kernel_seed)
    }
}

/// One planned fault of `class` against `profile`, drawn from `rng`.
fn plan_one(rng: &mut StdRng, class: FaultClass, profile: &KernelProfile) -> FaultPayload {
    let at_issue = rng.gen_range(1..=profile.issues.max(1));
    let cu_target = |target: FaultTarget| {
        FaultPayload::Cu(CuUpset {
            cu: 0,
            fault: CuFault { at_issue, target },
        })
    };
    match class {
        FaultClass::Sgpr => cu_target(FaultTarget::Sgpr {
            reg: rng.gen_range(0..64u32),
            bit: rng.gen_range(0..32u32) as u8,
        }),
        FaultClass::Vgpr => cu_target(FaultTarget::Vgpr {
            reg: rng.gen_range(0..64u32),
            lane: rng.gen_range(0..64u32) as u8,
            bit: rng.gen_range(0..32u32) as u8,
        }),
        FaultClass::Lds => cu_target(FaultTarget::Lds {
            word: rng.gen_range(0..1024u32),
            bit: rng.gen_range(0..32u32) as u8,
        }),
        FaultClass::Fu => cu_target(FaultTarget::FuTransient {
            bit: rng.gen_range(0..64u32) as u8,
        }),
        // Biased to the low 1024 words: generated kernels address the
        // image through 12-bit instruction offsets, so that window is the
        // live working set (upsets elsewhere are trivially masked).
        FaultClass::Mem => FaultPayload::Mem {
            word: rng.gen_range(0..profile.image_words.clamp(1, 1024)),
            bit: rng.gen_range(0..32u32) as u8,
        },
        FaultClass::Inst => FaultPayload::Inst {
            word: rng.gen_range(0..profile.words.max(1)),
            bit: rng.gen_range(0..32u32) as u8,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> KernelProfile {
        KernelProfile {
            seed: 7,
            words: 40,
            image_words: 4096,
            issues: 500,
            cycles: 2000,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = [profile()];
        let a = FaultPlan::generate(42, &p, &FaultClass::ALL, 5);
        let b = FaultPlan::generate(42, &p, &FaultClass::ALL, 5);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 6 * 5);
        let c = FaultPlan::generate(43, &p, &FaultClass::ALL, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn at_issue_lands_inside_the_execution_window() {
        let p = [profile()];
        let plan = FaultPlan::generate(1, &p, &[FaultClass::Sgpr, FaultClass::Fu], 50);
        for f in &plan.faults {
            let FaultPayload::Cu(u) = f.payload else {
                panic!("cu classes plan cu payloads")
            };
            assert!(u.fault.at_issue >= 1 && u.fault.at_issue <= 500);
        }
    }

    #[test]
    fn class_names_roundtrip() {
        for c in FaultClass::ALL {
            assert_eq!(FaultClass::parse(c.name()), Some(c));
        }
        assert_eq!(FaultClass::parse("bogus"), None);
    }
}
