//! The injection runner: execute one planned fault against one kernel,
//! detect the corruption, recover, and classify the outcome.
//!
//! Every fault ends in exactly one of four classes:
//!
//! * **masked** — the corrupted run still produced golden output (the
//!   flipped state was dead, overwritten, or semantically absorbed);
//! * **detected** — a detector fired (simulator hard fault, watchdog,
//!   CRC mismatch against the reference interpreter, or a DMR replica
//!   vote) but recovery did not restore golden output within its bounded
//!   attempts;
//! * **recovered** — a detector fired and a recovery action (resume from
//!   the last pre-fault checkpoint for CU transients, untrimmed fallback
//!   for trim violations, clean re-dispatch otherwise) restored golden
//!   output;
//! * **silent** — the run completed with wrong output and no detector
//!   fired. This is the outcome the subsystem exists to rule out: it can
//!   only happen in [`Mode::Plain`], which runs without detection
//!   precisely to measure how often corruption would otherwise slip
//!   through.

use serde::{Deserialize, Serialize};

use scratch_asm::Kernel;
use scratch_check::{GenKernel, RefSystem};
use scratch_core::trim_kernel;
use scratch_cu::{CuConfig, CuError, TrimSet};
use scratch_system::{
    CuUpset, DispatchProgress, FaultSpec, MemUpset, System, SystemCheckpoint, SystemConfig,
    SystemError, SystemKind,
};
use scratch_trace::TraceEvent;

use crate::crc32;
use crate::error::FaultError;
use crate::plan::{FaultPayload, KernelProfile, PlannedFault};

/// A checkpoint taken while every CU was still short of its scheduled
/// fault's issue point, plus the output base address the resumed run
/// must read.
type CleanCheckpoint = (SystemCheckpoint, u64);

/// Detection mode a campaign runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Output CRC compared against the `scratch-check` reference
    /// interpreter's golden output.
    Crc,
    /// Dual-modular redundancy: run twice (the transient fault hits only
    /// the first replica), compare outputs word-for-word, re-run on
    /// mismatch.
    Dmr,
    /// No detection — measures the silent-corruption rate the detectors
    /// exist to eliminate.
    Plain,
}

impl Mode {
    /// Stable command-line name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mode::Crc => "crc",
            Mode::Dmr => "dmr",
            Mode::Plain => "plain",
        }
    }

    /// Parse a command-line name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Mode> {
        [Mode::Crc, Mode::Dmr, Mode::Plain]
            .into_iter()
            .find(|m| m.name() == s)
    }

    /// `true` when the mode runs a detector (a silent outcome would be a
    /// subsystem bug rather than a measurement).
    #[must_use]
    pub fn detects(self) -> bool {
        !matches!(self, Mode::Plain)
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Final classification of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Classification {
    /// Output matched golden despite the fault.
    Masked,
    /// A detector fired; recovery did not restore golden output.
    Detected,
    /// A detector fired and recovery restored golden output.
    Recovered,
    /// Wrong output, no detector fired.
    Silent,
}

impl Classification {
    /// Stable reporting name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Classification::Masked => "masked",
            Classification::Detected => "detected",
            Classification::Recovered => "recovered",
            Classification::Silent => "silent",
        }
    }
}

/// Everything recorded about one injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionOutcome {
    /// The fault that was injected.
    pub fault: PlannedFault,
    /// How it ended.
    pub classification: Classification,
    /// Which detector fired (`error`, `watchdog`, `crc`, `dmr`), if any.
    pub detector: Option<String>,
    /// Which recovery action succeeded (`checkpoint-resume`,
    /// `untrimmed-fallback`, `retry`), if any.
    pub recovery: Option<String>,
    /// Simulator runs this fault cost beyond the single faulty run
    /// (DMR replicas, checkpoint resumes, fallback and retry dispatches)
    /// — the recovery overhead numerator. A checkpoint resume counts as
    /// one run even though it re-executes only the tail.
    pub extra_runs: u32,
}

impl InjectionOutcome {
    /// Detection/recovery trace events for this outcome (injection events
    /// themselves are emitted by the system simulator as the fault fires).
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let label = format!("k{}-f{}", self.fault.kernel_seed, self.fault.id);
        let mut events = Vec::new();
        if let Some(d) = &self.detector {
            events.push(TraceEvent::FaultDetected {
                label: label.clone(),
                detector: d.clone(),
                now: self.fault.id,
                job: self.fault.id,
            });
        }
        if let Some(r) = &self.recovery {
            events.push(TraceEvent::FaultRecovered {
                label,
                action: r.clone(),
                now: self.fault.id,
                job: self.fault.id,
            });
        }
        events
    }
}

/// One kernel prepared for injection: the generated program, its golden
/// output from the reference interpreter, its trim set, and the dynamic
/// profile the planner schedules against.
#[derive(Debug, Clone)]
pub struct CaseContext {
    /// The generated kernel.
    pub gk: GenKernel,
    /// Its assembled binary.
    pub kernel: Kernel,
    /// Golden output words from the reference interpreter.
    pub golden: Vec<u32>,
    /// CRC-32 of the golden output.
    pub golden_crc: u32,
    /// The kernel's own trim set (the SCRATCH deployment configuration);
    /// `None` when the kernel does not trim.
    pub trim: Option<TrimSet>,
    /// Static + dynamic shape for the planner.
    pub profile: KernelProfile,
}

/// Cycle budget for faulty runs: a corrupted loop counter can turn a
/// bounded loop infinite, so every injected run is watchdogged at a
/// multiple of the fault-free cycle count.
const BUDGET_FACTOR: u64 = 16;
const BUDGET_FLOOR: u64 = 100_000;

impl CaseContext {
    /// Prepare kernel `seed`: build it, compute the reference golden
    /// output, trim it, and profile a fault-free run.
    ///
    /// # Errors
    ///
    /// [`FaultError::Golden`] when the kernel does not assemble or the
    /// reference interpreter cannot run it.
    pub fn new(seed: u64) -> Result<CaseContext, FaultError> {
        let gk = GenKernel::generate(seed);
        let kernel = gk.build().map_err(|e| FaultError::Golden {
            seed,
            detail: format!("build: {e}"),
        })?;

        // Golden output from the reference interpreter (shares no
        // execution code with the CU pipeline).
        let mut rsys = RefSystem::new(&kernel).map_err(|e| FaultError::Golden {
            seed,
            detail: format!("reference: {e}"),
        })?;
        let out = rsys.alloc(gk.out_bytes());
        let inp = rsys.alloc_words(&gk.image);
        rsys.set_args(&[out as u32, inp as u32]);
        rsys.dispatch([gk.wgs, 1, 1])
            .map_err(|e| FaultError::Golden {
                seed,
                detail: format!("reference: {e}"),
            })?;
        let golden = rsys.read_words(out, (gk.out_bytes() / 4) as usize);
        let golden_crc = crc32(&golden);

        let trim = trim_kernel(&kernel).ok().map(|r| r.kept);

        // Fault-free profiling run: issue count bounds `at_issue`, cycle
        // count calibrates the watchdog budget.
        let mut sys = System::new(base_config(None, u64::MAX), &kernel)?;
        let out = sys.alloc(gk.out_bytes());
        let inp = sys.alloc_words(&gk.image);
        sys.set_args(&[out as u32, inp as u32]);
        let cycles = sys.dispatch([gk.wgs, 1, 1])?;
        let report = sys.report();

        let profile = KernelProfile {
            seed,
            words: kernel.words().len() as u32,
            image_words: gk.image.len() as u32,
            issues: report.stats.instructions.max(1),
            cycles,
        };
        Ok(CaseContext {
            gk,
            kernel,
            golden,
            golden_crc,
            trim,
            profile,
        })
    }

    /// The watchdog budget injected runs execute under.
    #[must_use]
    pub fn budget(&self) -> u64 {
        (self.profile.cycles * BUDGET_FACTOR).max(BUDGET_FLOOR)
    }

    /// Run the kernel once. `cu_faults`/`mem_fault` schedule the injected
    /// upsets (empty/`None` for clean replicas); `trim` picks the CU
    /// preset (the trimmed deployment configuration or the untrimmed
    /// fallback).
    fn run_once(
        &self,
        kernel: &Kernel,
        cu_faults: Vec<CuUpset>,
        mem_fault: Option<(u32, u8)>,
        trim: Option<&TrimSet>,
    ) -> Result<Vec<u32>, SystemError> {
        let spec = FaultSpec {
            cu: cu_faults,
            mem: Vec::new(),
        };
        let config = base_config(trim.cloned(), self.budget()).with_faults(spec);
        let mut sys = System::new(config, kernel)?;
        let out = sys.alloc(self.gk.out_bytes());
        let inp = sys.alloc_words(&self.gk.image);
        if let Some((word, bit)) = mem_fault {
            // Resolve the image-relative upset to its absolute byte now
            // that the allocator has placed the image.
            let addr = inp + u64::from(word) * 4 + u64::from(bit / 8);
            sys.schedule_mem_upset(MemUpset {
                dispatch: 0,
                addr,
                bit: bit % 8,
            });
        }
        sys.set_args(&[out as u32, inp as u32]);
        sys.dispatch([self.gk.wgs, 1, 1])?;
        Ok(sys.read_words(out, (self.gk.out_bytes() / 4) as usize))
    }

    /// Checkpoint quantum for preemptible faulty runs: enough pauses per
    /// run that a pre-fault checkpoint usually exists, cheap enough that
    /// the campaign's cost stays dominated by execution.
    fn quantum(&self) -> u64 {
        (self.profile.cycles / 8).max(1)
    }

    /// Run a CU-transient faulty run preemptibly, keeping the most recent
    /// in-memory checkpoint taken while every CU was still short of its
    /// scheduled fault's issue point (architecturally clean state). The
    /// checkpoint comes back with the output base address the resumed run
    /// must read.
    fn run_faulty_checkpointed(
        &self,
        kernel: &Kernel,
        cu_faults: Vec<CuUpset>,
        trim: Option<&TrimSet>,
    ) -> (Result<Vec<u32>, SystemError>, Option<CleanCheckpoint>) {
        // Per-CU earliest issue point, resolved through the same modulo
        // the fault installer applies.
        let config = base_config(trim.cloned(), self.budget()).with_faults(FaultSpec {
            cu: cu_faults.clone(),
            mem: Vec::new(),
        });
        let mut last_clean = None;
        let quantum = self.quantum();
        let result = (|| {
            let mut sys = System::new(config, kernel)?;
            let cus = sys.per_cu_instructions().len();
            let mut first_issue = vec![u64::MAX; cus];
            for u in &cu_faults {
                let ci = u.cu as usize % cus.max(1);
                first_issue[ci] = first_issue[ci].min(u.fault.at_issue);
            }
            let out = sys.alloc(self.gk.out_bytes());
            let inp = sys.alloc_words(&self.gk.image);
            sys.set_args(&[out as u32, inp as u32]);
            let mut progress = sys.dispatch_preemptible([self.gk.wgs, 1, 1], quantum)?;
            loop {
                match progress {
                    DispatchProgress::Complete { .. } => {
                        return Ok(sys.read_words(out, (self.gk.out_bytes() / 4) as usize));
                    }
                    DispatchProgress::Paused => {
                        // A fault fires once its CU's issue count reaches
                        // `at_issue`, so strictly-below means unfired.
                        let clean = sys
                            .per_cu_instructions()
                            .iter()
                            .zip(&first_issue)
                            .all(|(&n, &at)| n < at);
                        if clean {
                            last_clean = Some((sys.checkpoint()?, out));
                        }
                        progress = sys.resume_dispatch(quantum)?;
                    }
                }
            }
        })();
        (result, last_clean)
    }

    /// Resume a pre-fault checkpoint to completion and read the output.
    /// The checkpoint round-trips through its serialized binary form
    /// first, so this exercises exactly what a persisted-checkpoint
    /// recovery would. Restored systems carry no fault hooks: the resumed
    /// tail is fault-free by construction.
    fn resume_from_checkpoint(&self, ck: &SystemCheckpoint, out: u64) -> Option<Vec<u32>> {
        let bytes = scratch_snap::to_bytes(ck);
        let ck: SystemCheckpoint = scratch_snap::from_bytes(&bytes).ok()?;
        let mut sys = System::restore(&ck, None).ok()?;
        let quantum = self.quantum();
        while sys.resume_dispatch(quantum).ok()? == DispatchProgress::Paused {}
        Some(sys.read_words(out, (self.gk.out_bytes() / 4) as usize))
    }

    /// Inject one planned fault under `mode`, run detection and bounded
    /// recovery, and classify the outcome.
    #[must_use]
    pub fn inject(&self, fault: &PlannedFault, mode: Mode) -> InjectionOutcome {
        let (kernel, cu_faults, mem_fault) = self.materialize(fault);
        let trimmed = self.trim.as_ref();
        let mut extra_runs = 0u32;

        // CU transients run preemptibly so a pre-fault checkpoint exists
        // to resume from; instruction/memory corruption keeps the plain
        // path (their corruption is present from cycle zero, so no
        // checkpoint of the faulty run is ever clean).
        let (faulty, clean_ck) = if !cu_faults.is_empty() && mem_fault.is_none() {
            self.run_faulty_checkpointed(&kernel, cu_faults.clone(), trimmed)
        } else {
            (
                self.run_once(&kernel, cu_faults.clone(), mem_fault, trimmed),
                None,
            )
        };

        // ---- detection ----
        let detector: Option<String> = match &faulty {
            Err(SystemError::Cu(CuError::CycleLimit { .. })) => Some("watchdog".to_owned()),
            Err(_) => Some("error".to_owned()),
            Ok(out) => match mode {
                Mode::Crc => (crc32(out) != self.golden_crc).then(|| "crc".to_owned()),
                Mode::Dmr => {
                    // Second replica, fault-free (the transient hit only
                    // the first execution); any disagreement is a vote.
                    extra_runs += 1;
                    match self.run_once(&self.kernel, Vec::new(), None, trimmed) {
                        Ok(replica) => (out != &replica).then(|| "dmr".to_owned()),
                        Err(_) => Some("dmr".to_owned()),
                    }
                }
                Mode::Plain => None,
            },
        };

        let Some(detector) = detector else {
            // No detector fired: golden output is masked, anything else
            // slipped through silently.
            let classification = match &faulty {
                Ok(out) if crc32(out) == self.golden_crc => Classification::Masked,
                Ok(_) => Classification::Silent,
                // Unreachable: errors always set a detector.
                Err(_) => Classification::Detected,
            };
            return InjectionOutcome {
                fault: *fault,
                classification,
                detector: None,
                recovery: None,
                extra_runs,
            };
        };

        // ---- bounded recovery ----
        // Resume-from-checkpoint first: the last pre-fault checkpoint is
        // bit-identical to a clean run's state at that boundary, and a
        // restored system drops the fault hooks, so resuming re-executes
        // only the tail of the run fault-free.
        if let Some((ck, out_addr)) = &clean_ck {
            extra_runs += 1;
            if let Some(out) = self.resume_from_checkpoint(ck, *out_addr) {
                if crc32(&out) == self.golden_crc {
                    return InjectionOutcome {
                        fault: *fault,
                        classification: Classification::Recovered,
                        detector: Some(detector),
                        recovery: Some("checkpoint-resume".to_owned()),
                        extra_runs,
                    };
                }
            }
        }

        // Trim violations degrade gracefully first: the corrupted binary
        // re-dispatches on the untrimmed CU preset (the hardware still
        // exists there), which recovers faults whose corruption is
        // architecturally invisible in the output.
        if matches!(
            faulty,
            Err(SystemError::Cu(CuError::Trimmed { .. }))
                | Err(SystemError::Cu(CuError::MissingUnit { .. }))
        ) && trimmed.is_some()
        {
            extra_runs += 1;
            if let Ok(out) = self.run_once(&kernel, cu_faults.clone(), mem_fault, None) {
                if crc32(&out) == self.golden_crc {
                    return InjectionOutcome {
                        fault: *fault,
                        classification: Classification::Recovered,
                        detector: Some(detector),
                        recovery: Some("untrimmed-fallback".to_owned()),
                        extra_runs,
                    };
                }
            }
        }

        // Clean re-dispatch: the injected fault is transient, so a retry
        // without it must restore golden output.
        extra_runs += 1;
        let recovered = matches!(
            self.run_once(&self.kernel, Vec::new(), None, trimmed),
            Ok(out) if crc32(&out) == self.golden_crc
        );
        InjectionOutcome {
            fault: *fault,
            classification: if recovered {
                Classification::Recovered
            } else {
                Classification::Detected
            },
            detector: Some(detector),
            recovery: recovered.then(|| "retry".to_owned()),
            extra_runs,
        }
    }

    /// Resolve a planned fault into the concrete run inputs: the (possibly
    /// corrupted) kernel binary, the CU fault list, and the memory upset.
    fn materialize(&self, fault: &PlannedFault) -> (Kernel, Vec<CuUpset>, Option<(u32, u8)>) {
        match fault.payload {
            FaultPayload::Cu(upset) => (self.kernel.clone(), vec![upset], None),
            FaultPayload::Mem { word, bit } => (self.kernel.clone(), Vec::new(), Some((word, bit))),
            FaultPayload::Inst { word, bit } => {
                let mut words = self.kernel.words().to_vec();
                if !words.is_empty() {
                    let w = word as usize % words.len();
                    words[w] ^= 1 << (bit % 32);
                }
                let corrupted = Kernel::from_words(self.kernel.name(), words, *self.kernel.meta());
                (corrupted, Vec::new(), None)
            }
        }
    }
}

/// The campaign's system configuration: the paper's DCD+PM baseline, one
/// CU, metrics off (the fault subsystem publishes its own counters), and
/// the given trim set + cycle budget on the CU.
fn base_config(trim: Option<TrimSet>, cycle_limit: u64) -> SystemConfig {
    let cu = CuConfig {
        trim,
        cycle_limit,
        ..CuConfig::default()
    };
    SystemConfig::preset(SystemKind::DcdPm)
        .with_cu_config(cu)
        .with_metrics(false)
}
