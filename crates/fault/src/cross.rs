//! Fuzz-integrated cross-validation: every generated kernel runs once
//! per fault class with an injected fault, and the reference interpreter
//! acts as the detection oracle.
//!
//! This is the `scratch-tool fuzz --inject` backend: unlike a campaign
//! (which measures a deployment-shaped detector), the fuzzer's oracle
//! sees the full golden output, so a fault that slips past it *silently*
//! is a subsystem bug, reported as a failure.

use serde::{Deserialize, Serialize};

use crate::error::FaultError;
use crate::inject::{CaseContext, Classification, Mode};
use crate::plan::{FaultClass, FaultPlan};

/// Result of one fuzz-with-injection sweep.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CrossReport {
    /// Kernels exercised.
    pub cases: u32,
    /// Faults injected (cases × classes).
    pub injected: u64,
    /// Faults the kernel absorbed (golden output regardless).
    pub masked: u64,
    /// Faults the oracle caught (including those recovery then repaired).
    pub caught: u64,
    /// Faults that produced wrong output the oracle missed — always a
    /// bug, listed in `failures`.
    pub silent: u64,
    /// Human-readable descriptions of every silent escape.
    pub failures: Vec<String>,
}

/// Run `cases` generated kernels (seeds `seed..seed+cases`), injecting
/// one fault of every class into each, and validate that the reference
/// oracle classifies every one as masked or caught.
///
/// # Errors
///
/// Propagates kernels whose golden output cannot be established.
pub fn cross_validate(seed: u64, cases: u32) -> Result<CrossReport, FaultError> {
    let mut report = CrossReport {
        cases,
        ..CrossReport::default()
    };
    for i in 0..u64::from(cases) {
        let ctx = CaseContext::new(seed + i)?;
        let plan = FaultPlan::generate(seed + i, &[ctx.profile], &FaultClass::ALL, 1);
        for fault in &plan.faults {
            let outcome = ctx.inject(fault, Mode::Crc);
            report.injected += 1;
            match outcome.classification {
                Classification::Masked => report.masked += 1,
                Classification::Detected | Classification::Recovered => report.caught += 1,
                Classification::Silent => {
                    report.silent += 1;
                    report.failures.push(format!(
                        "kernel seed {} fault #{} ({}): wrong output, oracle silent",
                        fault.kernel_seed, fault.id, fault.class
                    ));
                }
            }
        }
    }
    Ok(report)
}
