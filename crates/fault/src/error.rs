//! Typed errors of the fault-injection subsystem.

use std::fmt;

use scratch_asm::AsmError;
use scratch_check::RefError;
use scratch_system::SystemError;

/// Failure of the fault-injection machinery itself (as opposed to an
/// *injected* fault, which is an expected outcome and classified, not
/// propagated).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// The simulator under test failed outside any injected fault (e.g.
    /// during the fault-free profiling run).
    System(SystemError),
    /// The reference interpreter failed while producing the golden output.
    Ref(RefError),
    /// The generated kernel did not assemble.
    Asm(AsmError),
    /// No golden output could be established for a kernel seed.
    Golden {
        /// The kernel seed.
        seed: u64,
        /// What went wrong.
        detail: String,
    },
    /// The campaign configuration schedules nothing (no kernels, classes
    /// or faults).
    EmptyCampaign,
    /// A campaign worker job failed (panicked or was rejected by the
    /// engine pool).
    Job {
        /// The job's engine label.
        label: String,
        /// The underlying job error, rendered.
        detail: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::System(e) => write!(f, "fault-free run failed: {e}"),
            FaultError::Ref(e) => write!(f, "reference interpreter: {e}"),
            FaultError::Asm(e) => write!(f, "kernel: {e}"),
            FaultError::Golden { seed, detail } => {
                write!(f, "no golden output for kernel seed {seed}: {detail}")
            }
            FaultError::EmptyCampaign => write!(f, "campaign schedules no faults"),
            FaultError::Job { label, detail } => {
                write!(f, "campaign job {label} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::System(e) => Some(e),
            FaultError::Ref(e) => Some(e),
            FaultError::Asm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SystemError> for FaultError {
    fn from(e: SystemError) -> Self {
        FaultError::System(e)
    }
}

impl From<RefError> for FaultError {
    fn from(e: RefError) -> Self {
        FaultError::Ref(e)
    }
}

impl From<AsmError> for FaultError {
    fn from(e: AsmError) -> Self {
        FaultError::Asm(e)
    }
}
