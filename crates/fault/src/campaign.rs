//! Campaign driver: plan, execute and aggregate a seeded fault campaign
//! across kernels × fault classes, optionally fanned out over the
//! `scratch-engine` worker pool.
//!
//! The campaign proves the subsystem's contract: every injected fault is
//! masked, detected or recovered — in a detecting mode, never silent.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use scratch_engine::Engine;
use scratch_trace::TraceEvent;

use crate::error::FaultError;
use crate::inject::{CaseContext, Classification, InjectionOutcome, Mode};
use crate::plan::{FaultClass, FaultPlan, KernelProfile};

/// What to run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Master seed: generates both the kernels (seeds `seed..seed+kernels`)
    /// and the fault plan.
    pub seed: u64,
    /// Number of generated kernels to inject into.
    pub kernels: u32,
    /// Fault classes to exercise.
    pub classes: Vec<FaultClass>,
    /// Faults per (kernel, class) cell.
    pub per_cell: u32,
    /// Detection mode.
    pub mode: Mode,
    /// Worker threads (`1` runs serially; either way the report is
    /// deterministic — outcomes are aggregated in plan order).
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 1,
            kernels: 4,
            classes: FaultClass::ALL.to_vec(),
            per_cell: 4,
            mode: Mode::Crc,
            jobs: 1,
        }
    }
}

/// Outcome counts of one campaign cell (or of the whole campaign).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellStats {
    /// Faults injected.
    pub injected: u64,
    /// Faults absorbed with golden output and no detector involvement.
    pub masked: u64,
    /// Faults a detector caught but recovery could not repair.
    pub detected: u64,
    /// Faults caught and repaired back to golden output.
    pub recovered: u64,
    /// Faults that produced wrong output with no detection.
    pub silent: u64,
    /// Extra simulator runs spent on detection replicas and recovery.
    pub extra_runs: u64,
}

impl CellStats {
    fn absorb(&mut self, o: &InjectionOutcome) {
        self.injected += 1;
        match o.classification {
            Classification::Masked => self.masked += 1,
            Classification::Detected => self.detected += 1,
            Classification::Recovered => self.recovered += 1,
            Classification::Silent => self.silent += 1,
        }
        self.extra_runs += u64::from(o.extra_runs);
    }

    /// Fold another cell's counts into this one (aggregation across
    /// kernels or classes).
    pub fn merge(&mut self, other: &CellStats) {
        self.injected += other.injected;
        self.masked += other.masked;
        self.detected += other.detected;
        self.recovered += other.recovered;
        self.silent += other.silent;
        self.extra_runs += other.extra_runs;
    }

    /// Fraction of non-masked faults that were caught (detected or
    /// recovered); `1.0` when every fault was masked.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let effective = self.detected + self.recovered + self.silent;
        if effective == 0 {
            1.0
        } else {
            (self.detected + self.recovered) as f64 / effective as f64
        }
    }

    /// Mean extra simulator runs per injected fault (the recovery
    /// overhead of the campaign's mode).
    #[must_use]
    pub fn overhead(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.extra_runs as f64 / self.injected as f64
        }
    }
}

/// One (kernel, class) row of the campaign table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignRow {
    /// Generated-kernel seed.
    pub kernel_seed: u64,
    /// Fault class of this cell.
    pub class: FaultClass,
    /// Outcome counts.
    pub stats: CellStats,
}

/// Full campaign result: per-cell rows, totals, and every individual
/// outcome (for audit / JSON export).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Master seed the campaign ran from.
    pub seed: u64,
    /// Detection mode.
    pub mode: Mode,
    /// Per-(kernel, class) aggregates, in plan order.
    pub rows: Vec<CampaignRow>,
    /// Whole-campaign aggregate.
    pub totals: CellStats,
    /// Every classified injection, in plan order.
    pub outcomes: Vec<InjectionOutcome>,
}

impl CampaignReport {
    /// Detection/recovery trace events of the whole campaign.
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.outcomes
            .iter()
            .flat_map(InjectionOutcome::trace_events)
            .collect()
    }

    /// Render the resilience table.
    #[must_use]
    pub fn table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<10} {:<6} {:>8} {:>7} {:>9} {:>10} {:>7} {:>9} {:>9}\n",
            "kernel",
            "class",
            "injected",
            "masked",
            "detected",
            "recovered",
            "silent",
            "coverage",
            "overhead"
        ));
        for row in &self.rows {
            s.push_str(&render_row(
                &format!("k{}", row.kernel_seed),
                row.class.name(),
                &row.stats,
            ));
        }
        s.push_str(&render_row("total", "*", &self.totals));
        s
    }
}

fn render_row(kernel: &str, class: &str, st: &CellStats) -> String {
    format!(
        "{:<10} {:<6} {:>8} {:>7} {:>9} {:>10} {:>7} {:>8.1}% {:>8.2}x\n",
        kernel,
        class,
        st.injected,
        st.masked,
        st.detected,
        st.recovered,
        st.silent,
        st.coverage() * 100.0,
        st.overhead()
    )
}

/// Build injection contexts (golden output, trim set, dynamic profile)
/// for each kernel seed.
///
/// # Errors
///
/// Propagates the first kernel whose golden output cannot be established.
pub fn build_contexts(seeds: &[u64]) -> Result<Vec<CaseContext>, FaultError> {
    seeds.iter().map(|&s| CaseContext::new(s)).collect()
}

/// Plan and run a full campaign from `cfg`.
///
/// # Errors
///
/// [`FaultError::EmptyCampaign`] when the configuration schedules no
/// faults; otherwise any context-building or worker failure.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, FaultError> {
    if cfg.kernels == 0 || cfg.classes.is_empty() || cfg.per_cell == 0 {
        return Err(FaultError::EmptyCampaign);
    }
    let seeds: Vec<u64> = (0..u64::from(cfg.kernels)).map(|i| cfg.seed + i).collect();
    let contexts = build_contexts(&seeds)?;
    let profiles: Vec<KernelProfile> = contexts.iter().map(|c| c.profile).collect();
    let plan = FaultPlan::generate(cfg.seed, &profiles, &cfg.classes, cfg.per_cell);
    run_plan(&plan, contexts, cfg.mode, cfg.jobs)
}

/// Execute an explicit plan against prepared contexts.
///
/// # Errors
///
/// [`FaultError::EmptyCampaign`] for an empty plan; [`FaultError::Job`]
/// when a worker dies.
pub fn run_plan(
    plan: &FaultPlan,
    contexts: Vec<CaseContext>,
    mode: Mode,
    jobs: usize,
) -> Result<CampaignReport, FaultError> {
    if plan.faults.is_empty() {
        return Err(FaultError::EmptyCampaign);
    }

    let outcomes = if jobs > 1 {
        run_parallel(plan, contexts, mode, jobs)?
    } else {
        run_serial(plan, &contexts, mode)
    };

    // Aggregate in plan order: one row per (kernel, class) cell, created
    // on first sight so row order is deterministic.
    let mut rows: Vec<CampaignRow> = Vec::new();
    let mut totals = CellStats::default();
    for o in &outcomes {
        let key = (o.fault.kernel_seed, o.fault.class);
        let row = match rows.iter_mut().find(|r| (r.kernel_seed, r.class) == key) {
            Some(r) => r,
            None => {
                rows.push(CampaignRow {
                    kernel_seed: key.0,
                    class: key.1,
                    stats: CellStats::default(),
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.stats.absorb(o);
        totals.absorb(o);
    }

    publish_metrics(&rows);

    Ok(CampaignReport {
        seed: plan.seed,
        mode,
        rows,
        totals,
        outcomes,
    })
}

/// Serial execution, in plan order.
fn run_serial(plan: &FaultPlan, contexts: &[CaseContext], mode: Mode) -> Vec<InjectionOutcome> {
    let mut out = Vec::with_capacity(plan.faults.len());
    for fault in &plan.faults {
        if let Some(ctx) = contexts
            .iter()
            .find(|c| c.profile.seed == fault.kernel_seed)
        {
            out.push(ctx.inject(fault, mode));
        }
    }
    out
}

/// Fan the plan's (kernel, class) cells out over the engine pool. Batch
/// outcomes come back sorted by submission id, so the flattened result is
/// identical to the serial order.
fn run_parallel(
    plan: &FaultPlan,
    contexts: Vec<CaseContext>,
    mode: Mode,
    jobs: usize,
) -> Result<Vec<InjectionOutcome>, FaultError> {
    let contexts: Vec<Arc<CaseContext>> = contexts.into_iter().map(Arc::new).collect();
    let mut cells: Vec<(String, Arc<CaseContext>, Vec<crate::plan::PlannedFault>)> = Vec::new();
    for fault in &plan.faults {
        let key = format!("k{}/{}", fault.kernel_seed, fault.class.name());
        match cells.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, _, fs)) => fs.push(*fault),
            None => {
                let Some(ctx) = contexts
                    .iter()
                    .find(|c| c.profile.seed == fault.kernel_seed)
                else {
                    continue;
                };
                cells.push((key, Arc::clone(ctx), vec![*fault]));
            }
        }
    }

    let engine = Engine::new(jobs);
    let batch = engine.run_batch(cells.into_iter().map(|(label, ctx, faults)| {
        (label, move || {
            Ok(faults
                .iter()
                .map(|f| ctx.inject(f, mode))
                .collect::<Vec<_>>())
        })
    }));

    let mut out = Vec::with_capacity(plan.faults.len());
    for o in batch {
        match o.result {
            Ok(v) => out.extend(v),
            Err(e) => {
                return Err(FaultError::Job {
                    label: o.label,
                    detail: e.to_string(),
                })
            }
        }
    }
    Ok(out)
}

/// Publish campaign counters to the process-global metrics registry.
fn publish_metrics(rows: &[CampaignRow]) {
    let reg = scratch_metrics::global();
    for row in rows {
        let class = row.class.name();
        reg.counter_with(
            "scratch_fault_injected_total",
            "Faults injected by campaign runs",
            &[("class", class)],
        )
        .add(row.stats.injected);
        for (name, v) in [
            ("masked", row.stats.masked),
            ("detected", row.stats.detected),
            ("recovered", row.stats.recovered),
            ("silent", row.stats.silent),
        ] {
            reg.counter_with(
                "scratch_fault_outcomes_total",
                "Fault campaign outcomes by classification",
                &[("class", class), ("outcome", name)],
            )
            .add(v);
        }
    }
}
