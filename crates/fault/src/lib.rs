//! `scratch-fault` — seeded fault injection, supervision and recovery
//! for the SCRATCH simulators.
//!
//! SCRATCH (MICRO 2017) argues that a trimmed soft-GPGPU is deployable
//! on FPGA fabric; deployability includes surviving the faults such
//! fabric suffers (configuration-memory and BRAM upsets, transient
//! datapath errors). This crate closes that loop in the reproduction:
//!
//! * **Planning** ([`FaultPlan`]): a seeded, serde round-trippable
//!   schedule of bit-flips (SGPR / VGPR / LDS / global memory),
//!   instruction-word corruption and transient functional-unit errors.
//!   Faults trigger on per-CU *issue indices*, not cycles, so a plan
//!   replays bit-identically on any scheduler.
//! * **Injection** ([`CaseContext::inject`]): executes one planned fault
//!   through the hooks in `scratch-cu`'s pipeline and `scratch-system`'s
//!   memory server, under a cycle-budget watchdog (a corrupted loop
//!   counter must hang the watchdog, not the host).
//! * **Detection**: simulator hard faults, the watchdog, output-CRC
//!   comparison against the `scratch-check` reference interpreter
//!   ([`Mode::Crc`]), or dual-modular redundancy ([`Mode::Dmr`]).
//! * **Recovery**: graceful degradation (a trim-violation fault
//!   re-dispatches on the untrimmed CU preset) and bounded clean
//!   re-dispatch for transients.
//! * **Accounting** ([`run_campaign`]): every fault ends classified
//!   masked / detected / recovered / silent; campaign counters publish
//!   to `scratch-metrics` and detection events to `scratch-trace`.
//!
//! The contract the campaign driver proves: **in a detecting mode, no
//! injected fault produces silently wrong output.**

mod campaign;
mod cross;
mod error;
mod inject;
mod plan;

pub use campaign::{
    build_contexts, run_campaign, run_plan, CampaignConfig, CampaignReport, CampaignRow, CellStats,
};
pub use cross::{cross_validate, CrossReport};
pub use error::FaultError;
pub use inject::{CaseContext, Classification, InjectionOutcome, Mode};
pub use plan::{FaultClass, FaultPayload, FaultPlan, KernelProfile, PlannedFault};

// Re-export the hook-level types so campaign consumers need only this
// crate.
pub use scratch_system::{CuFault, CuUpset, FaultRecord, FaultSpec, FaultTarget, MemUpset};

/// CRC-32 (IEEE 802.3, reflected) over a word slice — the output
/// signature detectors compare. Table-free bitwise form: campaign
/// outputs are a few KiB, so simplicity beats a 1 KiB table.
#[must_use]
pub fn crc32(words: &[u32]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for w in words {
        for &b in &w.to_le_bytes() {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn crc32_matches_known_vectors() {
        // "123456789" as little-endian words (9 bytes doesn't pack, so
        // use the 8-byte prefix "12345678" = two words) — check value
        // computed with the standard IEEE polynomial.
        assert_eq!(crc32(&[]), 0);
        let val = crc32(&[u32::from_le_bytes(*b"1234"), u32::from_le_bytes(*b"5678")]);
        assert_eq!(val, 0x9ae0daaf);
    }

    #[test]
    fn crc32_is_order_sensitive() {
        assert_ne!(crc32(&[1, 2]), crc32(&[2, 1]));
        assert_ne!(crc32(&[0]), crc32(&[0, 0]));
    }
}
