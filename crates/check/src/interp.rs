//! Lockstep reference interpreter.
//!
//! A deliberately simple model of the Southern Islands *architectural*
//! state: per-lane registers, a flat sparse memory, and one instruction
//! retiring completely before the next begins. There is no pipeline, no
//! issue arbitration, no latency modelling and no wavefront interleaving —
//! which is exactly what makes it a usable oracle: when the pipelined CU
//! and this interpreter disagree on final memory, the difference can only
//! come from the CU's added machinery, never from a shared bug in a common
//! helper (the interpreter shares no execution code with `scratch-cu`).
//!
//! The paper validates the bug-fixed MIAOW CU "in the instruction domain"
//! against a reference implementation (§2.3); [`RefSystem`] plays that
//! reference's role for the differential fuzzer, mirroring the dispatcher
//! ABI of `scratch_system::System` (same allocator layout, same launch
//! register file image) so the two can run the same kernel on the same
//! inputs.

use std::collections::HashMap;
use std::fmt;

use scratch_asm::Kernel;
use scratch_isa::{Fields, FuncUnit, Instruction, Opcode, Operand, SmrdOffset, WAVEFRONT_SIZE};

/// Global memory size mirrored from `SystemConfig::preset` (64 MiB).
const MEM_BYTES: u64 = 64 << 20;

/// Instruction budget per dispatch — generated kernels retire in a few
/// thousand instructions, so hitting this means a control-flow bug.
const STEP_LIMIT: u64 = 50_000_000;

/// Errors the reference interpreter can report. These deliberately mirror
/// the conditions `scratch-cu` reports so the differential oracles can
/// treat "both sides faulted" as agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefError {
    /// The kernel binary did not decode.
    Decode(String),
    /// A register index exceeded the kernel's declared budget.
    Register {
        /// `"s"` or `"v"`.
        what: &'static str,
        /// The offending index.
        index: u32,
    },
    /// An LDS access fell outside the declared allocation.
    LdsOutOfRange {
        /// Byte address of the access.
        addr: u32,
        /// Declared LDS size in bytes.
        size: u32,
    },
    /// A branch left the program.
    PcOutOfRange {
        /// The offending word offset.
        pc: usize,
    },
    /// The per-dispatch instruction budget was exhausted.
    StepLimit,
    /// `dispatch` called before `set_args`.
    ArgsNotSet,
    /// A wavefront read a vector register as a scalar operand.
    VgprAsScalar,
}

impl fmt::Display for RefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefError::Decode(e) => write!(f, "kernel does not decode: {e}"),
            RefError::Register { what, index } => {
                write!(f, "register {what}{index} out of range")
            }
            RefError::LdsOutOfRange { addr, size } => {
                write!(f, "LDS access at {addr:#x} outside {size}-byte allocation")
            }
            RefError::PcOutOfRange { pc } => write!(f, "pc {pc} outside the program"),
            RefError::StepLimit => write!(f, "instruction budget exhausted"),
            RefError::ArgsNotSet => write!(f, "kernel arguments not set"),
            RefError::VgprAsScalar => write!(f, "VGPR used as scalar operand"),
        }
    }
}

impl std::error::Error for RefError {}

/// Deliberate semantic mutations for validating the fuzzer itself: with a
/// bug injected, the reference diverges from the (correct) CU the same way
/// a buggy CU would diverge from the (correct) reference, so the whole
/// catch-and-minimize pipeline can be exercised in-tree without patching
/// `scratch-cu`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectedBug {
    /// Faithful semantics.
    #[default]
    None,
    /// `v_xor_b32` flips result bit 0 (a classic copy-paste `^ 1`).
    XorFlipsBit0,
    /// `v_add_i32` drops the carry-out (always clears the VCC lane bit).
    AddDropsCarry,
    /// `v_min_u32` computes max instead.
    MinIsMax,
}

/// Sparse byte-addressable memory with the same observable behaviour as
/// the system's `FixedLatencyMemory`: little-endian, zero-initialised,
/// out-of-range reads return 0, out-of-range writes are dropped.
#[derive(Debug, Default)]
struct RefMemory {
    words: HashMap<u64, u32>,
}

impl RefMemory {
    fn read_u32(&self, addr: u64) -> u32 {
        if addr.is_multiple_of(4) {
            if addr + 4 > MEM_BYTES {
                return 0;
            }
            return self.words.get(&(addr / 4)).copied().unwrap_or(0);
        }
        let mut v = 0u32;
        for i in 0..4 {
            v |= u32::from(self.read_u8(addr + i)) << (i * 8);
        }
        v
    }

    fn write_u32(&mut self, addr: u64, value: u32) {
        if addr.is_multiple_of(4) {
            if addr + 4 <= MEM_BYTES {
                self.words.insert(addr / 4, value);
            }
            return;
        }
        for i in 0..4 {
            self.write_u8(addr + i, (value >> (i * 8)) as u8);
        }
    }

    fn read_u8(&self, addr: u64) -> u8 {
        if addr >= MEM_BYTES {
            return 0;
        }
        let word = self.words.get(&(addr / 4)).copied().unwrap_or(0);
        (word >> ((addr % 4) * 8)) as u8
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        if addr >= MEM_BYTES {
            return;
        }
        let slot = self.words.entry(addr / 4).or_insert(0);
        let shift = (addr % 4) * 8;
        *slot = (*slot & !(0xff << shift)) | (u32::from(value) << shift);
    }
}

/// Architectural state of one reference wavefront.
struct RefWave {
    sgprs: Vec<u32>,
    /// `vgprs[r][lane]`.
    vgprs: Vec<Vec<u32>>,
    exec: u64,
    vcc: u64,
    scc: bool,
    m0: u32,
    pc: usize,
    done: bool,
    at_barrier: bool,
}

impl RefWave {
    fn new(sgprs: usize, vgprs: usize) -> RefWave {
        RefWave {
            sgprs: vec![0; sgprs],
            vgprs: vec![vec![0; WAVEFRONT_SIZE]; vgprs],
            exec: u64::MAX,
            vcc: 0,
            scc: false,
            m0: u32::MAX,
            pc: 0,
            done: false,
            at_barrier: false,
        }
    }

    fn sgpr(&self, n: u32) -> Result<u32, RefError> {
        self.sgprs
            .get(n as usize)
            .copied()
            .ok_or(RefError::Register {
                what: "s",
                index: n,
            })
    }

    fn set_sgpr(&mut self, n: u32, value: u32) -> Result<(), RefError> {
        match self.sgprs.get_mut(n as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(RefError::Register {
                what: "s",
                index: n,
            }),
        }
    }

    fn vgpr(&self, r: u32, lane: usize) -> Result<u32, RefError> {
        self.vgprs
            .get(r as usize)
            .map(|regs| regs[lane])
            .ok_or(RefError::Register {
                what: "v",
                index: r,
            })
    }

    fn set_vgpr(&mut self, r: u32, lane: usize, value: u32) -> Result<(), RefError> {
        match self.vgprs.get_mut(r as usize) {
            Some(regs) => {
                regs[lane] = value;
                Ok(())
            }
            None => Err(RefError::Register {
                what: "v",
                index: r,
            }),
        }
    }

    fn lane_active(&self, lane: usize) -> bool {
        self.exec & (1 << lane) != 0
    }

    /// Scalar-operand read: SGPRs (1- or 2-dword), special registers,
    /// inline constants (integers sign-extended, floats as IEEE bits) and
    /// literals.
    fn read_scalar(&self, op: Operand, width: u8) -> Result<u64, RefError> {
        Ok(match op {
            Operand::Sgpr(n) => {
                let lo = u64::from(self.sgpr(n.into())?);
                if width >= 2 {
                    lo | (u64::from(self.sgpr(u32::from(n) + 1)?) << 32)
                } else {
                    lo
                }
            }
            Operand::VccLo => {
                if width >= 2 {
                    self.vcc
                } else {
                    self.vcc & 0xffff_ffff
                }
            }
            Operand::VccHi => self.vcc >> 32,
            Operand::ExecLo => {
                if width >= 2 {
                    self.exec
                } else {
                    self.exec & 0xffff_ffff
                }
            }
            Operand::ExecHi => self.exec >> 32,
            Operand::M0 => u64::from(self.m0),
            Operand::Scc => u64::from(self.scc),
            Operand::Vccz => u64::from(self.vcc == 0),
            Operand::Execz => u64::from(self.exec == 0),
            Operand::IntConst(v) => {
                if width >= 2 {
                    i64::from(v) as u64
                } else {
                    u64::from(i32::from(v) as u32)
                }
            }
            Operand::FloatConst(f) => u64::from(f.to_bits()),
            Operand::Literal(v) => u64::from(v),
            Operand::Vgpr(_) => return Err(RefError::VgprAsScalar),
        })
    }

    fn write_scalar(&mut self, dst: Operand, width: u8, value: u64) -> Result<(), RefError> {
        match dst {
            Operand::Sgpr(n) => {
                self.set_sgpr(n.into(), value as u32)?;
                if width >= 2 {
                    self.set_sgpr(u32::from(n) + 1, (value >> 32) as u32)?;
                }
            }
            Operand::VccLo => {
                if width >= 2 {
                    self.vcc = value;
                } else {
                    self.vcc = (self.vcc & !0xffff_ffff) | (value & 0xffff_ffff);
                }
            }
            Operand::VccHi => {
                self.vcc = (self.vcc & 0xffff_ffff) | (value << 32);
            }
            Operand::ExecLo => {
                if width >= 2 {
                    self.exec = value;
                } else {
                    self.exec = (self.exec & !0xffff_ffff) | (value & 0xffff_ffff);
                }
            }
            Operand::ExecHi => {
                self.exec = (self.exec & 0xffff_ffff) | (value << 32);
            }
            Operand::M0 => self.m0 = value as u32,
            _ => return Err(RefError::VgprAsScalar),
        }
        Ok(())
    }

    fn read_lane(&self, op: Operand, lane: usize) -> Result<u32, RefError> {
        match op {
            Operand::Vgpr(r) => self.vgpr(r.into(), lane),
            other => Ok(self.read_scalar(other, 1)? as u32),
        }
    }
}

/// The reference system: one kernel, a flat memory, and the same
/// host-side allocator / launch ABI as `scratch_system::System`.
pub struct RefSystem {
    insts: Vec<(usize, Instruction)>,
    /// Word offset → index into `insts` (branch targets land here).
    by_pos: HashMap<usize, usize>,
    meta: scratch_asm::KernelMeta,
    mem: RefMemory,
    bump: u64,
    cb0: u64,
    args: Option<(u64, u64)>,
    /// Semantic mutation under test (see [`InjectedBug`]).
    pub bug: InjectedBug,
}

impl RefSystem {
    /// Build a reference system for `kernel`.
    ///
    /// # Errors
    ///
    /// [`RefError::Decode`] when the binary does not decode.
    pub fn new(kernel: &Kernel) -> Result<RefSystem, RefError> {
        let insts = kernel
            .instructions()
            .map_err(|e| RefError::Decode(e.to_string()))?;
        let by_pos = insts
            .iter()
            .enumerate()
            .map(|(i, &(pos, _))| (pos, i))
            .collect();
        let mut sys = RefSystem {
            insts,
            by_pos,
            meta: *kernel.meta(),
            mem: RefMemory::default(),
            bump: 0x1000,
            cb0: 0,
            args: None,
            bug: InjectedBug::None,
        };
        sys.cb0 = sys.alloc(64);
        Ok(sys)
    }

    /// Allocate `bytes` of global memory (256-byte aligned, same bump
    /// allocator as the system under test).
    ///
    /// # Panics
    ///
    /// Panics when global memory is exhausted (host-program bug).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let addr = self.bump;
        let size = bytes.div_ceil(256) * 256;
        assert!(addr + size <= MEM_BYTES, "reference out of global memory");
        self.bump += size;
        addr
    }

    /// Allocate and fill a buffer.
    pub fn alloc_words(&mut self, words: &[u32]) -> u64 {
        let addr = self.alloc(words.len() as u64 * 4);
        self.write_words(addr, words);
        addr
    }

    /// Host-side write of words.
    pub fn write_words(&mut self, addr: u64, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.mem.write_u32(addr + i as u64 * 4, w);
        }
    }

    /// Host-side read of words.
    #[must_use]
    pub fn read_words(&self, addr: u64, count: usize) -> Vec<u32> {
        (0..count)
            .map(|i| self.mem.read_u32(addr + i as u64 * 4))
            .collect()
    }

    /// Set the kernel argument words.
    pub fn set_args(&mut self, args: &[u32]) {
        let addr = self.alloc(args.len().max(1) as u64 * 4);
        self.write_words(addr, args);
        self.args = Some((addr, args.len() as u64 * 4));
    }

    /// Run `grid` workgroups to completion, workgroups enumerated
    /// z-outer / x-inner as the dispatcher does, waves within a workgroup
    /// round-robin between barriers.
    ///
    /// # Errors
    ///
    /// Architectural faults ([`RefError`]) — decode problems, register or
    /// LDS range violations, runaway control flow.
    pub fn dispatch(&mut self, grid: [u32; 3]) -> Result<(), RefError> {
        let (args_addr, args_len) = self.args.ok_or(RefError::ArgsNotSet)?;
        let wg_size = self.meta.workgroup_size;
        let cb0 = self.cb0;
        self.write_words(
            cb0,
            &[grid[0], grid[1], grid[2], wg_size, grid[0] * wg_size],
        );
        let waves_per_wg = (wg_size as usize).div_ceil(WAVEFRONT_SIZE);
        let mut steps = 0u64;
        for z in 0..grid[2] {
            for y in 0..grid[1] {
                for x in 0..grid[0] {
                    self.run_workgroup([x, y, z], args_addr, args_len, waves_per_wg, &mut steps)?;
                }
            }
        }
        Ok(())
    }

    fn init_wave(&self, wg_id: [u32; 3], lane_base: u32, args_addr: u64, args_len: u64) -> RefWave {
        use scratch_system::abi;
        let wg_size = self.meta.workgroup_size;
        let mut w = RefWave::new(usize::from(self.meta.sgprs), usize::from(self.meta.vgprs));
        let active = (wg_size - lane_base).min(WAVEFRONT_SIZE as u32);
        w.exec = if active >= 64 {
            u64::MAX
        } else {
            (1u64 << active) - 1
        };
        let sgpr_image: [(u8, u32); 15] = [
            (abi::UAV_DESC, 0),
            (abi::UAV_DESC + 1, 0),
            (abi::UAV_DESC + 2, 0),
            (abi::UAV_DESC + 3, 0),
            (abi::CONST_BUF0, self.cb0 as u32),
            (abi::CONST_BUF0 + 1, (self.cb0 >> 32) as u32),
            (abi::CONST_BUF0 + 2, 64),
            (abi::CONST_BUF0 + 3, 0),
            (abi::CONST_BUF1, args_addr as u32),
            (abi::CONST_BUF1 + 1, (args_addr >> 32) as u32),
            (abi::CONST_BUF1 + 2, args_len as u32),
            (abi::CONST_BUF1 + 3, 0),
            (abi::WG_ID_X, wg_id[0]),
            (abi::WG_ID_Y, wg_id[1]),
            (abi::WG_ID_Z, wg_id[2]),
        ];
        for (r, v) in sgpr_image {
            let _ = w.set_sgpr(u32::from(r), v);
        }
        for lane in 0..WAVEFRONT_SIZE {
            let _ = w.set_vgpr(u32::from(abi::TID_X), lane, lane_base + lane as u32);
        }
        for tid in [abi::TID_Y, abi::TID_Z] {
            if tid < self.meta.vgprs {
                for lane in 0..WAVEFRONT_SIZE {
                    let _ = w.set_vgpr(u32::from(tid), lane, 0);
                }
            }
        }
        w
    }

    fn run_workgroup(
        &mut self,
        wg_id: [u32; 3],
        args_addr: u64,
        args_len: u64,
        waves_per_wg: usize,
        steps: &mut u64,
    ) -> Result<(), RefError> {
        let wg_size = self.meta.workgroup_size;
        let mut lds = vec![0u32; (self.meta.lds_bytes as usize).div_ceil(4)];
        let mut waves: Vec<RefWave> = (0..waves_per_wg)
            .filter_map(|wi| {
                let lane_base = (wi * WAVEFRONT_SIZE) as u32;
                (lane_base < wg_size).then(|| self.init_wave(wg_id, lane_base, args_addr, args_len))
            })
            .collect();
        // Round-robin between barriers: each pass runs every live wave up
        // to its next barrier (or retirement); when all live waves are
        // parked at the barrier, release them together.
        loop {
            let mut progressed = false;
            for w in &mut waves {
                if w.done || w.at_barrier {
                    continue;
                }
                progressed = true;
                self.run_wave_segment(w, &mut lds, steps)?;
            }
            if waves.iter().all(|w| w.done) {
                return Ok(());
            }
            if !progressed {
                // Everyone alive is at a barrier: release.
                for w in &mut waves {
                    w.at_barrier = false;
                }
            }
        }
    }

    /// Run one wave until it retires or parks at a barrier.
    fn run_wave_segment(
        &mut self,
        w: &mut RefWave,
        lds: &mut [u32],
        steps: &mut u64,
    ) -> Result<(), RefError> {
        loop {
            *steps += 1;
            if *steps > STEP_LIMIT {
                return Err(RefError::StepLimit);
            }
            let &idx = self
                .by_pos
                .get(&w.pc)
                .ok_or(RefError::PcOutOfRange { pc: w.pc })?;
            let (_, inst) = self.insts[idx];
            let next_pc = w.pc + inst.size_words();
            let out = step(&inst, next_pc, w, lds, &mut self.mem, self.bug)?;
            w.pc = out.new_pc.unwrap_or(next_pc);
            if out.end {
                w.done = true;
                return Ok(());
            }
            if out.barrier {
                w.at_barrier = true;
                return Ok(());
            }
        }
    }
}

#[derive(Default)]
struct StepOutcome {
    new_pc: Option<usize>,
    end: bool,
    barrier: bool,
}

#[inline]
fn fb(x: u32) -> f32 {
    f32::from_bits(x)
}

#[inline]
fn tb(x: f32) -> u32 {
    x.to_bits()
}

#[inline]
fn sext24(x: u32) -> i64 {
    i64::from((x << 8) as i32 >> 8)
}

fn step(
    inst: &Instruction,
    next_pc: usize,
    w: &mut RefWave,
    lds: &mut [u32],
    mem: &mut RefMemory,
    bug: InjectedBug,
) -> Result<StepOutcome, RefError> {
    match inst.fields {
        Fields::Sop2 { sdst, ssrc0, ssrc1 } => {
            step_sop2(inst.opcode, w, sdst, ssrc0, ssrc1)?;
            Ok(StepOutcome::default())
        }
        Fields::Sopk { sdst, simm16 } => {
            step_sopk(inst.opcode, w, sdst, simm16)?;
            Ok(StepOutcome::default())
        }
        Fields::Sop1 { sdst, ssrc0 } => {
            step_sop1(inst.opcode, w, sdst, ssrc0)?;
            Ok(StepOutcome::default())
        }
        Fields::Sopc { ssrc0, ssrc1 } => {
            step_sopc(inst.opcode, w, ssrc0, ssrc1)?;
            Ok(StepOutcome::default())
        }
        Fields::Sopp { simm16 } => step_sopp(inst.opcode, w, simm16, next_pc),
        Fields::Smrd {
            sdst,
            sbase,
            offset,
        } => {
            step_smrd(inst.opcode, w, sdst, sbase, offset, mem)?;
            Ok(StepOutcome::default())
        }
        Fields::Vop2 { .. }
        | Fields::Vop1 { .. }
        | Fields::Vopc { .. }
        | Fields::Vop3a { .. }
        | Fields::Vop3b { .. } => {
            step_vector(inst, w, bug)?;
            Ok(StepOutcome::default())
        }
        Fields::Ds { .. } => {
            step_ds(inst, w, lds)?;
            Ok(StepOutcome::default())
        }
        Fields::Mubuf { .. } | Fields::Mtbuf { .. } => {
            step_buffer(inst, w, mem)?;
            Ok(StepOutcome::default())
        }
    }
}

fn step_sop2(
    op: Opcode,
    w: &mut RefWave,
    sdst: Operand,
    ssrc0: Operand,
    ssrc1: Operand,
) -> Result<(), RefError> {
    use Opcode::*;
    let width = op.src_width();
    let s0 = w.read_scalar(ssrc0, width)?;
    let s1 = w.read_scalar(ssrc1, width)?;
    let (a, b) = (s0 as u32, s1 as u32);
    let (ai, bi) = (a as i32, b as i32);
    let (value, scc): (u64, Option<bool>) = match op {
        SAddU32 => {
            let (v, c) = a.overflowing_add(b);
            (v.into(), Some(c))
        }
        SSubU32 => {
            let (v, c) = a.overflowing_sub(b);
            (v.into(), Some(c))
        }
        SAddI32 => {
            let (v, o) = ai.overflowing_add(bi);
            (u64::from(v as u32), Some(o))
        }
        SSubI32 => {
            let (v, o) = ai.overflowing_sub(bi);
            (u64::from(v as u32), Some(o))
        }
        SAddcU32 => {
            let full = u64::from(a) + u64::from(b) + u64::from(w.scc);
            (full & 0xffff_ffff, Some(full > 0xffff_ffff))
        }
        SSubbU32 => {
            let full = i64::from(a) - i64::from(b) - i64::from(w.scc);
            (u64::from(full as u32), Some(full < 0))
        }
        SMinI32 => ((ai.min(bi) as u32).into(), Some(ai <= bi)),
        SMinU32 => (a.min(b).into(), Some(a <= b)),
        SMaxI32 => ((ai.max(bi) as u32).into(), Some(ai >= bi)),
        SMaxU32 => (a.max(b).into(), Some(a >= b)),
        SCselectB32 => (if w.scc { s0 } else { s1 }, None),
        SAndB32 | SAndB64 => {
            let v = s0 & s1;
            (v, Some(v != 0))
        }
        SOrB32 | SOrB64 => {
            let v = s0 | s1;
            (v, Some(v != 0))
        }
        SXorB32 | SXorB64 => {
            let v = s0 ^ s1;
            (v, Some(v != 0))
        }
        SAndn2B64 => {
            let v = s0 & !s1;
            (v, Some(v != 0))
        }
        SOrn2B64 => {
            let v = s0 | !s1;
            (v, Some(v != 0))
        }
        SNandB64 => {
            let v = !(s0 & s1);
            (v, Some(v != 0))
        }
        SNorB64 => {
            let v = !(s0 | s1);
            (v, Some(v != 0))
        }
        SXnorB64 => {
            let v = !(s0 ^ s1);
            (v, Some(v != 0))
        }
        SLshlB32 => {
            let v = a << (b & 31);
            (v.into(), Some(v != 0))
        }
        SLshrB32 => {
            let v = a >> (b & 31);
            (v.into(), Some(v != 0))
        }
        SAshrI32 => {
            let v = (ai >> (b & 31)) as u32;
            (v.into(), Some(v != 0))
        }
        SBfmB32 => {
            let v = ((1u64 << (a & 31)) - 1) as u32;
            ((v << (b & 31)).into(), None)
        }
        SMulI32 => ((ai.wrapping_mul(bi) as u32).into(), None),
        SBfeU32 => {
            let offset = b & 31;
            let width = (b >> 16) & 0x7f;
            let v = if width == 0 {
                0
            } else if width >= 32 {
                a >> offset
            } else {
                (a >> offset) & ((1u32 << width) - 1)
            };
            (v.into(), Some(v != 0))
        }
        SBfeI32 => {
            let offset = b & 31;
            let width = (b >> 16) & 0x7f;
            let v = if width == 0 {
                0
            } else if width >= 32 {
                ((ai >> offset) as u32).into()
            } else {
                let raw = (a >> offset) & ((1u32 << width) - 1);
                let shift = 32 - width;
                u64::from((((raw << shift) as i32) >> shift) as u32)
            };
            (v, Some(v != 0))
        }
        other => unreachable!("non-SOP2 opcode {other:?}"),
    };
    w.write_scalar(sdst, op.dst_width(), value)?;
    if let Some(s) = scc {
        w.scc = s;
    }
    Ok(())
}

fn step_sopk(op: Opcode, w: &mut RefWave, sdst: Operand, simm16: i16) -> Result<(), RefError> {
    use Opcode::*;
    let imm = i64::from(simm16);
    match op {
        SMovkI32 => w.write_scalar(sdst, 1, u64::from(imm as u32))?,
        SCmpkEqI32 | SCmpkLgI32 | SCmpkGtI32 | SCmpkGeI32 | SCmpkLtI32 | SCmpkLeI32 => {
            let v = i64::from(w.read_scalar(sdst, 1)? as u32 as i32);
            w.scc = match op {
                SCmpkEqI32 => v == imm,
                SCmpkLgI32 => v != imm,
                SCmpkGtI32 => v > imm,
                SCmpkGeI32 => v >= imm,
                SCmpkLtI32 => v < imm,
                SCmpkLeI32 => v <= imm,
                _ => unreachable!(),
            };
        }
        SAddkI32 => {
            let v = w.read_scalar(sdst, 1)? as u32 as i32;
            let (r, o) = v.overflowing_add(imm as i32);
            w.write_scalar(sdst, 1, u64::from(r as u32))?;
            w.scc = o;
        }
        SMulkI32 => {
            let v = w.read_scalar(sdst, 1)? as u32 as i32;
            w.write_scalar(sdst, 1, u64::from(v.wrapping_mul(imm as i32) as u32))?;
        }
        other => unreachable!("non-SOPK opcode {other:?}"),
    }
    Ok(())
}

fn step_sop1(op: Opcode, w: &mut RefWave, sdst: Operand, ssrc0: Operand) -> Result<(), RefError> {
    use Opcode::*;
    let s0 = w.read_scalar(ssrc0, op.src_width())?;
    let a = s0 as u32;
    let (value, scc): (u64, Option<bool>) = match op {
        SMovB32 | SMovB64 => (s0, None),
        SCmovB32 => {
            if w.scc {
                (s0, None)
            } else {
                (w.read_scalar(sdst, 1)?, None)
            }
        }
        SNotB32 => {
            let v = u64::from(!a);
            (v, Some(v != 0))
        }
        SNotB64 => {
            let v = !s0;
            (v, Some(v != 0))
        }
        SWqmB64 => {
            let mut v = 0u64;
            for q in 0..16 {
                if (s0 >> (q * 4)) & 0xf != 0 {
                    v |= 0xf << (q * 4);
                }
            }
            (v, Some(v != 0))
        }
        SBrevB32 => (u64::from(a.reverse_bits()), None),
        SBcnt0I32B32 => {
            let v = u64::from(a.count_zeros());
            (v, Some(v != 0))
        }
        SBcnt1I32B32 => {
            let v = u64::from(a.count_ones());
            (v, Some(v != 0))
        }
        SFf0I32B32 => {
            let v = if a == u32::MAX {
                u32::MAX
            } else {
                (!a).trailing_zeros()
            };
            (u64::from(v), None)
        }
        SFf1I32B32 => {
            let v = if a == 0 { u32::MAX } else { a.trailing_zeros() };
            (u64::from(v), None)
        }
        SFlbitI32B32 => {
            let v = if a == 0 { u32::MAX } else { a.leading_zeros() };
            (u64::from(v), None)
        }
        SSextI32I8 => (u64::from(i32::from(a as u8 as i8) as u32), None),
        SSextI32I16 => (u64::from(i32::from(a as u16 as i16) as u32), None),
        SBitset0B32 => {
            let d = w.read_scalar(sdst, 1)? as u32;
            (u64::from(d & !(1 << (a & 31))), None)
        }
        SBitset1B32 => {
            let d = w.read_scalar(sdst, 1)? as u32;
            (u64::from(d | (1 << (a & 31))), None)
        }
        SAndSaveexecB64 | SOrSaveexecB64 | SXorSaveexecB64 | SAndn2SaveexecB64 => {
            let saved = w.exec;
            let new_exec = match op {
                SAndSaveexecB64 => s0 & saved,
                SOrSaveexecB64 => s0 | saved,
                SXorSaveexecB64 => s0 ^ saved,
                SAndn2SaveexecB64 => s0 & !saved,
                _ => unreachable!(),
            };
            w.exec = new_exec;
            (saved, Some(new_exec != 0))
        }
        other => unreachable!("non-SOP1 opcode {other:?}"),
    };
    w.write_scalar(sdst, op.dst_width(), value)?;
    if let Some(s) = scc {
        w.scc = s;
    }
    Ok(())
}

fn step_sopc(op: Opcode, w: &mut RefWave, ssrc0: Operand, ssrc1: Operand) -> Result<(), RefError> {
    use Opcode::*;
    let a = w.read_scalar(ssrc0, 1)? as u32;
    let b = w.read_scalar(ssrc1, 1)? as u32;
    let (ai, bi) = (a as i32, b as i32);
    w.scc = match op {
        SCmpEqI32 => ai == bi,
        SCmpLgI32 => ai != bi,
        SCmpGtI32 => ai > bi,
        SCmpGeI32 => ai >= bi,
        SCmpLtI32 => ai < bi,
        SCmpLeI32 => ai <= bi,
        SCmpEqU32 => a == b,
        SCmpLgU32 => a != b,
        SCmpGtU32 => a > b,
        SCmpGeU32 => a >= b,
        SCmpLtU32 => a < b,
        SCmpLeU32 => a <= b,
        other => unreachable!("non-SOPC opcode {other:?}"),
    };
    Ok(())
}

fn step_sopp(
    op: Opcode,
    w: &mut RefWave,
    simm16: u16,
    next_pc: usize,
) -> Result<StepOutcome, RefError> {
    use Opcode::*;
    let mut out = StepOutcome::default();
    let target = || {
        let t = next_pc as i64 + i64::from(simm16 as i16);
        usize::try_from(t).map_err(|_| RefError::PcOutOfRange { pc: 0 })
    };
    match op {
        SNop | SWaitcnt => {}
        SEndpgm => out.end = true,
        SBarrier => out.barrier = true,
        SBranch => out.new_pc = Some(target()?),
        SCbranchScc0 if !w.scc => out.new_pc = Some(target()?),
        SCbranchScc1 if w.scc => out.new_pc = Some(target()?),
        SCbranchVccz if w.vcc == 0 => out.new_pc = Some(target()?),
        SCbranchVccnz if w.vcc != 0 => out.new_pc = Some(target()?),
        SCbranchExecz if w.exec == 0 => out.new_pc = Some(target()?),
        SCbranchExecnz if w.exec != 0 => out.new_pc = Some(target()?),
        SCbranchScc0 | SCbranchScc1 | SCbranchVccz | SCbranchVccnz | SCbranchExecz
        | SCbranchExecnz => {}
        other => unreachable!("non-SOPP opcode {other:?}"),
    }
    Ok(out)
}

fn step_smrd(
    op: Opcode,
    w: &mut RefWave,
    sdst: Operand,
    sbase: u8,
    offset: SmrdOffset,
    mem: &RefMemory,
) -> Result<(), RefError> {
    let base = w.read_scalar(Operand::Sgpr(sbase), 2)? & 0xffff_ffff_ffff;
    let off = match offset {
        SmrdOffset::Imm(i) => u64::from(i) * 4,
        SmrdOffset::Sgpr(s) => u64::from(w.sgpr(s.into())?),
    };
    let addr = base.wrapping_add(off);
    let first = match sdst {
        Operand::Sgpr(s) => u32::from(s),
        other => {
            let v = mem.read_u32(addr);
            w.write_scalar(other, 1, u64::from(v))?;
            return Ok(());
        }
    };
    for i in 0..u32::from(op.dst_width()) {
        let v = mem.read_u32(addr + u64::from(i) * 4);
        w.set_sgpr(first + i, v)?;
    }
    Ok(())
}

/// Canonical operand view of the five vector encodings (mirrors the shape
/// the hardware decoder produces, reimplemented independently).
struct VecView {
    vdst: u8,
    src: [Operand; 3],
    sdst: Option<Operand>,
    mask_src: Option<Operand>,
    abs: u8,
    neg: u8,
    clamp: bool,
    omod: u8,
}

fn vec_view(inst: &Instruction) -> VecView {
    let zero = Operand::IntConst(0);
    match inst.fields {
        Fields::Vop2 { vdst, src0, vsrc1 } => VecView {
            vdst,
            src: [src0, Operand::Vgpr(vsrc1), zero],
            sdst: None,
            mask_src: None,
            abs: 0,
            neg: 0,
            clamp: false,
            omod: 0,
        },
        Fields::Vop1 { vdst, src0 } => VecView {
            vdst,
            src: [src0, zero, zero],
            sdst: None,
            mask_src: None,
            abs: 0,
            neg: 0,
            clamp: false,
            omod: 0,
        },
        Fields::Vopc { src0, vsrc1 } => VecView {
            vdst: 0,
            src: [src0, Operand::Vgpr(vsrc1), zero],
            sdst: None,
            mask_src: None,
            abs: 0,
            neg: 0,
            clamp: false,
            omod: 0,
        },
        Fields::Vop3a {
            vdst,
            src0,
            src1,
            src2,
            abs,
            neg,
            clamp,
            omod,
        } => VecView {
            vdst,
            src: [src0, src1, src2.unwrap_or(zero)],
            sdst: None,
            mask_src: src2,
            abs,
            neg,
            clamp,
            omod,
        },
        Fields::Vop3b {
            vdst,
            sdst,
            src0,
            src1,
            src2,
        } => VecView {
            vdst,
            src: [src0, src1, src2.unwrap_or(zero)],
            sdst: Some(sdst),
            mask_src: src2,
            abs: 0,
            neg: 0,
            clamp: false,
            omod: 0,
        },
        _ => unreachable!("non-vector fields"),
    }
}

fn in_mods(bits: u32, idx: u8, abs: u8, neg: u8) -> u32 {
    let mut v = bits;
    if abs & (1 << idx) != 0 {
        v &= 0x7fff_ffff;
    }
    if neg & (1 << idx) != 0 {
        v ^= 0x8000_0000;
    }
    v
}

fn out_mods(bits: u32, clamp: bool, omod: u8) -> u32 {
    let mut f = fb(bits);
    match omod {
        1 => f *= 2.0,
        2 => f *= 4.0,
        3 => f /= 2.0,
        _ => {}
    }
    if clamp {
        f = f.clamp(0.0, 1.0);
    }
    tb(f)
}

fn step_vector(inst: &Instruction, w: &mut RefWave, bug: InjectedBug) -> Result<(), RefError> {
    use Opcode::*;
    let op = inst.opcode;
    let v = vec_view(inst);
    let is_float = op.unit() == FuncUnit::Simf;

    if op == VReadfirstlaneB32 {
        let lane = (0..WAVEFRONT_SIZE).find(|&l| w.lane_active(l)).unwrap_or(0);
        let val = w.read_lane(v.src[0], lane)?;
        w.set_sgpr(v.vdst.into(), val)?;
        return Ok(());
    }

    if op.is_vector_compare() {
        let mut mask_set = 0u64;
        let mut mask_clr = 0u64;
        for lane in 0..WAVEFRONT_SIZE {
            if !w.lane_active(lane) {
                continue;
            }
            let a = w.read_lane(v.src[0], lane)?;
            let b = w.read_lane(v.src[1], lane)?;
            if compare(op, a, b) {
                mask_set |= 1 << lane;
            } else {
                mask_clr |= 1 << lane;
            }
        }
        let dst = v.sdst.unwrap_or(Operand::VccLo);
        let old = w.read_scalar(dst, 2)?;
        w.write_scalar(dst, 2, (old | mask_set) & !mask_clr)?;
        return Ok(());
    }

    if op.writes_vcc_implicitly() {
        let cin_mask = if op.reads_vcc_implicitly() {
            match v.mask_src {
                Some(m) => w.read_scalar(m, 2)?,
                None => w.vcc,
            }
        } else {
            0
        };
        let mut cout_set = 0u64;
        let mut cout_clr = 0u64;
        for lane in 0..WAVEFRONT_SIZE {
            if !w.lane_active(lane) {
                continue;
            }
            let a = u64::from(w.read_lane(v.src[0], lane)?);
            let b = u64::from(w.read_lane(v.src[1], lane)?);
            let c = cin_mask >> lane & 1;
            let full: i128 = match op {
                VAddI32 => (a + b) as i128,
                VSubI32 => a as i128 - b as i128,
                VSubrevI32 => b as i128 - a as i128,
                VAddcU32 => (a + b + c) as i128,
                VSubbU32 => a as i128 - b as i128 - c as i128,
                other => unreachable!("non-carry opcode {other:?}"),
            };
            let mut carry = !(0..=0xffff_ffff).contains(&full);
            if bug == InjectedBug::AddDropsCarry && op == VAddI32 {
                carry = false;
            }
            if carry {
                cout_set |= 1 << lane;
            } else {
                cout_clr |= 1 << lane;
            }
            w.set_vgpr(v.vdst.into(), lane, full as u32)?;
        }
        let dst = v.sdst.unwrap_or(Operand::VccLo);
        let old = w.read_scalar(dst, 2)?;
        w.write_scalar(dst, 2, (old | cout_set) & !cout_clr)?;
        return Ok(());
    }

    if op == VCndmaskB32 {
        let mask = match v.mask_src {
            Some(m) => w.read_scalar(m, 2)?,
            None => w.vcc,
        };
        for lane in 0..WAVEFRONT_SIZE {
            if !w.lane_active(lane) {
                continue;
            }
            let a = w.read_lane(v.src[0], lane)?;
            let b = w.read_lane(v.src[1], lane)?;
            let r = if mask >> lane & 1 != 0 { b } else { a };
            w.set_vgpr(v.vdst.into(), lane, r)?;
        }
        return Ok(());
    }

    let nsrc = op.src_count() as usize;
    for lane in 0..WAVEFRONT_SIZE {
        if !w.lane_active(lane) {
            continue;
        }
        let mut s = [0u32; 3];
        for (i, slot) in s.iter_mut().enumerate().take(nsrc.max(1)) {
            let raw = w.read_lane(v.src[i], lane)?;
            *slot = if is_float {
                in_mods(raw, i as u8, v.abs, v.neg)
            } else {
                raw
            };
        }
        let acc = if op == VMacF32 {
            w.vgpr(v.vdst.into(), lane)?
        } else {
            0
        };
        let mut r = lanewise(op, s, acc, bug);
        if is_float {
            r = out_mods(r, v.clamp, v.omod);
        }
        w.set_vgpr(v.vdst.into(), lane, r)?;
    }
    Ok(())
}

fn compare(op: Opcode, a: u32, b: u32) -> bool {
    use Opcode::*;
    let (fa, fbv) = (fb(a), fb(b));
    let (ia, ib) = (a as i32, b as i32);
    match op {
        VCmpLtF32 => fa < fbv,
        VCmpEqF32 => fa == fbv,
        VCmpLeF32 => fa <= fbv,
        VCmpGtF32 => fa > fbv,
        VCmpLgF32 => fa != fbv && !fa.is_nan() && !fbv.is_nan(),
        VCmpGeF32 => fa >= fbv,
        VCmpNeqF32 => !(fa == fbv),
        VCmpLtI32 => ia < ib,
        VCmpEqI32 => ia == ib,
        VCmpLeI32 => ia <= ib,
        VCmpGtI32 => ia > ib,
        VCmpNeI32 => ia != ib,
        VCmpGeI32 => ia >= ib,
        VCmpLtU32 => a < b,
        VCmpEqU32 => a == b,
        VCmpLeU32 => a <= b,
        VCmpGtU32 => a > b,
        VCmpNeU32 => a != b,
        VCmpGeU32 => a >= b,
        other => unreachable!("non-compare opcode {other:?}"),
    }
}

#[allow(clippy::too_many_lines)]
fn lanewise(op: Opcode, s: [u32; 3], acc: u32, bug: InjectedBug) -> u32 {
    use Opcode::*;
    let [a, b, c] = s;
    let (ai, bi) = (a as i32, b as i32);
    let (fa, fbv, fc) = (fb(a), fb(b), fb(c));
    match op {
        VAddF32 => tb(fa + fbv),
        VSubF32 => tb(fa - fbv),
        VSubrevF32 => tb(fbv - fa),
        VMulF32 => tb(fa * fbv),
        VMulI32I24 => (sext24(a).wrapping_mul(sext24(b))) as u32,
        VMulU32U24 => ((u64::from(a & 0xff_ffff)) * u64::from(b & 0xff_ffff)) as u32,
        VMinF32 => tb(fa.min(fbv)),
        VMaxF32 => tb(fa.max(fbv)),
        VMinI32 => ai.min(bi) as u32,
        VMaxI32 => ai.max(bi) as u32,
        VMinU32 => {
            if bug == InjectedBug::MinIsMax {
                a.max(b)
            } else {
                a.min(b)
            }
        }
        VMaxU32 => a.max(b),
        VLshrB32 => a >> (b & 31),
        VLshrrevB32 => b >> (a & 31),
        VAshrI32 => (ai >> (b & 31)) as u32,
        VAshrrevI32 => (bi >> (a & 31)) as u32,
        VLshlB32 => a << (b & 31),
        VLshlrevB32 => b << (a & 31),
        VAndB32 => a & b,
        VOrB32 => a | b,
        VXorB32 => {
            let r = a ^ b;
            if bug == InjectedBug::XorFlipsBit0 {
                r ^ 1
            } else {
                r
            }
        }
        VMacF32 => tb(fa.mul_add(fbv, fb(acc))),
        VNop => 0,
        VMovB32 => a,
        VCvtF32I32 => tb(ai as f32),
        VCvtF32U32 => tb(a as f32),
        VCvtU32F32 => {
            if fa.is_nan() || fa <= -1.0 {
                0
            } else if fa >= u32::MAX as f32 {
                u32::MAX
            } else {
                fa as u32
            }
        }
        VCvtI32F32 => {
            if fa.is_nan() {
                0
            } else if fa >= i32::MAX as f32 {
                i32::MAX as u32
            } else if fa <= i32::MIN as f32 {
                i32::MIN as u32
            } else {
                (fa as i32) as u32
            }
        }
        VFractF32 => tb(fa - fa.floor()),
        VTruncF32 => tb(fa.trunc()),
        VCeilF32 => tb(fa.ceil()),
        VRndneF32 => {
            let r = fa.round();
            let v = if (fa - fa.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                r - fa.signum()
            } else {
                r
            };
            tb(v)
        }
        VFloorF32 => tb(fa.floor()),
        VExpF32 => tb(fa.exp2()),
        VLogF32 => tb(fa.log2()),
        VRcpF32 => tb(1.0 / fa),
        VRsqF32 => tb(1.0 / fa.sqrt()),
        VSqrtF32 => tb(fa.sqrt()),
        VSinF32 => tb((fa * std::f32::consts::TAU).sin()),
        VCosF32 => tb((fa * std::f32::consts::TAU).cos()),
        VNotB32 => !a,
        VBfrevB32 => a.reverse_bits(),
        VFfbhU32 => {
            if a == 0 {
                u32::MAX
            } else {
                a.leading_zeros()
            }
        }
        VFfblB32 => {
            if a == 0 {
                u32::MAX
            } else {
                a.trailing_zeros()
            }
        }
        VMadF32 => tb(fa * fbv + fc),
        VMadI32I24 => {
            (sext24(a)
                .wrapping_mul(sext24(b))
                .wrapping_add(i64::from(c as i32))) as u32
        }
        VMadU32U24 => {
            ((u64::from(a & 0xff_ffff) * u64::from(b & 0xff_ffff)).wrapping_add(u64::from(c)))
                as u32
        }
        VBfeU32 => {
            let offset = b & 31;
            let width = c & 31;
            if width == 0 {
                0
            } else {
                (a >> offset) & ((1u64 << width) - 1) as u32
            }
        }
        VBfeI32 => {
            let offset = b & 31;
            let width = c & 31;
            if width == 0 {
                0
            } else {
                let raw = (a >> offset) & ((1u64 << width) - 1) as u32;
                let shift = 32 - width;
                (((raw << shift) as i32) >> shift) as u32
            }
        }
        VBfiB32 => (a & b) | (!a & c),
        VFmaF32 => tb(fa.mul_add(fbv, fc)),
        VAlignbitB32 => (((u64::from(b) << 32) | u64::from(a)) >> (c & 31)) as u32,
        VMin3F32 => tb(fa.min(fbv).min(fc)),
        VMin3I32 => ai.min(bi).min(c as i32) as u32,
        VMin3U32 => a.min(b).min(c),
        VMax3F32 => tb(fa.max(fbv).max(fc)),
        VMax3I32 => ai.max(bi).max(c as i32) as u32,
        VMax3U32 => a.max(b).max(c),
        VMed3F32 => {
            // NaN-safe median: f32::clamp panics when a bound is NaN, and
            // lo/hi are NaN whenever src0 or src1 is. min/max propagate the
            // non-NaN operand instead, matching the SI ALU's behaviour.
            let (lo, hi) = (fa.min(fbv), fa.max(fbv));
            tb(lo.max(hi.min(fc)))
        }
        VMed3I32 => {
            let ci = c as i32;
            let (lo, hi) = (ai.min(bi), ai.max(bi));
            ci.clamp(lo, hi) as u32
        }
        VMed3U32 => {
            let (lo, hi) = (a.min(b), a.max(b));
            c.clamp(lo, hi)
        }
        VMulLoU32 => a.wrapping_mul(b),
        VMulHiU32 => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        VMulLoI32 => ai.wrapping_mul(bi) as u32,
        VMulHiI32 => ((i64::from(ai) * i64::from(bi)) >> 32) as u32,
        other => unreachable!("unhandled lanewise opcode {other:?}"),
    }
}

fn step_ds(inst: &Instruction, w: &mut RefWave, lds: &mut [u32]) -> Result<(), RefError> {
    use Opcode::*;
    let op = inst.opcode;
    let Fields::Ds {
        vdst,
        addr,
        data0,
        data1,
        offset0,
        offset1,
        ..
    } = inst.fields
    else {
        unreachable!("non-DS fields");
    };
    let size_bytes = (lds.len() * 4) as u32;
    let index = |byte_addr: u32| -> Result<usize, RefError> {
        if byte_addr + 4 > size_bytes {
            Err(RefError::LdsOutOfRange {
                addr: byte_addr,
                size: size_bytes,
            })
        } else {
            Ok((byte_addr / 4) as usize)
        }
    };
    for lane in 0..WAVEFRONT_SIZE {
        if !w.lane_active(lane) {
            continue;
        }
        let base = w.vgpr(addr.into(), lane)?;
        match op {
            DsReadB32 => {
                let v = lds[index(base.wrapping_add(offset0.into()))?];
                w.set_vgpr(vdst.into(), lane, v)?;
            }
            DsRead2B32 => {
                let v0 = lds[index(base.wrapping_add(u32::from(offset0) * 4))?];
                let v1 = lds[index(base.wrapping_add(u32::from(offset1) * 4))?];
                w.set_vgpr(vdst.into(), lane, v0)?;
                w.set_vgpr(u32::from(vdst) + 1, lane, v1)?;
            }
            DsWriteB32 => {
                let v = w.vgpr(data0.into(), lane)?;
                lds[index(base.wrapping_add(offset0.into()))?] = v;
            }
            DsWrite2B32 => {
                let v0 = w.vgpr(data0.into(), lane)?;
                let v1 = w.vgpr(data1.into(), lane)?;
                lds[index(base.wrapping_add(u32::from(offset0) * 4))?] = v0;
                lds[index(base.wrapping_add(u32::from(offset1) * 4))?] = v1;
            }
            DsAddU32 | DsSubU32 | DsMinI32 | DsMaxI32 | DsMinU32 | DsMaxU32 | DsAndB32
            | DsOrB32 | DsXorB32 => {
                let idx = index(base.wrapping_add(offset0.into()))?;
                let d = w.vgpr(data0.into(), lane)?;
                let old = lds[idx];
                lds[idx] = match op {
                    DsAddU32 => old.wrapping_add(d),
                    DsSubU32 => old.wrapping_sub(d),
                    DsMinI32 => (old as i32).min(d as i32) as u32,
                    DsMaxI32 => (old as i32).max(d as i32) as u32,
                    DsMinU32 => old.min(d),
                    DsMaxU32 => old.max(d),
                    DsAndB32 => old & d,
                    DsOrB32 => old | d,
                    DsXorB32 => old ^ d,
                    _ => unreachable!(),
                };
            }
            other => unreachable!("non-DS opcode {other:?}"),
        }
    }
    Ok(())
}

fn step_buffer(inst: &Instruction, w: &mut RefWave, mem: &mut RefMemory) -> Result<(), RefError> {
    use Opcode::*;
    let op = inst.opcode;
    let (vdata, vaddr, srsrc, soffset, imm_offset, offen) = match inst.fields {
        Fields::Mubuf {
            vdata,
            vaddr,
            srsrc,
            soffset,
            offset,
            offen,
            ..
        }
        | Fields::Mtbuf {
            vdata,
            vaddr,
            srsrc,
            soffset,
            offset,
            offen,
            ..
        } => (vdata, vaddr, srsrc, soffset, offset, offen),
        _ => unreachable!("non-buffer fields"),
    };
    let base = w.read_scalar(Operand::Sgpr(srsrc), 2)? & 0xffff_ffff_ffff;
    let num_records = w.sgpr(u32::from(srsrc) + 2)?;
    let soff = w.read_scalar(soffset, 1)? as u32;
    let width = u32::from(op.dst_width());
    for lane in 0..WAVEFRONT_SIZE {
        if !w.lane_active(lane) {
            continue;
        }
        let lane_off = if offen {
            w.vgpr(vaddr.into(), lane)?
        } else {
            0
        };
        let offset = u64::from(soff) + u64::from(imm_offset) + u64::from(lane_off);
        let bytes = match op {
            BufferLoadUbyte | BufferLoadSbyte | BufferStoreByte => 1,
            _ => 4 * width,
        };
        let in_bounds = num_records == 0 || offset + u64::from(bytes) <= u64::from(num_records);
        let addr = base.wrapping_add(offset);
        match op {
            BufferLoadUbyte => {
                let v = if in_bounds {
                    u32::from(mem.read_u8(addr))
                } else {
                    0
                };
                w.set_vgpr(vdata.into(), lane, v)?;
            }
            BufferLoadSbyte => {
                let v = if in_bounds {
                    i32::from(mem.read_u8(addr) as i8) as u32
                } else {
                    0
                };
                w.set_vgpr(vdata.into(), lane, v)?;
            }
            BufferLoadDword
            | BufferLoadDwordx2
            | BufferLoadDwordx4
            | TbufferLoadFormatX
            | TbufferLoadFormatXy
            | TbufferLoadFormatXyz
            | TbufferLoadFormatXyzw => {
                for i in 0..width {
                    let v = if in_bounds {
                        mem.read_u32(addr + u64::from(i) * 4)
                    } else {
                        0
                    };
                    w.set_vgpr(u32::from(vdata) + i, lane, v)?;
                }
            }
            BufferStoreByte => {
                if in_bounds {
                    let v = w.vgpr(vdata.into(), lane)?;
                    mem.write_u8(addr, v as u8);
                }
            }
            BufferStoreDword
            | BufferStoreDwordx2
            | BufferStoreDwordx4
            | TbufferStoreFormatX
            | TbufferStoreFormatXy
            | TbufferStoreFormatXyz
            | TbufferStoreFormatXyzw => {
                if in_bounds {
                    for i in 0..width {
                        let v = w.vgpr(u32::from(vdata) + i, lane)?;
                        mem.write_u32(addr + u64::from(i) * 4, v);
                    }
                }
            }
            other => unreachable!("non-buffer opcode {other:?}"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_asm::KernelBuilder;

    /// out[tid] = in[tid] * 2 + 1 over one 64-lane workgroup.
    fn mul2_add1() -> Kernel {
        let mut b = KernelBuilder::new("mul2_add1");
        b.sgprs(32).vgprs(8).workgroup_size(64);
        b.smrd(
            Opcode::SBufferLoadDwordx2,
            Operand::Sgpr(20),
            scratch_system::abi::CONST_BUF1,
            SmrdOffset::Imm(0),
        )
        .unwrap();
        b.waitcnt(None, Some(0)).unwrap();
        b.vop2(Opcode::VLshlrevB32, 1, Operand::IntConst(2), 0)
            .unwrap();
        b.mubuf(Opcode::BufferLoadDword, 2, 1, 4, Operand::Sgpr(21), 0)
            .unwrap();
        b.waitcnt(Some(0), None).unwrap();
        b.vop2(Opcode::VLshlrevB32, 2, Operand::IntConst(1), 2)
            .unwrap();
        b.vop2(Opcode::VAddI32, 2, Operand::IntConst(1), 2).unwrap();
        b.mubuf(Opcode::BufferStoreDword, 2, 1, 4, Operand::Sgpr(20), 0)
            .unwrap();
        b.endpgm().unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn reference_runs_a_simple_kernel() {
        let kernel = mul2_add1();
        let mut sys = RefSystem::new(&kernel).unwrap();
        let out = sys.alloc(64 * 4);
        let input: Vec<u32> = (0..64).collect();
        let inp = sys.alloc_words(&input);
        sys.set_args(&[out as u32, inp as u32]);
        sys.dispatch([1, 1, 1]).unwrap();
        let got = sys.read_words(out, 64);
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, i as u32 * 2 + 1);
        }
    }

    #[test]
    fn dispatch_requires_args() {
        let kernel = mul2_add1();
        let mut sys = RefSystem::new(&kernel).unwrap();
        assert_eq!(sys.dispatch([1, 1, 1]), Err(RefError::ArgsNotSet));
    }

    #[test]
    fn memory_is_little_endian_and_byte_addressable() {
        let mut m = RefMemory::default();
        m.write_u32(0x100, 0xaabb_ccdd);
        assert_eq!(m.read_u8(0x100), 0xdd);
        assert_eq!(m.read_u8(0x103), 0xaa);
        m.write_u8(0x101, 0x11);
        assert_eq!(m.read_u32(0x100), 0xaabb_11dd);
        // Unaligned read composes bytes.
        assert_eq!(m.read_u32(0x101), 0x00aa_bb11);
        // Out-of-range: reads 0, writes dropped.
        assert_eq!(m.read_u32(MEM_BYTES), 0);
        m.write_u32(MEM_BYTES, 7);
        assert_eq!(m.read_u32(MEM_BYTES), 0);
    }
}
