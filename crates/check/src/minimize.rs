//! Divergence minimization.
//!
//! Given a kernel that makes an oracle disagree, shrink its program tree
//! until no single reduction keeps the disagreement alive. Two reductions
//! apply at every tree position: *delete* the item (with its whole
//! subtree), or *unwrap* a control-flow block, splicing its body in place
//! of the block. Both always yield a structurally valid kernel — the
//! point of generating programs as trees instead of flat word lists —
//! so minimization never wanders outside the assembler's domain.
//!
//! The loop is greedy-to-fixpoint: scan positions outermost-first, adopt
//! the first reduction that still diverges, restart. Worst case is
//! quadratic in tree size, and generated bodies are ≤ ~35 nodes, so each
//! minimization costs at most a few hundred oracle runs.

use crate::gen::{GenKernel, Item};
use crate::interp::InjectedBug;
use crate::oracle::{check_with_bug, OracleKind};

/// Shrink `gk` while `oracle` keeps reporting a divergence. Returns the
/// minimized kernel; if `gk` does not diverge in the first place it is
/// returned unchanged.
#[must_use]
pub fn minimize(gk: &GenKernel, oracle: OracleKind, bug: InjectedBug) -> GenKernel {
    let steps = scratch_metrics::global().counter(
        "scratch_check_minimizer_steps_total",
        "Candidate oracle runs performed while minimizing divergences",
    );
    let mut current = gk.clone();
    if !check_with_bug(oracle, &current, bug).is_divergence() {
        return current;
    }
    loop {
        let mut improved = false;
        for path in paths(&current.body) {
            for reduction in [Reduction::Delete, Reduction::Unwrap] {
                let mut candidate = current.clone();
                if !apply(&mut candidate.body, &path, reduction) {
                    continue;
                }
                steps.inc();
                if check_with_bug(oracle, &candidate, bug).is_divergence() {
                    current = candidate;
                    improved = true;
                    break;
                }
            }
            if improved {
                break; // paths into the old tree are stale; re-enumerate
            }
        }
        if !improved {
            return current;
        }
    }
}

#[derive(Clone, Copy)]
enum Reduction {
    /// Remove the item and its subtree.
    Delete,
    /// Replace a block item with its body (no-op on leaves).
    Unwrap,
}

/// All positions in the tree, as child-index paths, outermost (shortest)
/// first so whole regions are tried before their contents.
fn paths(items: &[Item]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    walk(items, &mut prefix, &mut out);
    out.sort_by_key(Vec::len);
    out
}

fn walk(items: &[Item], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    for (i, item) in items.iter().enumerate() {
        prefix.push(i);
        out.push(prefix.clone());
        if let Item::Skip { body, .. } | Item::Loop { body, .. } | Item::Exec { body, .. } = item {
            walk(body, prefix, out);
        }
        prefix.pop();
    }
}

/// Apply `reduction` at `path`; `false` when it does not apply (unwrap on
/// a leaf) so the caller can skip the oracle run.
fn apply(items: &mut Vec<Item>, path: &[usize], reduction: Reduction) -> bool {
    let (&idx, rest) = path.split_first().expect("paths are non-empty");
    if rest.is_empty() {
        return match reduction {
            Reduction::Delete => {
                items.remove(idx);
                true
            }
            Reduction::Unwrap => match items[idx].clone() {
                Item::Op(_) => false,
                Item::Skip { body, .. } | Item::Loop { body, .. } | Item::Exec { body, .. } => {
                    items.splice(idx..=idx, body);
                    true
                }
            },
        };
    }
    match &mut items[idx] {
        Item::Skip { body, .. } | Item::Loop { body, .. } | Item::Exec { body, .. } => {
            apply(body, rest, reduction)
        }
        Item::Op(_) => unreachable!("paths only descend into blocks"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_isa::{Instruction, Opcode, Operand};

    fn op() -> Item {
        Item::Op(
            Instruction::new(
                Opcode::VMovB32,
                scratch_isa::Fields::Vop1 {
                    vdst: 1,
                    src0: Operand::Vgpr(2),
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn paths_enumerate_outermost_first() {
        let items = vec![
            op(),
            Item::Loop {
                trips: 2,
                body: vec![op(), op()],
            },
        ];
        let ps = paths(&items);
        assert_eq!(ps, vec![vec![0], vec![1], vec![1, 0], vec![1, 1]],);
    }

    #[test]
    fn delete_and_unwrap_reshape_the_tree() {
        let mut items = vec![Item::Loop {
            trips: 2,
            body: vec![op(), op()],
        }];
        assert!(apply(&mut items, &[0, 1], Reduction::Delete));
        assert_eq!(items[0].op_count(), 1);
        assert!(apply(&mut items, &[0], Reduction::Unwrap));
        assert!(matches!(items[0], Item::Op(_)));
        assert!(!apply(&mut items, &[0], Reduction::Unwrap));
    }
}
