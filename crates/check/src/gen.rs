//! Random Southern Islands kernel generator.
//!
//! Emits *structurally valid* kernels: every generated program assembles,
//! terminates (loops have bounded trip counts), keeps its memory traffic
//! inside two disjoint regions (a per-workgroup output page and a shared
//! read-only input image) and restores `exec` around divergent regions.
//! Those invariants are what make differential running meaningful — any
//! behavioural difference between two executions of a generated kernel is
//! a simulator bug, never an artefact of racing or undefined inputs.
//!
//! The opcode mix is biased towards the paper's Fig. 4 instruction-mix
//! histograms (ADD/MUL/MOV/logic dominate, control flow and memory are
//! comparatively rare), so fuzzing exercises realistic ratios rather than
//! uniform noise.
//!
//! # Register conventions
//!
//! Generated kernels declare 40 SGPRs / 8 VGPRs and obey a fixed register
//! map so that random code can never corrupt its own addressing:
//!
//! | registers   | role                                              |
//! |-------------|---------------------------------------------------|
//! | `s[4:7]`    | UAV descriptor from the dispatcher (never written) |
//! | `s[12:15]`  | `CONST_BUF1` descriptor (args pointer)            |
//! | `s16..s18`  | workgroup id                                      |
//! | `s20`/`s21` | output-buffer / input-image base (prologue load)  |
//! | `s23`/`s25` | per-workgroup body / epilogue store bases         |
//! | `s[26:27]`  | 64-bit SMRD base over the input image             |
//! | `s28`/`s29` | loop trip counters (one per nesting level)        |
//! | `s[34:37]`  | `exec` save/restore pairs                         |
//! | `s0..s3`, `s8..s11` | scratch pool for random scalar code       |
//! | `v0`        | work-item id (read-only)                          |
//! | `v6`        | `tid * 4` lane byte offset (read-only)            |
//! | `v1..v5`, `v7` | scratch pool for random vector code            |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scratch_asm::{waitcnt_imm, AsmError, Kernel, KernelBuilder};
use scratch_isa::{Fields, Format, Instruction, Opcode, Operand, SmrdOffset};

/// Bytes of output memory each workgroup owns: a 4 KiB page for stores
/// issued by the random body plus a 4 KiB page for the epilogue dump of
/// the architectural state (VGPRs, scalar pool, VCC, SCC).
pub const OUT_PAGE_BYTES: u64 = 8192;

/// Words in the shared read-only input image all loads draw from.
pub const IN_IMAGE_WORDS: usize = 4096;

/// LDS bytes each generated kernel declares.
pub const LDS_BYTES: u32 = 1024;

const S_POOL: [u8; 8] = [0, 1, 2, 3, 8, 9, 10, 11];
const S_PAIRS: [u8; 4] = [0, 2, 8, 10];
const V_POOL: [u8; 6] = [1, 2, 3, 4, 5, 7];
const SRSRC: u8 = 4;
const S_OUT: u8 = 20;
const S_IN: u8 = 21;
const S_SHIFT: u8 = 22;
const S_BODY: u8 = 23;
const S_EPI: u8 = 25;
const S_SMRD: u8 = 26;
const S_LOOP0: u8 = 28;
const S_SAVE0: u8 = 34;
const V_ADDR: u8 = 6;
const V_SCRATCH: u8 = 7;

/// One node of a generated program. Keeping the program as a tree (rather
/// than a flat instruction list) is what lets the minimizer delete whole
/// control-flow regions or unwrap a block around its body while always
/// producing a structurally valid kernel.
#[derive(Debug, Clone)]
pub enum Item {
    /// A single straight-line instruction.
    Op(Instruction),
    /// Scalar compare + conditional branch over `body`.
    Skip {
        /// Branch over the body on `scc==1` (otherwise on `scc==0`).
        on_scc1: bool,
        /// The SOPC compare that sets SCC.
        cmp: Instruction,
        /// Conditionally skipped instructions.
        body: Vec<Item>,
    },
    /// Counted loop with a bounded trip count.
    Loop {
        /// Trip count (1..=4).
        trips: i16,
        /// Loop body.
        body: Vec<Item>,
    },
    /// `v_cmp` + `s_and_saveexec_b64` region with an exec restore.
    Exec {
        /// The VOPC compare that produces the lane mask in VCC.
        cmp: Instruction,
        /// Instructions running under the narrowed exec mask.
        body: Vec<Item>,
    },
}

impl Item {
    /// Number of [`Item::Op`] leaves in this subtree (structural
    /// scaffolding — compares, branches, counters — is not counted).
    #[must_use]
    pub fn op_count(&self) -> usize {
        match self {
            Item::Op(_) => 1,
            Item::Skip { body, .. } | Item::Loop { body, .. } | Item::Exec { body, .. } => {
                body.iter().map(Item::op_count).sum()
            }
        }
    }
}

/// A generated kernel: the program tree plus the random input image its
/// loads read from. `build()` lowers it to an assembled [`Kernel`].
#[derive(Debug, Clone)]
pub struct GenKernel {
    /// Seed this kernel was generated from (reproduces it exactly).
    pub seed: u64,
    /// Program body between the fixed prologue and epilogue.
    pub body: Vec<Item>,
    /// Read-only input image content ([`IN_IMAGE_WORDS`] words).
    pub image: Vec<u32>,
    /// Grid width (number of workgroups) the oracles launch.
    pub wgs: u32,
}

impl GenKernel {
    /// Generate a random kernel from `seed`.
    #[must_use]
    pub fn generate(seed: u64) -> GenKernel {
        let mut rng = StdRng::seed_from_u64(seed);
        let image = (0..IN_IMAGE_WORDS).map(|_| rng.gen::<u32>()).collect();
        let mut g = Gen { rng: &mut rng };
        let mut body = g.init_items();
        let n = g.rng.gen_range(6..=28usize);
        body.extend(g.items(n, 0, 0));
        GenKernel {
            seed,
            body,
            image,
            wgs: 2,
        }
    }

    /// Total [`Item::Op`] leaves in the body (the size the minimizer
    /// shrinks).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.body.iter().map(Item::op_count).sum()
    }

    /// Lower the program tree to an assembled kernel.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors; generated trees never trigger them.
    pub fn build(&self) -> Result<Kernel, AsmError> {
        let mut b = KernelBuilder::new(format!("fuzz_{:016x}", self.seed));
        b.sgprs(40).vgprs(8).lds_bytes(LDS_BYTES).workgroup_size(64);
        prologue(&mut b)?;
        emit_items(&mut b, &self.body, 0, 0)?;
        epilogue(&mut b)?;
        b.finish()
    }

    /// Bytes of output buffer the oracles must allocate for this kernel.
    #[must_use]
    pub fn out_bytes(&self) -> u64 {
        u64::from(self.wgs) * OUT_PAGE_BYTES
    }
}

/// Fixed kernel prologue: load the two buffer bases from the argument
/// buffer, derive the per-workgroup store bases and the lane byte offset.
fn prologue(b: &mut KernelBuilder) -> Result<(), AsmError> {
    // s20 = args[0] (output base), s21 = args[1] (input image base).
    b.smrd(
        Opcode::SBufferLoadDwordx2,
        Operand::Sgpr(S_OUT),
        scratch_system::abi::CONST_BUF1,
        SmrdOffset::Imm(0),
    )?;
    b.waitcnt(None, Some(0))?;
    // s23 = out + wg_id_x * OUT_PAGE_BYTES; s25 = s23 + 4096.
    b.sop2(
        Opcode::SLshlB32,
        Operand::Sgpr(S_SHIFT),
        Operand::Sgpr(scratch_system::abi::WG_ID_X),
        Operand::IntConst(13),
    )?;
    b.sop2(
        Opcode::SAddU32,
        Operand::Sgpr(S_BODY),
        Operand::Sgpr(S_OUT),
        Operand::Sgpr(S_SHIFT),
    )?;
    b.sop2(
        Opcode::SAddU32,
        Operand::Sgpr(S_EPI),
        Operand::Sgpr(S_BODY),
        Operand::Literal(4096),
    )?;
    // s[26:27] = 64-bit SMRD base over the input image.
    b.sop1(Opcode::SMovB32, Operand::Sgpr(S_SMRD), Operand::Sgpr(S_IN))?;
    b.sop1(
        Opcode::SMovB32,
        Operand::Sgpr(S_SMRD + 1),
        Operand::IntConst(0),
    )?;
    // v6 = tid * 4.
    b.vop2(Opcode::VLshlrevB32, V_ADDR, Operand::IntConst(2), 0)?;
    Ok(())
}

/// Fixed kernel epilogue: dump the architectural state (vector pool,
/// scalar pool, VCC, SCC) to the per-workgroup epilogue page so the
/// oracles can compare it, then end the program.
fn epilogue(b: &mut KernelBuilder) -> Result<(), AsmError> {
    b.sop1(Opcode::SMovB64, Operand::ExecLo, Operand::IntConst(-1))?;
    let store = |b: &mut KernelBuilder, slot: u16, vdata: u8| -> Result<(), AsmError> {
        b.mubuf(
            Opcode::BufferStoreDword,
            vdata,
            V_ADDR,
            SRSRC,
            Operand::Sgpr(S_EPI),
            slot * 256,
        )?;
        Ok(())
    };
    for (slot, v) in [1u8, 2, 3, 4, 5].into_iter().enumerate() {
        store(b, slot as u16, v)?;
    }
    for (i, s) in S_POOL.into_iter().enumerate() {
        b.vop1(Opcode::VMovB32, V_SCRATCH, Operand::Sgpr(s))?;
        store(b, 5 + i as u16, V_SCRATCH)?;
    }
    b.vop1(Opcode::VMovB32, V_SCRATCH, Operand::VccLo)?;
    store(b, 13, V_SCRATCH)?;
    b.sop2(
        Opcode::SCselectB32,
        Operand::Sgpr(0),
        Operand::IntConst(1),
        Operand::IntConst(0),
    )?;
    b.vop1(Opcode::VMovB32, V_SCRATCH, Operand::Sgpr(0))?;
    store(b, 14, V_SCRATCH)?;
    b.waitcnt(Some(0), Some(0))?;
    b.endpgm()?;
    Ok(())
}

/// Emit a subtree, allocating loop counters and exec-save registers by
/// nesting depth.
fn emit_items(
    b: &mut KernelBuilder,
    items: &[Item],
    loop_depth: u8,
    exec_depth: u8,
) -> Result<(), AsmError> {
    for item in items {
        match item {
            Item::Op(inst) => {
                b.push(*inst);
            }
            Item::Skip { on_scc1, cmp, body } => {
                b.push(*cmp);
                let skip = b.new_label();
                let branch = if *on_scc1 {
                    Opcode::SCbranchScc1
                } else {
                    Opcode::SCbranchScc0
                };
                b.branch(branch, skip);
                emit_items(b, body, loop_depth, exec_depth)?;
                b.bind(skip)?;
            }
            Item::Loop { trips, body } => {
                let ctr = Operand::Sgpr(S_LOOP0 + loop_depth);
                b.sopk(Opcode::SMovkI32, ctr, *trips)?;
                let top = b.new_label();
                b.bind(top)?;
                emit_items(b, body, loop_depth + 1, exec_depth)?;
                b.sopk(Opcode::SAddkI32, ctr, -1)?;
                b.sopk(Opcode::SCmpkGtI32, ctr, 0)?;
                b.branch(Opcode::SCbranchScc1, top);
            }
            Item::Exec { cmp, body } => {
                let save = Operand::Sgpr(S_SAVE0 + 2 * exec_depth);
                b.push(*cmp);
                b.sop1(Opcode::SAndSaveexecB64, save, Operand::VccLo)?;
                emit_items(b, body, loop_depth, exec_depth + 1)?;
                b.sop1(Opcode::SMovB64, Operand::ExecLo, save)?;
            }
        }
    }
    Ok(())
}

// --------------------------------------------------------------- generator

struct Gen<'r> {
    rng: &'r mut StdRng,
}

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

fn inst(op: Opcode, fields: Fields) -> Instruction {
    Instruction::new(op, fields).expect("generator emits valid instructions")
}

impl Gen<'_> {
    /// Initialisation items seeding the scratch pools (deletable: a
    /// deleted init just leaves the register at its architectural zero).
    fn init_items(&mut self) -> Vec<Item> {
        let mut out = Vec::new();
        for v in [1u8, 2, 3, 4, 5] {
            out.push(Item::Op(match self.rng.gen_range(0..3u32) {
                0 => inst(
                    Opcode::BufferLoadDword,
                    Fields::Mubuf {
                        vdata: v,
                        vaddr: V_ADDR,
                        srsrc: SRSRC,
                        soffset: Operand::Sgpr(S_IN),
                        offset: self.word_offset12(),
                        offen: true,
                        idxen: false,
                        glc: false,
                    },
                ),
                1 => inst(
                    Opcode::VMovB32,
                    Fields::Vop1 {
                        vdst: v,
                        src0: KernelBuilder::const_u32(self.rng.gen()),
                    },
                ),
                _ => inst(
                    Opcode::VLshlrevB32,
                    Fields::Vop2 {
                        vdst: v,
                        src0: Operand::IntConst(self.rng.gen_range(0..8)),
                        vsrc1: 0,
                    },
                ),
            }));
        }
        for s in S_POOL {
            out.push(Item::Op(if self.rng.gen::<bool>() {
                inst(
                    Opcode::SMovB32,
                    Fields::Sop1 {
                        sdst: Operand::Sgpr(s),
                        ssrc0: KernelBuilder::const_u32(self.rng.gen()),
                    },
                )
            } else {
                inst(
                    Opcode::SLoadDword,
                    Fields::Smrd {
                        sdst: Operand::Sgpr(s),
                        sbase: S_SMRD,
                        offset: SmrdOffset::Imm(self.rng.gen_range(0..=255)),
                    },
                )
            }));
        }
        out
    }

    fn items(&mut self, n: usize, loop_depth: u8, exec_depth: u8) -> Vec<Item> {
        (0..n).map(|_| self.item(loop_depth, exec_depth)).collect()
    }

    fn item(&mut self, loop_depth: u8, exec_depth: u8) -> Item {
        let depth = loop_depth + exec_depth;
        if depth < 3 && self.rng.gen_range(0..100u32) < 15 {
            let n = self.rng.gen_range(1..=5usize);
            match self.rng.gen_range(0..3u32) {
                0 => Item::Skip {
                    on_scc1: self.rng.gen(),
                    cmp: self.sopc_cmp(),
                    body: self.items(n, loop_depth, exec_depth),
                },
                1 if loop_depth < 2 => Item::Loop {
                    trips: self.rng.gen_range(1..=4),
                    body: self.items(n, loop_depth + 1, exec_depth),
                },
                _ if exec_depth < 2 => Item::Exec {
                    cmp: self.vopc_cmp(),
                    body: self.items(n, loop_depth, exec_depth + 1),
                },
                _ => Item::Skip {
                    on_scc1: self.rng.gen(),
                    cmp: self.sopc_cmp(),
                    body: self.items(n, loop_depth, exec_depth),
                },
            }
        } else {
            Item::Op(self.op())
        }
    }

    /// One random instruction, class-weighted towards the paper's Fig. 4
    /// instruction-mix histograms.
    fn op(&mut self) -> Instruction {
        match self.rng.gen_range(0..100u32) {
            0..=21 => self.vop2_int(),
            22..=33 => self.vop3(),
            34..=44 => self.vop_float(),
            45..=52 => self.vop1_misc(),
            53..=58 => self.vector_cmp(),
            59..=70 => self.scalar_alu(),
            71..=75 => self.sop1_misc(),
            76..=77 => self.sopc_cmp(),
            78..=87 => self.mem_load(),
            88..=95 => self.mem_store(),
            _ => self.sopp_misc(),
        }
    }

    // ---- operand helpers

    /// A readable 32-bit scalar source. `lit` permits a 32-bit literal
    /// (at most one per instruction).
    fn ssrc(&mut self, lit: bool) -> Operand {
        match self.rng.gen_range(0..100u32) {
            0..=54 => Operand::Sgpr(pick(self.rng, &S_POOL)),
            55..=69 => Operand::IntConst(self.rng.gen_range(-16..=64)),
            70..=79 if lit => Operand::Literal(self.rng.gen()),
            80..=89 => Operand::Sgpr(pick(self.rng, &[S_SHIFT, S_IN, S_LOOP0])),
            _ => Operand::VccLo,
        }
    }

    /// A readable 64-bit scalar source (SGPR pair or special).
    fn ssrc64(&mut self, lit: bool) -> Operand {
        match self.rng.gen_range(0..100u32) {
            0..=54 => Operand::Sgpr(pick(self.rng, &S_PAIRS)),
            55..=69 => Operand::IntConst(self.rng.gen_range(-16..=64)),
            70..=79 if lit => Operand::Literal(self.rng.gen()),
            80..=89 => Operand::ExecLo,
            _ => Operand::VccLo,
        }
    }

    /// A writable 64-bit scalar destination.
    fn sdst64(&mut self) -> Operand {
        if self.rng.gen_range(0..100u32) < 20 {
            Operand::VccLo
        } else {
            Operand::Sgpr(pick(self.rng, &S_PAIRS))
        }
    }

    /// A vector source for the 9-bit src0 slot.
    fn vsrc(&mut self, lit: bool) -> Operand {
        match self.rng.gen_range(0..100u32) {
            0..=49 => Operand::Vgpr(pick(self.rng, &V_POOL)),
            50..=59 => Operand::Vgpr(pick(self.rng, &[0, V_ADDR])),
            60..=74 => Operand::IntConst(self.rng.gen_range(-16..=64)),
            75..=84 if lit => Operand::Literal(self.rng.gen()),
            85..=92 => pick(
                self.rng,
                &[
                    Operand::FloatConst(0.5),
                    Operand::FloatConst(1.0),
                    Operand::FloatConst(2.0),
                    Operand::FloatConst(4.0),
                    Operand::FloatConst(-1.0),
                ],
            ),
            _ => Operand::Sgpr(pick(self.rng, &S_POOL)),
        }
    }

    fn vdst(&mut self) -> u8 {
        pick(self.rng, &V_POOL)
    }

    /// Random 12-bit word-aligned buffer offset.
    fn word_offset12(&mut self) -> u16 {
        self.rng.gen_range(0..0x1000u16) & !3
    }

    // ---- instruction classes

    fn scalar_alu(&mut self) -> Instruction {
        use Opcode::*;
        if self.rng.gen_range(0..100u32) < 20 {
            // SOPK immediates.
            let op = pick(
                self.rng,
                &[
                    SMovkI32, SAddkI32, SMulkI32, SCmpkEqI32, SCmpkLgI32, SCmpkGtI32, SCmpkGeI32,
                    SCmpkLtI32, SCmpkLeI32,
                ],
            );
            return inst(
                op,
                Fields::Sopk {
                    sdst: Operand::Sgpr(pick(self.rng, &S_POOL)),
                    simm16: self.rng.gen_range(i16::MIN..=i16::MAX),
                },
            );
        }
        if self.rng.gen_range(0..100u32) < 25 {
            // 64-bit scalar logic.
            let op = pick(
                self.rng,
                &[
                    SAndB64, SOrB64, SXorB64, SAndn2B64, SOrn2B64, SNandB64, SNorB64, SXnorB64,
                ],
            );
            let ssrc0 = self.ssrc64(true);
            let ssrc1 = self.ssrc64(!ssrc0.is_literal());
            return inst(
                op,
                Fields::Sop2 {
                    sdst: self.sdst64(),
                    ssrc0,
                    ssrc1,
                },
            );
        }
        let op = pick(
            self.rng,
            &[
                SAddU32,
                SSubU32,
                SAddI32,
                SSubI32,
                SAddcU32,
                SSubbU32,
                SMinI32,
                SMinU32,
                SMaxI32,
                SMaxU32,
                SCselectB32,
                SMulI32,
                SLshlB32,
                SLshrB32,
                SAshrI32,
                SBfmB32,
                SBfeU32,
                SBfeI32,
                SAndB32,
                SOrB32,
                SXorB32,
            ],
        );
        let ssrc0 = self.ssrc(true);
        let ssrc1 = self.ssrc(!ssrc0.is_literal());
        inst(
            op,
            Fields::Sop2 {
                sdst: Operand::Sgpr(pick(self.rng, &S_POOL)),
                ssrc0,
                ssrc1,
            },
        )
    }

    fn sop1_misc(&mut self) -> Instruction {
        use Opcode::*;
        if self.rng.gen_range(0..100u32) < 25 {
            let op = pick(self.rng, &[SMovB64, SNotB64, SWqmB64]);
            return inst(
                op,
                Fields::Sop1 {
                    sdst: self.sdst64(),
                    ssrc0: self.ssrc64(true),
                },
            );
        }
        let op = pick(
            self.rng,
            &[
                SMovB32,
                SCmovB32,
                SNotB32,
                SBrevB32,
                SBcnt0I32B32,
                SBcnt1I32B32,
                SFf0I32B32,
                SFf1I32B32,
                SFlbitI32B32,
                SSextI32I8,
                SSextI32I16,
                SBitset0B32,
                SBitset1B32,
            ],
        );
        inst(
            op,
            Fields::Sop1 {
                sdst: Operand::Sgpr(pick(self.rng, &S_POOL)),
                ssrc0: self.ssrc(true),
            },
        )
    }

    fn sopc_cmp(&mut self) -> Instruction {
        use Opcode::*;
        let op = pick(
            self.rng,
            &[
                SCmpEqI32, SCmpLgI32, SCmpGtI32, SCmpGeI32, SCmpLtI32, SCmpLeI32, SCmpEqU32,
                SCmpLgU32, SCmpGtU32, SCmpGeU32, SCmpLtU32, SCmpLeU32,
            ],
        );
        let ssrc0 = self.ssrc(true);
        let ssrc1 = self.ssrc(!ssrc0.is_literal());
        inst(op, Fields::Sopc { ssrc0, ssrc1 })
    }

    fn vop2_int(&mut self) -> Instruction {
        use Opcode::*;
        let op = pick(
            self.rng,
            &[
                VAddI32,
                VSubI32,
                VSubrevI32,
                VAddcU32,
                VSubbU32,
                VMinI32,
                VMaxI32,
                VMinU32,
                VMaxU32,
                VLshrB32,
                VLshrrevB32,
                VAshrI32,
                VAshrrevI32,
                VLshlB32,
                VLshlrevB32,
                VAndB32,
                VOrB32,
                VXorB32,
                VMulI32I24,
                VMulU32U24,
                VCndmaskB32,
            ],
        );
        inst(
            op,
            Fields::Vop2 {
                vdst: self.vdst(),
                src0: self.vsrc(true),
                vsrc1: pick(self.rng, &V_POOL),
            },
        )
    }

    fn vop_float(&mut self) -> Instruction {
        use Opcode::*;
        if self.rng.gen::<bool>() {
            let op = pick(
                self.rng,
                &[
                    VAddF32, VSubF32, VSubrevF32, VMulF32, VMinF32, VMaxF32, VMacF32,
                ],
            );
            return inst(
                op,
                Fields::Vop2 {
                    vdst: self.vdst(),
                    src0: self.vsrc(true),
                    vsrc1: pick(self.rng, &V_POOL),
                },
            );
        }
        let op = pick(
            self.rng,
            &[
                VCvtF32I32, VCvtF32U32, VCvtU32F32, VCvtI32F32, VFractF32, VTruncF32, VCeilF32,
                VRndneF32, VFloorF32, VExpF32, VLogF32, VRcpF32, VRsqF32, VSqrtF32, VSinF32,
                VCosF32,
            ],
        );
        inst(
            op,
            Fields::Vop1 {
                vdst: self.vdst(),
                src0: self.vsrc(true),
            },
        )
    }

    fn vop1_misc(&mut self) -> Instruction {
        use Opcode::*;
        if self.rng.gen_range(0..100u32) < 15 {
            return inst(
                VReadfirstlaneB32,
                Fields::Vop1 {
                    vdst: pick(self.rng, &S_POOL),
                    src0: Operand::Vgpr(pick(self.rng, &V_POOL)),
                },
            );
        }
        let op = pick(
            self.rng,
            &[VMovB32, VNotB32, VBfrevB32, VFfbhU32, VFfblB32, VNop],
        );
        inst(
            op,
            Fields::Vop1 {
                vdst: self.vdst(),
                src0: self.vsrc(true),
            },
        )
    }

    fn vop3(&mut self) -> Instruction {
        use Opcode::*;
        let op = pick(
            self.rng,
            &[
                VMadF32,
                VFmaF32,
                VMadI32I24,
                VMadU32U24,
                VBfeU32,
                VBfeI32,
                VBfiB32,
                VAlignbitB32,
                VMin3F32,
                VMin3I32,
                VMin3U32,
                VMax3F32,
                VMax3I32,
                VMax3U32,
                VMed3F32,
                VMed3I32,
                VMed3U32,
                VMulLoU32,
                VMulHiU32,
                VMulLoI32,
                VMulHiI32,
            ],
        );
        // VOP3 encodings carry no literal slot.
        let src2 = if op.src_count() == 3 {
            Some(self.vsrc(false))
        } else {
            None
        };
        let float = op.unit() == scratch_isa::FuncUnit::Simf;
        let with_mods = float && self.rng.gen_range(0..100u32) < 25;
        inst(
            op,
            Fields::Vop3a {
                vdst: self.vdst(),
                src0: self.vsrc(false),
                src1: self.vsrc(false),
                src2,
                abs: if with_mods {
                    self.rng.gen_range(0..8)
                } else {
                    0
                },
                neg: if with_mods {
                    self.rng.gen_range(0..8)
                } else {
                    0
                },
                clamp: with_mods && self.rng.gen(),
                omod: if with_mods {
                    self.rng.gen_range(0..4)
                } else {
                    0
                },
            },
        )
    }

    fn vopc_cmp(&mut self) -> Instruction {
        use Opcode::*;
        let op = pick(
            self.rng,
            &[
                VCmpLtF32, VCmpEqF32, VCmpLeF32, VCmpGtF32, VCmpLgF32, VCmpGeF32, VCmpNeqF32,
                VCmpLtI32, VCmpEqI32, VCmpLeI32, VCmpGtI32, VCmpNeI32, VCmpGeI32, VCmpLtU32,
                VCmpEqU32, VCmpLeU32, VCmpGtU32, VCmpNeU32, VCmpGeU32,
            ],
        );
        inst(
            op,
            Fields::Vopc {
                src0: self.vsrc(true),
                vsrc1: pick(self.rng, &V_POOL),
            },
        )
    }

    fn vector_cmp(&mut self) -> Instruction {
        let cmp = self.vopc_cmp();
        if self.rng.gen_range(0..100u32) < 30 {
            // Promote to VOP3b with an explicit SGPR-pair mask destination.
            // VOP3 encodings carry no literal slot, so re-roll a literal src0.
            if let Fields::Vopc { src0, vsrc1 } = cmp.fields {
                let src0 = if src0.is_literal() {
                    self.vsrc(false)
                } else {
                    src0
                };
                return inst(
                    cmp.opcode,
                    Fields::Vop3b {
                        vdst: 0,
                        sdst: self.sdst64(),
                        src0,
                        src1: Operand::Vgpr(vsrc1),
                        src2: None,
                    },
                );
            }
        }
        cmp
    }

    fn mem_load(&mut self) -> Instruction {
        use Opcode::*;
        match self.rng.gen_range(0..100u32) {
            // Buffer loads from the read-only input image.
            0..=49 => {
                let (op, vdata) = match self.rng.gen_range(0..100u32) {
                    0..=39 => (BufferLoadDword, self.vdst()),
                    40..=49 => (BufferLoadDwordx2, self.rng.gen_range(1..=4)),
                    50..=56 => (BufferLoadDwordx4, self.rng.gen_range(1..=2)),
                    57..=66 => (BufferLoadUbyte, self.vdst()),
                    67..=76 => (BufferLoadSbyte, self.vdst()),
                    77..=86 => (TbufferLoadFormatX, self.vdst()),
                    87..=92 => (TbufferLoadFormatXy, self.rng.gen_range(1..=4)),
                    93..=96 => (TbufferLoadFormatXyz, self.rng.gen_range(1..=3)),
                    _ => (TbufferLoadFormatXyzw, self.rng.gen_range(1..=2)),
                };
                let offset = if matches!(op, BufferLoadUbyte | BufferLoadSbyte) {
                    self.rng.gen_range(0..0x1000u16)
                } else {
                    self.word_offset12()
                };
                let common = (
                    vdata,
                    V_ADDR,
                    SRSRC,
                    Operand::Sgpr(S_IN),
                    offset,
                    true,
                    false,
                );
                if op.format() == Format::Mtbuf {
                    inst(
                        op,
                        Fields::Mtbuf {
                            vdata: common.0,
                            vaddr: common.1,
                            srsrc: common.2,
                            soffset: common.3,
                            offset: common.4,
                            offen: common.5,
                            idxen: common.6,
                            dfmt: 4,
                            nfmt: 4,
                        },
                    )
                } else {
                    inst(
                        op,
                        Fields::Mubuf {
                            vdata: common.0,
                            vaddr: common.1,
                            srsrc: common.2,
                            soffset: common.3,
                            offset: common.4,
                            offen: common.5,
                            idxen: common.6,
                            glc: false,
                        },
                    )
                }
            }
            // SMRD loads over the input image.
            50..=74 => {
                let (op, sdst) = match self.rng.gen_range(0..100u32) {
                    0..=49 => (
                        pick(self.rng, &[SLoadDword, SBufferLoadDword]),
                        Operand::Sgpr(pick(self.rng, &S_POOL)),
                    ),
                    50..=79 => (
                        pick(self.rng, &[SLoadDwordx2, SBufferLoadDwordx2]),
                        Operand::Sgpr(pick(self.rng, &S_PAIRS)),
                    ),
                    _ => (
                        pick(self.rng, &[SLoadDwordx4, SBufferLoadDwordx4]),
                        Operand::Sgpr(pick(self.rng, &[0, 8])),
                    ),
                };
                inst(
                    op,
                    Fields::Smrd {
                        sdst,
                        sbase: S_SMRD,
                        offset: SmrdOffset::Imm(self.rng.gen_range(0..=255)),
                    },
                )
            }
            // LDS reads.
            _ => {
                if self.rng.gen_range(0..100u32) < 70 {
                    inst(
                        DsReadB32,
                        Fields::Ds {
                            vdst: self.vdst(),
                            addr: V_ADDR,
                            data0: 0,
                            data1: 0,
                            offset0: self.rng.gen_range(0..=255),
                            offset1: 0,
                            gds: false,
                        },
                    )
                } else {
                    inst(
                        DsRead2B32,
                        Fields::Ds {
                            vdst: self.rng.gen_range(1..=4),
                            addr: V_ADDR,
                            data0: 0,
                            data1: 0,
                            offset0: self.rng.gen_range(0..=190),
                            offset1: self.rng.gen_range(0..=190),
                            gds: false,
                        },
                    )
                }
            }
        }
    }

    fn mem_store(&mut self) -> Instruction {
        use Opcode::*;
        match self.rng.gen_range(0..100u32) {
            // Buffer stores into the per-workgroup body page.
            0..=54 => {
                let (op, vdata) = match self.rng.gen_range(0..100u32) {
                    0..=44 => (BufferStoreDword, pick(self.rng, &[1, 2, 3, 4, 5, 7, 0, 6])),
                    45..=59 => (BufferStoreDwordx2, self.rng.gen_range(1..=4u8)),
                    60..=69 => (BufferStoreDwordx4, self.rng.gen_range(1..=2)),
                    70..=79 => (BufferStoreByte, self.vdst()),
                    80..=89 => (TbufferStoreFormatX, self.vdst()),
                    90..=94 => (TbufferStoreFormatXy, self.rng.gen_range(1..=4)),
                    95..=97 => (TbufferStoreFormatXyz, self.rng.gen_range(1..=3)),
                    _ => (TbufferStoreFormatXyzw, self.rng.gen_range(1..=2)),
                };
                let offset = if op == BufferStoreByte {
                    self.rng.gen_range(0..0x1000u16)
                } else {
                    self.word_offset12()
                };
                if op.format() == Format::Mtbuf {
                    inst(
                        op,
                        Fields::Mtbuf {
                            vdata,
                            vaddr: V_ADDR,
                            srsrc: SRSRC,
                            soffset: Operand::Sgpr(S_BODY),
                            offset,
                            offen: true,
                            idxen: false,
                            dfmt: 4,
                            nfmt: 4,
                        },
                    )
                } else {
                    inst(
                        op,
                        Fields::Mubuf {
                            vdata,
                            vaddr: V_ADDR,
                            srsrc: SRSRC,
                            soffset: Operand::Sgpr(S_BODY),
                            offset,
                            offen: true,
                            idxen: false,
                            glc: false,
                        },
                    )
                }
            }
            // LDS writes and atomics (per-lane-distinct addresses).
            _ => {
                let op = pick(
                    self.rng,
                    &[
                        DsWriteB32,
                        DsWrite2B32,
                        DsAddU32,
                        DsSubU32,
                        DsMinI32,
                        DsMaxI32,
                        DsMinU32,
                        DsMaxU32,
                        DsAndB32,
                        DsOrB32,
                        DsXorB32,
                    ],
                );
                if op == DsWrite2B32 {
                    inst(
                        op,
                        Fields::Ds {
                            vdst: 0,
                            addr: V_ADDR,
                            data0: pick(self.rng, &V_POOL),
                            data1: pick(self.rng, &V_POOL),
                            offset0: self.rng.gen_range(0..=190),
                            offset1: self.rng.gen_range(0..=190),
                            gds: false,
                        },
                    )
                } else {
                    inst(
                        op,
                        Fields::Ds {
                            vdst: 0,
                            addr: V_ADDR,
                            data0: pick(self.rng, &V_POOL),
                            data1: 0,
                            offset0: self.rng.gen_range(0..=255),
                            offset1: 0,
                            gds: false,
                        },
                    )
                }
            }
        }
    }

    fn sopp_misc(&mut self) -> Instruction {
        use Opcode::*;
        match self.rng.gen_range(0..3u32) {
            0 => inst(
                SNop,
                Fields::Sopp {
                    simm16: self.rng.gen_range(0..8),
                },
            ),
            1 => inst(
                SWaitcnt,
                Fields::Sopp {
                    simm16: waitcnt_imm(Some(0), Some(0)),
                },
            ),
            _ => inst(SBarrier, Fields::Sopp { simm16: 0 }),
        }
    }
}

// ------------------------------------------------------ minimal instances

/// A minimal valid instance of `op`, used by the exhaustive
/// assemble→disassemble→reassemble conformance test: every opcode in the
/// ISA gets one canonical instruction whose encoding must survive a text
/// round trip bit-exactly.
#[must_use]
pub fn minimal_instruction(op: Opcode) -> Instruction {
    use Opcode::*;
    let fields = match op.format() {
        Format::Sop2 => Fields::Sop2 {
            sdst: Operand::Sgpr(0),
            ssrc0: Operand::Sgpr(2),
            ssrc1: Operand::Sgpr(4),
        },
        Format::Sopk => Fields::Sopk {
            sdst: Operand::Sgpr(0),
            simm16: 1,
        },
        Format::Sop1 => Fields::Sop1 {
            sdst: Operand::Sgpr(0),
            ssrc0: Operand::Sgpr(2),
        },
        Format::Sopc => Fields::Sopc {
            ssrc0: Operand::Sgpr(0),
            ssrc1: Operand::Sgpr(1),
        },
        Format::Sopp => Fields::Sopp {
            // s_waitcnt carries don't-care expcnt bits; use the canonical
            // builder encoding so text round-trips bit-exactly.
            simm16: if op == SWaitcnt {
                waitcnt_imm(Some(0), Some(0))
            } else {
                0
            },
        },
        Format::Smrd => Fields::Smrd {
            sdst: Operand::Sgpr(8),
            sbase: 4,
            offset: SmrdOffset::Imm(1),
        },
        Format::Vop2 => Fields::Vop2 {
            vdst: 1,
            src0: Operand::Vgpr(2),
            vsrc1: 3,
        },
        Format::Vop1 => {
            if op == VReadfirstlaneB32 {
                Fields::Vop1 {
                    vdst: 0,
                    src0: Operand::Vgpr(1),
                }
            } else {
                Fields::Vop1 {
                    vdst: 1,
                    src0: Operand::Vgpr(2),
                }
            }
        }
        Format::Vopc => Fields::Vopc {
            src0: Operand::Vgpr(1),
            vsrc1: 2,
        },
        Format::Vop3a | Format::Vop3b => Fields::Vop3a {
            vdst: 1,
            src0: Operand::Vgpr(2),
            src1: Operand::Vgpr(3),
            src2: if op.src_count() == 3 {
                Some(Operand::Vgpr(4))
            } else {
                None
            },
            abs: 0,
            neg: 0,
            clamp: false,
            omod: 0,
        },
        Format::Ds => {
            let two = matches!(op, DsRead2B32 | DsWrite2B32);
            if op.is_store() {
                Fields::Ds {
                    vdst: 0,
                    addr: 1,
                    data0: 2,
                    data1: if two { 3 } else { 0 },
                    offset0: 0,
                    offset1: 0,
                    gds: false,
                }
            } else if matches!(op, DsReadB32 | DsRead2B32) {
                Fields::Ds {
                    vdst: 1,
                    addr: 2,
                    data0: 0,
                    data1: 0,
                    offset0: 0,
                    offset1: 0,
                    gds: false,
                }
            } else {
                // LDS atomics: vdst is dead (no `_rtn` forms in the ISA
                // subset) and not representable in text, so keep it zero.
                Fields::Ds {
                    vdst: 0,
                    addr: 1,
                    data0: 2,
                    data1: 0,
                    offset0: 0,
                    offset1: 0,
                    gds: false,
                }
            }
        }
        Format::Mubuf => Fields::Mubuf {
            vdata: 1,
            vaddr: 2,
            srsrc: 4,
            soffset: Operand::Sgpr(1),
            offset: 4,
            offen: false,
            idxen: false,
            glc: false,
        },
        Format::Mtbuf => Fields::Mtbuf {
            vdata: 1,
            vaddr: 2,
            srsrc: 4,
            soffset: Operand::Sgpr(1),
            offset: 4,
            offen: false,
            idxen: false,
            dfmt: 4,
            nfmt: 4,
        },
    };
    Instruction::new(op, fields).expect("minimal instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_kernels_assemble() {
        for seed in 0..32 {
            let gk = GenKernel::generate(seed);
            let kernel = gk.build().expect("generated kernel assembles");
            assert!(kernel.instructions().is_ok());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GenKernel::generate(7).build().unwrap();
        let b = GenKernel::generate(7).build().unwrap();
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn every_opcode_has_a_minimal_instance() {
        for &op in Opcode::ALL {
            let inst = minimal_instruction(op);
            let words = inst.encode().expect("minimal instance encodes");
            let (back, len) = Instruction::decode(&words).expect("decodes");
            assert_eq!(len, words.len());
            assert_eq!(back, inst, "{op:?}");
        }
    }
}
