//! # scratch-check
//!
//! Differential conformance and fuzzing for the SCRATCH toolchain.
//!
//! The paper validates its bug-fixed MIAOW CU "in the instruction domain"
//! against a reference implementation (§2.3) — a one-time manual
//! campaign. This crate mechanizes that idea and extends it across the
//! whole toolchain:
//!
//! * [`GenKernel`] — a seeded random Southern-Islands kernel generator.
//!   Programs are trees of straight-line ops, bounded loops, scalar
//!   skip-branches and exec-masked regions, always structurally valid,
//!   with loads reading a generated input image and stores confined to a
//!   per-workgroup output page;
//! * [`RefSystem`] — a lockstep reference interpreter: per-lane
//!   architectural state, one instruction at a time, no pipeline, sharing
//!   no execution code with `scratch-cu`;
//! * [`OracleKind`] — five differential oracles: CU vs reference, trimmed
//!   vs untrimmed CU, serial vs multi-worker system,
//!   assembler/disassembler round-trip, and uninterrupted vs
//!   checkpoint/restored preemptible dispatch;
//! * [`minimize`] — tree-based shrinking of any divergence to a small
//!   self-contained repro ([`Divergence`]).
//!
//! # Examples
//!
//! ```
//! use scratch_check::{fuzz, FuzzConfig, OracleKind};
//!
//! let report = fuzz(&FuzzConfig {
//!     seed: 42,
//!     cases: 4,
//!     oracles: vec![OracleKind::Roundtrip],
//!     ..FuzzConfig::default()
//! });
//! assert_eq!(report.cases, 4);
//! assert!(report.divergences.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod interp;
pub mod minimize;
pub mod oracle;
pub mod report;

pub use gen::{minimal_instruction, GenKernel, Item};
pub use interp::{InjectedBug, RefError, RefSystem};
pub use minimize::minimize;
pub use oracle::{check, check_with_bug, OracleKind, Outcome};
pub use report::Divergence;

/// Configuration for a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; case `i` uses seed `base + i`.
    pub seed: u64,
    /// Number of kernels to generate and check.
    pub cases: u64,
    /// Oracles to run on every case.
    pub oracles: Vec<OracleKind>,
    /// Deliberate semantic mutation injected into the reference
    /// interpreter — [`InjectedBug::None`] for real campaigns; anything
    /// else turns the fuzzer on itself to prove it catches bugs.
    pub bug: InjectedBug,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0,
            cases: 100,
            oracles: OracleKind::ALL.to_vec(),
            bug: InjectedBug::None,
        }
    }
}

/// Outcome of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases actually run.
    pub cases: u64,
    /// Oracle checks performed (cases × oracles, minus skips).
    pub checks: u64,
    /// Cases skipped because the kernel did not assemble (generator bug;
    /// should stay zero).
    pub skipped: u64,
    /// Minimized reports, one per (case, oracle) divergence.
    pub divergences: Vec<Divergence>,
}

impl FuzzReport {
    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} cases, {} checks, {} skipped, {} divergences",
            self.cases,
            self.checks,
            self.skipped,
            self.divergences.len()
        )
    }
}

/// Run a fuzzing campaign: generate `cases` kernels, run every oracle on
/// each, and minimize whatever diverges.
#[must_use]
pub fn fuzz(config: &FuzzConfig) -> FuzzReport {
    let registry = scratch_metrics::global();
    let m_cases = registry.counter("scratch_check_cases_total", "Fuzz cases generated");
    let m_checks = registry.counter(
        "scratch_check_oracle_checks_total",
        "Oracle checks performed",
    );
    let m_skipped = registry.counter(
        "scratch_check_skipped_total",
        "Fuzz cases skipped (kernel did not assemble)",
    );
    let m_divergences = registry.counter(
        "scratch_check_divergences_total",
        "Divergences found between the simulator and an oracle",
    );
    let mut report = FuzzReport {
        cases: 0,
        checks: 0,
        skipped: 0,
        divergences: Vec::new(),
    };
    for i in 0..config.cases {
        let gk = GenKernel::generate(config.seed.wrapping_add(i));
        report.cases += 1;
        m_cases.inc();
        for &oracle in &config.oracles {
            match check_with_bug(oracle, &gk, config.bug) {
                Outcome::Agree => {
                    report.checks += 1;
                    m_checks.inc();
                }
                Outcome::Skip(_) => {
                    report.skipped += 1;
                    m_skipped.inc();
                }
                Outcome::Diverge(detail) => {
                    report.checks += 1;
                    m_checks.inc();
                    m_divergences.inc();
                    let minimized = minimize(&gk, oracle, config.bug);
                    report
                        .divergences
                        .push(Divergence::new(&gk, &minimized, oracle, detail));
                }
            }
        }
    }
    report
}
