//! # scratch-check
//!
//! Differential conformance and fuzzing for the SCRATCH toolchain.
//!
//! The paper validates its bug-fixed MIAOW CU "in the instruction domain"
//! against a reference implementation (§2.3) — a one-time manual
//! campaign. This crate mechanizes that idea and extends it across the
//! whole toolchain:
//!
//! * [`GenKernel`] — a seeded random Southern-Islands kernel generator.
//!   Programs are trees of straight-line ops, bounded loops, scalar
//!   skip-branches and exec-masked regions, always structurally valid,
//!   with loads reading a generated input image and stores confined to a
//!   per-workgroup output page;
//! * [`RefSystem`] — a lockstep reference interpreter: per-lane
//!   architectural state, one instruction at a time, no pipeline, sharing
//!   no execution code with `scratch-cu`;
//! * [`OracleKind`] — six differential oracles: CU vs reference, trimmed
//!   vs untrimmed CU, serial vs multi-worker system,
//!   assembler/disassembler round-trip, uninterrupted vs
//!   checkpoint/restored preemptible dispatch, and cycle pipeline vs the
//!   block-compiled fast execution tier;
//! * [`minimize`] — tree-based shrinking of any divergence to a small
//!   self-contained repro ([`Divergence`]).
//!
//! # Examples
//!
//! ```
//! use scratch_check::{fuzz, FuzzConfig, OracleKind};
//!
//! let report = fuzz(&FuzzConfig {
//!     seed: 42,
//!     cases: 4,
//!     oracles: vec![OracleKind::Roundtrip],
//!     ..FuzzConfig::default()
//! });
//! assert_eq!(report.cases, 4);
//! assert!(report.divergences.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod interp;
pub mod minimize;
pub mod oracle;
pub mod report;

pub use gen::{minimal_instruction, GenKernel, Item};
pub use interp::{InjectedBug, RefError, RefSystem};
pub use minimize::minimize;
pub use oracle::{check, check_with_bug, OracleKind, Outcome};
pub use report::Divergence;

/// Configuration for a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; case `i` uses seed `base + i`.
    pub seed: u64,
    /// Number of kernels to generate and check.
    pub cases: u64,
    /// Oracles to run on every case.
    pub oracles: Vec<OracleKind>,
    /// Deliberate semantic mutation injected into the reference
    /// interpreter — [`InjectedBug::None`] for real campaigns; anything
    /// else turns the fuzzer on itself to prove it catches bugs.
    pub bug: InjectedBug,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0,
            cases: 100,
            oracles: OracleKind::ALL.to_vec(),
            bug: InjectedBug::None,
        }
    }
}

/// Per-oracle tallies of a fuzzing campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleTally {
    /// Checks this oracle performed (skips excluded).
    pub checks: u64,
    /// Cases this oracle skipped.
    pub skipped: u64,
    /// Divergences this oracle found.
    pub divergences: u64,
}

/// Outcome of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases actually run.
    pub cases: u64,
    /// Oracle checks performed (cases × oracles, minus skips).
    pub checks: u64,
    /// Cases skipped because the kernel did not assemble (generator bug;
    /// should stay zero).
    pub skipped: u64,
    /// Minimized reports, one per (case, oracle) divergence.
    pub divergences: Vec<Divergence>,
    /// Per-oracle breakdown, in the campaign's oracle order — a
    /// multi-oracle summary that only aggregated would hide *which*
    /// oracle diverged.
    pub per_oracle: Vec<(OracleKind, OracleTally)>,
}

impl FuzzReport {
    /// One-line human summary. Multi-oracle campaigns append a
    /// per-oracle `name checks/divergences` breakdown so a divergence is
    /// attributable at a glance.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} cases, {} checks, {} skipped, {} divergences",
            self.cases,
            self.checks,
            self.skipped,
            self.divergences.len()
        );
        if self.per_oracle.len() > 1 {
            let parts: Vec<String> = self
                .per_oracle
                .iter()
                .map(|(o, t)| format!("{o} {}/{}", t.checks, t.divergences))
                .collect();
            line.push_str(&format!(" [{}]", parts.join(", ")));
        }
        line
    }
}

/// Run a fuzzing campaign: generate `cases` kernels, run every oracle on
/// each, and minimize whatever diverges.
#[must_use]
pub fn fuzz(config: &FuzzConfig) -> FuzzReport {
    let registry = scratch_metrics::global();
    let m_cases = registry.counter("scratch_check_cases_total", "Fuzz cases generated");
    let m_checks = registry.counter(
        "scratch_check_oracle_checks_total",
        "Oracle checks performed",
    );
    let m_skipped = registry.counter(
        "scratch_check_skipped_total",
        "Fuzz cases skipped (kernel did not assemble)",
    );
    let m_divergences = registry.counter(
        "scratch_check_divergences_total",
        "Divergences found between the simulator and an oracle",
    );
    let mut report = FuzzReport {
        cases: 0,
        checks: 0,
        skipped: 0,
        divergences: Vec::new(),
        per_oracle: config
            .oracles
            .iter()
            .map(|&o| (o, OracleTally::default()))
            .collect(),
    };
    for i in 0..config.cases {
        let gk = GenKernel::generate(config.seed.wrapping_add(i));
        report.cases += 1;
        m_cases.inc();
        for (oi, &oracle) in config.oracles.iter().enumerate() {
            let tally = &mut report.per_oracle[oi].1;
            match check_with_bug(oracle, &gk, config.bug) {
                Outcome::Agree => {
                    report.checks += 1;
                    tally.checks += 1;
                    m_checks.inc();
                }
                Outcome::Skip(_) => {
                    report.skipped += 1;
                    tally.skipped += 1;
                    m_skipped.inc();
                }
                Outcome::Diverge(detail) => {
                    report.checks += 1;
                    tally.checks += 1;
                    tally.divergences += 1;
                    m_checks.inc();
                    m_divergences.inc();
                    let minimized = minimize(&gk, oracle, config.bug);
                    report
                        .divergences
                        .push(Divergence::new(&gk, &minimized, oracle, detail));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_breaks_out_multi_oracle_campaigns() {
        let report = FuzzReport {
            cases: 2,
            checks: 3,
            skipped: 1,
            divergences: Vec::new(),
            per_oracle: vec![
                (
                    OracleKind::Reference,
                    OracleTally {
                        checks: 2,
                        skipped: 0,
                        divergences: 0,
                    },
                ),
                (
                    OracleKind::Fastpath,
                    OracleTally {
                        checks: 1,
                        skipped: 1,
                        divergences: 0,
                    },
                ),
            ],
        };
        assert_eq!(
            report.summary(),
            "2 cases, 3 checks, 1 skipped, 0 divergences [reference 2/0, fastpath 1/0]"
        );
    }

    #[test]
    fn summary_stays_aggregate_for_single_oracle_campaigns() {
        let report = FuzzReport {
            cases: 1,
            checks: 1,
            skipped: 0,
            divergences: Vec::new(),
            per_oracle: vec![(
                OracleKind::Roundtrip,
                OracleTally {
                    checks: 1,
                    ..OracleTally::default()
                },
            )],
        };
        assert_eq!(
            report.summary(),
            "1 cases, 1 checks, 0 skipped, 0 divergences"
        );
    }

    #[test]
    fn fuzz_tallies_per_oracle() {
        let report = fuzz(&FuzzConfig {
            seed: 7,
            cases: 3,
            oracles: vec![OracleKind::Roundtrip, OracleKind::Fastpath],
            ..FuzzConfig::default()
        });
        assert_eq!(report.per_oracle.len(), 2);
        let total: u64 = report
            .per_oracle
            .iter()
            .map(|(_, t)| t.checks + t.skipped)
            .sum();
        assert_eq!(total, report.checks + report.skipped);
        assert!(report.divergences.is_empty(), "{}", report.summary());
    }
}
