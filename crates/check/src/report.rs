//! Self-contained divergence reports.
//!
//! A report carries everything needed to reproduce and debug a divergence
//! away from the fuzzer that found it: the seed, the oracle, the first
//! observed difference, the *minimized* kernel as SI assembly, and a
//! cycle-attribution trace of the CU run (what the CU was doing when it
//! went wrong, in the terms of the `scratch-trace` subsystem).

use std::fmt::Write as _;

use scratch_system::{System, SystemConfig, SystemKind, TraceMode};

use crate::gen::GenKernel;
use crate::oracle::OracleKind;

/// A reproducible description of one divergence.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Generator seed that reproduces the original kernel.
    pub seed: u64,
    /// The oracle that disagreed.
    pub oracle: OracleKind,
    /// First observed difference (from the *original* kernel).
    pub detail: String,
    /// Op-leaf count of the original kernel body.
    pub original_ops: usize,
    /// Op-leaf count after minimization.
    pub minimized_ops: usize,
    /// Minimized kernel as SI assembly (empty if it fails to print —
    /// itself a roundtrip bug the report will already describe).
    pub assembly: String,
    /// Stall-attribution lines from a traced CU run of the minimized
    /// kernel, when the kernel still executes.
    pub trace_lines: Vec<String>,
}

impl Divergence {
    /// Assemble a report from the original and minimized kernels.
    #[must_use]
    pub fn new(
        original: &GenKernel,
        minimized: &GenKernel,
        oracle: OracleKind,
        detail: String,
    ) -> Divergence {
        let assembly = minimized
            .build()
            .ok()
            .and_then(|k| k.disassemble().ok())
            .unwrap_or_default();
        Divergence {
            seed: original.seed,
            oracle,
            detail,
            original_ops: original.op_count(),
            minimized_ops: minimized.op_count(),
            assembly,
            trace_lines: trace_of(minimized),
        }
    }

    /// Render the report as text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "divergence: oracle `{}` seed {:#018x}",
            self.oracle, self.seed
        );
        let _ = writeln!(s, "  first difference: {}", self.detail);
        let _ = writeln!(
            s,
            "  minimized: {} -> {} body ops",
            self.original_ops, self.minimized_ops
        );
        let _ = writeln!(
            s,
            "  reproduce: scratch-tool fuzz --seed {:#x} --cases 1 --oracle {}",
            self.seed, self.oracle
        );
        if !self.trace_lines.is_empty() {
            let _ = writeln!(s, "  cu trace (minimized kernel):");
            for line in &self.trace_lines {
                let _ = writeln!(s, "    {line}");
            }
        }
        if self.assembly.is_empty() {
            let _ = writeln!(s, "  minimized kernel: <does not print>");
        } else {
            let _ = writeln!(s, "  minimized kernel:");
            for line in self.assembly.lines() {
                let _ = writeln!(s, "    {line}");
            }
        }
        s
    }
}

/// Run the minimized kernel once with summary tracing and return
/// cycle-attribution lines; empty when the kernel no longer runs (the
/// divergence may be a fault, which is fine — the report says so).
fn trace_of(gk: &GenKernel) -> Vec<String> {
    let Ok(kernel) = gk.build() else {
        return Vec::new();
    };
    let config = SystemConfig::preset(SystemKind::DcdPm).with_trace(TraceMode::Summary);
    let Ok(mut sys) = System::new(config, &kernel) else {
        return Vec::new();
    };
    let out = sys.alloc(gk.out_bytes());
    let inp = sys.alloc_words(&gk.image);
    sys.set_args(&[out as u32, inp as u32]);
    if sys.dispatch([gk.wgs, 1, 1]).is_err() {
        return Vec::new();
    }
    let Some(trace) = sys.report().trace else {
        return Vec::new();
    };
    let mut lines = vec![format!(
        "cycles {} issued {}",
        trace.cycles, trace.issued_cycles
    )];
    for (reason, cycles) in &trace.stalls {
        if *cycles > 0 {
            lines.push(format!("stall {}: {cycles}", reason.label()));
        }
    }
    lines
}
