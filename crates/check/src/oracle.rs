//! Cross-configuration oracles.
//!
//! Each oracle runs the same generated kernel through two independent
//! paths and demands agreement on everything architecturally observable.
//! A kernel that makes any pair disagree is a bug in one of the paths —
//! the differential analogue of the paper's instruction-domain validation
//! (§2.3), where the bug-fixed MIAOW CU is checked against a reference
//! implementation instruction class by instruction class.

use std::fmt;

use scratch_asm::assemble;
use scratch_core::trim_kernel;
use scratch_cu::CuConfig;
use scratch_isa::Opcode;
use scratch_system::{
    DispatchProgress, ExecMode, System, SystemCheckpoint, SystemConfig, SystemKind,
};

use crate::gen::{GenKernel, OUT_PAGE_BYTES};
use crate::interp::{InjectedBug, RefSystem};
use crate::minimal_instruction;

/// Number of workgroups the parallel oracle launches (spread over 4 CUs).
const PAR_WGS: u32 = 8;

/// The six differential oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// Pipelined CU vs the lockstep reference interpreter: final output
    /// memory must match word for word.
    Reference,
    /// Untrimmed CU vs a CU trimmed to the kernel's own instruction set:
    /// identical results, and an out-of-set instruction must hard-fault.
    Trim,
    /// Serial engine vs `with_workers(4)` over 4 CUs: identical memory
    /// *and* identical cycle counts (determinism claim).
    Parallel,
    /// Assemble → disassemble → reassemble must be bit-exact, twice.
    Roundtrip,
    /// Uninterrupted dispatch vs a preemptible dispatch whose checkpoint
    /// is serialised, decoded and restored between every quantum:
    /// identical memory *and* identical cycle counts.
    Checkpoint,
    /// Cycle pipeline vs the block-compiled fast tier
    /// ([`ExecMode::Fast`]) vs the self-checking shadow tier
    /// ([`ExecMode::FastWithTiming`]): identical output words across all
    /// three, and the shadow tier's cycle count must equal the pure cycle
    /// run's.
    Fastpath,
}

impl OracleKind {
    /// All oracles, in reporting order.
    pub const ALL: [OracleKind; 6] = [
        OracleKind::Reference,
        OracleKind::Trim,
        OracleKind::Parallel,
        OracleKind::Roundtrip,
        OracleKind::Checkpoint,
        OracleKind::Fastpath,
    ];

    /// Stable command-line name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Reference => "reference",
            OracleKind::Trim => "trim",
            OracleKind::Parallel => "parallel",
            OracleKind::Roundtrip => "roundtrip",
            OracleKind::Checkpoint => "checkpoint",
            OracleKind::Fastpath => "fastpath",
        }
    }

    /// Parse a command-line name.
    #[must_use]
    pub fn parse(s: &str) -> Option<OracleKind> {
        OracleKind::ALL.into_iter().find(|o| o.name() == s)
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of running one oracle on one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Both paths agreed.
    Agree,
    /// The paths disagreed; the payload describes the first difference.
    Diverge(String),
    /// The case could not be evaluated (e.g. a minimizer mutation no
    /// longer assembles). Treated as agreement by the fuzz loop.
    Skip(String),
}

impl Outcome {
    /// `true` for [`Outcome::Diverge`].
    #[must_use]
    pub fn is_divergence(&self) -> bool {
        matches!(self, Outcome::Diverge(_))
    }
}

/// Run `oracle` on `gk` with faithful reference semantics.
#[must_use]
pub fn check(oracle: OracleKind, gk: &GenKernel) -> Outcome {
    check_with_bug(oracle, gk, InjectedBug::None)
}

/// Run `oracle` on `gk` with a deliberate semantic mutation injected into
/// the reference interpreter (validates the fuzzer's detection and
/// minimization machinery; only the reference oracle consults `bug`).
#[must_use]
pub fn check_with_bug(oracle: OracleKind, gk: &GenKernel, bug: InjectedBug) -> Outcome {
    match oracle {
        OracleKind::Reference => reference(gk, bug),
        OracleKind::Trim => trim(gk),
        OracleKind::Parallel => parallel(gk),
        OracleKind::Roundtrip => roundtrip(gk),
        OracleKind::Checkpoint => checkpoint(gk),
        OracleKind::Fastpath => fastpath(gk),
    }
}

/// Run the kernel on the reference interpreter: returns the output words
/// or the error message.
fn run_reference(gk: &GenKernel, bug: InjectedBug) -> Result<Vec<u32>, String> {
    let kernel = gk.build().map_err(|e| format!("build: {e}"))?;
    let mut sys = RefSystem::new(&kernel).map_err(|e| e.to_string())?;
    sys.bug = bug;
    let out = sys.alloc(gk.out_bytes());
    let inp = sys.alloc_words(&gk.image);
    sys.set_args(&[out as u32, inp as u32]);
    sys.dispatch([gk.wgs, 1, 1]).map_err(|e| e.to_string())?;
    Ok(sys.read_words(out, (gk.out_bytes() / 4) as usize))
}

/// Run the kernel on the system under test with `config`: returns the
/// output words and cycle count, or the error message.
fn run_system(
    gk: &GenKernel,
    config: SystemConfig,
    wgs: u32,
    out_bytes: u64,
) -> Result<(Vec<u32>, u64), String> {
    let kernel = gk.build().map_err(|e| format!("build: {e}"))?;
    let mut sys = System::new(config, &kernel).map_err(|e| e.to_string())?;
    let out = sys.alloc(out_bytes);
    let inp = sys.alloc_words(&gk.image);
    sys.set_args(&[out as u32, inp as u32]);
    let cycles = sys.dispatch([wgs, 1, 1]).map_err(|e| e.to_string())?;
    Ok((sys.read_words(out, (out_bytes / 4) as usize), cycles))
}

/// First differing word between two equally-sized buffers.
fn first_mismatch(a: &[u32], b: &[u32]) -> Option<(usize, u32, u32)> {
    a.iter()
        .zip(b)
        .enumerate()
        .find(|&(_, (x, y))| x != y)
        .map(|(i, (&x, &y))| (i, x, y))
}

fn reference(gk: &GenKernel, bug: InjectedBug) -> Outcome {
    if gk.build().is_err() {
        return Outcome::Skip("kernel does not assemble".into());
    }
    let reference = run_reference(gk, bug);
    let cu = run_system(
        gk,
        SystemConfig::preset(SystemKind::DcdPm),
        gk.wgs,
        gk.out_bytes(),
    );
    match (reference, cu) {
        (Ok(r), Ok((c, _))) => match first_mismatch(&r, &c) {
            None => Outcome::Agree,
            Some((i, rv, cv)) => {
                Outcome::Diverge(format!("out[{i}]: reference={rv:#010x} cu={cv:#010x}"))
            }
        },
        (Err(_), Err(_)) => Outcome::Agree,
        (Err(e), Ok(_)) => Outcome::Diverge(format!("reference faulted, CU ran: {e}")),
        (Ok(_), Err(e)) => Outcome::Diverge(format!("CU faulted, reference ran: {e}")),
    }
}

fn trim(gk: &GenKernel) -> Outcome {
    let Ok(kernel) = gk.build() else {
        return Outcome::Skip("kernel does not assemble".into());
    };
    let Ok(report) = trim_kernel(&kernel) else {
        return Outcome::Skip("kernel does not trim".into());
    };
    let untrimmed = run_system(
        gk,
        SystemConfig::preset(SystemKind::DcdPm),
        gk.wgs,
        gk.out_bytes(),
    );
    let trimmed_cu = CuConfig {
        trim: Some(report.kept.clone()),
        ..CuConfig::default()
    };
    let trimmed = run_system(
        gk,
        SystemConfig::preset(SystemKind::DcdPm).with_cu_config(trimmed_cu),
        gk.wgs,
        gk.out_bytes(),
    );
    match (untrimmed, trimmed) {
        (Ok((u, _)), Ok((t, _))) => {
            if let Some((i, uv, tv)) = first_mismatch(&u, &t) {
                return Outcome::Diverge(format!(
                    "out[{i}]: untrimmed={uv:#010x} trimmed={tv:#010x}"
                ));
            }
            must_fault(gk, &report.kept)
        }
        (Err(_), Err(_)) => Outcome::Agree,
        (Err(e), Ok(_)) => Outcome::Diverge(format!("untrimmed faulted, trimmed ran: {e}")),
        (Ok(_), Err(e)) => Outcome::Diverge(format!("trimmed faulted, untrimmed ran: {e}")),
    }
}

/// An instruction outside the trim set must be a hard fault on the
/// trimmed architecture ("the sub-units no longer exist").
fn must_fault(gk: &GenKernel, kept: &scratch_cu::TrimSet) -> Outcome {
    let Some(outside) = Opcode::ALL
        .iter()
        .copied()
        .find(|op| !kept.contains(*op) && *op != Opcode::SEndpgm)
    else {
        return Outcome::Agree; // kernel uses the whole ISA; nothing to check
    };
    let mut b = scratch_asm::KernelBuilder::new("must_fault");
    // Budget must cover the launch ABI image (WG ids land in s16..s18).
    b.sgprs(24).vgprs(8).workgroup_size(64);
    b.push(minimal_instruction(outside));
    if b.endpgm().is_err() {
        return Outcome::Skip("must-fault probe does not assemble".into());
    }
    let Ok(kernel) = b.finish() else {
        return Outcome::Skip("must-fault probe does not assemble".into());
    };
    let cu = CuConfig {
        trim: Some(kept.clone()),
        ..CuConfig::default()
    };
    let config = SystemConfig::preset(SystemKind::DcdPm).with_cu_config(cu);
    let mut sys = match System::new(config, &kernel) {
        Ok(s) => s,
        Err(e) => {
            // Rejected before launch is acceptable as long as the cause is
            // the trim set.
            return fault_outcome(gk, outside, &e.to_string());
        }
    };
    sys.set_args(&[0]);
    match sys.dispatch([1, 1, 1]) {
        Err(e) => fault_outcome(gk, outside, &e.to_string()),
        Ok(_) => Outcome::Diverge(format!(
            "{outside:?} is outside the trim set but the trimmed CU executed it (seed {:#x})",
            gk.seed
        )),
    }
}

fn fault_outcome(gk: &GenKernel, outside: Opcode, msg: &str) -> Outcome {
    if msg.contains("trimmed") {
        Outcome::Agree
    } else {
        Outcome::Diverge(format!(
            "{outside:?} outside the trim set faulted with an unrelated error \
             (seed {:#x}): {msg}",
            gk.seed
        ))
    }
}

fn parallel(gk: &GenKernel) -> Outcome {
    if gk.build().is_err() {
        return Outcome::Skip("kernel does not assemble".into());
    }
    let out_bytes = u64::from(PAR_WGS) * OUT_PAGE_BYTES;
    let config = |workers: usize| -> Result<SystemConfig, String> {
        Ok(SystemConfig::preset(SystemKind::DcdPm)
            .with_cus(4)
            .map_err(|e| e.to_string())?
            .with_workers(workers))
    };
    let serial = config(1).and_then(|c| run_system(gk, c, PAR_WGS, out_bytes));
    let threaded = config(4).and_then(|c| run_system(gk, c, PAR_WGS, out_bytes));
    match (serial, threaded) {
        (Ok((s, sc)), Ok((t, tc))) => {
            if let Some((i, sv, tv)) = first_mismatch(&s, &t) {
                return Outcome::Diverge(format!(
                    "out[{i}]: workers=1 {sv:#010x} workers=4 {tv:#010x}"
                ));
            }
            if sc != tc {
                return Outcome::Diverge(format!(
                    "cycle counts differ: workers=1 {sc} workers=4 {tc}"
                ));
            }
            Outcome::Agree
        }
        (Err(_), Err(_)) => Outcome::Agree,
        (Err(e), Ok(_)) => Outcome::Diverge(format!("workers=1 faulted, workers=4 ran: {e}")),
        (Ok(_), Err(e)) => Outcome::Diverge(format!("workers=4 faulted, workers=1 ran: {e}")),
    }
}

fn roundtrip(gk: &GenKernel) -> Outcome {
    let Ok(kernel) = gk.build() else {
        return Outcome::Skip("kernel does not assemble".into());
    };
    let mut words = kernel.words().to_vec();
    let mut text = match kernel.disassemble() {
        Ok(t) => t,
        Err(e) => return Outcome::Diverge(format!("disassembly failed: {e}")),
    };
    // Two full trips: the second catches printers that are stable only on
    // builder-produced kernels and not on their own parser's output.
    for trip in 1..=2 {
        let re = match assemble(&text) {
            Ok(k) => k,
            Err(e) => return Outcome::Diverge(format!("trip {trip}: reassembly failed: {e}")),
        };
        if let Some((i, a, b)) = first_mismatch(&words, re.words()) {
            return Outcome::Diverge(format!(
                "trip {trip}: word {i} differs: original={a:#010x} reassembled={b:#010x}"
            ));
        }
        words = re.words().to_vec();
        text = match re.disassemble() {
            Ok(t) => t,
            Err(e) => return Outcome::Diverge(format!("trip {trip}: re-disassembly failed: {e}")),
        };
    }
    Outcome::Agree
}

/// Same kernel through all three execution tiers: the cycle pipeline,
/// the block-compiled fast tier, and the self-checking shadow tier (which
/// runs both and cross-verifies every written byte internally). Output
/// words must be identical everywhere; the shadow tier must reproduce the
/// pure cycle run's cycle count exactly.
fn fastpath(gk: &GenKernel) -> Outcome {
    if gk.build().is_err() {
        return Outcome::Skip("kernel does not assemble".into());
    }
    let config = |exec| SystemConfig::preset(SystemKind::DcdPm).with_exec(exec);
    let cycle = run_system(gk, config(ExecMode::Cycle), gk.wgs, gk.out_bytes());
    let fast = run_system(gk, config(ExecMode::Fast), gk.wgs, gk.out_bytes());
    let shadow = run_system(gk, config(ExecMode::FastWithTiming), gk.wgs, gk.out_bytes());
    match (cycle, fast, shadow) {
        (Ok((cw, cc)), Ok((fw, _)), Ok((sw, sc))) => {
            if let Some((i, cv, fv)) = first_mismatch(&cw, &fw) {
                return Outcome::Diverge(format!("out[{i}]: cycle={cv:#010x} fast={fv:#010x}"));
            }
            if let Some((i, cv, sv)) = first_mismatch(&cw, &sw) {
                return Outcome::Diverge(format!(
                    "out[{i}]: cycle={cv:#010x} fast-timing={sv:#010x}"
                ));
            }
            if cc != sc {
                return Outcome::Diverge(format!(
                    "cycle counts differ: cycle {cc} fast-timing {sc}"
                ));
            }
            Outcome::Agree
        }
        (Err(_), Err(_), Err(_)) => Outcome::Agree,
        (c, f, s) => {
            let describe = |name: &str, r: &Result<(Vec<u32>, u64), String>| match r {
                Ok(_) => format!("{name} ran"),
                Err(e) => format!("{name} faulted: {e}"),
            };
            Outcome::Diverge(format!(
                "fault behaviour differs across tiers: {}; {}; {}",
                describe("cycle", &c),
                describe("fast", &f),
                describe("fast-timing", &s)
            ))
        }
    }
}

/// Run the kernel as a preemptible dispatch in `quantum`-cycle slices.
/// Between every pair of quanta the whole machine is checkpointed, pushed
/// through *both* wire formats (the snap binary codec, then JSON), the
/// live [`System`] is dropped, and a fresh one is rebuilt from the decoded
/// checkpoint — so any state the serialisers lose shows up as a
/// divergence. Returns the output words and the total cycle count.
fn run_checkpointed(gk: &GenKernel, quantum: u64) -> Result<(Vec<u32>, u64), String> {
    let kernel = gk.build().map_err(|e| format!("build: {e}"))?;
    let config = SystemConfig::preset(SystemKind::DcdPm);
    let mut sys = System::new(config, &kernel).map_err(|e| e.to_string())?;
    let out = sys.alloc(gk.out_bytes());
    let inp = sys.alloc_words(&gk.image);
    sys.set_args(&[out as u32, inp as u32]);
    let mut progress = sys
        .dispatch_preemptible([gk.wgs, 1, 1], quantum)
        .map_err(|e| e.to_string())?;
    loop {
        match progress {
            DispatchProgress::Complete { cycles } => {
                return Ok((sys.read_words(out, (gk.out_bytes() / 4) as usize), cycles));
            }
            DispatchProgress::Paused => {
                let ck = sys.checkpoint().map_err(|e| e.to_string())?;
                drop(sys);
                let bytes = scratch_snap::to_bytes(&ck);
                let decoded: SystemCheckpoint =
                    scratch_snap::from_bytes(&bytes).map_err(|e| format!("snap decode: {e}"))?;
                let json =
                    serde_json::to_string(&decoded).map_err(|e| format!("json encode: {e}"))?;
                let decoded: SystemCheckpoint =
                    serde_json::from_str(&json).map_err(|e| format!("json decode: {e}"))?;
                sys = System::restore(&decoded, None).map_err(|e| e.to_string())?;
                progress = sys.resume_dispatch(quantum).map_err(|e| e.to_string())?;
            }
        }
    }
}

fn checkpoint(gk: &GenKernel) -> Outcome {
    if gk.build().is_err() {
        return Outcome::Skip("kernel does not assemble".into());
    }
    let uninterrupted = run_system(
        gk,
        SystemConfig::preset(SystemKind::DcdPm),
        gk.wgs,
        gk.out_bytes(),
    );
    let (ref_words, ref_cycles) = match uninterrupted {
        Ok(r) => r,
        Err(e) => {
            // A kernel the system rejects must be rejected by the
            // preemptible path too, whatever the slicing.
            return match run_checkpointed(gk, 1024) {
                Err(_) => Outcome::Agree,
                Ok(_) => Outcome::Diverge(format!("uninterrupted faulted, checkpointed ran: {e}")),
            };
        }
    };
    // A third of the uninterrupted run per slice forces at least two
    // checkpoint/restore round-trips through both serialisation formats.
    let quantum = (ref_cycles / 3).max(1);
    match run_checkpointed(gk, quantum) {
        Err(e) => Outcome::Diverge(format!("uninterrupted ran, checkpointed faulted: {e}")),
        Ok((words, cycles)) => {
            if let Some((i, uv, cv)) = first_mismatch(&ref_words, &words) {
                return Outcome::Diverge(format!(
                    "out[{i}]: uninterrupted={uv:#010x} checkpointed={cv:#010x}"
                ));
            }
            if cycles != ref_cycles {
                return Outcome::Diverge(format!(
                    "cycle counts differ: uninterrupted {ref_cycles} checkpointed {cycles}"
                ));
            }
            Outcome::Agree
        }
    }
}
