//! Rolling-window SLO telemetry: latency quantiles, shed rate, and
//! error-budget burn per tenant.
//!
//! A [`SloWindow`] keeps the last window (default 60 s) of completion
//! latencies and shed decisions and summarises them on demand into a
//! [`SloSnapshot`]. Recording is O(1) amortised; [`SloWindow::snapshot`]
//! sorts the live samples (a few thousand at serving rates), and
//! [`SloWindow::maybe_refresh`] throttles that to a caller-chosen cadence
//! so per-completion gauge updates stay cheap.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// A point-in-time summary of one tenant's rolling window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSnapshot {
    /// Completions inside the window.
    pub completed: u64,
    /// Sheds (admission rejections) inside the window.
    pub shed: u64,
    /// Median completion latency, µs (0 when the window is empty).
    pub p50_us: u64,
    /// 95th-percentile completion latency, µs.
    pub p95_us: u64,
    /// 99th-percentile completion latency, µs.
    pub p99_us: u64,
    /// Shed fraction of admissions-plus-sheds in the window, 0..=1.
    pub shed_ratio: f64,
    /// Error-budget burn rate: `shed_ratio / (1 - target)`. 1.0 means
    /// the tenant is burning budget exactly as fast as the SLO allows;
    /// above 1.0 the budget is being exhausted early.
    pub budget_burn: f64,
}

impl SloSnapshot {
    /// An all-zero snapshot (empty window).
    #[must_use]
    pub fn empty() -> SloSnapshot {
        SloSnapshot {
            completed: 0,
            shed: 0,
            p50_us: 0,
            p95_us: 0,
            p99_us: 0,
            shed_ratio: 0.0,
            budget_burn: 0.0,
        }
    }
}

/// One tenant's rolling SLO window.
#[derive(Debug)]
pub struct SloWindow {
    window: Duration,
    /// Availability target in `(0, 1)`, e.g. `0.99`: the tolerated shed
    /// fraction is `1 - target`.
    target: f64,
    /// `(completed_at, latency_us)`, oldest first.
    latencies: VecDeque<(Instant, u64)>,
    /// Shed instants, oldest first.
    sheds: VecDeque<Instant>,
    last_refresh: Option<Instant>,
}

impl SloWindow {
    /// A window of `window` duration against availability `target`
    /// (clamped into `[0, 0.9999]` so budget burn stays finite).
    #[must_use]
    pub fn new(window: Duration, target: f64) -> SloWindow {
        SloWindow {
            window,
            target: target.clamp(0.0, 0.9999),
            latencies: VecDeque::new(),
            sheds: VecDeque::new(),
            last_refresh: None,
        }
    }

    /// The conventional serving default: 60 s window, 99% target.
    #[must_use]
    pub fn default_serving() -> SloWindow {
        SloWindow::new(Duration::from_secs(60), 0.99)
    }

    /// Record a completed job's end-to-end latency.
    pub fn record_latency(&mut self, latency_us: u64) {
        self.latencies.push_back((Instant::now(), latency_us));
    }

    /// Record an admission shed.
    pub fn record_shed(&mut self) {
        self.sheds.push_back(Instant::now());
    }

    fn prune(&mut self, now: Instant) {
        let horizon = now.checked_sub(self.window);
        let Some(horizon) = horizon else { return };
        while self.latencies.front().is_some_and(|&(at, _)| at < horizon) {
            self.latencies.pop_front();
        }
        while self.sheds.front().is_some_and(|&at| at < horizon) {
            self.sheds.pop_front();
        }
    }

    /// Summarise the window as of now.
    #[must_use]
    pub fn snapshot(&mut self) -> SloSnapshot {
        let now = Instant::now();
        self.prune(now);
        let completed = self.latencies.len() as u64;
        let shed = self.sheds.len() as u64;
        let mut sorted: Vec<u64> = self.latencies.iter().map(|&(_, us)| us).collect();
        sorted.sort_unstable();
        let q = |p: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            // Nearest-rank on the sorted window.
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        let total = completed + shed;
        let shed_ratio = if total == 0 {
            0.0
        } else {
            shed as f64 / total as f64
        };
        SloSnapshot {
            completed,
            shed,
            p50_us: q(0.50),
            p95_us: q(0.95),
            p99_us: q(0.99),
            shed_ratio,
            budget_burn: shed_ratio / (1.0 - self.target),
        }
    }

    /// [`SloWindow::snapshot`], throttled: returns `Some` at most once
    /// per `min_interval` (and always on the first call), `None` when the
    /// previous snapshot is still fresh. The cheap way to keep gauges
    /// current from a per-completion hook.
    #[must_use]
    pub fn maybe_refresh(&mut self, min_interval: Duration) -> Option<SloSnapshot> {
        let now = Instant::now();
        if let Some(last) = self.last_refresh {
            if now.duration_since(last) < min_interval {
                return None;
            }
        }
        self.last_refresh = Some(now);
        Some(self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let mut w = SloWindow::new(Duration::from_secs(60), 0.99);
        for us in 1..=100u64 {
            w.record_latency(us * 10);
        }
        let snap = w.snapshot();
        assert_eq!(snap.completed, 100);
        assert_eq!(snap.p50_us, 500);
        assert_eq!(snap.p95_us, 950);
        assert_eq!(snap.p99_us, 990);
        assert_eq!(snap.shed, 0);
        assert!((snap.budget_burn - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn shed_ratio_and_budget_burn() {
        let mut w = SloWindow::new(Duration::from_secs(60), 0.99);
        for _ in 0..98 {
            w.record_latency(100);
        }
        for _ in 0..2 {
            w.record_shed();
        }
        let snap = w.snapshot();
        assert!((snap.shed_ratio - 0.02).abs() < 1e-9);
        // 2% shed against a 1% budget: burning twice the allowed rate.
        assert!(
            (snap.budget_burn - 2.0).abs() < 1e-9,
            "{}",
            snap.budget_burn
        );
    }

    #[test]
    fn old_samples_fall_out_of_the_window() {
        let mut w = SloWindow::new(Duration::from_millis(40), 0.99);
        w.record_latency(123);
        w.record_shed();
        std::thread::sleep(Duration::from_millis(80));
        w.record_latency(456);
        let snap = w.snapshot();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.p50_us, 456);
    }

    #[test]
    fn maybe_refresh_throttles() {
        let mut w = SloWindow::new(Duration::from_secs(60), 0.99);
        w.record_latency(10);
        assert!(w.maybe_refresh(Duration::from_secs(3600)).is_some());
        assert!(w.maybe_refresh(Duration::from_secs(3600)).is_none());
        assert!(w.maybe_refresh(Duration::ZERO).is_some());
    }

    #[test]
    fn empty_window_snapshot_is_zeroed() {
        let mut w = SloWindow::default_serving();
        assert_eq!(w.snapshot(), SloSnapshot::empty());
    }
}
