//! Per-kernel instruction-usage signatures — the continuous profiler's
//! aggregate and the trim-cache key for online auto-trimming.
//!
//! A signature is built from either execution tier:
//!
//! * **Cycle tier**: the pipeline's per-PC retire counters
//!   ([`InstrSignature::from_pc_counts`]), distributed over basic blocks
//!   by the fastpath translator's static [`BlockProfile`] table.
//! * **Fast tier**: per-block dispatch counters from
//!   [`FastStats::block_dispatches`](scratch_fastpath::FastStats)
//!   multiplied by each block's static instruction list
//!   ([`InstrSignature::from_block_dispatches`]).
//!
//! Both constructions produce identical signatures for the same dynamic
//! instruction stream (property-tested in `tests/signature.rs`), so a
//! deployment can profile whichever tier served the job.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use scratch_cu::{OpcodeHistogram, TrimSet};
use scratch_fastpath::BlockProfile;
use scratch_isa::{FuncUnit, Opcode};

/// A kernel's observed instruction usage: the dynamic opcode histogram,
/// the per-PC retire counts behind it, and an instruction-weighted
/// hot-block table keyed by block-leader pc.
///
/// Signatures merge by pointwise sum ([`InstrSignature::merge`]), which
/// is associative and commutative — aggregation order over slices, CUs,
/// tenants, or time windows never changes the result.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrSignature {
    /// Kernel the signature describes; merging signatures of different
    /// kernels yields the wildcard label `*`.
    pub kernel: String,
    /// Dynamic execution counts per opcode.
    pub opcodes: OpcodeHistogram,
    /// Dynamic retire counts per program counter (word offset); zero
    /// entries are absent.
    pub pcs: BTreeMap<u32, u64>,
    /// Instructions issued inside each basic block, keyed by the block's
    /// leader pc; zero entries are absent.
    pub hot_blocks: BTreeMap<u32, u64>,
}

impl InstrSignature {
    /// Build a signature from the cycle tier's per-PC retire counters
    /// (`pc_counts`, indexed by word offset), using `blocks` — the
    /// fastpath translator's static block table for the same kernel — to
    /// attribute counts to basic blocks.
    #[must_use]
    pub fn from_pc_counts(kernel: &str, blocks: &[BlockProfile], pc_counts: &[u64]) -> Self {
        let mut sig = InstrSignature {
            kernel: kernel.to_owned(),
            ..InstrSignature::default()
        };
        let count_at = |pc: u32| pc_counts.get(pc as usize).copied().unwrap_or(0);
        for b in blocks {
            let mut in_block = 0u64;
            for &(pc, op) in b.ops.iter().chain(b.term.iter()) {
                let n = count_at(pc);
                if n == 0 {
                    continue;
                }
                *sig.opcodes.entry(op).or_default() += n;
                *sig.pcs.entry(pc).or_default() += n;
                in_block += n;
            }
            if in_block > 0 {
                *sig.hot_blocks.entry(b.start).or_default() += in_block;
            }
        }
        sig
    }

    /// Build a signature from the fast tier's per-block dispatch counters
    /// (`dispatches`, indexed like `blocks`): every dispatch of a block
    /// issues each of its instructions exactly once.
    #[must_use]
    pub fn from_block_dispatches(
        kernel: &str,
        blocks: &[BlockProfile],
        dispatches: &[u64],
    ) -> Self {
        let mut sig = InstrSignature {
            kernel: kernel.to_owned(),
            ..InstrSignature::default()
        };
        for (b, &d) in blocks.iter().zip(dispatches) {
            if d == 0 {
                continue;
            }
            let mut in_block = 0u64;
            for &(pc, op) in b.ops.iter().chain(b.term.iter()) {
                *sig.opcodes.entry(op).or_default() += d;
                *sig.pcs.entry(pc).or_default() += d;
                in_block += d;
            }
            if in_block > 0 {
                *sig.hot_blocks.entry(b.start).or_default() += in_block;
            }
        }
        sig
    }

    /// Fold `other` into this signature: pointwise sums everywhere, and
    /// the kernel label collapses to `*` when the two labels differ.
    /// Associative and commutative (property-tested), so tenant- or
    /// fleet-level aggregates are order-independent.
    pub fn merge(&mut self, other: &InstrSignature) {
        if self.kernel != other.kernel {
            // A default signature (no data, no label) is the merge
            // identity from either side: it adopts the other's label and
            // never forces the wildcard.
            if self.is_empty() && self.kernel.is_empty() {
                self.kernel = other.kernel.clone();
            } else if !(other.is_empty() && other.kernel.is_empty()) {
                self.kernel = "*".to_owned();
            }
        }
        for (&op, &n) in &other.opcodes {
            *self.opcodes.entry(op).or_default() += n;
        }
        for (&pc, &n) in &other.pcs {
            *self.pcs.entry(pc).or_default() += n;
        }
        for (&pc, &n) in &other.hot_blocks {
            *self.hot_blocks.entry(pc).or_default() += n;
        }
    }

    /// No dynamic instructions recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.opcodes.is_empty()
    }

    /// Total dynamic instructions in the signature.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.opcodes.values().sum()
    }

    /// Dynamic counts grouped into `unit/category/type` classes (the
    /// paper's Fig. 4 taxonomy), e.g. `iVALU/ADD/INT`.
    #[must_use]
    pub fn classes(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (&op, &n) in &self.opcodes {
            let key = format!(
                "{}/{}/{}",
                op.unit().label(),
                op.category().label(),
                op.data_type().label()
            );
            *out.entry(key).or_default() += n;
        }
        out
    }

    /// Functional units the observed traffic actually used, in report
    /// order.
    #[must_use]
    pub fn units_used(&self) -> Vec<FuncUnit> {
        FuncUnit::ALL
            .into_iter()
            .filter(|&u| self.opcodes.keys().any(|op| op.unit() == u))
            .collect()
    }

    /// The minimal unit-level preset covering this signature: the full
    /// ISA minus every functional unit the traffic never touched (the
    /// paper's Fig. 6 trimming axis). Returns the preset's name — used
    /// units joined by `+`, lowercase, or `full` when every unit is hot —
    /// and the trim set itself.
    #[must_use]
    pub fn minimal_preset(&self) -> (String, TrimSet) {
        let used = self.units_used();
        if used.len() == FuncUnit::ALL.len() {
            return ("full".to_owned(), TrimSet::full());
        }
        let kept: TrimSet = Opcode::ALL
            .iter()
            .copied()
            .filter(|op| used.contains(&op.unit()))
            .collect();
        let name = used
            .iter()
            .map(|u| u.label().to_lowercase())
            .collect::<Vec<_>>()
            .join("+");
        (name, kept)
    }

    /// The exact opcode-level trim set (Algorithm 1's output for this
    /// traffic): keep precisely the opcodes observed.
    #[must_use]
    pub fn exact_trim(&self) -> TrimSet {
        self.opcodes.keys().copied().collect()
    }

    /// Render the deterministic text report the golden-file test pins:
    /// totals, class histogram, hot blocks, and the minimal covering
    /// preset.
    #[must_use]
    pub fn report(&self) -> String {
        let total = self.instructions().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel {}: {} instructions, {} distinct opcodes",
            self.kernel,
            self.instructions(),
            self.opcodes.len()
        );
        let _ = writeln!(out, "  classes:");
        for (class, n) in self.classes() {
            let _ = writeln!(
                out,
                "    {class:<24} {n:>10}  {:>5.1}%",
                n as f64 * 100.0 / total as f64
            );
        }
        let _ = writeln!(out, "  hot blocks:");
        let mut blocks: Vec<(u32, u64)> = self.hot_blocks.iter().map(|(&p, &n)| (p, n)).collect();
        blocks.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (pc, n) in blocks.into_iter().take(8) {
            let _ = writeln!(
                out,
                "    pc {pc:#06x} {n:>12}  {:>5.1}%",
                n as f64 * 100.0 / total as f64
            );
        }
        let units = self
            .units_used()
            .iter()
            .map(|u| u.label())
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "  units: {units}");
        let (preset, kept) = self.minimal_preset();
        let _ = writeln!(
            out,
            "  minimal covering preset: {preset} ({} of {} opcodes)",
            kept.len(),
            Opcode::ALL.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(start: u32, ops: &[(u32, Opcode)], term: Option<(u32, Opcode)>) -> BlockProfile {
        BlockProfile {
            start,
            ops: ops.to_vec(),
            term,
        }
    }

    #[test]
    fn tiers_agree_on_a_two_block_program() {
        let blocks = vec![
            block(
                0,
                &[(0, Opcode::SMovB32), (1, Opcode::VAddI32)],
                Some((2, Opcode::SCbranchScc1)),
            ),
            block(3, &[(3, Opcode::VMulLoI32)], Some((4, Opcode::SEndpgm))),
        ];
        // Block 0 ran 5 times, block 1 ran 2 times.
        let mut pc_counts = vec![0u64; 5];
        for (pc, n) in [(0, 5), (1, 5), (2, 5), (3, 2), (4, 2)] {
            pc_counts[pc] = n;
        }
        let cycle = InstrSignature::from_pc_counts("k", &blocks, &pc_counts);
        let fast = InstrSignature::from_block_dispatches("k", &blocks, &[5, 2]);
        assert_eq!(cycle, fast);
        assert_eq!(cycle.instructions(), 19);
        assert_eq!(cycle.hot_blocks[&0], 15);
        assert_eq!(cycle.hot_blocks[&3], 4);
    }

    #[test]
    fn merge_collapses_kernel_labels() {
        let blocks = vec![block(0, &[(0, Opcode::SEndpgm)], None)];
        let a = InstrSignature::from_block_dispatches("a", &blocks, &[1]);
        let b = InstrSignature::from_block_dispatches("b", &blocks, &[1]);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.kernel, "*");
        assert_eq!(ab.instructions(), 2);
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa.kernel, "a");
    }

    #[test]
    fn empty_signature_is_merge_identity() {
        let blocks = vec![block(
            0,
            &[(0, Opcode::VAddF32)],
            Some((1, Opcode::SEndpgm)),
        )];
        let a = InstrSignature::from_block_dispatches("fp", &blocks, &[3]);
        let mut id = InstrSignature::default();
        id.merge(&a);
        assert_eq!(id, a);
    }

    #[test]
    fn minimal_preset_drops_unused_units() {
        let blocks = vec![block(
            0,
            &[(0, Opcode::SMovB32), (1, Opcode::VAddI32)],
            Some((2, Opcode::SEndpgm)),
        )];
        let sig = InstrSignature::from_block_dispatches("int", &blocks, &[1]);
        let (name, kept) = sig.minimal_preset();
        assert_eq!(name, "salu+ivalu+branch");
        assert!(kept.contains(Opcode::VMulLoI32), "whole used units stay");
        assert!(!kept.contains(Opcode::VAddF32), "unused SIMF trimmed");
        assert!(kept.unit_unused(FuncUnit::Simf));
        assert!(kept.unit_unused(FuncUnit::Lsu));
    }

    #[test]
    fn serde_round_trip() {
        let blocks = vec![block(
            0,
            &[(0, Opcode::VAddF32), (2, Opcode::BufferLoadDword)],
            Some((4, Opcode::SEndpgm)),
        )];
        let sig = InstrSignature::from_block_dispatches("rt", &blocks, &[7]);
        let json = serde_json::to_string(&sig).unwrap();
        let back: InstrSignature = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sig);
    }
}
