//! End-to-end job spans: the wall-to-wall timeline of one served job.
//!
//! A [`SpanTrack`] is minted at serve admission ([`SpanRecorder::begin`])
//! and advanced with [`SpanTrack::mark`] at every state change — queue
//! wait, checkpoint restore, execution slice, snapshot capture, reply.
//! `mark` closes the open span at the same instant it opens the next, so
//! the finished sequence tiles the job's lifetime *exactly*: no gaps, no
//! overlaps, by construction rather than by bookkeeping discipline
//! ([`JobSpans::check_tiling`] verifies the invariant anyway, and a
//! property test hammers it).
//!
//! Timelines export as JSONL (one [`JobSpans`] per line, [`to_jsonl`]) or
//! as Chrome `trace_event` tracks ([`to_chrome`]) that sit alongside the
//! `scratch-trace` CU/engine processes in the same viewer, correlated
//! through the shared job id.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::value::{Map, Value};
use serde::{Deserialize, Serialize};

/// What a job was doing during one span of its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpanKind {
    /// Waiting in the tenant queue (also the inter-slice wait while the
    /// job's checkpoint sits on the shelf).
    Queue,
    /// Deserialising and restoring a checkpoint at slice entry.
    Restore,
    /// Executing on a worker.
    Run,
    /// Capturing and serialising a checkpoint at quantum expiry.
    Capture,
    /// Writing the response back to the client.
    Reply,
    /// Re-admission from the write-ahead log after a restart: the span
    /// from recovery scan to the job's re-entry into the queue. Only
    /// replayed jobs open with it; live admissions open with `Queue`.
    Replay,
}

impl SpanKind {
    /// Stable lowercase label (JSONL field values, Chrome slice names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Queue => "queue",
            SpanKind::Restore => "restore",
            SpanKind::Run => "run",
            SpanKind::Capture => "capture",
            SpanKind::Reply => "reply",
            SpanKind::Replay => "replay",
        }
    }
}

/// One contiguous stretch of a job's lifetime, in microseconds since the
/// recorder's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// What the job was doing.
    pub kind: SpanKind,
    /// Start, µs since the recorder epoch.
    pub start_us: u64,
    /// End, µs since the recorder epoch; `end_us >= start_us`.
    pub end_us: u64,
}

impl Span {
    /// Span duration in microseconds.
    #[must_use]
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// A finished job's complete timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpans {
    /// Serving-layer job id (matches the `job` field on trace events).
    pub job: u64,
    /// Tenant the job belongs to.
    pub tenant: String,
    /// Kernel label the job ran.
    pub label: String,
    /// The timeline, in order; tiles `[spans[0].start_us,
    /// spans.last().end_us]` exactly.
    pub spans: Vec<Span>,
}

impl JobSpans {
    /// Verify the exact-tiling invariant: a non-empty timeline that opens
    /// with a [`SpanKind::Queue`] admission span (or [`SpanKind::Replay`]
    /// for a job re-admitted from the write-ahead log), where every span
    /// is well-formed (`start <= end`) and each span starts at the very
    /// microsecond the previous one ended.
    ///
    /// The last span is *not* required to be [`SpanKind::Reply`]: a job
    /// shed or cancelled while queued legitimately ends on `Queue`.
    ///
    /// # Errors
    ///
    /// Describes the first violated clause.
    pub fn check_tiling(&self) -> Result<(), String> {
        let first = self
            .spans
            .first()
            .ok_or_else(|| format!("job {}: empty timeline", self.job))?;
        if first.kind != SpanKind::Queue && first.kind != SpanKind::Replay {
            return Err(format!(
                "job {}: timeline opens with {}, not an admission (queue/replay) span",
                self.job,
                first.kind.label()
            ));
        }
        for (i, s) in self.spans.iter().enumerate() {
            if s.start_us > s.end_us {
                return Err(format!(
                    "job {}: span {i} ({}) ends before it starts ({} > {})",
                    self.job,
                    s.kind.label(),
                    s.start_us,
                    s.end_us
                ));
            }
        }
        for (i, pair) in self.spans.windows(2).enumerate() {
            if pair[0].end_us != pair[1].start_us {
                return Err(format!(
                    "job {}: gap/overlap between span {i} ({} ends {}) and span {} ({} starts {})",
                    self.job,
                    pair[0].kind.label(),
                    pair[0].end_us,
                    i + 1,
                    pair[1].kind.label(),
                    pair[1].start_us
                ));
            }
        }
        Ok(())
    }

    /// Wall-to-wall lifetime in microseconds.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        match (self.spans.first(), self.spans.last()) {
            (Some(a), Some(b)) => b.end_us.saturating_sub(a.start_us),
            _ => 0,
        }
    }

    /// Microseconds spent in spans of `kind`.
    #[must_use]
    pub fn kind_us(&self, kind: SpanKind) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(Span::dur_us)
            .sum()
    }

    /// Number of execution slices (i.e. [`SpanKind::Run`] spans).
    #[must_use]
    pub fn slices(&self) -> usize {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Run)
            .count()
    }
}

/// The open end of a track: the span currently in progress.
#[derive(Debug)]
struct TrackState {
    tenant: String,
    label: String,
    open_kind: SpanKind,
    open_since_us: u64,
    spans: Vec<Span>,
    done: bool,
}

/// Mints and collects job timelines. One recorder per serve instance; its
/// construction instant is the epoch all span timestamps count from.
#[derive(Debug)]
pub struct SpanRecorder {
    epoch: Instant,
    finished: Mutex<Vec<JobSpans>>,
}

impl SpanRecorder {
    /// A fresh recorder whose epoch is *now*.
    #[must_use]
    pub fn new() -> Arc<SpanRecorder> {
        Arc::new(SpanRecorder {
            epoch: Instant::now(),
            finished: Mutex::new(Vec::new()),
        })
    }

    /// Microseconds elapsed since the recorder epoch.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Open a track for a newly admitted job. The timeline starts in
    /// [`SpanKind::Queue`] at this very instant; the job id is bound
    /// later, at [`SpanTrack::finish`], because admission happens before
    /// the engine mints the id.
    #[must_use]
    pub fn begin(self: &Arc<SpanRecorder>, tenant: &str, label: &str) -> Arc<SpanTrack> {
        let now = self.now_us();
        Arc::new(SpanTrack {
            recorder: Arc::clone(self),
            state: Mutex::new(TrackState {
                tenant: tenant.to_owned(),
                label: label.to_owned(),
                open_kind: SpanKind::Queue,
                open_since_us: now,
                spans: Vec::new(),
                done: false,
            }),
        })
    }

    /// Open a track for a job re-admitted from the write-ahead log: the
    /// timeline opens in [`SpanKind::Replay`] instead of `Queue`, so
    /// recovery time is attributed distinctly from live queueing.
    #[must_use]
    pub fn begin_replayed(self: &Arc<SpanRecorder>, tenant: &str, label: &str) -> Arc<SpanTrack> {
        let now = self.now_us();
        Arc::new(SpanTrack {
            recorder: Arc::clone(self),
            state: Mutex::new(TrackState {
                tenant: tenant.to_owned(),
                label: label.to_owned(),
                open_kind: SpanKind::Replay,
                open_since_us: now,
                spans: Vec::new(),
                done: false,
            }),
        })
    }

    /// Drain every finished timeline collected so far.
    #[must_use]
    pub fn take_finished(&self) -> Vec<JobSpans> {
        std::mem::take(&mut self.finished.lock().expect("span recorder lock"))
    }

    fn push_finished(&self, job: JobSpans) {
        self.finished.lock().expect("span recorder lock").push(job);
    }
}

/// One job's in-progress timeline. Cheap to clone (it's handed across the
/// admission thread, the worker running the slices, and the reply path)
/// via `Arc`.
#[derive(Debug)]
pub struct SpanTrack {
    recorder: Arc<SpanRecorder>,
    state: Mutex<TrackState>,
}

impl SpanTrack {
    /// Close the open span and open a `kind` span, both at the same
    /// instant — the handoff is what makes the finished timeline tile
    /// exactly. Marking after [`SpanTrack::finish`] is a no-op.
    pub fn mark(&self, kind: SpanKind) {
        let now = self.recorder.now_us();
        let mut st = self.state.lock().expect("span track lock");
        if st.done {
            return;
        }
        let closed = Span {
            kind: st.open_kind,
            start_us: st.open_since_us,
            end_us: now.max(st.open_since_us),
        };
        st.spans.push(closed);
        st.open_kind = kind;
        st.open_since_us = closed.end_us;
    }

    /// Close the timeline, bind the engine-minted `job` id, and hand the
    /// finished [`JobSpans`] to the recorder. Idempotent: only the first
    /// call publishes.
    pub fn finish(&self, job: u64) {
        let now = self.recorder.now_us();
        let mut st = self.state.lock().expect("span track lock");
        if st.done {
            return;
        }
        st.done = true;
        let closed = Span {
            kind: st.open_kind,
            start_us: st.open_since_us,
            end_us: now.max(st.open_since_us),
        };
        st.spans.push(closed);
        self.recorder.push_finished(JobSpans {
            job,
            tenant: std::mem::take(&mut st.tenant),
            label: std::mem::take(&mut st.label),
            spans: std::mem::take(&mut st.spans),
        });
    }
}

/// Serialise timelines as JSONL: one [`JobSpans`] JSON object per line.
#[must_use]
pub fn to_jsonl(jobs: &[JobSpans]) -> String {
    let mut out = String::new();
    for j in jobs {
        if let Ok(line) = serde_json::to_string(j) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Process id of the serve-job timeline tracks. Far above the CU pids and
/// the engine pid (9 000 000) used by `scratch-trace`'s Chrome exporter,
/// so merged documents never collide.
pub const SERVE_PID: u64 = 9_500_000;

fn obj(pairs: &[(&str, Value)]) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert((*k).to_owned(), v.clone());
    }
    Value::Object(m)
}

fn s(v: &str) -> Value {
    Value::Str(v.to_owned())
}

fn n(v: u64) -> Value {
    Value::U64(v)
}

/// Convert finished timelines into a Chrome `trace_event` document: one
/// `serve` process, one thread per job (tid = job id), one `X` slice per
/// span. The result serialises with `Display` / `to_json_compact` and
/// loads in `chrome://tracing` or Perfetto — alone, or concatenated into
/// the event list of a `scratch-trace` export, where the shared job id in
/// slice args ties the two views together.
#[must_use]
pub fn to_chrome(jobs: &[JobSpans]) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(jobs.len() * 8 + 2);
    events.push(obj(&[
        ("name", s("process_name")),
        ("ph", s("M")),
        ("pid", n(SERVE_PID)),
        ("args", obj(&[("name", s("serve"))])),
    ]));
    for j in jobs {
        events.push(obj(&[
            ("name", s("thread_name")),
            ("ph", s("M")),
            ("pid", n(SERVE_PID)),
            ("tid", n(j.job)),
            (
                "args",
                obj(&[("name", s(&format!("job {} ({})", j.job, j.tenant)))]),
            ),
        ]));
        for sp in &j.spans {
            events.push(obj(&[
                ("name", s(sp.kind.label())),
                ("ph", s("X")),
                ("pid", n(SERVE_PID)),
                ("tid", n(j.job)),
                ("ts", n(sp.start_us)),
                ("dur", n(sp.dur_us().max(1))),
                (
                    "args",
                    obj(&[
                        ("job", n(j.job)),
                        ("tenant", s(&j.tenant)),
                        ("kernel", s(&j.label)),
                    ]),
                ),
            ]));
        }
    }
    let mut doc = Map::new();
    doc.insert("traceEvents".to_owned(), Value::Array(events));
    Value::Object(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_tile_exactly() {
        let rec = SpanRecorder::new();
        let track = rec.begin("acme", "saxpy");
        // A three-slice preemptive lifetime.
        for kind in [
            SpanKind::Run,
            SpanKind::Capture,
            SpanKind::Queue,
            SpanKind::Restore,
            SpanKind::Run,
            SpanKind::Capture,
            SpanKind::Queue,
            SpanKind::Restore,
            SpanKind::Run,
            SpanKind::Reply,
        ] {
            track.mark(kind);
        }
        track.finish(42);
        let jobs = rec.take_finished();
        assert_eq!(jobs.len(), 1);
        let j = &jobs[0];
        assert_eq!(j.job, 42);
        assert_eq!(j.tenant, "acme");
        assert_eq!(j.spans.len(), 11);
        assert_eq!(j.spans[0].kind, SpanKind::Queue);
        assert_eq!(j.spans.last().unwrap().kind, SpanKind::Reply);
        assert_eq!(j.slices(), 3);
        j.check_tiling().unwrap();
        assert_eq!(
            j.total_us(),
            j.spans.iter().map(Span::dur_us).sum::<u64>(),
            "tiling means kinds partition the lifetime"
        );
    }

    #[test]
    fn finish_is_idempotent_and_mark_after_finish_is_noop() {
        let rec = SpanRecorder::new();
        let track = rec.begin("t", "k");
        track.mark(SpanKind::Run);
        track.finish(1);
        track.mark(SpanKind::Capture);
        track.finish(2);
        let jobs = rec.take_finished();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].job, 1);
        assert!(rec.take_finished().is_empty());
    }

    #[test]
    fn tiling_check_rejects_gaps_and_bad_openers() {
        let good = Span {
            kind: SpanKind::Queue,
            start_us: 0,
            end_us: 5,
        };
        let gapped = JobSpans {
            job: 7,
            tenant: "t".into(),
            label: "k".into(),
            spans: vec![
                good,
                Span {
                    kind: SpanKind::Run,
                    start_us: 6,
                    end_us: 9,
                },
            ],
        };
        let err = gapped.check_tiling().unwrap_err();
        assert!(err.contains("gap/overlap"), "{err}");

        let bad_open = JobSpans {
            spans: vec![Span {
                kind: SpanKind::Run,
                start_us: 0,
                end_us: 1,
            }],
            ..gapped.clone()
        };
        assert!(bad_open.check_tiling().is_err());

        let empty = JobSpans {
            spans: Vec::new(),
            ..gapped
        };
        assert!(empty.check_tiling().is_err());
    }

    #[test]
    fn jsonl_and_chrome_round_trip_job_fields() {
        let rec = SpanRecorder::new();
        let track = rec.begin("acme", "fir");
        track.mark(SpanKind::Run);
        track.mark(SpanKind::Reply);
        track.finish(9);
        let jobs = rec.take_finished();

        let jsonl = to_jsonl(&jobs);
        let back: JobSpans = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(back, jobs[0]);

        let doc = to_chrome(&jobs).to_string();
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"serve\""));
        assert!(doc.contains("\"tid\":9"));
        assert!(doc.contains("\"queue\""));
        assert!(doc.contains("\"reply\""));
    }
}
