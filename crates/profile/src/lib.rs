//! # scratch-profile
//!
//! The observability spine of the serving stack, in three layers:
//!
//! 1. **Job spans** ([`span`]): a per-job timeline minted at serve
//!    admission and advanced through every queue wait, checkpoint
//!    restore, execution slice, snapshot capture, and the final reply.
//!    Span sequences tile the job's wall-to-wall lifetime exactly — no
//!    gaps, no overlaps, by construction ([`SpanTrack::mark`] closes one
//!    span at the instant it opens the next) — and export as JSONL or
//!    Chrome `trace_event` tracks correlated with `scratch-trace` CU
//!    events through the shared job id.
//! 2. **Instruction signatures** ([`signature`]): per-kernel
//!    instruction-usage profiles ([`InstrSignature`]) aggregated from the
//!    cycle tier's per-PC retire counters or the fast tier's per-block
//!    dispatch counters. Signatures are serde round-trippable and
//!    mergeable (pointwise sums — associative and commutative), and map
//!    directly to the minimal trim preset covering the observed traffic:
//!    the trim-cache key the online auto-trimming roadmap item needs.
//! 3. **SLO telemetry** ([`slo`]): rolling-window latency quantiles,
//!    shed rate, and error-budget burn per tenant ([`SloWindow`]), cheap
//!    enough to update on every completion.
//!
//! The crate deliberately depends only on the ISA, CU, and fastpath
//! layers — the serve daemon, tools, and experiments wire it up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod signature;
pub mod slo;
pub mod span;

pub use signature::InstrSignature;
pub use slo::{SloSnapshot, SloWindow};
pub use span::{JobSpans, Span, SpanKind, SpanRecorder, SpanTrack};
