//! Integration properties of [`InstrSignature`]:
//!
//! * the rendered report is stable (golden file);
//! * merge is associative and commutative (proptest over random
//!   signatures), so aggregation order never matters;
//! * the cycle tier's per-PC retire counters and the fast tier's
//!   per-block dispatch counters build *identical* signatures (compiled
//!   and interpreter-fallback ops alike run exactly once per block
//!   dispatch, so the tiers count the same stream);
//! * enabling the profiler changes no reported cycles and no output
//!   words (proptest over random kernels × system presets).

use std::collections::BTreeMap;

use proptest::prelude::*;

use scratch_asm::{Kernel, KernelBuilder};
use scratch_check::GenKernel;
use scratch_fastpath::translate;
use scratch_isa::{Opcode, Operand};
use scratch_profile::InstrSignature;
use scratch_system::{ExecMode, System, SystemConfig, SystemKind};

/// Run `kernel` on the cycle tier with profiling and return its signature
/// (counters attributed to blocks by the fastpath translator's table).
fn cycle_signature(kernel: &Kernel, gk: Option<&GenKernel>, wgs: u32) -> InstrSignature {
    let config = SystemConfig::preset(SystemKind::DcdPm).with_profile(true);
    let mut sys = System::new(config, kernel).expect("system");
    setup_and_dispatch(&mut sys, gk, wgs);
    let prog = translate(kernel, &sys.config().cu).expect("translates");
    InstrSignature::from_pc_counts(kernel.name(), &prog.block_profiles(), sys.pc_profile(0))
}

/// Run `kernel` on the fast tier and return its signature, built from
/// per-block dispatch counters.
fn fast_signature(kernel: &Kernel, gk: Option<&GenKernel>, wgs: u32) -> InstrSignature {
    let config = SystemConfig::preset(SystemKind::DcdPm)
        .with_exec(ExecMode::Fast)
        .with_profile(true);
    let mut sys = System::new(config, kernel).expect("system");
    setup_and_dispatch(&mut sys, gk, wgs);
    let stats = sys.fast_stats(0).expect("fast tier ran");
    let blocks = sys.fast_block_profiles(0).expect("fast tier translated");
    InstrSignature::from_block_dispatches(kernel.name(), &blocks, &stats.block_dispatches)
}

/// Allocate buffers the way the examples do (generated kernels also get
/// their input image), then dispatch one row of `wgs` workgroups.
/// Returns the output buffer's address.
fn setup_and_dispatch(sys: &mut System, gk: Option<&GenKernel>, wgs: u32) -> u64 {
    let out = sys.alloc(1 << 16);
    match gk {
        Some(gk) => {
            let inp = sys.alloc_words(&gk.image);
            sys.set_args(&[out as u32, inp as u32]);
        }
        None => sys.set_args(&[out as u32]),
    }
    sys.dispatch([wgs, 1, 1]).expect("kernel runs");
    out
}

/// A deterministic straight-line kernel mixing integer VALU, FP VALU and
/// the final branch-unit `endpgm` — enough classes to exercise the
/// report's histogram, hot-block and preset sections.
fn mixed_kernel() -> Kernel {
    let mut b = KernelBuilder::new("report_golden");
    b.vgprs(8).sgprs(24).workgroup_size(4);
    for i in 0..6u16 {
        let dst = 1 + (i % 4) as u8;
        b.vop3a(
            Opcode::VMulLoI32,
            dst,
            Operand::Vgpr(0),
            Operand::IntConst(3),
            None,
        )
        .unwrap();
    }
    for _ in 0..3 {
        b.vop2(Opcode::VMulF32, 5, Operand::FloatConst(2.0), 0)
            .unwrap();
    }
    b.endpgm().unwrap();
    b.finish().unwrap()
}

#[test]
fn report_matches_the_golden_file() {
    let kernel = mixed_kernel();
    let sig = cycle_signature(&kernel, None, 2);
    let report = sig.report();
    let golden = include_str!("golden/report_golden.txt");
    assert_eq!(
        report, golden,
        "signature report drifted from tests/golden/report_golden.txt;\n\
         if the change is intentional, regenerate the golden file:\n---\n{report}---"
    );
}

#[test]
fn cycle_and_fast_tiers_build_identical_signatures() {
    let mut compared = 0;
    for seed in 0..64u64 {
        let gk = GenKernel::generate(seed);
        let Ok(kernel) = gk.build() else { continue };
        let fast = fast_signature(&kernel, Some(&gk), gk.wgs);
        let cycle = cycle_signature(&kernel, Some(&gk), gk.wgs);
        assert_eq!(
            cycle, fast,
            "seed {seed}: per-PC and per-block profiles disagree"
        );
        compared += 1;
    }
    assert!(
        compared >= 10,
        "only {compared} buildable kernels in 64 seeds — generator drifted?"
    );
}

/// Random signatures for the merge laws: sparse maps over a small pc
/// range so merges actually collide on keys.
fn arb_signature() -> impl Strategy<Value = InstrSignature> {
    let opcodes = proptest::collection::vec((0..40usize, 1..1000u64), 0..12).prop_map(|v| {
        v.into_iter()
            .map(|(i, n)| (Opcode::ALL[i % Opcode::ALL.len()], n))
            .collect::<BTreeMap<_, _>>()
    });
    let pcs = proptest::collection::vec((0..64u32, 1..1000u64), 0..16)
        .prop_map(|v| v.into_iter().collect::<BTreeMap<_, _>>());
    let hot = proptest::collection::vec((0..16u32, 1..1000u64), 0..8)
        .prop_map(|v| v.into_iter().collect::<BTreeMap<_, _>>());
    (0..4u8, opcodes, pcs, hot).prop_map(|(name, opcodes, pcs, hot_blocks)| InstrSignature {
        kernel: ["alpha", "beta", "gamma", "delta"][name as usize].to_owned(),
        opcodes,
        pcs,
        hot_blocks,
    })
}

fn merged(a: &InstrSignature, b: &InstrSignature) -> InstrSignature {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in arb_signature(), b in arb_signature()) {
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        // The label depends on merge order only through which non-`*`
        // name wins ties; the counters never do.
        prop_assert_eq!(&ab.opcodes, &ba.opcodes);
        prop_assert_eq!(&ab.pcs, &ba.pcs);
        prop_assert_eq!(&ab.hot_blocks, &ba.hot_blocks);
        if a.kernel == b.kernel {
            prop_assert_eq!(&ab.kernel, &ba.kernel);
        }
    }

    #[test]
    fn merge_is_associative(
        a in arb_signature(),
        b in arb_signature(),
        c in arb_signature(),
    ) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_identity_is_the_empty_signature(a in arb_signature()) {
        prop_assert_eq!(merged(&a, &InstrSignature::default()), a.clone());
        prop_assert_eq!(merged(&InstrSignature::default(), &a), a);
    }

    #[test]
    fn profiling_changes_no_cycles_and_no_words(
        seed in 0..10_000u64,
        preset in 0..3usize,
    ) {
        let kind = [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm][preset];
        let gk = GenKernel::generate(seed);
        let Ok(kernel) = gk.build() else { return Ok(()) };
        let run = |profile: bool| {
            let config = SystemConfig::preset(kind).with_profile(profile);
            let mut sys = System::new(config, &kernel).expect("system");
            let out = setup_and_dispatch(&mut sys, Some(&gk), gk.wgs);
            let report = sys.report();
            let out_words = (gk.out_bytes().max(4) / 4) as usize;
            let words = sys.read_words(out, out_words);
            (report.cu_cycles, report.instructions(), words)
        };
        let off = run(false);
        let on = run(true);
        prop_assert_eq!(off, on, "profiling perturbed the simulation (seed {}, {:?})", seed, kind);
    }
}
