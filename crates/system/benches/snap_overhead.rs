//! Checkpoint-path overhead: what preemption and serialisation cost on
//! top of an uninterrupted dispatch. Four questions, one group each —
//! how much slower is a sliced dispatch (no serialisation), how much
//! slower is the full serve-style path (checkpoint → encode → decode →
//! restore between every quantum), and what do a single capture, encode,
//! and decode+restore cost in isolation. The snapshot size is printed so
//! the byte cost is on the record next to the latencies.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use scratch_asm::Kernel;
use scratch_asm::KernelBuilder;
use scratch_isa::{Opcode, Operand, SmrdOffset};
use scratch_system::{abi, DispatchProgress, System, SystemCheckpoint, SystemConfig, SystemKind};

const WG_SIZE: u32 = 64;
const WGS: u32 = 512;

/// out[gid] = in[gid] + 1 over the X grid — the same memory-bound shape
/// the system unit tests dispatch, sized to run thousands of CU cycles.
fn add_one_kernel() -> Kernel {
    let mut b = KernelBuilder::new("snap_bench");
    b.vgprs(8).sgprs(32).workgroup_size(WG_SIZE);
    // s20 = in, s21 = out
    b.smrd(
        Opcode::SBufferLoadDwordx2,
        Operand::Sgpr(20),
        abi::CONST_BUF1,
        SmrdOffset::Imm(0),
    )
    .unwrap();
    b.waitcnt(None, Some(0)).unwrap();
    b.sop2(
        Opcode::SMulI32,
        Operand::Sgpr(0),
        Operand::Sgpr(abi::WG_ID_X),
        Operand::Literal(WG_SIZE),
    )
    .unwrap();
    b.vop2(Opcode::VAddI32, 1, Operand::Sgpr(0), abi::TID_X)
        .unwrap();
    b.vop2(Opcode::VLshlrevB32, 1, Operand::IntConst(2), 1)
        .unwrap();
    b.mubuf(
        Opcode::BufferLoadDword,
        2,
        1,
        abi::UAV_DESC,
        Operand::Sgpr(20),
        0,
    )
    .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    b.vop2(Opcode::VAddI32, 2, Operand::IntConst(1), 2).unwrap();
    b.mubuf(
        Opcode::BufferStoreDword,
        2,
        1,
        abi::UAV_DESC,
        Operand::Sgpr(21),
        0,
    )
    .unwrap();
    b.waitcnt(Some(0), None).unwrap();
    b.endpgm().unwrap();
    b.finish().unwrap()
}

/// A fresh system with buffers allocated and args set, ready to dispatch.
fn ready_system(kernel: &Kernel) -> System {
    let n = WGS * WG_SIZE;
    let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), kernel).expect("system");
    let inp = sys.alloc(u64::from(n) * 4);
    let out = sys.alloc(u64::from(n) * 4);
    sys.write_words(inp, &(0..n).collect::<Vec<u32>>());
    sys.set_args(&[inp as u32, out as u32]);
    sys
}

/// A system paused at its first quantum boundary.
fn paused_system(kernel: &Kernel, quantum: u64) -> System {
    let mut sys = ready_system(kernel);
    let progress = sys
        .dispatch_preemptible([WGS, 1, 1], quantum)
        .expect("dispatch");
    assert_eq!(
        progress,
        DispatchProgress::Paused,
        "quantum must not finish"
    );
    sys
}

fn snap_overhead(c: &mut Criterion) {
    let kernel = add_one_kernel();

    // Reference cycle count; the quantum slices it into ~8 pauses.
    let ref_cycles = {
        let mut sys = ready_system(&kernel);
        sys.dispatch([WGS, 1, 1]).expect("dispatch")
    };
    let quantum = (ref_cycles / 8).max(1);
    let ck = paused_system(&kernel, quantum)
        .checkpoint()
        .expect("checkpoint");
    let encoded = scratch_snap::to_bytes(&ck);
    println!(
        "snap_overhead: {ref_cycles} CU cycles uninterrupted, quantum {quantum}, \
         checkpoint {} bytes encoded",
        encoded.len()
    );

    let mut group = c.benchmark_group("snap_overhead");
    group.sample_size(20).throughput(Throughput::Elements(1));

    // Every dispatch variant pays the same system-construction cost
    // inside the timed closure (the vendored criterion has no batched
    // setup), so the differences between them are the preemption and
    // serialisation overheads alone.

    // Baseline: one uninterrupted dispatch.
    group.bench_function("dispatch_uninterrupted", |b| {
        b.iter(|| {
            let mut sys = ready_system(&kernel);
            sys.dispatch([WGS, 1, 1]).expect("dispatch")
        });
    });

    // Sliced in-process: pause/resume every quantum, no serialisation.
    group.bench_function("dispatch_preempted", |b| {
        b.iter(|| {
            let mut sys = ready_system(&kernel);
            let mut progress = sys
                .dispatch_preemptible([WGS, 1, 1], quantum)
                .expect("dispatch");
            while progress == DispatchProgress::Paused {
                progress = sys.resume_dispatch(quantum).expect("resume");
            }
        });
    });

    // The full serve-style path: checkpoint → binary encode → decode →
    // restore into a fresh system at every quantum boundary.
    group.bench_function("dispatch_preempted_serde", |b| {
        b.iter(|| {
            let mut sys = ready_system(&kernel);
            let mut progress = sys
                .dispatch_preemptible([WGS, 1, 1], quantum)
                .expect("dispatch");
            while progress == DispatchProgress::Paused {
                let ck = sys.checkpoint().expect("checkpoint");
                drop(sys);
                let bytes = scratch_snap::to_bytes(&ck);
                let decoded: SystemCheckpoint = scratch_snap::from_bytes(&bytes).expect("decode");
                sys = System::restore(&decoded, None).expect("restore");
                progress = sys.resume_dispatch(quantum).expect("resume");
            }
        });
    });

    // The pieces in isolation, on one paused machine.
    let sys = paused_system(&kernel, quantum);
    group.bench_function("checkpoint_capture", |b| {
        b.iter(|| sys.checkpoint().expect("checkpoint"));
    });
    group.bench_function("checkpoint_encode", |b| {
        b.iter(|| scratch_snap::to_bytes(&ck));
    });
    group.bench_function("checkpoint_decode_restore", |b| {
        b.iter(|| {
            let decoded: SystemCheckpoint = scratch_snap::from_bytes(&encoded).expect("decode");
            System::restore(&decoded, None).expect("restore")
        });
    });

    group.finish();
}

criterion_group!(benches, snap_overhead);
criterion_main!(benches);
