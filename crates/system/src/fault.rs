//! System-level fault-injection specification.
//!
//! A [`FaultSpec`] attached to a
//! [`SystemConfig`](crate::SystemConfig) schedules deterministic upsets
//! for a run: per-CU pipeline faults (register/LDS/functional-unit
//! upsets, executed by `scratch-cu`'s [`ScheduledFaults`] hook) and
//! global-memory bit-flips applied host-side at dispatch boundaries.
//!
//! Memory upsets materialise *between* dispatches — before the epoch
//! views of a dispatch are created — never in the middle of one. This is
//! what keeps the dispatcher's serial-vs-parallel bit-identity invariant
//! intact: every CU shard of a dispatch observes the same (possibly
//! upset) memory image regardless of host scheduling, exactly as it would
//! on the FPGA where an SEU that lands mid-kernel is indistinguishable
//! from one that landed at the preceding launch edge for any location the
//! kernel has not yet read.

use serde::{Deserialize, Serialize};

pub use scratch_cu::{CuFault, FaultHook, FaultRecord, FaultTarget, ScheduledFaults};

/// A per-CU pipeline fault: which CU, and what fires inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuUpset {
    /// Compute-unit index the fault is installed on (modulo the CU count).
    pub cu: u8,
    /// The scheduled pipeline fault.
    pub fault: CuFault,
}

/// A single global-memory upset, applied host-side at a dispatch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemUpset {
    /// 0-based dispatch sequence number; the upset materialises right
    /// before this dispatch runs.
    pub dispatch: u64,
    /// Byte address (modulo the memory size).
    pub addr: u64,
    /// Bit within the byte (modulo 8).
    pub bit: u8,
}

/// Scheduled fault injection for a whole system run. Empty (the default)
/// means injection is off and the simulator takes its untouched fast
/// paths.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Pipeline faults, grouped per CU at system construction.
    pub cu: Vec<CuUpset>,
    /// Global-memory upsets, applied at dispatch boundaries.
    pub mem: Vec<MemUpset>,
}

impl FaultSpec {
    /// `true` when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cu.is_empty() && self.mem.is_empty()
    }

    /// Total scheduled upsets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cu.len() + self.mem.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_serde() {
        let spec = FaultSpec {
            cu: vec![CuUpset {
                cu: 1,
                fault: CuFault {
                    at_issue: 9,
                    target: FaultTarget::Sgpr { reg: 4, bit: 12 },
                },
            }],
            mem: vec![MemUpset {
                dispatch: 0,
                addr: 0x2000,
                bit: 7,
            }],
        };
        let v = serde::Serialize::to_sval(&spec);
        let back: FaultSpec = serde::Deserialize::from_sval(&v).unwrap();
        assert_eq!(back, spec);
        assert_eq!(spec.len(), 2);
        assert!(!spec.is_empty());
        assert!(FaultSpec::default().is_empty());
    }
}
