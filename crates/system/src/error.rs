use std::fmt;

use scratch_asm::AsmError;
use scratch_cu::CuError;

/// Errors raised by the full-system simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SystemError {
    /// Compute-unit level failure.
    Cu(CuError),
    /// Kernel construction/decoding failure.
    Asm(AsmError),
    /// Global memory is exhausted.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes remaining.
        available: u64,
    },
    /// The prefetch buffer cannot hold the requested range.
    PrefetchCapacity {
        /// Bytes requested for prefetch residence.
        requested: u64,
        /// Prefetch capacity in bytes.
        capacity: u64,
    },
    /// A dispatch was attempted before `set_args`.
    ArgsNotSet,
    /// A zero-sized grid or workgroup was dispatched.
    EmptyDispatch,
    /// A CU count outside what the FPGA allocator could ever place.
    InvalidCuCount {
        /// CUs requested.
        requested: u8,
        /// The device's allocator capacity bound
        /// ([`scratch_fpga::cu_capacity_bound`]).
        max: u8,
    },
    /// A preemptible-dispatch operation was used out of sequence, or a
    /// checkpoint did not match the system it was restored onto.
    Preemption {
        /// What was violated.
        reason: String,
    },
    /// Snapshot-codec failure, including requesting checkpoints of an
    /// execution tier that cannot take them
    /// ([`scratch_snap::SnapError::UnsupportedExecMode`]).
    Snap(scratch_snap::SnapError),
    /// The self-checking `ExecMode::FastWithTiming` tier found the fast
    /// path's memory writes diverging from the cycle pipeline's.
    FastDivergence {
        /// What diverged.
        what: String,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Cu(e) => write!(f, "compute unit: {e}"),
            SystemError::Asm(e) => write!(f, "kernel: {e}"),
            SystemError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "out of global memory ({requested} bytes requested, {available} free)"
                )
            }
            SystemError::PrefetchCapacity {
                requested,
                capacity,
            } => write!(
                f,
                "prefetch buffer capacity exceeded ({requested} bytes requested of {capacity})"
            ),
            SystemError::ArgsNotSet => write!(f, "kernel arguments not set before dispatch"),
            SystemError::EmptyDispatch => write!(f, "dispatch with an empty grid or workgroup"),
            SystemError::InvalidCuCount { requested, max } => write!(
                f,
                "{requested} compute units requested, but the device routes at most {max}"
            ),
            SystemError::Preemption { reason } => write!(f, "preemption: {reason}"),
            SystemError::Snap(e) => write!(f, "snapshot: {e}"),
            SystemError::FastDivergence { what } => {
                write!(f, "fast tier diverged from the cycle pipeline: {what}")
            }
        }
    }
}

impl std::error::Error for SystemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SystemError::Cu(e) => Some(e),
            SystemError::Asm(e) => Some(e),
            SystemError::Snap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CuError> for SystemError {
    fn from(e: CuError) -> Self {
        SystemError::Cu(e)
    }
}

impl From<AsmError> for SystemError {
    fn from(e: AsmError) -> Self {
        SystemError::Asm(e)
    }
}
