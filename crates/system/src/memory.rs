//! The shared global memory with configuration-dependent timing.

use serde::{Deserialize, Serialize};

use scratch_cu::{AccessKind, Memory};

/// Memory-path timing parameters, in CU cycles (50 MHz).
///
/// The *global* path models a request travelling CU → AXI interconnect →
/// MicroBlaze → MIG → DDR3 and back. In the original MIAOW system every
/// element of that path runs at the CU clock and the MicroBlaze services one
/// request at a time, so requests are serialised behind a single server
/// (`global_*` costs with the FIFO `server_free` queue). The dual-clock
/// domain (DCD) runs MicroBlaze+MIG at 200 MHz — a 4:1 ratio that divides
/// the service costs seen from the CU clock. The prefetch memory (PM) adds
/// a BRAM path next to the CU: accesses to preloaded ranges complete in a
/// few cycles, pipelined, without touching the global server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemTiming {
    /// Fixed service cost of a scalar (SMRD) global access.
    pub scalar_service: u64,
    /// Fixed service cost of a vector global access.
    pub vector_base: u64,
    /// Additional service cost per active lane of a vector global access
    /// (fixed-point, 1/256ths of a cycle).
    pub per_lane_q8: u64,
    /// Latency of a prefetch-buffer hit; `None` disables the prefetch path.
    pub prefetch_hit: Option<u64>,
    /// Additional prefetch cycles per 16-lane beat.
    pub prefetch_per_beat: u64,
    /// Prefetch buffer capacity in bytes (the BRAM blocks allocated to PM).
    pub prefetch_capacity: u64,
}

impl MemTiming {
    /// The original MIAOW system: single 50 MHz clock, strictly global
    /// accesses through the MicroBlaze. The service cost is dominated by
    /// the AXI polling handshake in the CU clock domain; the
    /// MicroBlaze-internal portion is the part a faster MB clock can cut.
    #[must_use]
    pub fn original() -> MemTiming {
        MemTiming {
            scalar_service: 280,
            vector_base: 320,
            per_lane_q8: 4 * 256,
            prefetch_hit: None,
            prefetch_per_beat: 0,
            prefetch_capacity: 0,
        }
    }

    /// Dual clock domain: MicroBlaze + MIG at 200 MHz (4:1). Only the
    /// MB-internal share of the service shrinks — the AXI handshake still
    /// runs at the CU clock, which is why the paper measures only ~1.17x
    /// from the DCD alone (§4.1.2).
    #[must_use]
    pub fn dcd() -> MemTiming {
        MemTiming {
            scalar_service: 216,
            vector_base: 256,
            per_lane_q8: 4 * 256,
            prefetch_hit: None,
            prefetch_per_beat: 0,
            prefetch_capacity: 0,
        }
    }

    /// DCD plus the in-FPGA prefetch memory (the paper's *baseline*).
    /// Capacity reflects the ~928 BRAM36 blocks the design dedicates to PM.
    #[must_use]
    pub fn dcd_pm() -> MemTiming {
        MemTiming {
            prefetch_hit: Some(6),
            prefetch_per_beat: 1,
            prefetch_capacity: 928 * 4096,
            ..MemTiming::dcd()
        }
    }

    fn vector_service(&self, lanes: u32) -> u64 {
        self.vector_base + (u64::from(lanes) * self.per_lane_q8) / 256
    }
}

/// Global memory shared by all compute units: functional storage plus the
/// configuration's timing model.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    data: Vec<u8>,
    timing: MemTiming,
    /// Byte ranges resident in the prefetch buffer.
    prefetched: Vec<(u64, u64)>,
    prefetched_bytes: u64,
    /// MicroBlaze server availability (FIFO queue over global accesses).
    server_free: u64,
    /// Number of CUs sharing the global path (bandwidth division).
    sharers: u32,
    /// Counters.
    pub(crate) global_accesses: u64,
    pub(crate) prefetch_hits: u64,
    /// Cycles requests spent queued behind the server before service began.
    pub(crate) queue_wait: u64,
}

impl SharedMemory {
    /// Allocate `size` bytes of zeroed global memory with `timing`.
    #[must_use]
    pub fn new(size: usize, timing: MemTiming) -> SharedMemory {
        SharedMemory {
            data: vec![0; size],
            timing,
            prefetched: Vec::new(),
            prefetched_bytes: 0,
            server_free: 0,
            sharers: 1,
            global_accesses: 0,
            prefetch_hits: 0,
            queue_wait: 0,
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the memory has zero capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Active timing parameters.
    #[must_use]
    pub fn timing(&self) -> &MemTiming {
        &self.timing
    }

    /// Set how many CUs share the global path (divides its bandwidth).
    pub fn set_sharers(&mut self, n: u32) {
        self.sharers = n.max(1);
    }

    /// Reset the timing queue (a new measurement run); functional contents
    /// and prefetch residency are preserved.
    pub fn reset_timing(&mut self) {
        self.server_free = 0;
        self.global_accesses = 0;
        self.prefetch_hits = 0;
        self.queue_wait = 0;
    }

    /// Mark `[addr, addr+len)` as resident in the prefetch buffer, as the
    /// MicroBlaze preload commands do at application start (§2.1.4).
    ///
    /// # Errors
    ///
    /// Fails when the configuration has no prefetch buffer or its capacity
    /// is exceeded.
    pub fn prefetch(&mut self, addr: u64, len: u64) -> Result<(), crate::SystemError> {
        let capacity = self.timing.prefetch_capacity;
        if self.timing.prefetch_hit.is_none() {
            return Err(crate::SystemError::PrefetchCapacity {
                requested: len,
                capacity: 0,
            });
        }
        if self.prefetched_bytes + len > capacity {
            return Err(crate::SystemError::PrefetchCapacity {
                requested: len,
                capacity,
            });
        }
        self.prefetched.push((addr, addr + len));
        self.prefetched_bytes += len;
        Ok(())
    }

    /// Mark as much of `[addr, addr+len)` as still fits the prefetch
    /// buffer; returns the number of bytes marked (the preload fills the
    /// BRAMs to capacity and the tail of oversized data spills to the
    /// global path).
    pub fn prefetch_partial(&mut self, addr: u64, len: u64) -> u64 {
        if self.timing.prefetch_hit.is_none() {
            return 0;
        }
        let room = self
            .timing
            .prefetch_capacity
            .saturating_sub(self.prefetched_bytes);
        let take = len.min(room);
        if take > 0 {
            self.prefetched.push((addr, addr + take));
            self.prefetched_bytes += take;
        }
        take
    }

    /// Bytes currently marked prefetch-resident.
    #[must_use]
    pub fn prefetched_bytes(&self) -> u64 {
        self.prefetched_bytes
    }

    /// `true` if `addr` hits the prefetch buffer.
    #[must_use]
    pub fn is_prefetched(&self, addr: u64) -> bool {
        self.timing.prefetch_hit.is_some()
            && self.prefetched.iter().any(|&(s, e)| addr >= s && addr < e)
    }

    /// Number of accesses that went down the global (MicroBlaze) path.
    #[must_use]
    pub fn global_accesses(&self) -> u64 {
        self.global_accesses
    }

    /// Number of accesses serviced by the prefetch buffer.
    #[must_use]
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits
    }

    /// Cycles requests spent queued behind the shared server before their
    /// service began (the memory-server congestion component of the stall
    /// taxonomy).
    #[must_use]
    pub fn queue_wait_cycles(&self) -> u64 {
        self.queue_wait
    }

    /// Copy words into memory (host-side write; no timing).
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit.
    pub fn write_words(&mut self, addr: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            let a = addr as usize + i * 4;
            self.data[a..a + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Read words back (host-side read; no timing).
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit.
    #[must_use]
    pub fn read_words(&self, addr: u64, count: usize) -> Vec<u32> {
        (0..count)
            .map(|i| {
                let a = addr as usize + i * 4;
                u32::from_le_bytes(self.data[a..a + 4].try_into().unwrap())
            })
            .collect()
    }
}

impl Memory for SharedMemory {
    fn read_u32(&mut self, addr: u64) -> u32 {
        let a = addr as usize;
        if a + 4 <= self.data.len() {
            u32::from_le_bytes(self.data[a..a + 4].try_into().unwrap())
        } else {
            0
        }
    }

    fn write_u32(&mut self, addr: u64, value: u32) {
        let a = addr as usize;
        if a + 4 <= self.data.len() {
            self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
        }
    }

    fn access(&mut self, kind: AccessKind, addr: u64, lanes: u32, now: u64) -> u64 {
        if self.is_prefetched(addr) {
            self.prefetch_hits += 1;
            let beats = u64::from(lanes.div_ceil(16).max(1));
            // BRAM path: short, pipelined, no shared server.
            return now
                + self.timing.prefetch_hit.unwrap_or(0)
                + beats * self.timing.prefetch_per_beat;
        }
        self.global_accesses += 1;
        let service = match kind {
            AccessKind::ScalarLoad => self.timing.scalar_service,
            AccessKind::VectorLoad | AccessKind::VectorStore => self.timing.vector_service(lanes),
        } * u64::from(self.sharers);
        let start = self.server_free.max(now);
        self.queue_wait += start - now;
        let done = start + service;
        self.server_free = done;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_strictly_ordered() {
        let mut orig = SharedMemory::new(1024, MemTiming::original());
        let mut dcd = SharedMemory::new(1024, MemTiming::dcd());
        let mut pm = SharedMemory::new(1024, MemTiming::dcd_pm());
        pm.prefetch(0, 1024).unwrap();
        let t_orig = orig.access(AccessKind::VectorLoad, 0, 64, 0);
        let t_dcd = dcd.access(AccessKind::VectorLoad, 0, 64, 0);
        let t_pm = pm.access(AccessKind::VectorLoad, 0, 64, 0);
        // DCD shaves the MB-internal share (~1.1-1.3x); PM removes the
        // whole round trip.
        let ratio = t_orig as f64 / t_dcd as f64;
        assert!((1.05..=1.45).contains(&ratio), "orig/dcd ratio {ratio:.2}");
        assert!(t_dcd > 10 * t_pm, "dcd={t_dcd} pm={t_pm}");
    }

    #[test]
    fn global_path_serialises_requests() {
        let mut m = SharedMemory::new(1024, MemTiming::dcd());
        let t1 = m.access(AccessKind::VectorLoad, 0, 64, 0);
        let t2 = m.access(AccessKind::VectorLoad, 0, 64, 0);
        assert!(t2 >= 2 * t1, "second request queues behind the first");
        assert_eq!(m.global_accesses(), 2);
    }

    #[test]
    fn prefetch_path_is_parallel() {
        let mut m = SharedMemory::new(1024, MemTiming::dcd_pm());
        m.prefetch(0, 1024).unwrap();
        let t1 = m.access(AccessKind::VectorLoad, 0, 64, 0);
        let t2 = m.access(AccessKind::VectorLoad, 64, 64, 0);
        assert_eq!(t1, t2, "BRAM accesses do not queue behind each other");
        assert_eq!(m.prefetch_hits(), 2);
    }

    #[test]
    fn prefetch_miss_uses_global_path() {
        let mut m = SharedMemory::new(8192, MemTiming::dcd_pm());
        m.prefetch(0, 1024).unwrap();
        let hit = m.access(AccessKind::VectorLoad, 100, 64, 0);
        let miss = m.access(AccessKind::VectorLoad, 4096, 64, 0);
        assert!(miss > hit * 3);
    }

    #[test]
    fn prefetch_capacity_enforced() {
        let mut m = SharedMemory::new(1024, MemTiming::dcd_pm());
        let cap = m.timing().prefetch_capacity;
        assert!(m.prefetch(0, cap + 1).is_err());
        assert!(m.prefetch(0, cap).is_ok());
        assert!(m.prefetch(0, 1).is_err());
    }

    #[test]
    fn no_prefetch_on_non_pm_configs() {
        let mut m = SharedMemory::new(1024, MemTiming::dcd());
        assert!(m.prefetch(0, 16).is_err());
        assert!(!m.is_prefetched(0));
    }

    #[test]
    fn sharers_divide_bandwidth() {
        let mut one = SharedMemory::new(1024, MemTiming::dcd());
        let mut three = SharedMemory::new(1024, MemTiming::dcd());
        three.set_sharers(3);
        let t1 = one.access(AccessKind::VectorLoad, 0, 64, 0);
        let t3 = three.access(AccessKind::VectorLoad, 0, 64, 0);
        assert_eq!(t3, t1 * 3);
    }

    #[test]
    fn functional_rw() {
        let mut m = SharedMemory::new(64, MemTiming::original());
        m.write_words(0, &[7, 8, 9]);
        assert_eq!(m.read_words(4, 2), vec![8, 9]);
        m.write_u32(0, 42);
        assert_eq!(m.read_u32(0), 42);
        assert_eq!(m.read_u32(1000), 0);
    }
}
