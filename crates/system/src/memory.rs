//! The shared global memory with configuration-dependent timing.

use scratch_snap::MemoryImage;
use serde::{Deserialize, Serialize};

use scratch_cu::{AccessKind, Memory};

/// Memory-path timing parameters, in CU cycles (50 MHz).
///
/// The *global* path models a request travelling CU → AXI interconnect →
/// MicroBlaze → MIG → DDR3 and back. In the original MIAOW system every
/// element of that path runs at the CU clock and the MicroBlaze services one
/// request at a time, so requests are serialised behind a single server
/// (`global_*` costs with the FIFO `server_free` queue). The dual-clock
/// domain (DCD) runs MicroBlaze+MIG at 200 MHz — a 4:1 ratio that divides
/// the service costs seen from the CU clock. The prefetch memory (PM) adds
/// a BRAM path next to the CU: accesses to preloaded ranges complete in a
/// few cycles, pipelined, without touching the global server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemTiming {
    /// Fixed service cost of a scalar (SMRD) global access.
    pub scalar_service: u64,
    /// Fixed service cost of a vector global access.
    pub vector_base: u64,
    /// Additional service cost per active lane of a vector global access
    /// (fixed-point, 1/256ths of a cycle).
    pub per_lane_q8: u64,
    /// Latency of a prefetch-buffer hit; `None` disables the prefetch path.
    pub prefetch_hit: Option<u64>,
    /// Additional prefetch cycles per 16-lane beat.
    pub prefetch_per_beat: u64,
    /// Prefetch buffer capacity in bytes (the BRAM blocks allocated to PM).
    pub prefetch_capacity: u64,
}

impl MemTiming {
    /// The original MIAOW system: single 50 MHz clock, strictly global
    /// accesses through the MicroBlaze. The service cost is dominated by
    /// the AXI polling handshake in the CU clock domain; the
    /// MicroBlaze-internal portion is the part a faster MB clock can cut.
    #[must_use]
    pub fn original() -> MemTiming {
        MemTiming {
            scalar_service: 280,
            vector_base: 320,
            per_lane_q8: 4 * 256,
            prefetch_hit: None,
            prefetch_per_beat: 0,
            prefetch_capacity: 0,
        }
    }

    /// Dual clock domain: MicroBlaze + MIG at 200 MHz (4:1). Only the
    /// MB-internal share of the service shrinks — the AXI handshake still
    /// runs at the CU clock, which is why the paper measures only ~1.17x
    /// from the DCD alone (§4.1.2).
    #[must_use]
    pub fn dcd() -> MemTiming {
        MemTiming {
            scalar_service: 216,
            vector_base: 256,
            per_lane_q8: 4 * 256,
            prefetch_hit: None,
            prefetch_per_beat: 0,
            prefetch_capacity: 0,
        }
    }

    /// DCD plus the in-FPGA prefetch memory (the paper's *baseline*).
    /// Capacity reflects the ~928 BRAM36 blocks the design dedicates to PM.
    #[must_use]
    pub fn dcd_pm() -> MemTiming {
        MemTiming {
            prefetch_hit: Some(6),
            prefetch_per_beat: 1,
            prefetch_capacity: 928 * 4096,
            ..MemTiming::dcd()
        }
    }

    fn vector_service(&self, lanes: u32) -> u64 {
        self.vector_base + (u64::from(lanes) * self.per_lane_q8) / 256
    }
}

/// Global memory shared by all compute units: functional storage plus the
/// configuration's timing model.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    data: Vec<u8>,
    timing: MemTiming,
    /// Byte ranges resident in the prefetch buffer.
    prefetched: Vec<(u64, u64)>,
    prefetched_bytes: u64,
    /// MicroBlaze server availability (FIFO queue over global accesses).
    server_free: u64,
    /// Number of CUs sharing the global path (bandwidth division).
    sharers: u32,
    /// Counters.
    pub(crate) global_accesses: u64,
    pub(crate) prefetch_hits: u64,
    /// Bytes served out of the prefetch buffer (4 per scalar access, 4 per
    /// active lane of a vector access).
    pub(crate) prefetch_hit_bytes: u64,
    /// Cycles requests spent queued behind the server before service began.
    pub(crate) queue_wait: u64,
}

/// Bytes an access moves: one word per active lane for vector operations,
/// a single word for scalar loads.
fn access_bytes(kind: AccessKind, lanes: u32) -> u64 {
    match kind {
        AccessKind::ScalarLoad => 4,
        AccessKind::VectorLoad | AccessKind::VectorStore => u64::from(lanes) * 4,
    }
}

impl SharedMemory {
    /// Allocate `size` bytes of zeroed global memory with `timing`.
    #[must_use]
    pub fn new(size: usize, timing: MemTiming) -> SharedMemory {
        SharedMemory {
            data: vec![0; size],
            timing,
            prefetched: Vec::new(),
            prefetched_bytes: 0,
            server_free: 0,
            sharers: 1,
            global_accesses: 0,
            prefetch_hits: 0,
            prefetch_hit_bytes: 0,
            queue_wait: 0,
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the memory has zero capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Active timing parameters.
    #[must_use]
    pub fn timing(&self) -> &MemTiming {
        &self.timing
    }

    /// Set how many CUs share the global path (divides its bandwidth).
    pub fn set_sharers(&mut self, n: u32) {
        self.sharers = n.max(1);
    }

    /// Reset the timing queue (a new measurement run); functional contents
    /// and prefetch residency are preserved.
    pub fn reset_timing(&mut self) {
        self.server_free = 0;
        self.global_accesses = 0;
        self.prefetch_hits = 0;
        self.prefetch_hit_bytes = 0;
        self.queue_wait = 0;
    }

    /// Mark `[addr, addr+len)` as resident in the prefetch buffer, as the
    /// MicroBlaze preload commands do at application start (§2.1.4).
    ///
    /// # Errors
    ///
    /// Fails when the configuration has no prefetch buffer or its capacity
    /// is exceeded.
    pub fn prefetch(&mut self, addr: u64, len: u64) -> Result<(), crate::SystemError> {
        let capacity = self.timing.prefetch_capacity;
        if self.timing.prefetch_hit.is_none() {
            return Err(crate::SystemError::PrefetchCapacity {
                requested: len,
                capacity: 0,
            });
        }
        if self.prefetched_bytes + len > capacity {
            return Err(crate::SystemError::PrefetchCapacity {
                requested: len,
                capacity,
            });
        }
        self.prefetched.push((addr, addr + len));
        self.prefetched_bytes += len;
        Ok(())
    }

    /// Mark as much of `[addr, addr+len)` as still fits the prefetch
    /// buffer; returns the number of bytes marked (the preload fills the
    /// BRAMs to capacity and the tail of oversized data spills to the
    /// global path).
    pub fn prefetch_partial(&mut self, addr: u64, len: u64) -> u64 {
        if self.timing.prefetch_hit.is_none() {
            return 0;
        }
        let room = self
            .timing
            .prefetch_capacity
            .saturating_sub(self.prefetched_bytes);
        let take = len.min(room);
        if take > 0 {
            self.prefetched.push((addr, addr + take));
            self.prefetched_bytes += take;
        }
        take
    }

    /// Bytes currently marked prefetch-resident.
    #[must_use]
    pub fn prefetched_bytes(&self) -> u64 {
        self.prefetched_bytes
    }

    /// `true` if `addr` hits the prefetch buffer.
    #[must_use]
    pub fn is_prefetched(&self, addr: u64) -> bool {
        self.timing.prefetch_hit.is_some()
            && self.prefetched.iter().any(|&(s, e)| addr >= s && addr < e)
    }

    /// Number of accesses that went down the global (MicroBlaze) path.
    #[must_use]
    pub fn global_accesses(&self) -> u64 {
        self.global_accesses
    }

    /// Number of accesses serviced by the prefetch buffer.
    #[must_use]
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits
    }

    /// Bytes served by the prefetch buffer (the BRAM bandwidth the PM path
    /// absorbed instead of the global server).
    #[must_use]
    pub fn prefetch_hit_bytes(&self) -> u64 {
        self.prefetch_hit_bytes
    }

    /// Cycles requests spent queued behind the shared server before their
    /// service began (the memory-server congestion component of the stall
    /// taxonomy).
    #[must_use]
    pub fn queue_wait_cycles(&self) -> u64 {
        self.queue_wait
    }

    /// Copy words into memory (host-side write; no timing).
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit.
    pub fn write_words(&mut self, addr: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            let a = addr as usize + i * 4;
            self.data[a..a + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Flip one bit of a memory byte (host-side upset injection; no
    /// timing). The address wraps modulo the memory size and the bit
    /// modulo 8, so any scheduled upset is applicable.
    pub fn flip_bit(&mut self, addr: u64, bit: u8) {
        if self.data.is_empty() {
            return;
        }
        let a = (addr % self.data.len() as u64) as usize;
        self.data[a] ^= 1 << (bit % 8);
    }

    /// Read words back (host-side read; no timing).
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit.
    #[must_use]
    pub fn read_words(&self, addr: u64, count: usize) -> Vec<u32> {
        (0..count)
            .map(|i| {
                let a = addr as usize + i * 4;
                u32::from_le_bytes(self.data[a..a + 4].try_into().unwrap())
            })
            .collect()
    }
}

impl Memory for SharedMemory {
    fn read_u32(&mut self, addr: u64) -> u32 {
        let a = addr as usize;
        if a + 4 <= self.data.len() {
            u32::from_le_bytes(self.data[a..a + 4].try_into().unwrap())
        } else {
            0
        }
    }

    fn write_u32(&mut self, addr: u64, value: u32) {
        let a = addr as usize;
        if a + 4 <= self.data.len() {
            self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
        }
    }

    fn access(&mut self, kind: AccessKind, addr: u64, lanes: u32, now: u64) -> u64 {
        if self.is_prefetched(addr) {
            self.prefetch_hits += 1;
            self.prefetch_hit_bytes += access_bytes(kind, lanes);
            let beats = u64::from(lanes.div_ceil(16).max(1));
            // BRAM path: short, pipelined, no shared server.
            return now
                + self.timing.prefetch_hit.unwrap_or(0)
                + beats * self.timing.prefetch_per_beat;
        }
        self.global_accesses += 1;
        let service = match kind {
            AccessKind::ScalarLoad => self.timing.scalar_service,
            AccessKind::VectorLoad | AccessKind::VectorStore => self.timing.vector_service(lanes),
        } * u64::from(self.sharers);
        let start = self.server_free.max(now);
        self.queue_wait += start - now;
        let done = start + service;
        self.server_free = done;
        done
    }
}

/// Page granularity of the epoch copy-on-write views.
const EPOCH_PAGE: usize = 4096;

/// Everything a CU's [`EpochMemory`] view carries back to the shared
/// memory when its shard of a dispatch completes: dirtied pages, the
/// final position of the view's private server clock, and the access
/// counters accumulated by the shard.
///
/// Deltas are applied with [`SharedMemory::commit`] in CU-index order,
/// which makes the post-epoch memory state a pure function of the
/// epoch-start state regardless of which worker thread ran which CU.
#[derive(Debug)]
pub struct EpochDelta {
    /// Dirty pages, sorted by page index.
    pages: Vec<(usize, EpochPage)>,
    server_free: u64,
    global_accesses: u64,
    prefetch_hits: u64,
    prefetch_hit_bytes: u64,
    queue_wait: u64,
}

/// One copy-on-write page of an epoch view: the page contents (snapshot
/// plus this view's writes) and a bitmask of the bytes actually written.
/// Only masked bytes commit back, so shards interleaving stores within one
/// page never clobber each other's data.
#[derive(Debug)]
struct EpochPage {
    data: Box<[u8]>,
    /// 1 bit per byte of `data`.
    written: Box<[u64]>,
}

impl EpochPage {
    fn from_base(base: &[u8]) -> EpochPage {
        EpochPage {
            data: base.into(),
            written: vec![0u64; base.len().div_ceil(64)].into_boxed_slice(),
        }
    }

    fn write(&mut self, off: usize, byte: u8) {
        self.data[off] = byte;
        self.written[off / 64] |= 1 << (off % 64);
    }
}

/// A copy-on-write view of [`SharedMemory`] scoped to one CU's shard of a
/// dispatch epoch.
///
/// Each view snapshots the epoch-start functional contents (reads fall
/// through to the base; writes dirty private 4-KiB pages) and decouples
/// the MicroBlaze server clock: every CU's request stream queues behind a
/// private `server_free` seeded from the epoch-start value, while the
/// `sharers` multiplier continues to model the bandwidth division between
/// CUs. The result is that a shard's timing and functional effects depend
/// only on `(kernel, workgroups, epoch-start state)` — the invariant that
/// lets the engine run shards on worker threads and still produce
/// bit-identical cycle counts to the serial scheduler.
#[derive(Debug)]
pub struct EpochMemory<'a> {
    base: &'a [u8],
    timing: MemTiming,
    prefetched: &'a [(u64, u64)],
    sharers: u32,
    server_free: u64,
    /// Dirty pages, sorted by page index.
    pages: Vec<(usize, EpochPage)>,
    /// Memo: position in `pages` of the most recently touched page.
    last: Option<usize>,
    global_accesses: u64,
    prefetch_hits: u64,
    prefetch_hit_bytes: u64,
    queue_wait: u64,
}

impl<'a> EpochMemory<'a> {
    /// Position of page `pidx` in the dirty set, if present.
    fn find(&self, pidx: usize) -> Option<usize> {
        if let Some(pos) = self.last {
            if self.pages.get(pos).is_some_and(|p| p.0 == pidx) {
                return Some(pos);
            }
        }
        self.pages.binary_search_by_key(&pidx, |p| p.0).ok()
    }

    fn byte(&mut self, a: usize) -> u8 {
        let pidx = a / EPOCH_PAGE;
        match self.find(pidx) {
            Some(pos) => {
                self.last = Some(pos);
                self.pages[pos].1.data[a % EPOCH_PAGE]
            }
            None => self.base[a],
        }
    }

    /// Dirty page `pidx`, copying it from the base on first touch; returns
    /// its position in the dirty set.
    fn dirty_page(&mut self, pidx: usize) -> usize {
        if let Some(pos) = self.find(pidx) {
            self.last = Some(pos);
            return pos;
        }
        let start = pidx * EPOCH_PAGE;
        let end = (start + EPOCH_PAGE).min(self.base.len());
        let page = EpochPage::from_base(&self.base[start..end]);
        let pos = self.pages.binary_search_by_key(&pidx, |p| p.0).unwrap_err();
        self.pages.insert(pos, (pidx, page));
        self.last = Some(pos);
        pos
    }

    fn is_prefetched(&self, addr: u64) -> bool {
        self.timing.prefetch_hit.is_some()
            && self.prefetched.iter().any(|&(s, e)| addr >= s && addr < e)
    }

    /// Consume the view into the delta to [`SharedMemory::commit`].
    #[must_use]
    pub fn finish(self) -> EpochDelta {
        EpochDelta {
            pages: self.pages,
            server_free: self.server_free,
            global_accesses: self.global_accesses,
            prefetch_hits: self.prefetch_hits,
            prefetch_hit_bytes: self.prefetch_hit_bytes,
            queue_wait: self.queue_wait,
        }
    }

    /// Detach the view into an owned, serializable [`EpochState`] so a
    /// paused dispatch can drop its borrow of the shared memory (and be
    /// checkpointed); [`SharedMemory::epoch_resume`] reattaches it.
    #[must_use]
    pub fn suspend(self) -> EpochState {
        EpochState {
            pages: self
                .pages
                .into_iter()
                .map(|(pidx, page)| EpochPageState {
                    index: pidx as u64,
                    data: page.data.into_vec(),
                    written: page.written.into_vec(),
                })
                .collect(),
            server_free: self.server_free,
            global_accesses: self.global_accesses,
            prefetch_hits: self.prefetch_hits,
            prefetch_hit_bytes: self.prefetch_hit_bytes,
            queue_wait: self.queue_wait,
        }
    }
}

/// Owned form of a detached [`EpochMemory`] view: the dirty copy-on-write
/// pages (with their written-byte masks) plus the view's private server
/// clock and access counters. Serializable, so it rides inside a system
/// checkpoint; convertible back to a live view over the *same* epoch base
/// with [`SharedMemory::epoch_resume`], or straight to an [`EpochDelta`]
/// when its shard has finished and only the commit remains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochState {
    pages: Vec<EpochPageState>,
    server_free: u64,
    global_accesses: u64,
    prefetch_hits: u64,
    prefetch_hit_bytes: u64,
    queue_wait: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EpochPageState {
    index: u64,
    data: Vec<u8>,
    written: Vec<u64>,
}

impl EpochState {
    /// Convert into the delta form [`SharedMemory::commit`] applies.
    #[must_use]
    pub fn into_delta(self) -> EpochDelta {
        EpochDelta {
            pages: self
                .pages
                .into_iter()
                .map(|p| {
                    (
                        usize::try_from(p.index).unwrap_or(usize::MAX),
                        EpochPage {
                            data: p.data.into_boxed_slice(),
                            written: p.written.into_boxed_slice(),
                        },
                    )
                })
                .collect(),
            server_free: self.server_free,
            global_accesses: self.global_accesses,
            prefetch_hits: self.prefetch_hits,
            prefetch_hit_bytes: self.prefetch_hit_bytes,
            queue_wait: self.queue_wait,
        }
    }
}

impl Memory for EpochMemory<'_> {
    fn read_u32(&mut self, addr: u64) -> u32 {
        let a = addr as usize;
        if a + 4 > self.base.len() {
            return 0;
        }
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.byte(a + i);
        }
        u32::from_le_bytes(bytes)
    }

    fn write_u32(&mut self, addr: u64, value: u32) {
        let a = addr as usize;
        if a + 4 > self.base.len() {
            return;
        }
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            let pos = self.dirty_page((a + i) / EPOCH_PAGE);
            self.pages[pos].1.write((a + i) % EPOCH_PAGE, b);
        }
    }

    fn access(&mut self, kind: AccessKind, addr: u64, lanes: u32, now: u64) -> u64 {
        if self.is_prefetched(addr) {
            self.prefetch_hits += 1;
            self.prefetch_hit_bytes += access_bytes(kind, lanes);
            let beats = u64::from(lanes.div_ceil(16).max(1));
            return now
                + self.timing.prefetch_hit.unwrap_or(0)
                + beats * self.timing.prefetch_per_beat;
        }
        self.global_accesses += 1;
        let service = match kind {
            AccessKind::ScalarLoad => self.timing.scalar_service,
            AccessKind::VectorLoad | AccessKind::VectorStore => self.timing.vector_service(lanes),
        } * u64::from(self.sharers);
        let start = self.server_free.max(now);
        self.queue_wait += start - now;
        let done = start + service;
        self.server_free = done;
        done
    }
}

impl SharedMemory {
    /// Open a copy-on-write epoch view over the current contents. Multiple
    /// views may be live at once (one per CU shard); each sees the same
    /// epoch-start snapshot and queues behind a private server clock
    /// seeded from the current `server_free`.
    #[must_use]
    pub fn epoch(&self) -> EpochMemory<'_> {
        EpochMemory {
            base: &self.data,
            timing: self.timing,
            prefetched: &self.prefetched,
            sharers: self.sharers,
            server_free: self.server_free,
            pages: Vec::new(),
            last: None,
            global_accesses: 0,
            prefetch_hits: 0,
            prefetch_hit_bytes: 0,
            queue_wait: 0,
        }
    }

    /// Apply one shard's epoch delta: copy the bytes the shard wrote back,
    /// advance the server clock to the latest final position seen so far,
    /// and fold the access counters in. Call in CU-index order for every
    /// shard of the epoch — the order later shards' bytes overwrite
    /// earlier ones is part of the deterministic dispatch semantics.
    pub fn commit(&mut self, delta: EpochDelta) {
        for (pidx, page) in delta.pages {
            let start = pidx * EPOCH_PAGE;
            for (w, &mask) in page.written.iter().enumerate() {
                if mask == 0 {
                    continue;
                }
                let woff = w * 64;
                if mask == u64::MAX {
                    let n = 64.min(page.data.len() - woff);
                    self.data[start + woff..start + woff + n]
                        .copy_from_slice(&page.data[woff..woff + n]);
                } else {
                    for b in 0..64 {
                        if mask & (1 << b) != 0 {
                            self.data[start + woff + b] = page.data[woff + b];
                        }
                    }
                }
            }
        }
        self.server_free = self.server_free.max(delta.server_free);
        self.global_accesses += delta.global_accesses;
        self.prefetch_hits += delta.prefetch_hits;
        self.prefetch_hit_bytes += delta.prefetch_hit_bytes;
        self.queue_wait += delta.queue_wait;
    }

    /// First byte recorded in `delta` whose value differs from this
    /// memory's *current* contents, as `(address, delta value, memory
    /// value)`. The `ExecMode::FastWithTiming` self-check runs the fast
    /// tier against throwaway epoch views, commits the cycle pipeline's
    /// shards normally, then requires every byte the fast tier wrote to
    /// match the committed state.
    #[must_use]
    pub fn first_delta_mismatch(&self, delta: &EpochDelta) -> Option<(u64, u8, u8)> {
        for (pidx, page) in &delta.pages {
            let start = pidx * EPOCH_PAGE;
            for (w, &mask) in page.written.iter().enumerate() {
                if mask == 0 {
                    continue;
                }
                for b in 0..64 {
                    if mask & (1 << b) == 0 {
                        continue;
                    }
                    let off = w * 64 + b;
                    if off >= page.data.len() {
                        break;
                    }
                    let addr = start + off;
                    let want = page.data[off];
                    let got = self.data.get(addr).copied().unwrap_or(0);
                    if want != got {
                        return Some((addr as u64, want, got));
                    }
                }
            }
        }
        None
    }

    /// Reattach a suspended epoch view over the current contents. The
    /// base must be the same epoch-start state the view was opened over
    /// (a checkpointed dispatch restores the memory before resuming its
    /// views, which guarantees this).
    #[must_use]
    pub fn epoch_resume(&self, state: EpochState) -> EpochMemory<'_> {
        EpochMemory {
            base: &self.data,
            timing: self.timing,
            prefetched: &self.prefetched,
            sharers: self.sharers,
            server_free: state.server_free,
            pages: state
                .pages
                .into_iter()
                .map(|p| {
                    (
                        usize::try_from(p.index).unwrap_or(usize::MAX),
                        EpochPage {
                            data: p.data.into_boxed_slice(),
                            written: p.written.into_boxed_slice(),
                        },
                    )
                })
                .collect(),
            last: None,
            global_accesses: state.global_accesses,
            prefetch_hits: state.prefetch_hits,
            prefetch_hit_bytes: state.prefetch_hit_bytes,
            queue_wait: state.queue_wait,
        }
    }

    /// Capture the memory's complete state (functional contents as a
    /// sparse image, timing model, prefetch residency, server clock and
    /// counters) for a system checkpoint.
    #[must_use]
    pub fn checkpoint_state(&self) -> MemoryState {
        MemoryState {
            image: MemoryImage::capture(&self.data),
            timing: self.timing,
            prefetched: self.prefetched.clone(),
            prefetched_bytes: self.prefetched_bytes,
            server_free: self.server_free,
            sharers: self.sharers,
            global_accesses: self.global_accesses,
            prefetch_hits: self.prefetch_hits,
            prefetch_hit_bytes: self.prefetch_hit_bytes,
            queue_wait: self.queue_wait,
        }
    }

    /// Rebuild a memory from [`SharedMemory::checkpoint_state`] output.
    #[must_use]
    pub fn restore_state(state: &MemoryState) -> SharedMemory {
        SharedMemory {
            data: state.image.restore(),
            timing: state.timing,
            prefetched: state.prefetched.clone(),
            prefetched_bytes: state.prefetched_bytes,
            server_free: state.server_free,
            sharers: state.sharers,
            global_accesses: state.global_accesses,
            prefetch_hits: state.prefetch_hits,
            prefetch_hit_bytes: state.prefetch_hit_bytes,
            queue_wait: state.queue_wait,
        }
    }
}

/// Serializable complete state of a [`SharedMemory`], as captured by
/// [`SharedMemory::checkpoint_state`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryState {
    image: MemoryImage,
    timing: MemTiming,
    prefetched: Vec<(u64, u64)>,
    prefetched_bytes: u64,
    server_free: u64,
    sharers: u32,
    global_accesses: u64,
    prefetch_hits: u64,
    prefetch_hit_bytes: u64,
    queue_wait: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_strictly_ordered() {
        let mut orig = SharedMemory::new(1024, MemTiming::original());
        let mut dcd = SharedMemory::new(1024, MemTiming::dcd());
        let mut pm = SharedMemory::new(1024, MemTiming::dcd_pm());
        pm.prefetch(0, 1024).unwrap();
        let t_orig = orig.access(AccessKind::VectorLoad, 0, 64, 0);
        let t_dcd = dcd.access(AccessKind::VectorLoad, 0, 64, 0);
        let t_pm = pm.access(AccessKind::VectorLoad, 0, 64, 0);
        // DCD shaves the MB-internal share (~1.1-1.3x); PM removes the
        // whole round trip.
        let ratio = t_orig as f64 / t_dcd as f64;
        assert!((1.05..=1.45).contains(&ratio), "orig/dcd ratio {ratio:.2}");
        assert!(t_dcd > 10 * t_pm, "dcd={t_dcd} pm={t_pm}");
    }

    #[test]
    fn global_path_serialises_requests() {
        let mut m = SharedMemory::new(1024, MemTiming::dcd());
        let t1 = m.access(AccessKind::VectorLoad, 0, 64, 0);
        let t2 = m.access(AccessKind::VectorLoad, 0, 64, 0);
        assert!(t2 >= 2 * t1, "second request queues behind the first");
        assert_eq!(m.global_accesses(), 2);
    }

    #[test]
    fn prefetch_path_is_parallel() {
        let mut m = SharedMemory::new(1024, MemTiming::dcd_pm());
        m.prefetch(0, 1024).unwrap();
        let t1 = m.access(AccessKind::VectorLoad, 0, 64, 0);
        let t2 = m.access(AccessKind::VectorLoad, 64, 64, 0);
        assert_eq!(t1, t2, "BRAM accesses do not queue behind each other");
        assert_eq!(m.prefetch_hits(), 2);
        assert_eq!(m.prefetch_hit_bytes(), 2 * 64 * 4);
    }

    #[test]
    fn prefetch_miss_uses_global_path() {
        let mut m = SharedMemory::new(8192, MemTiming::dcd_pm());
        m.prefetch(0, 1024).unwrap();
        let hit = m.access(AccessKind::VectorLoad, 100, 64, 0);
        let miss = m.access(AccessKind::VectorLoad, 4096, 64, 0);
        assert!(miss > hit * 3);
    }

    #[test]
    fn prefetch_capacity_enforced() {
        let mut m = SharedMemory::new(1024, MemTiming::dcd_pm());
        let cap = m.timing().prefetch_capacity;
        assert!(m.prefetch(0, cap + 1).is_err());
        assert!(m.prefetch(0, cap).is_ok());
        assert!(m.prefetch(0, 1).is_err());
    }

    #[test]
    fn no_prefetch_on_non_pm_configs() {
        let mut m = SharedMemory::new(1024, MemTiming::dcd());
        assert!(m.prefetch(0, 16).is_err());
        assert!(!m.is_prefetched(0));
    }

    #[test]
    fn sharers_divide_bandwidth() {
        let mut one = SharedMemory::new(1024, MemTiming::dcd());
        let mut three = SharedMemory::new(1024, MemTiming::dcd());
        three.set_sharers(3);
        let t1 = one.access(AccessKind::VectorLoad, 0, 64, 0);
        let t3 = three.access(AccessKind::VectorLoad, 0, 64, 0);
        assert_eq!(t3, t1 * 3);
    }

    #[test]
    fn functional_rw() {
        let mut m = SharedMemory::new(64, MemTiming::original());
        m.write_words(0, &[7, 8, 9]);
        assert_eq!(m.read_words(4, 2), vec![8, 9]);
        m.write_u32(0, 42);
        assert_eq!(m.read_u32(0), 42);
        assert_eq!(m.read_u32(1000), 0);
    }

    #[test]
    fn epoch_views_are_isolated_until_commit() {
        let mut m = SharedMemory::new(3 * EPOCH_PAGE, MemTiming::original());
        m.write_words(0, &[1, 2]);
        let mut a = m.epoch();
        let mut b = m.epoch();
        assert_eq!(a.read_u32(0), 1, "views see the epoch-start snapshot");
        a.write_u32(0, 10);
        a.write_u32(2 * EPOCH_PAGE as u64, 77);
        b.write_u32(8, 99); // same page as a's first write
        assert_eq!(a.read_u32(0), 10, "a view reads its own writes");
        assert_eq!(b.read_u32(0), 1, "sibling views stay isolated");
        let (da, db) = (a.finish(), b.finish());
        assert_eq!(m.read_u32(0), 1, "base unchanged before commit");
        m.commit(da);
        m.commit(db);
        // Only written bytes commit: b dirtied the same page as a, yet a's
        // writes survive b's later commit.
        assert_eq!(m.read_words(0, 3), vec![10, 2, 99]);
        assert_eq!(m.read_u32(2 * EPOCH_PAGE as u64), 77);
    }

    #[test]
    fn epoch_timing_matches_direct_access_for_one_cu() {
        // A single CU's request stream through an epoch view must time out
        // identically to the same stream hitting SharedMemory directly —
        // the 1-CU serial/engine equivalence in miniature.
        let mut direct = SharedMemory::new(8192, MemTiming::dcd_pm());
        direct.prefetch(0, 1024).unwrap();
        let mut epoch_base = direct.clone();
        let mut view = epoch_base.epoch();
        let stream = [
            (AccessKind::VectorLoad, 0, 64, 0),
            (AccessKind::VectorLoad, 4096, 64, 10),
            (AccessKind::ScalarLoad, 4096, 1, 12),
            (AccessKind::VectorStore, 100, 32, 500),
        ];
        for (kind, addr, lanes, now) in stream {
            assert_eq!(
                direct.access(kind, addr, lanes, now),
                view.access(kind, addr, lanes, now)
            );
        }
        epoch_base.commit(view.finish());
        assert_eq!(epoch_base.global_accesses(), direct.global_accesses());
        assert_eq!(epoch_base.prefetch_hits(), direct.prefetch_hits());
        assert_eq!(epoch_base.prefetch_hit_bytes(), direct.prefetch_hit_bytes());
        assert_eq!(epoch_base.queue_wait_cycles(), direct.queue_wait_cycles());
        assert_eq!(epoch_base.server_free, direct.server_free);
    }

    #[test]
    fn epoch_commit_takes_max_server_clock_and_sums_counters() {
        let mut m = SharedMemory::new(1024, MemTiming::dcd());
        let mut a = m.epoch();
        let mut b = m.epoch();
        a.access(AccessKind::VectorLoad, 0, 64, 0);
        b.access(AccessKind::ScalarLoad, 0, 1, 0);
        b.access(AccessKind::ScalarLoad, 0, 1, 0);
        let (da, db) = (a.finish(), b.finish());
        let (fa, fb) = (da.server_free, db.server_free);
        m.commit(da);
        m.commit(db);
        assert_eq!(m.global_accesses(), 3);
        assert_eq!(m.server_free, fa.max(fb));
    }

    #[test]
    fn suspended_epoch_view_resumes_identically() {
        let mut m = SharedMemory::new(2 * EPOCH_PAGE, MemTiming::dcd_pm());
        m.prefetch(0, 256).unwrap();
        m.write_words(0, &[5, 6]);

        // Reference: one continuous view.
        let mut direct = m.epoch();
        direct.write_u32(0, 11);
        direct.access(AccessKind::VectorLoad, 0, 64, 0);
        direct.write_u32(EPOCH_PAGE as u64, 22);
        let t_direct = direct.access(AccessKind::VectorLoad, 4000, 64, 10);

        // Same stream with a suspend (+ serde round trip) in the middle.
        let mut view = m.epoch();
        view.write_u32(0, 11);
        view.access(AccessKind::VectorLoad, 0, 64, 0);
        let bytes = scratch_snap::to_bytes(&view.suspend());
        let state: EpochState = scratch_snap::from_bytes(&bytes).unwrap();
        let mut view = m.epoch_resume(state);
        view.write_u32(EPOCH_PAGE as u64, 22);
        let t_resumed = view.access(AccessKind::VectorLoad, 4000, 64, 10);

        assert_eq!(t_direct, t_resumed);
        let d_direct = direct.finish();
        let d_resumed = view.suspend().into_delta();
        let mut a = m.clone();
        let mut b = m;
        a.commit(d_direct);
        b.commit(d_resumed);
        assert_eq!(a.read_words(0, 2), b.read_words(0, 2));
        assert_eq!(a.read_u32(EPOCH_PAGE as u64), b.read_u32(EPOCH_PAGE as u64));
        assert_eq!(a.server_free, b.server_free);
        assert_eq!(a.global_accesses(), b.global_accesses());
        assert_eq!(a.queue_wait_cycles(), b.queue_wait_cycles());
    }

    #[test]
    fn memory_checkpoint_state_round_trips() {
        let mut m = SharedMemory::new(3 * EPOCH_PAGE, MemTiming::dcd_pm());
        m.set_sharers(2);
        m.prefetch(0, 512).unwrap();
        m.write_words(8, &[1, 2, 3]);
        m.access(AccessKind::VectorLoad, 4096, 64, 0);
        let bytes = scratch_snap::to_bytes(&m.checkpoint_state());
        let state: MemoryState = scratch_snap::from_bytes(&bytes).unwrap();
        let mut r = SharedMemory::restore_state(&state);
        assert_eq!(r.read_words(8, 3), vec![1, 2, 3]);
        assert_eq!(r.len(), m.len());
        assert_eq!(r.server_free, m.server_free);
        assert_eq!(r.global_accesses(), m.global_accesses());
        assert_eq!(r.prefetched_bytes(), m.prefetched_bytes());
        assert!(r.is_prefetched(100));
        // Timing continues identically after restore.
        assert_eq!(
            m.access(AccessKind::ScalarLoad, 4096, 1, 5),
            r.access(AccessKind::ScalarLoad, 4096, 1, 5)
        );
    }

    #[test]
    fn epoch_respects_bounds_like_base_memory() {
        let mut m = SharedMemory::new(64, MemTiming::original());
        let mut v = m.epoch();
        assert_eq!(v.read_u32(1000), 0);
        v.write_u32(62, 5); // straddles the end: dropped, like the base
        v.write_u32(60, 9);
        m.commit(v.finish());
        assert_eq!(m.read_u32(60), 9);
    }
}
