//! The full system: CUs + dispatcher + host bookkeeping.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use scratch_asm::Kernel;
use scratch_cu::{ComputeUnit, CuConfig, CuError, CuStats, RunStatus, WaveInit, Wavefront};
use scratch_fastpath::{run_workgroup, translate, FastStats, Fuel, Program, WaveSlot};
use scratch_fpga::{cu_capacity_bound, Device};
use scratch_isa::{FuncUnit, WAVEFRONT_SIZE};
use scratch_metrics::{Counter, Gauge, Histogram, Registry};
use scratch_snap::{CuSnapshot, SnapError};
use scratch_trace::{EventBuffer, StallReason, TraceEvent, TraceSummary, Tracer as _};

use crate::fault::{CuFault, FaultRecord, FaultSpec, ScheduledFaults};
use crate::memory::{EpochDelta, EpochMemory, EpochState, MemTiming, MemoryState, SharedMemory};
use crate::{abi, SystemError};

/// Allocator capacity bound for the paper's device (cached — the additive
/// resource model is pure, so the bound never changes within a process).
fn device_cu_bound() -> u8 {
    static BOUND: OnceLock<u8> = OnceLock::new();
    *BOUND.get_or_init(|| cu_capacity_bound(&Device::XC7VX690T))
}

/// The three system configurations compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// The original MIAOW FPGA system: one 50 MHz clock domain.
    Original,
    /// Dual clock domain (memory side at 200 MHz).
    Dcd,
    /// Dual clock domain + prefetch memory — the paper's *baseline* for
    /// trimming and parallelism experiments.
    DcdPm,
}

impl SystemKind {
    /// CU clock (Hz) — 50 MHz in every configuration (critical path of the
    /// Issue stage).
    #[must_use]
    pub fn cu_clock_hz(self) -> f64 {
        50.0e6
    }

    /// MicroBlaze / memory-side clock (Hz).
    #[must_use]
    pub fn mb_clock_hz(self) -> f64 {
        match self {
            SystemKind::Original => 50.0e6,
            SystemKind::Dcd | SystemKind::DcdPm => 200.0e6,
        }
    }

    /// Memory timing parameters of this configuration.
    #[must_use]
    pub fn timing(self) -> MemTiming {
        match self {
            SystemKind::Original => MemTiming::original(),
            SystemKind::Dcd => MemTiming::dcd(),
            SystemKind::DcdPm => MemTiming::dcd_pm(),
        }
    }

    /// Display label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Original => "Original",
            SystemKind::Dcd => "DCD",
            SystemKind::DcdPm => "DCD+PM",
        }
    }
}

/// How much tracing a [`System`] performs (see `scratch-trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracing: the untraced fast path.
    #[default]
    Off,
    /// Stall attribution only: [`RunReport::trace`] carries a
    /// [`TraceSummary`], no event stream is retained.
    Summary,
    /// Attribution plus the full structured event stream
    /// ([`RunReport::trace_events`]).
    Full,
}

/// Which execution tier runs dispatches (the functional/timing split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// The cycle-accurate pipeline model — full timing fidelity, the tier
    /// every paper experiment uses.
    #[default]
    Cycle,
    /// The block-compiled functional tier (`scratch-fastpath`): identical
    /// architectural results, no cycle modelling (dispatches report zero
    /// cycles). Traced or pipeline-fault-injected runs fall back to
    /// [`ExecMode::Cycle`] — those features live in the pipeline.
    Fast,
    /// Self-checking mode: every dispatch runs the fast tier against a
    /// throwaway memory view *and* the cycle pipeline, then verifies that
    /// each byte the fast tier wrote matches the committed cycle-model
    /// memory. Reports the cycle model's timing; a mismatch fails the
    /// dispatch with [`SystemError::FastDivergence`].
    FastWithTiming,
}

/// Configuration of a [`System`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// System kind (clocking + memory path).
    pub kind: SystemKind,
    /// Number of compute units (the paper's multi-core axis).
    pub cus: u8,
    /// Per-CU architecture configuration (VALU counts, trim set, …).
    pub cu: CuConfig,
    /// Global memory size in bytes.
    pub memory_bytes: usize,
    /// Mark allocations prefetch-resident automatically when the prefetch
    /// buffer has room (the paper preloads application data at startup).
    pub auto_prefetch: bool,
    /// Cycle-attribution / event-tracing mode.
    pub trace: TraceMode,
    /// Worker threads used to run CU shards of a dispatch: `1` is the
    /// serial scheduler, `0` means one worker per available core. The
    /// worker count never changes simulated results — dispatches are
    /// epoch-batched so cycle counts are bit-identical at any setting —
    /// only host wall-clock time.
    pub workers: usize,
    /// Publish always-on aggregates (dispatch counters, latency
    /// histograms, IPC / occupancy gauges) into a metrics registry, and
    /// keep the CUs' cheap stall accounting. On by default; the overhead
    /// benchmarks turn it off to measure the cost of having it on.
    pub metrics: bool,
    /// Registry the system publishes into; `None` means the process-global
    /// [`scratch_metrics::global`] registry. Hermetic tests inject a
    /// private one via [`SystemConfig::with_registry`].
    pub registry: Option<Registry>,
    /// Scheduled fault injection (per-CU pipeline upsets + global-memory
    /// bit-flips at dispatch boundaries). Empty by default: injection off,
    /// untouched fast paths.
    pub faults: FaultSpec,
    /// Execution tier for dispatches (see [`ExecMode`]).
    pub exec: ExecMode,
    /// Collect per-PC retire counters (cycle tier) and expose per-kernel
    /// instruction-usage profiles via [`System::pc_profile`]. Off by
    /// default; never changes simulated results.
    pub profile: bool,
}

impl SystemConfig {
    /// Default configuration for `kind`: one CU, one SIMD + one SIMF, 64 MiB
    /// of DDR3, automatic prefetch residency.
    #[must_use]
    pub fn preset(kind: SystemKind) -> SystemConfig {
        SystemConfig {
            kind,
            cus: 1,
            cu: CuConfig::default(),
            memory_bytes: 64 << 20,
            auto_prefetch: true,
            trace: TraceMode::Off,
            workers: 1,
            metrics: true,
            registry: None,
            faults: FaultSpec::default(),
            exec: ExecMode::Cycle,
            profile: false,
        }
    }

    /// Builder-style override of the tracing mode.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceMode) -> SystemConfig {
        self.trace = trace;
        self
    }

    /// Builder-style override of the CU count, validated against the FPGA
    /// allocator's capacity bound for the paper's device
    /// ([`scratch_fpga::cu_capacity_bound`]): a CU count no allocation
    /// plan could ever back is rejected up front instead of simulating
    /// hardware that cannot be placed.
    ///
    /// # Errors
    ///
    /// [`SystemError::InvalidCuCount`] when `cus` is zero or exceeds the
    /// device bound.
    pub fn with_cus(mut self, cus: u8) -> Result<SystemConfig, SystemError> {
        let max = device_cu_bound();
        if cus == 0 || cus > max {
            return Err(SystemError::InvalidCuCount {
                requested: cus,
                max,
            });
        }
        self.cus = cus;
        Ok(self)
    }

    /// Builder-style override of the worker-thread count (see
    /// [`SystemConfig::workers`]).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> SystemConfig {
        self.workers = workers;
        self
    }

    /// Builder-style override of the per-CU configuration.
    #[must_use]
    pub fn with_cu_config(mut self, cu: CuConfig) -> SystemConfig {
        self.cu = cu;
        self
    }

    /// Builder-style override of the metrics plane (see
    /// [`SystemConfig::metrics`]). Also propagates to the per-CU stall
    /// accounting so `with_metrics(false)` measures the true untracked
    /// fast path.
    #[must_use]
    pub fn with_metrics(mut self, metrics: bool) -> SystemConfig {
        self.metrics = metrics;
        self.cu.metrics = metrics;
        self
    }

    /// Builder-style override of the registry the system publishes into
    /// (see [`SystemConfig::registry`]).
    #[must_use]
    pub fn with_registry(mut self, registry: Registry) -> SystemConfig {
        self.registry = Some(registry);
        self
    }

    /// Builder-style override of the scheduled fault injection (see
    /// [`SystemConfig::faults`]).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSpec) -> SystemConfig {
        self.faults = faults;
        self
    }

    /// Builder-style override of the execution tier (see [`ExecMode`]).
    #[must_use]
    pub fn with_exec(mut self, exec: ExecMode) -> SystemConfig {
        self.exec = exec;
        self
    }

    /// Builder-style override of the continuous profiler (see
    /// [`SystemConfig::profile`]). Also switches the per-CU retire
    /// counters on so the cycle tier actually collects.
    #[must_use]
    pub fn with_profile(mut self, profile: bool) -> SystemConfig {
        self.profile = profile;
        self.cu.profile = profile;
        self
    }
}

/// Cumulative measurements of a system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// CU cycles consumed (max across compute units).
    pub cu_cycles: u64,
    /// MicroBlaze host cycles consumed (host phases of the application).
    pub host_cycles: u64,
    /// Wall-clock seconds: CU time at 50 MHz + host time at the MicroBlaze
    /// clock.
    pub seconds: f64,
    /// Merged CU statistics.
    pub stats: CuStats,
    /// Per-CU cycle counts.
    pub per_cu_cycles: Vec<u64>,
    /// Accesses that went down the global (MicroBlaze) memory path.
    pub global_accesses: u64,
    /// Accesses serviced by the prefetch buffer.
    pub prefetch_hits: u64,
    /// CU cycles attributed to each loaded kernel (per-kernel trimming
    /// analysis, §4.3).
    pub per_kernel_cycles: Vec<u64>,
    /// Dispatches of each loaded kernel.
    pub per_kernel_dispatches: Vec<u64>,
    /// Number of times consecutive dispatches changed kernels (each would
    /// trigger a partial reconfiguration under per-kernel trimming).
    pub kernel_switches: u64,
    /// Merged stall-attribution summary ([`TraceMode::Summary`] or
    /// [`TraceMode::Full`]; `None` when tracing was off).
    pub trace: Option<TraceSummary>,
    /// The structured event stream ([`TraceMode::Full`] only).
    pub trace_events: Option<Vec<TraceEvent>>,
    /// Pipeline faults that actually fired ([`SystemConfig::faults`];
    /// empty when injection is off).
    pub fault_records: Vec<FaultRecord>,
    /// Per-PC retire counters attributed to each loaded kernel
    /// ([`SystemConfig::profile`] only — empty vectors otherwise).
    pub pc_profiles: Vec<Vec<u64>>,
}

impl RunReport {
    /// Dynamic instructions executed.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.stats.instructions
    }
}

/// A complete soft-GPGPU system: global memory, N compute units, and the
/// ultra-threaded dispatcher (the MicroBlaze's roles from §2.2.2).
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    kernels: Vec<Kernel>,
    mem: SharedMemory,
    cus: Vec<ComputeUnit>,
    bump: u64,
    args_addr: Option<u64>,
    args_len: u64,
    cb0_addr: u64,
    host_cycles: u64,
    per_kernel_cycles: Vec<u64>,
    per_kernel_dispatches: Vec<u64>,
    kernel_switches: u64,
    last_kernel: Option<usize>,
    /// System-level event stream under [`TraceMode::Full`]: per-CU events
    /// are drained into it in CU order after every dispatch.
    trace_buf: Option<EventBuffer>,
    /// Private per-CU event sinks ([`TraceMode::Full`] only) — each CU
    /// records into its own buffer so shards can run on worker threads
    /// without interleaving the stream nondeterministically.
    cu_bufs: Vec<EventBuffer>,
    /// Registry handles + baselines of the metrics plane; `None` when
    /// [`SystemConfig::metrics`] is off.
    metrics: Option<SysMetrics>,
    /// 0-based dispatch sequence number, for [`MemUpset`] scheduling.
    dispatch_seq: u64,
    /// Pipeline faults drained from the CUs after each dispatch.
    fault_log: Vec<FaultRecord>,
    /// In-flight preemptible dispatch, between quanta. `None` when no
    /// dispatch is paused.
    paused: Option<PausedDispatch>,
    /// Lazily translated fast-tier programs plus accumulated fast-tier
    /// counters, one slot per loaded kernel.
    fast: Vec<Option<FastSlot>>,
    /// Dynamic instructions executed by the fast tier (pure
    /// [`ExecMode::Fast`] dispatches — `FastWithTiming` counts through
    /// the cycle pipeline it also runs).
    fast_instructions: u64,
    /// Per-kernel per-PC retire counters drained from the CUs after each
    /// cycle-tier dispatch ([`SystemConfig::profile`] only).
    per_kernel_pc: Vec<Vec<u64>>,
    /// Job id stamped on emitted trace events (serve sets it per job so
    /// engine shards and fault events correlate with job spans; 0 means
    /// unattributed).
    job_id: u64,
}

/// One kernel's translated fast-tier program and its accumulated counters.
#[derive(Debug)]
struct FastSlot {
    prog: Arc<Program>,
    stats: FastStats,
}

impl System {
    /// Build a system running `kernel`.
    ///
    /// # Errors
    ///
    /// Fails if the kernel binary does not decode.
    pub fn new(config: SystemConfig, kernel: &Kernel) -> Result<System, SystemError> {
        System::with_kernels(config, std::slice::from_ref(kernel))
    }

    /// Build a system loaded with several kernels of one application
    /// (dispatched by index through [`System::dispatch_kernel`]).
    ///
    /// # Errors
    ///
    /// Fails when `kernels` is empty, a binary does not decode, or the CU
    /// count falls outside the device's allocator capacity bound.
    pub fn with_kernels(config: SystemConfig, kernels: &[Kernel]) -> Result<System, SystemError> {
        let first = kernels.first().ok_or(SystemError::EmptyDispatch)?;
        let max = device_cu_bound();
        if config.cus == 0 || config.cus > max {
            return Err(SystemError::InvalidCuCount {
                requested: config.cus,
                max,
            });
        }
        let mut mem = SharedMemory::new(config.memory_bytes, config.kind.timing());
        mem.set_sharers(u32::from(config.cus));
        let trace_buf = (config.trace == TraceMode::Full).then(EventBuffer::new);
        let metrics = config.metrics.then(|| SysMetrics::new(&config));
        // The system-level switch also governs the per-CU accounting: with
        // the plane off nothing reads `CuStats::stall_cycles`, so the CUs
        // skip collecting it.
        let mut cu_cfg = config.cu.clone();
        cu_cfg.metrics = cu_cfg.metrics && config.metrics;
        // Either switch turns the per-PC counters on: `with_profile` sets
        // both, a hand-built config may set only the system-level flag.
        cu_cfg.profile = cu_cfg.profile || config.profile;
        let mut cu_bufs = Vec::new();
        let mut cus = Vec::with_capacity(usize::from(config.cus));
        for ci in 0..config.cus {
            let mut cu = ComputeUnit::new(cu_cfg.clone(), first)?;
            match config.trace {
                TraceMode::Full => {
                    let buf = EventBuffer::new();
                    cu.set_tracer(u32::from(ci), Box::new(buf.clone()));
                    cu_bufs.push(buf);
                }
                TraceMode::Summary => cu.enable_tracing(u32::from(ci)),
                TraceMode::Off => {}
            }
            // Scheduled pipeline faults targeting this CU (indices taken
            // modulo the CU count so plans stay valid across topologies).
            let scheduled: Vec<CuFault> = config
                .faults
                .cu
                .iter()
                .filter(|u| u.cu % config.cus == ci)
                .map(|u| u.fault)
                .collect();
            if !scheduled.is_empty() {
                cu.set_fault_hook(Box::new(ScheduledFaults::new(u32::from(ci), scheduled)));
            }
            cus.push(cu);
        }
        let n = kernels.len();
        let mut sys = System {
            config,
            kernels: kernels.to_vec(),
            mem,
            cus,
            bump: 0x1000,
            args_addr: None,
            args_len: 0,
            cb0_addr: 0,
            host_cycles: 0,
            per_kernel_cycles: vec![0; n],
            per_kernel_dispatches: vec![0; n],
            kernel_switches: 0,
            last_kernel: None,
            trace_buf,
            cu_bufs,
            metrics,
            dispatch_seq: 0,
            fault_log: Vec::new(),
            paused: None,
            fast: (0..n).map(|_| None).collect(),
            fast_instructions: 0,
            per_kernel_pc: vec![Vec::new(); n],
            job_id: 0,
        };
        sys.cb0_addr = sys.alloc(64);
        Ok(sys)
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Schedule an additional global-memory upset after construction —
    /// used when the target address is only known once the allocator has
    /// placed the buffers. Applies at the same dispatch boundary as
    /// upsets from [`SystemConfig::with_faults`].
    pub fn schedule_mem_upset(&mut self, upset: crate::fault::MemUpset) {
        self.config.faults.mem.push(upset);
    }

    /// The first loaded kernel.
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernels[0]
    }

    /// All loaded kernels.
    #[must_use]
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Direct access to the shared memory (host-side).
    #[must_use]
    pub fn memory(&self) -> &SharedMemory {
        &self.mem
    }

    /// Allocate `bytes` of global memory (256-byte aligned). On DCD+PM
    /// systems with `auto_prefetch`, the range is marked prefetch-resident
    /// if the buffer has room (best effort, as the MicroBlaze preload does).
    ///
    /// # Panics
    ///
    /// Panics when global memory is exhausted — allocation failures are a
    /// host-program bug in this simulator, not a recoverable condition.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let addr = self.bump;
        let size = bytes.div_ceil(256) * 256;
        assert!(
            (addr + size) as usize <= self.mem.len(),
            "out of global memory: {bytes} bytes requested at {addr:#x}"
        );
        self.bump += size;
        if self.config.auto_prefetch && self.config.kind == SystemKind::DcdPm {
            self.mem.prefetch_partial(addr, size);
        }
        addr
    }

    /// Allocate and fill a buffer with `words`.
    pub fn alloc_words(&mut self, words: &[u32]) -> u64 {
        let addr = self.alloc(words.len() as u64 * 4);
        self.mem.write_words(addr, words);
        addr
    }

    /// Host-side write of words into memory.
    pub fn write_words(&mut self, addr: u64, words: &[u32]) {
        self.mem.write_words(addr, words);
    }

    /// Host-side read of words from memory.
    #[must_use]
    pub fn read_words(&self, addr: u64, count: usize) -> Vec<u32> {
        self.mem.read_words(addr, count)
    }

    /// Explicitly mark a range prefetch-resident.
    ///
    /// # Errors
    ///
    /// Fails when the configuration has no prefetch buffer or capacity is
    /// exceeded.
    pub fn prefetch(&mut self, addr: u64, len: u64) -> Result<(), SystemError> {
        self.mem.prefetch(addr, len)
    }

    /// Set the kernel argument words (`IMM_CONST_BUFFER1` contents).
    pub fn set_args(&mut self, args: &[u32]) {
        let addr = self.alloc(args.len().max(1) as u64 * 4);
        self.mem.write_words(addr, args);
        self.args_addr = Some(addr);
        self.args_len = args.len() as u64 * 4;
    }

    /// Charge `cycles` of MicroBlaze host processing (data initialisation,
    /// K-means recentering, Gaussian back-substitution, …).
    pub fn host_work(&mut self, cycles: u64) {
        self.host_cycles += cycles;
    }

    /// Launch `grid` workgroups ([x, y, z]) of the loaded kernel and run to
    /// completion. Returns the CU cycles this dispatch took (max across
    /// CUs).
    ///
    /// # Errors
    ///
    /// Propagates CU failures (trim violations, deadlocks, …); fails on
    /// empty grids or missing arguments.
    pub fn dispatch(&mut self, grid: [u32; 3]) -> Result<u64, SystemError> {
        self.dispatch_kernel(0, grid)
    }

    /// Launch `grid` workgroups of kernel `idx` (multi-kernel applications:
    /// the dispatcher reloads the CU instruction memories first).
    ///
    /// # Errors
    ///
    /// As [`System::dispatch`]; additionally panics are avoided by treating
    /// an out-of-range index as an empty dispatch error.
    pub fn dispatch_kernel(&mut self, idx: usize, grid: [u32; 3]) -> Result<u64, SystemError> {
        if self.paused.is_some() {
            return Err(preemption("a paused preemptible dispatch is in flight"));
        }
        match self.exec_tier() {
            ExecMode::Cycle => self.dispatch_cycle(idx, grid),
            ExecMode::Fast => self.dispatch_fast(idx, grid),
            ExecMode::FastWithTiming => self.dispatch_fast_timing(idx, grid),
        }
    }

    /// The tier a dispatch actually runs on: traced and pipeline-fault-
    /// injected runs always take the cycle pipeline (the fast tier models
    /// neither), otherwise whatever [`SystemConfig::exec`] selected.
    fn exec_tier(&self) -> ExecMode {
        if self.config.trace != TraceMode::Off || !self.config.faults.cu.is_empty() {
            ExecMode::Cycle
        } else {
            self.config.exec
        }
    }

    /// Run-to-completion dispatch on the cycle-accurate pipeline.
    fn dispatch_cycle(&mut self, idx: usize, grid: [u32; 3]) -> Result<u64, SystemError> {
        let (launch, assignments) = self.plan_dispatch(idx, grid)?;
        let before: Vec<u64> = self.cus.iter().map(ComputeUnit::now).collect();
        self.run_cycle_epoch(&launch, &assignments, &before)?;
        Ok(self.finish_dispatch(idx, &before))
    }

    /// Run one planned dispatch epoch on the cycle pipeline and commit it.
    fn run_cycle_epoch(
        &mut self,
        launch: &Launch,
        assignments: &CuAssignments,
        before: &[u64],
    ) -> Result<(), SystemError> {
        let n_cus = self.cus.len();
        let workers = self.effective_workers().min(n_cus).max(1);

        // Run every CU's shard against a private epoch view of the shared
        // memory; no shard observes another's writes or server clock, so
        // the outcomes are identical whichever scheduler produced them.
        let mut outcomes: Vec<ShardOutcome> = if workers > 1 {
            self.run_shards_parallel(launch, assignments, workers)
        } else {
            let mem = &self.mem;
            self.cus
                .iter_mut()
                .zip(assignments)
                .map(|(cu, wgs)| {
                    let mut view = mem.epoch();
                    let res = run_cu_share(cu, launch, wgs, &mut view);
                    Some((res, view.finish()))
                })
                .collect()
        };

        // Deterministic commit: apply deltas and drain per-CU trace events
        // in CU-index order, stopping at the first failing CU. Shards at
        // or past a failure never become visible.
        let mut failure: Option<SystemError> = None;
        for (ci, slot) in outcomes.iter_mut().enumerate() {
            let (res, delta) = slot.take().expect("every shard produces an outcome");
            if failure.is_some() {
                continue;
            }
            match res {
                Ok(()) => {
                    self.mem.commit(delta);
                    if let Some(buf) = &mut self.trace_buf {
                        buf.extend(self.cu_bufs[ci].take());
                        buf.record(&TraceEvent::ShardRun {
                            cu: ci as u32,
                            worker: (ci % workers) as u32,
                            start: before[ci],
                            end: self.cus[ci].now(),
                            job: self.job_id,
                        });
                    }
                }
                Err(e) => failure = Some(e),
            }
        }
        if let Some(e) = failure {
            for buf in &self.cu_bufs {
                let _ = buf.take();
            }
            return Err(e);
        }
        Ok(())
    }

    /// Run-to-completion dispatch on the block-compiled fast tier: the
    /// same plan, workgroup shares, launch ABI, epoch views, and CU-order
    /// commit as [`System::dispatch_cycle`], but each share is executed by
    /// the translated program instead of the cycle pipeline. Returns 0
    /// cycles — the fast tier is functional-only.
    fn dispatch_fast(&mut self, idx: usize, grid: [u32; 3]) -> Result<u64, SystemError> {
        let (launch, assignments) = self.plan_dispatch(idx, grid)?;
        let prog = self.fast_program(idx)?;
        let outcomes = self.run_fast_shards(&prog, &launch, &assignments);
        let mut failure: Option<SystemError> = None;
        let mut stats = FastStats::for_program(&prog);
        for slot in outcomes {
            let (res, delta) = slot.expect("every fast shard produces an outcome");
            if failure.is_some() {
                continue;
            }
            match res {
                Ok(s) => {
                    self.mem.commit(delta);
                    stats.merge(&s);
                }
                Err(e) => failure = Some(e),
            }
        }
        if let Some(e) = failure {
            return Err(e);
        }
        self.fast_instructions += stats.instructions;
        if let Some(slot) = &mut self.fast[idx] {
            slot.stats.merge(&stats);
        }
        self.finish_fast_dispatch(idx);
        Ok(0)
    }

    /// Self-checking dispatch: run the fast tier against throwaway views
    /// of the pre-dispatch memory, run (and commit) the cycle pipeline as
    /// usual, then verify every byte the fast tier wrote against the
    /// committed image. Returns the cycle pipeline's cycle count.
    fn dispatch_fast_timing(&mut self, idx: usize, grid: [u32; 3]) -> Result<u64, SystemError> {
        let (launch, assignments) = self.plan_dispatch(idx, grid)?;
        let prog = self.fast_program(idx)?;
        // Fast tier first, over views seeded from the same pre-dispatch
        // base the cycle shards will see. Its deltas are never committed.
        let fast_outcomes = self.run_fast_shards(&prog, &launch, &assignments);
        let before: Vec<u64> = self.cus.iter().map(ComputeUnit::now).collect();
        let cycle_res = self.run_cycle_epoch(&launch, &assignments, &before);
        let mut fast_err: Option<SystemError> = None;
        let mut stats = FastStats::for_program(&prog);
        let mut deltas = Vec::new();
        for slot in fast_outcomes {
            let (res, delta) = slot.expect("every fast shard produces an outcome");
            match res {
                Ok(s) => {
                    stats.merge(&s);
                    deltas.push(delta);
                }
                Err(e) => {
                    if fast_err.is_none() {
                        fast_err = Some(e);
                    }
                }
            }
        }
        match (cycle_res, fast_err) {
            // The cycle pipeline is authoritative: its failure is the
            // dispatch's failure whatever the fast tier thought.
            (Err(e), _) => return Err(e),
            (Ok(()), Some(e)) => {
                return Err(SystemError::FastDivergence {
                    what: format!("fast tier failed where the cycle pipeline succeeded: {e}"),
                });
            }
            (Ok(()), None) => {}
        }
        for delta in &deltas {
            if let Some((addr, want, got)) = self.mem.first_delta_mismatch(delta) {
                return Err(SystemError::FastDivergence {
                    what: format!(
                        "byte {addr:#x}: fast tier wrote {want:#04x}, cycle pipeline has {got:#04x}"
                    ),
                });
            }
        }
        // The cycle pipeline already counted this dispatch's instructions;
        // only the per-kernel fast counters record the shadow run.
        if let Some(slot) = &mut self.fast[idx] {
            slot.stats.merge(&stats);
        }
        Ok(self.finish_dispatch(idx, &before))
    }

    /// Translate kernel `idx` for the fast tier (cached after the first
    /// dispatch) and hand back its program.
    fn fast_program(&mut self, idx: usize) -> Result<Arc<Program>, SystemError> {
        if self.fast[idx].is_none() {
            let prog = translate(&self.kernels[idx], self.cus[0].config())?;
            let stats = FastStats::for_program(&prog);
            self.fast[idx] = Some(FastSlot {
                prog: Arc::new(prog),
                stats,
            });
        }
        Ok(Arc::clone(
            &self.fast[idx].as_ref().expect("slot just filled").prog,
        ))
    }

    /// Run every CU share of a fast-tier dispatch against private epoch
    /// views, serially or on scoped worker threads exactly like the cycle
    /// schedulers. Returns one outcome slot per CU, in CU-index order.
    fn run_fast_shards(
        &self,
        prog: &Program,
        launch: &Launch,
        assignments: &CuAssignments,
    ) -> Vec<FastShardOutcome> {
        let cfg = self.cus[0].config();
        let workers = self.effective_workers().min(assignments.len()).max(1);
        let mem = &self.mem;
        if workers > 1 {
            let outcomes: Vec<Mutex<FastShardOutcome>> =
                (0..assignments.len()).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers.min(assignments.len()) {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(wgs) = assignments.get(i) else { break };
                        let mut view = mem.epoch();
                        let res = run_fast_share(prog, launch, wgs, &mut view, cfg);
                        *outcomes[i].lock().expect("outcome slot lock") =
                            Some((res, view.finish()));
                    });
                }
            });
            outcomes
                .into_iter()
                .map(|m| m.into_inner().expect("outcome lock"))
                .collect()
        } else {
            assignments
                .iter()
                .map(|wgs| {
                    let mut view = mem.epoch();
                    let res = run_fast_share(prog, launch, wgs, &mut view, cfg);
                    Some((res, view.finish()))
                })
                .collect()
        }
    }

    /// Fast-tier dispatch epilogue: the same per-kernel accounting and
    /// metrics flush as [`System::finish_dispatch`], with zero cycles
    /// spent (the fast tier has no clock).
    fn finish_fast_dispatch(&mut self, idx: usize) {
        self.per_kernel_dispatches[idx] += 1;
        if self.last_kernel.is_some_and(|prev| prev != idx) {
            self.kernel_switches += 1;
        }
        self.last_kernel = Some(idx);
        if let Some(m) = &mut self.metrics {
            let mut instructions = self.fast_instructions;
            let mut stalls = [0u64; StallReason::ALL.len()];
            for cu in &self.cus {
                let s = cu.stats();
                instructions += s.instructions;
                for (&r, &n) in &s.stall_cycles {
                    stalls[r as usize] += n;
                }
            }
            m.flush_dispatch(0, instructions, &stalls, &self.mem);
        }
    }

    /// Accumulated fast-tier statistics for kernel `idx`: dynamic
    /// instruction and per-block dispatch counts over every fast or
    /// self-checking dispatch so far. `None` until the kernel's first
    /// fast-tier dispatch (or for an out-of-range index).
    #[must_use]
    pub fn fast_stats(&self, idx: usize) -> Option<&FastStats> {
        self.fast
            .get(idx)
            .and_then(|s| s.as_ref())
            .map(|s| &s.stats)
    }

    /// Static per-block instruction profiles of kernel `idx`'s fast-tier
    /// program ([`scratch_fastpath::BlockProfile`]); `None` until the
    /// kernel's first fast-tier dispatch translated it.
    #[must_use]
    pub fn fast_block_profiles(&self, idx: usize) -> Option<Vec<scratch_fastpath::BlockProfile>> {
        self.fast
            .get(idx)
            .and_then(|s| s.as_ref())
            .map(|s| s.prog.block_profiles())
    }

    /// Per-PC retire counters accumulated for kernel `idx` across every
    /// cycle-tier dispatch so far ([`SystemConfig::profile`] only — empty
    /// otherwise, and empty for an out-of-range index).
    #[must_use]
    pub fn pc_profile(&self, idx: usize) -> &[u64] {
        self.per_kernel_pc.get(idx).map_or(&[], |v| v.as_slice())
    }

    /// Stamp `job` on subsequently emitted trace events (see
    /// [`TraceEvent::ShardRun`]; 0 restores the unattributed default).
    pub fn set_job_id(&mut self, job: u64) {
        self.job_id = job;
    }

    /// Fold each CU's per-PC retire counters into kernel `idx`'s profile,
    /// leaving the CUs zeroed for the next dispatch.
    fn drain_pc_counts(&mut self, idx: usize) {
        let acc = &mut self.per_kernel_pc[idx];
        for cu in &mut self.cus {
            let counts = cu.take_pc_counts();
            if acc.len() < counts.len() {
                acc.resize(counts.len(), 0);
            }
            for (a, c) in acc.iter_mut().zip(&counts) {
                *a += c;
            }
        }
    }

    /// Shared prologue of the run-to-completion and preemptible dispatch
    /// paths: validate the launch, materialise scheduled memory upsets at
    /// the dispatch boundary, publish the OpenCL call values, and
    /// round-robin the grid's workgroups over the CUs.
    fn plan_dispatch(
        &mut self,
        idx: usize,
        grid: [u32; 3],
    ) -> Result<(Launch, CuAssignments), SystemError> {
        let args_addr = self.args_addr.ok_or(SystemError::ArgsNotSet)?;
        let kernel = self
            .kernels
            .get(idx)
            .ok_or(SystemError::EmptyDispatch)?
            .clone();
        let wg_size = kernel.meta().workgroup_size;
        let total_wgs = u64::from(grid[0]) * u64::from(grid[1]) * u64::from(grid[2]);
        if total_wgs == 0 || wg_size == 0 {
            return Err(SystemError::EmptyDispatch);
        }
        let waves_per_wg = (wg_size as usize).div_ceil(WAVEFRONT_SIZE);
        if let Some(buf) = &mut self.trace_buf {
            buf.record(&TraceEvent::KernelDispatch {
                kernel: kernel.name().to_owned(),
                grid,
                workgroup_size: wg_size,
            });
        }

        // Scheduled global-memory upsets materialise at the dispatch
        // boundary, before any epoch view of this dispatch is created —
        // every CU shard sees the same upset image whichever scheduler
        // runs it (the serial-vs-parallel bit-identity invariant).
        let seq = self.dispatch_seq;
        self.dispatch_seq += 1;
        if !self.config.faults.mem.is_empty() {
            let now = self.cus.iter().map(ComputeUnit::now).max().unwrap_or(0);
            for i in 0..self.config.faults.mem.len() {
                let u = self.config.faults.mem[i];
                if u.dispatch == seq {
                    self.mem.flip_bit(u.addr, u.bit);
                    if let Some(buf) = &mut self.trace_buf {
                        buf.record(&TraceEvent::FaultInjected {
                            cu: 0,
                            wave: 0,
                            class: "mem".to_owned(),
                            detail: format!(
                                "global byte {:#x} bit {} (dispatch {seq})",
                                u.addr, u.bit
                            ),
                            now,
                            job: self.job_id,
                        });
                    }
                }
            }
        }

        // OpenCL call values.
        self.mem.write_words(
            self.cb0_addr,
            &[grid[0], grid[1], grid[2], wg_size, grid[0] * wg_size],
        );
        let launch = Launch {
            kernel,
            wg_size,
            waves_per_wg,
            cb0: self.cb0_addr,
            args_addr,
            args_len: self.args_len,
        };

        // Round-robin workgroups over the CUs.
        let n_cus = self.cus.len();
        let mut assignments: CuAssignments = vec![Vec::new(); n_cus];
        let mut i = 0usize;
        for z in 0..grid[2] {
            for y in 0..grid[1] {
                for x in 0..grid[0] {
                    assignments[i % n_cus].push([x, y, z]);
                    i += 1;
                }
            }
        }
        Ok((launch, assignments))
    }

    /// Shared epilogue of both dispatch paths, run once every shard has
    /// committed: drain pipeline-fault records in CU-index order, account
    /// the dispatch to its kernel, and flush the metrics plane. Returns
    /// the CU cycles the dispatch took (max across CUs).
    fn finish_dispatch(&mut self, idx: usize, before: &[u64]) -> u64 {
        if !self.config.faults.cu.is_empty() {
            for cu in &mut self.cus {
                for rec in cu.drain_fault_records() {
                    if let Some(buf) = &mut self.trace_buf {
                        buf.record(&TraceEvent::FaultInjected {
                            cu: rec.cu,
                            wave: rec.wave,
                            class: rec.target.class().to_owned(),
                            detail: rec.target.to_string(),
                            now: rec.now,
                            job: self.job_id,
                        });
                    }
                    self.fault_log.push(rec);
                }
            }
        }

        if self.config.profile {
            self.drain_pc_counts(idx);
        }

        let spent = self
            .cus
            .iter()
            .zip(before)
            .map(|(cu, &b)| cu.now() - b)
            .max()
            .unwrap_or(0);
        self.per_kernel_cycles[idx] += spent;
        self.per_kernel_dispatches[idx] += 1;
        if self.last_kernel.is_some_and(|prev| prev != idx) {
            self.kernel_switches += 1;
        }
        self.last_kernel = Some(idx);
        if let Some(m) = &mut self.metrics {
            // Include the fast tier's running total so mixed-mode flushes
            // diff against a monotonic cumulative count.
            let mut instructions = self.fast_instructions;
            let mut stalls = [0u64; StallReason::ALL.len()];
            for cu in &self.cus {
                let s = cu.stats();
                instructions += s.instructions;
                for (&r, &n) in &s.stall_cycles {
                    stalls[r as usize] += n;
                }
            }
            m.flush_dispatch(spent, instructions, &stalls, &self.mem);
        }
        spent
    }

    /// Begin a *preemptible* launch of `grid` workgroups of the first
    /// loaded kernel and run its first quantum immediately. The dispatch
    /// executes in `quantum`-cycle slices: each call runs every
    /// still-unfinished CU shard for up to `quantum` CU cycles, then
    /// yields [`DispatchProgress::Paused`] until [`System::resume_dispatch`]
    /// continues it. While paused, [`System::checkpoint`] serialises the
    /// whole machine so the dispatch can resume in another process.
    ///
    /// The preempted execution is bit-identical to an uninterrupted
    /// [`System::dispatch`] — same memory contents, same cycle counts —
    /// whatever the quantum: shards keep private epoch views across
    /// pauses and deltas commit in CU order only at completion.
    ///
    /// # Errors
    ///
    /// As [`System::dispatch`]; additionally fails when a paused dispatch
    /// is already in flight or tracing is enabled (preemptible dispatch
    /// requires [`TraceMode::Off`]). A CU failure mid-quantum aborts the
    /// whole dispatch: no shard's writes become visible.
    pub fn dispatch_preemptible(
        &mut self,
        grid: [u32; 3],
        quantum: u64,
    ) -> Result<DispatchProgress, SystemError> {
        self.dispatch_kernel_preemptible(0, grid, quantum)
    }

    /// As [`System::dispatch_preemptible`], for kernel `idx`.
    ///
    /// # Errors
    ///
    /// As [`System::dispatch_preemptible`].
    pub fn dispatch_kernel_preemptible(
        &mut self,
        idx: usize,
        grid: [u32; 3],
        quantum: u64,
    ) -> Result<DispatchProgress, SystemError> {
        if self.paused.is_some() {
            return Err(preemption("a paused preemptible dispatch is in flight"));
        }
        if self.config.trace != TraceMode::Off {
            return Err(preemption("preemptible dispatch requires TraceMode::Off"));
        }
        // Checkpoints serialise cycle-accurate pipeline state; the fast
        // tier has none, so refuse up front rather than silently taking
        // wrong-cycle checkpoints.
        if self.config.exec != ExecMode::Cycle {
            return Err(SystemError::Snap(SnapError::UnsupportedExecMode));
        }
        let (launch, assignments) = self.plan_dispatch(idx, grid)?;
        // Load the kernel and clear retired waves on every CU up front
        // (the run-to-completion path does this lazily per batch) so a
        // checkpoint only ever holds waves of the in-flight kernel.
        for cu in &mut self.cus {
            cu.load_kernel(&launch.kernel)?;
            cu.clear_waves();
        }
        let before: Vec<u64> = self.cus.iter().map(ComputeUnit::now).collect();
        // Every shard's epoch view is seeded from the same pre-dispatch
        // base, exactly as the run-to-completion schedulers see it.
        let epochs: Vec<Option<EpochState>> = self
            .cus
            .iter()
            .map(|_| Some(self.mem.epoch().suspend()))
            .collect();
        let cursors = vec![
            ShareCursor {
                loaded: true,
                next_wg: 0,
                mid_batch: false,
            };
            self.cus.len()
        ];
        self.paused = Some(PausedDispatch {
            kernel_idx: idx,
            grid,
            launch,
            assignments,
            cursors,
            epochs,
            before,
        });
        self.dispatch_step(quantum)
    }

    /// Run one more quantum of the paused preemptible dispatch.
    ///
    /// # Errors
    ///
    /// Fails when no dispatch is paused; propagates CU failures, which
    /// abort the dispatch (no shard's writes become visible).
    pub fn resume_dispatch(&mut self, quantum: u64) -> Result<DispatchProgress, SystemError> {
        if self.paused.is_none() {
            return Err(preemption("no paused dispatch to resume"));
        }
        self.dispatch_step(quantum)
    }

    /// A preemptible dispatch is currently paused between quanta.
    #[must_use]
    pub fn is_paused(&self) -> bool {
        self.paused.is_some()
    }

    /// Dynamic instructions issued so far, per CU. Fault-injection
    /// campaigns compare these against their scheduled upsets' `at_issue`
    /// indices (which count the same per-CU issue stream) to decide
    /// whether a checkpoint predates every fault.
    #[must_use]
    pub fn per_cu_instructions(&self) -> Vec<u64> {
        self.cus.iter().map(|cu| cu.stats().instructions).collect()
    }

    /// One quantum: advance every unfinished shard by up to `quantum` CU
    /// cycles against its private epoch view, then either park the
    /// dispatch again or commit and finish it.
    fn dispatch_step(&mut self, quantum: u64) -> Result<DispatchProgress, SystemError> {
        let quantum = quantum.max(1);
        let mut p = self
            .paused
            .take()
            .expect("callers ensure a paused dispatch");
        let mut all_done = true;
        for (ci, cu) in self.cus.iter_mut().enumerate() {
            let wgs = p.assignments[ci].as_slice();
            if p.cursors[ci].finished(wgs.len()) {
                continue;
            }
            let state = p.epochs[ci]
                .take()
                .expect("unfinished shards keep an epoch");
            let mut view = self.mem.epoch_resume(state);
            // A `?` here aborts the whole dispatch: the paused state was
            // taken, so no shard's writes ever become visible.
            let done =
                run_cu_share_slice(cu, &p.launch, wgs, &mut view, &mut p.cursors[ci], quantum)?;
            p.epochs[ci] = Some(view.suspend());
            all_done &= done;
        }
        if !all_done {
            self.paused = Some(p);
            return Ok(DispatchProgress::Paused);
        }
        // Deterministic commit in CU-index order — the same order the
        // run-to-completion scheduler applies deltas.
        for slot in &mut p.epochs {
            let state = slot
                .take()
                .expect("every shard holds an epoch at completion");
            self.mem.commit(state.into_delta());
        }
        let spent = self.finish_dispatch(p.kernel_idx, &p.before);
        Ok(DispatchProgress::Complete { cycles: spent })
    }

    /// Serialise the entire machine — memory image, CU architectural
    /// state, dispatch bookkeeping, and the paused dispatch's progress —
    /// into a [`SystemCheckpoint`]. Only callable while a preemptible
    /// dispatch is paused (the only point where CU state is at an
    /// instruction boundary on every CU).
    ///
    /// # Errors
    ///
    /// Fails when no dispatch is paused.
    pub fn checkpoint(&self) -> Result<SystemCheckpoint, SystemError> {
        let p = self
            .paused
            .as_ref()
            .ok_or_else(|| preemption("checkpoints are taken while a dispatch is paused"))?;
        Ok(SystemCheckpoint {
            kind: self.config.kind,
            cus: self.config.cus,
            cu: self.config.cu.clone(),
            memory_bytes: self.config.memory_bytes as u64,
            auto_prefetch: self.config.auto_prefetch,
            metrics: self.config.metrics,
            kernels: self.kernels.clone(),
            memory: self.mem.checkpoint_state(),
            bump: self.bump,
            args_addr: self.args_addr,
            args_len: self.args_len,
            cb0_addr: self.cb0_addr,
            host_cycles: self.host_cycles,
            per_kernel_cycles: self.per_kernel_cycles.clone(),
            per_kernel_dispatches: self.per_kernel_dispatches.clone(),
            kernel_switches: self.kernel_switches,
            last_kernel: self.last_kernel.map(|i| i as u64),
            dispatch_seq: self.dispatch_seq,
            cu_state: self.cus.iter().map(ComputeUnit::snapshot).collect(),
            paused: PausedState {
                kernel_idx: p.kernel_idx as u64,
                grid: (p.grid[0], p.grid[1], p.grid[2]),
                assignments: p
                    .assignments
                    .iter()
                    .map(|wgs| wgs.iter().map(|w| (w[0], w[1], w[2])).collect())
                    .collect(),
                cursors: p.cursors.clone(),
                epochs: p.epochs.clone(),
                before: p.before.clone(),
            },
            per_kernel_pc: self.per_kernel_pc.clone(),
        })
    }

    /// Rebuild a paused system from a [`SystemCheckpoint`], ready for
    /// [`System::resume_dispatch`]. The restored system publishes into
    /// `registry` when given one (otherwise the process-global registry),
    /// always runs untraced with the serial scheduler, and carries **no**
    /// fault hooks — resuming from a checkpoint taken before an injected
    /// fault fired replays the execution fault-free, which is exactly
    /// what checkpoint-based recovery wants.
    ///
    /// # Errors
    ///
    /// Fails when the checkpoint's shard tables are inconsistent or a CU
    /// snapshot does not validate against the configuration and kernel it
    /// claims ([`SystemError::Preemption`], [`SystemError::Cu`]).
    pub fn restore(
        ck: &SystemCheckpoint,
        registry: Option<Registry>,
    ) -> Result<System, SystemError> {
        let n = usize::from(ck.cus);
        if ck.cu_state.len() != n
            || ck.paused.cursors.len() != n
            || ck.paused.epochs.len() != n
            || ck.paused.before.len() != n
            || ck.paused.assignments.len() != n
        {
            return Err(preemption(
                "checkpoint shard tables do not match its CU count",
            ));
        }
        if ck.per_kernel_cycles.len() != ck.kernels.len()
            || ck.per_kernel_dispatches.len() != ck.kernels.len()
        {
            return Err(preemption(
                "checkpoint per-kernel tables do not match its kernels",
            ));
        }
        let kidx = ck.paused.kernel_idx as usize;
        if kidx >= ck.kernels.len() {
            return Err(preemption("checkpoint paused on an unknown kernel index"));
        }
        let args_addr = ck.args_addr.ok_or(SystemError::ArgsNotSet)?;
        let mut config = SystemConfig::preset(ck.kind);
        config.cus = ck.cus;
        config.cu = ck.cu.clone();
        config.memory_bytes = ck.memory_bytes as usize;
        config.auto_prefetch = ck.auto_prefetch;
        config.metrics = ck.metrics;
        config.registry = registry;
        // The CU configuration carries the profiler switch; mirror it at
        // the system level so the resumed run keeps draining pc counters.
        config.profile = ck.cu.profile;
        let mut sys = System::with_kernels(config, &ck.kernels)?;
        let kernel = sys.kernels[kidx].clone();
        // The CUs' effective configuration (metrics switch folded in) is
        // whatever `with_kernels` just built them with.
        let cu_cfg = sys.cus[0].config().clone();
        sys.cus = ck
            .cu_state
            .iter()
            .map(|snap| ComputeUnit::restore(cu_cfg.clone(), &kernel, snap))
            .collect::<Result<Vec<_>, _>>()?;
        sys.mem = SharedMemory::restore_state(&ck.memory);
        sys.bump = ck.bump;
        sys.args_addr = ck.args_addr;
        sys.args_len = ck.args_len;
        sys.cb0_addr = ck.cb0_addr;
        sys.host_cycles = ck.host_cycles;
        sys.per_kernel_cycles = ck.per_kernel_cycles.clone();
        sys.per_kernel_dispatches = ck.per_kernel_dispatches.clone();
        sys.kernel_switches = ck.kernel_switches;
        sys.last_kernel = ck.last_kernel.map(|i| i as usize);
        sys.dispatch_seq = ck.dispatch_seq;
        if ck.per_kernel_pc.len() == ck.kernels.len() {
            sys.per_kernel_pc = ck.per_kernel_pc.clone();
        }
        let wg_size = kernel.meta().workgroup_size;
        let waves_per_wg = (wg_size as usize).div_ceil(WAVEFRONT_SIZE);
        sys.paused = Some(PausedDispatch {
            kernel_idx: kidx,
            grid: [ck.paused.grid.0, ck.paused.grid.1, ck.paused.grid.2],
            launch: Launch {
                kernel,
                wg_size,
                waves_per_wg,
                cb0: ck.cb0_addr,
                args_addr,
                args_len: ck.args_len,
            },
            assignments: ck
                .paused
                .assignments
                .iter()
                .map(|wgs| wgs.iter().map(|&(x, y, z)| [x, y, z]).collect())
                .collect(),
            cursors: ck.paused.cursors.clone(),
            epochs: ck.paused.epochs.clone(),
            before: ck.paused.before.clone(),
        });
        // Registry counters are process-cumulative while the restored
        // simulator counters carry the whole run's history: seed the
        // baselines so the next flush publishes only post-restore deltas.
        if let Some(m) = &mut sys.metrics {
            let mut instructions = 0;
            let mut stalls = [0u64; StallReason::ALL.len()];
            for cu in &sys.cus {
                let s = cu.stats();
                instructions += s.instructions;
                for (&r, &cnt) in &s.stall_cycles {
                    stalls[r as usize] += cnt;
                }
            }
            m.prev = Baselines {
                instructions,
                global_accesses: sys.mem.global_accesses(),
                prefetch_hits: sys.mem.prefetch_hits(),
                prefetch_hit_bytes: sys.mem.prefetch_hit_bytes(),
                queue_wait: sys.mem.queue_wait_cycles(),
                stalls,
            };
        }
        Ok(sys)
    }

    /// Resolve [`SystemConfig::workers`]: `0` means one per available core.
    fn effective_workers(&self) -> usize {
        match self.config.workers {
            0 => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            n => n,
        }
    }

    /// Run the dispatch's CU shards on `workers` scoped threads with
    /// work-stealing over the shard list. Returns one outcome slot per CU,
    /// in CU-index order.
    fn run_shards_parallel(
        &mut self,
        launch: &Launch,
        assignments: &[Vec<[u32; 3]>],
        workers: usize,
    ) -> Vec<ShardOutcome> {
        let mem = &self.mem;
        let shards: Vec<ShardSlot<'_>> = self
            .cus
            .iter_mut()
            .zip(assignments)
            .enumerate()
            .map(|(ci, (cu, wgs))| Mutex::new(Some((ci, cu, wgs.as_slice()))))
            .collect();
        let outcomes: Vec<Mutex<ShardOutcome>> =
            (0..shards.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers.min(shards.len()) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = shards.get(i) else { break };
                    let (ci, cu, wgs) = slot
                        .lock()
                        .expect("shard slot lock")
                        .take()
                        .expect("each shard is claimed exactly once");
                    let mut view = mem.epoch();
                    let res = run_cu_share(cu, launch, wgs, &mut view);
                    *outcomes[ci].lock().expect("outcome slot lock") = Some((res, view.finish()));
                });
            }
        });
        outcomes
            .into_iter()
            .map(|m| m.into_inner().expect("outcome lock"))
            .collect()
    }

    /// Cumulative measurements since construction.
    #[must_use]
    pub fn report(&self) -> RunReport {
        let mut stats = CuStats::default();
        let mut per_cu = Vec::with_capacity(self.cus.len());
        for cu in &self.cus {
            stats.merge(cu.stats());
            per_cu.push(cu.now());
        }
        // Fast-tier dispatches retire instructions without touching any
        // CU's counters; fold their running total into the aggregate.
        stats.instructions += self.fast_instructions;
        let cu_cycles = per_cu.iter().copied().max().unwrap_or(0);
        stats.cycles = cu_cycles;
        if self.config.metrics {
            // Queueing at the shared memory server is the one stall the CUs
            // cannot see; fold it into the always-on aggregate the same way
            // the trace summary gets it below.
            let queued = self.mem.queue_wait_cycles();
            if queued > 0 {
                *stats
                    .stall_cycles
                    .entry(StallReason::MemoryQueue)
                    .or_insert(0) += queued;
            }
        }
        if let Some(m) = &self.metrics {
            m.set_gauges(&stats, &self.config);
        }
        let seconds = cu_cycles as f64 / self.config.kind.cu_clock_hz()
            + self.host_cycles as f64 / self.config.kind.mb_clock_hz();
        let mut trace: Option<TraceSummary> = None;
        for cu in &self.cus {
            if let Some(s) = cu.trace_summary() {
                match &mut trace {
                    Some(merged) => merged.merge(&s),
                    None => trace = Some(s),
                }
            }
        }
        if let Some(merged) = &mut trace {
            // Queueing delay at the shared memory server is a system-level
            // structural stall: it is not resident on any wavefront
            // timeline, but it explains where global-memory latency came
            // from.
            let queued = self.mem.queue_wait_cycles();
            if queued > 0 {
                *merged.stalls.entry(StallReason::MemoryQueue).or_insert(0) += queued;
            }
        }
        RunReport {
            cu_cycles,
            host_cycles: self.host_cycles,
            seconds,
            stats,
            per_cu_cycles: per_cu,
            global_accesses: self.mem.global_accesses(),
            prefetch_hits: self.mem.prefetch_hits(),
            per_kernel_cycles: self.per_kernel_cycles.clone(),
            per_kernel_dispatches: self.per_kernel_dispatches.clone(),
            kernel_switches: self.kernel_switches,
            trace,
            trace_events: self.trace_buf.as_ref().map(EventBuffer::snapshot),
            fault_records: self.fault_log.clone(),
            pc_profiles: self.per_kernel_pc.clone(),
        }
    }

    /// Pipeline faults that have fired so far (in CU-index order within
    /// each dispatch; empty when injection is off).
    #[must_use]
    pub fn fault_records(&self) -> &[FaultRecord] {
        &self.fault_log
    }
}

/// The system's handles into its metrics registry, plus baselines of the
/// simulator's cumulative counters so each dispatch publishes only its own
/// delta (registry counters are process-cumulative across systems).
#[derive(Debug)]
struct SysMetrics {
    dispatches: Counter,
    cu_cycles: Counter,
    instructions: Counter,
    global_accesses: Counter,
    prefetch_hits: Counter,
    prefetch_hit_bytes: Counter,
    queue_wait: Counter,
    /// Stall-cycle counters, indexed by `StallReason as usize`.
    stalls: Vec<Counter>,
    dispatch_cycles: Histogram,
    ipc: Gauge,
    mem_ops_per_cycle: Gauge,
    occupancy: Vec<(FuncUnit, Gauge)>,
    prev: Baselines,
}

/// Cumulative counter values already published, per instrument.
#[derive(Debug, Default)]
struct Baselines {
    instructions: u64,
    global_accesses: u64,
    prefetch_hits: u64,
    prefetch_hit_bytes: u64,
    queue_wait: u64,
    stalls: [u64; StallReason::ALL.len()],
}

impl SysMetrics {
    fn new(config: &SystemConfig) -> SysMetrics {
        let registry = config
            .registry
            .clone()
            .unwrap_or_else(|| scratch_metrics::global().clone());
        let sys = config.kind.label();
        let labels: &[(&str, &str)] = &[("system", sys)];
        let counter = |name: &str, help: &str| registry.counter_with(name, help, labels);
        SysMetrics {
            dispatches: counter(
                "scratch_system_dispatches_total",
                "Kernel dispatches completed",
            ),
            cu_cycles: counter(
                "scratch_system_cu_cycles_total",
                "CU cycles simulated (max across CUs per dispatch)",
            ),
            instructions: counter(
                "scratch_system_instructions_total",
                "Dynamic instructions issued",
            ),
            global_accesses: counter(
                "scratch_system_global_accesses_total",
                "Accesses down the global (MicroBlaze) memory path",
            ),
            prefetch_hits: counter(
                "scratch_system_prefetch_hits_total",
                "Accesses serviced by the prefetch buffer",
            ),
            prefetch_hit_bytes: counter(
                "scratch_system_prefetch_hit_bytes_total",
                "Bytes served by the prefetch buffer",
            ),
            queue_wait: counter(
                "scratch_system_memory_queue_wait_cycles_total",
                "Cycles requests queued behind the shared memory server",
            ),
            stalls: StallReason::ALL
                .iter()
                .map(|r| {
                    registry.counter_with(
                        "scratch_system_stall_cycles_total",
                        "Wavefront-cycles that did not issue, by reason",
                        &[("system", sys), ("reason", r.label())],
                    )
                })
                .collect(),
            dispatch_cycles: registry.histogram_with(
                "scratch_system_dispatch_cycles",
                "CU cycles per kernel dispatch",
                labels,
            ),
            ipc: registry.gauge_with(
                "scratch_system_ipc",
                "Instructions per cycle (wavefront granularity) over the run",
                labels,
            ),
            mem_ops_per_cycle: registry.gauge_with(
                "scratch_system_mem_ops_per_cycle",
                "Memory operations (vector + scalar) per cycle over the run",
                labels,
            ),
            occupancy: FuncUnit::ALL
                .iter()
                .map(|&u| {
                    (
                        u,
                        registry.gauge_with(
                            "scratch_system_fu_occupancy_ratio",
                            "Busy fraction of a functional-unit class, over all instances",
                            &[("system", sys), ("unit", u.label())],
                        ),
                    )
                })
                .collect(),
            prev: Baselines::default(),
        }
    }

    /// Publish one dispatch: bump the dispatch counter and histogram, and
    /// push each cumulative simulator counter's delta since the last flush.
    fn flush_dispatch(
        &mut self,
        spent: u64,
        instructions: u64,
        stalls: &[u64; StallReason::ALL.len()],
        mem: &SharedMemory,
    ) {
        self.dispatches.inc();
        self.cu_cycles.add(spent);
        self.dispatch_cycles.observe(spent);
        self.instructions.add(instructions - self.prev.instructions);
        self.prev.instructions = instructions;
        self.global_accesses
            .add(mem.global_accesses() - self.prev.global_accesses);
        self.prev.global_accesses = mem.global_accesses();
        self.prefetch_hits
            .add(mem.prefetch_hits() - self.prev.prefetch_hits);
        self.prev.prefetch_hits = mem.prefetch_hits();
        self.prefetch_hit_bytes
            .add(mem.prefetch_hit_bytes() - self.prev.prefetch_hit_bytes);
        self.prev.prefetch_hit_bytes = mem.prefetch_hit_bytes();
        self.queue_wait
            .add(mem.queue_wait_cycles() - self.prev.queue_wait);
        self.prev.queue_wait = mem.queue_wait_cycles();
        for (i, counter) in self.stalls.iter().enumerate() {
            counter.add(stalls[i] - self.prev.stalls[i]);
            self.prev.stalls[i] = stalls[i];
        }
    }

    /// Refresh the run-level gauges from the merged statistics. Idempotent
    /// (gauges are set, not accumulated), so calling `report()` repeatedly
    /// is fine.
    fn set_gauges(&self, stats: &CuStats, config: &SystemConfig) {
        self.ipc.set(stats.ipc());
        self.mem_ops_per_cycle.set(stats.mem_ops_per_cycle());
        for (unit, gauge) in &self.occupancy {
            let per_cu = match unit {
                FuncUnit::Simd => u64::from(config.cu.int_valus),
                FuncUnit::Simf => u64::from(config.cu.fp_valus),
                FuncUnit::Salu | FuncUnit::Lsu | FuncUnit::Branch => 1,
            };
            let denom = stats.cycles * per_cu * u64::from(config.cus);
            let busy = stats.fu_busy.get(unit).copied().unwrap_or(0);
            gauge.set(if denom == 0 {
                0.0
            } else {
                busy as f64 / denom as f64
            });
        }
    }
}

/// What one CU shard hands back to the dispatcher: its run result plus the
/// epoch delta to commit. `None` until the shard has run.
type ShardOutcome = Option<(Result<(), SystemError>, EpochDelta)>;

/// One fast-tier share's outcome: its statistics (or failure) plus the
/// epoch delta it produced.
type FastShardOutcome = Option<(Result<FastStats, SystemError>, EpochDelta)>;

/// A claimable shard: one CU and its workgroup share, taken exactly once
/// by whichever worker gets there first.
type ShardSlot<'a> = Mutex<Option<(usize, &'a mut ComputeUnit, &'a [[u32; 3]])>>;

/// Everything a CU shard needs to launch its workgroups — immutable, so
/// worker threads share it by reference.
#[derive(Debug, Clone)]
struct Launch {
    kernel: Kernel,
    wg_size: u32,
    waves_per_wg: usize,
    cb0: u64,
    args_addr: u64,
    args_len: u64,
}

/// Build [`SystemError::Preemption`] from a static description.
fn preemption(reason: &str) -> SystemError {
    SystemError::Preemption {
        reason: reason.to_owned(),
    }
}

/// Outcome of one preemptible dispatch quantum
/// ([`System::dispatch_preemptible`] / [`System::resume_dispatch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchProgress {
    /// The dispatch ran to completion.
    Complete {
        /// CU cycles the whole dispatch took (max across CUs), as
        /// [`System::dispatch`] would have returned.
        cycles: u64,
    },
    /// The quantum expired with shards still outstanding; resume with
    /// [`System::resume_dispatch`] or serialise via [`System::checkpoint`].
    Paused,
}

/// Per-CU progress through its shard of a preemptible dispatch: enough to
/// continue exactly where the previous quantum stopped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ShareCursor {
    /// The CU's instruction memory holds this dispatch's kernel.
    loaded: bool,
    /// Index of the next unlaunched workgroup in the CU's share.
    next_wg: u64,
    /// A loaded batch is still running (the pause landed mid-batch).
    mid_batch: bool,
}

impl ShareCursor {
    /// The shard has launched and retired every workgroup of its share.
    fn finished(&self, share: usize) -> bool {
        self.loaded && !self.mid_batch && self.next_wg as usize >= share
    }
}

/// Per-CU workgroup shares: `assignments[cu]` lists the workgroup ids
/// round-robined onto that CU, in launch order.
type CuAssignments = Vec<Vec<[u32; 3]>>;

/// An in-flight preemptible dispatch, parked between quanta.
#[derive(Debug)]
struct PausedDispatch {
    kernel_idx: usize,
    grid: [u32; 3],
    launch: Launch,
    assignments: CuAssignments,
    cursors: Vec<ShareCursor>,
    /// Suspended epoch views, one per CU; `None` only transiently while a
    /// shard's slice runs.
    epochs: Vec<Option<EpochState>>,
    /// Per-CU cycle counters at dispatch entry.
    before: Vec<u64>,
}

/// Serializable form of [`PausedDispatch`]: the launch is rebuilt from
/// the checkpointed kernel list on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PausedState {
    kernel_idx: u64,
    grid: (u32, u32, u32),
    assignments: Vec<Vec<(u32, u32, u32)>>,
    cursors: Vec<ShareCursor>,
    epochs: Vec<Option<EpochState>>,
    before: Vec<u64>,
}

/// A serializable image of an entire paused [`System`] — global memory,
/// every CU's architectural state, host/dispatch bookkeeping, and the
/// paused dispatch's progress cursors and epoch views. Produced by
/// [`System::checkpoint`], consumed by [`System::restore`]; round-trips
/// through `scratch_snap::to_bytes` / `from_bytes` for on-wire or on-disk
/// checkpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemCheckpoint {
    kind: SystemKind,
    cus: u8,
    cu: CuConfig,
    memory_bytes: u64,
    auto_prefetch: bool,
    metrics: bool,
    kernels: Vec<Kernel>,
    memory: MemoryState,
    bump: u64,
    args_addr: Option<u64>,
    args_len: u64,
    cb0_addr: u64,
    host_cycles: u64,
    per_kernel_cycles: Vec<u64>,
    per_kernel_dispatches: Vec<u64>,
    kernel_switches: u64,
    last_kernel: Option<u64>,
    dispatch_seq: u64,
    cu_state: Vec<CuSnapshot>,
    paused: PausedState,
    per_kernel_pc: Vec<Vec<u64>>,
}

impl SystemCheckpoint {
    /// Compute-unit cycle counters at the checkpoint (per CU) — the
    /// resume point on each CU's timeline.
    #[must_use]
    pub fn cu_cycles(&self) -> Vec<u64> {
        self.cu_state.iter().map(|s| s.now).collect()
    }
}

/// Clear the CU's retired waves and launch one batch of workgroups,
/// writing the full launch ABI (buffer descriptors, workgroup and
/// work-item ids) into every wave.
fn load_batch(
    cu: &mut ComputeUnit,
    launch: &Launch,
    batch: &[[u32; 3]],
) -> Result<(), SystemError> {
    let wg_size = launch.wg_size;
    cu.clear_waves();
    for &wg_id in batch {
        let wg = cu.add_workgroup();
        for w in 0..launch.waves_per_wg {
            let lane_base = (w * WAVEFRONT_SIZE) as u32;
            let active = (wg_size - lane_base).min(WAVEFRONT_SIZE as u32);
            if active == 0 {
                break;
            }
            let exec = if active >= 64 {
                u64::MAX
            } else {
                (1u64 << active) - 1
            };
            let tids: Vec<u32> = (0..WAVEFRONT_SIZE as u32).map(|l| lane_base + l).collect();
            let mut vgprs = vec![(u32::from(abi::TID_X), tids)];
            // v1/v2 carry the work-item Y/Z ids. This dispatcher
            // launches 1-D workgroups, so both are zero — written
            // explicitly, but only when the kernel's VGPR budget
            // covers the register.
            for tid in [abi::TID_Y, abi::TID_Z] {
                if u32::from(tid) < u32::from(launch.kernel.meta().vgprs) {
                    vgprs.push((u32::from(tid), vec![0; WAVEFRONT_SIZE]));
                }
            }
            cu.start_wave(WaveInit {
                workgroup: wg,
                exec,
                sgprs: vec![
                    // IMM_UAV: base 0, unbounded records.
                    (u32::from(abi::UAV_DESC), 0),
                    (u32::from(abi::UAV_DESC) + 1, 0),
                    (u32::from(abi::UAV_DESC) + 2, 0),
                    (u32::from(abi::UAV_DESC) + 3, 0),
                    // IMM_CONST_BUFFER0.
                    (u32::from(abi::CONST_BUF0), launch.cb0 as u32),
                    (u32::from(abi::CONST_BUF0) + 1, (launch.cb0 >> 32) as u32),
                    (u32::from(abi::CONST_BUF0) + 2, 64),
                    (u32::from(abi::CONST_BUF0) + 3, 0),
                    // IMM_CONST_BUFFER1.
                    (u32::from(abi::CONST_BUF1), launch.args_addr as u32),
                    (
                        u32::from(abi::CONST_BUF1) + 1,
                        (launch.args_addr >> 32) as u32,
                    ),
                    (u32::from(abi::CONST_BUF1) + 2, launch.args_len as u32),
                    (u32::from(abi::CONST_BUF1) + 3, 0),
                    // Workgroup ids.
                    (u32::from(abi::WG_ID_X), wg_id[0]),
                    (u32::from(abi::WG_ID_Y), wg_id[1]),
                    (u32::from(abi::WG_ID_Z), wg_id[2]),
                ],
                vgprs,
            })?;
        }
    }
    Ok(())
}

/// Run — or continue — one CU's shard for at most `budget` CU cycles
/// against its epoch view, advancing `cursor`. Returns `true` when the
/// shard has fully completed, `false` when the budget expired mid-shard
/// (call again with a fresh budget to continue).
fn run_cu_share_slice(
    cu: &mut ComputeUnit,
    launch: &Launch,
    wgs: &[[u32; 3]],
    mem: &mut EpochMemory<'_>,
    cursor: &mut ShareCursor,
    budget: u64,
) -> Result<bool, SystemError> {
    if !cursor.loaded {
        cu.load_kernel(&launch.kernel)?;
        cursor.loaded = true;
    }
    let max_waves = usize::from(cu.config().max_wavefronts);
    let wgs_per_batch = (max_waves / launch.waves_per_wg).max(1);
    let entry = cu.now();
    loop {
        if !cursor.mid_batch {
            let next = cursor.next_wg as usize;
            if next >= wgs.len() {
                return Ok(true);
            }
            let end = (next + wgs_per_batch).min(wgs.len());
            load_batch(cu, launch, &wgs[next..end])?;
            cursor.next_wg = end as u64;
            cursor.mid_batch = true;
        }
        let spent = cu.now() - entry;
        if spent >= budget {
            return Ok(false);
        }
        match cu.run_until(mem, budget - spent)? {
            RunStatus::Done(_) => cursor.mid_batch = false,
            RunStatus::Paused => return Ok(false),
        }
    }
}

/// Run one CU's shard of a dispatch epoch against its private memory view.
///
/// This is the unit of work both schedulers share: the serial path calls
/// it CU by CU, the parallel path hands it to worker threads. Its effects
/// are a pure function of `(CU state, launch, workgroups, epoch-start
/// memory)` — the invariant behind the engine's determinism guarantee.
/// It is the unbounded-budget special case of [`run_cu_share_slice`],
/// which the preemptible dispatcher drives quantum by quantum.
fn run_cu_share(
    cu: &mut ComputeUnit,
    launch: &Launch,
    wgs: &[[u32; 3]],
    mem: &mut EpochMemory<'_>,
) -> Result<(), SystemError> {
    let mut cursor = ShareCursor {
        loaded: false,
        next_wg: 0,
        mid_batch: false,
    };
    let done = run_cu_share_slice(cu, launch, wgs, mem, &mut cursor, u64::MAX)?;
    debug_assert!(done, "an unbounded budget always completes the shard");
    Ok(())
}

/// Run one CU's shard of a fast-tier dispatch: the same workgroup share
/// and launch ABI as [`run_cu_share`] — identical register images, exec
/// masks, and per-workgroup LDS — executed by the block-compiled program
/// instead of the cycle pipeline. `cfg` supplies the CU's wavefront and
/// fuel limits so the fast tier refuses exactly what the pipeline would.
fn run_fast_share(
    prog: &Program,
    launch: &Launch,
    wgs: &[[u32; 3]],
    mem: &mut EpochMemory<'_>,
    cfg: &CuConfig,
) -> Result<FastStats, SystemError> {
    let meta = *launch.kernel.meta();
    let mut stats = FastStats::for_program(prog);
    let mut fuel = Fuel::new(cfg.cycle_limit);
    let mut lds = vec![0u32; prog.lds_words()];
    for &wg_id in wgs {
        lds.fill(0);
        let mut slots: Vec<WaveSlot> = Vec::new();
        for w in 0..launch.waves_per_wg {
            let lane_base = (w * WAVEFRONT_SIZE) as u32;
            let active = (launch.wg_size - lane_base).min(WAVEFRONT_SIZE as u32);
            if active == 0 {
                break;
            }
            if slots.len() >= usize::from(cfg.max_wavefronts) {
                return Err(CuError::TooManyWavefronts.into());
            }
            let exec = if active >= 64 {
                u64::MAX
            } else {
                (1u64 << active) - 1
            };
            let mut wave = Wavefront::new(w, 0, usize::from(meta.sgprs), usize::from(meta.vgprs));
            wave.exec = exec;
            for (r, v) in [
                // IMM_UAV: base 0, unbounded records.
                (u32::from(abi::UAV_DESC), 0),
                (u32::from(abi::UAV_DESC) + 1, 0),
                (u32::from(abi::UAV_DESC) + 2, 0),
                (u32::from(abi::UAV_DESC) + 3, 0),
                // IMM_CONST_BUFFER0.
                (u32::from(abi::CONST_BUF0), launch.cb0 as u32),
                (u32::from(abi::CONST_BUF0) + 1, (launch.cb0 >> 32) as u32),
                (u32::from(abi::CONST_BUF0) + 2, 64),
                (u32::from(abi::CONST_BUF0) + 3, 0),
                // IMM_CONST_BUFFER1.
                (u32::from(abi::CONST_BUF1), launch.args_addr as u32),
                (
                    u32::from(abi::CONST_BUF1) + 1,
                    (launch.args_addr >> 32) as u32,
                ),
                (u32::from(abi::CONST_BUF1) + 2, launch.args_len as u32),
                (u32::from(abi::CONST_BUF1) + 3, 0),
                // Workgroup ids.
                (u32::from(abi::WG_ID_X), wg_id[0]),
                (u32::from(abi::WG_ID_Y), wg_id[1]),
                (u32::from(abi::WG_ID_Z), wg_id[2]),
            ] {
                wave.set_sgpr(r, v)?;
            }
            for lane in 0..WAVEFRONT_SIZE {
                wave.set_vgpr(u32::from(abi::TID_X), lane, lane_base + lane as u32)?;
            }
            // 1-D workgroups: Y/Z work-item ids are zero, written only when
            // the kernel's VGPR budget covers the register.
            for tid in [abi::TID_Y, abi::TID_Z] {
                if u32::from(tid) < u32::from(meta.vgprs) {
                    for lane in 0..WAVEFRONT_SIZE {
                        wave.set_vgpr(u32::from(tid), lane, 0)?;
                    }
                }
            }
            slots.push(WaveSlot::new(prog, wave));
        }
        run_workgroup(prog, &mut slots, &mut lds, mem, &mut stats, &mut fuel)?;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scratch_asm::KernelBuilder;
    use scratch_isa::{Opcode, Operand, SmrdOffset};

    /// out[gid] = in[gid] + 1, 1-D over the X grid. Args: [in, out].
    fn add_one_kernel(wg_size: u32) -> Kernel {
        let mut b = KernelBuilder::new("add_one");
        b.vgprs(8).sgprs(32).workgroup_size(wg_size);
        // s20 = in, s21 = out
        b.smrd(
            Opcode::SBufferLoadDwordx2,
            Operand::Sgpr(20),
            abi::CONST_BUF1,
            SmrdOffset::Imm(0),
        )
        .unwrap();
        b.waitcnt(None, Some(0)).unwrap();
        // s0 = wg_id_x * wg_size
        b.sop2(
            Opcode::SMulI32,
            Operand::Sgpr(0),
            Operand::Sgpr(abi::WG_ID_X),
            Operand::Literal(wg_size),
        )
        .unwrap();
        // v1 = gid = s0 + tid
        b.vop2(Opcode::VAddI32, 1, Operand::Sgpr(0), abi::TID_X)
            .unwrap();
        // v1 = byte offset
        b.vop2(Opcode::VLshlrevB32, 1, Operand::IntConst(2), 1)
            .unwrap();
        // v2 = load in[gid]
        b.mubuf(
            Opcode::BufferLoadDword,
            2,
            1,
            abi::UAV_DESC,
            Operand::Sgpr(20),
            0,
        )
        .unwrap();
        b.waitcnt(Some(0), None).unwrap();
        // v2 += 1
        b.vop2(Opcode::VAddI32, 2, Operand::IntConst(1), 2).unwrap();
        // store out[gid]
        b.mubuf(
            Opcode::BufferStoreDword,
            2,
            1,
            abi::UAV_DESC,
            Operand::Sgpr(21),
            0,
        )
        .unwrap();
        b.waitcnt(Some(0), None).unwrap();
        b.endpgm().unwrap();
        b.finish().unwrap()
    }

    fn run_add_one(kind: SystemKind, cus: u8, n: u32, wg_size: u32) -> (Vec<u32>, RunReport) {
        run_add_one_workers(kind, cus, n, wg_size, 1)
    }

    fn run_add_one_workers(
        kind: SystemKind,
        cus: u8,
        n: u32,
        wg_size: u32,
        workers: usize,
    ) -> (Vec<u32>, RunReport) {
        let kernel = add_one_kernel(wg_size);
        let config = SystemConfig::preset(kind)
            .with_cus(cus)
            .unwrap()
            .with_workers(workers);
        let mut sys = System::new(config, &kernel).unwrap();
        let input: Vec<u32> = (0..n).map(|i| i * 3).collect();
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc(u64::from(n) * 4);
        sys.set_args(&[a_in as u32, a_out as u32]);
        sys.dispatch([n / wg_size, 1, 1]).unwrap();
        (sys.read_words(a_out, n as usize), sys.report())
    }

    fn run_add_one_exec(
        exec: ExecMode,
        cus: u8,
        n: u32,
        wg_size: u32,
        workers: usize,
    ) -> (Vec<u32>, u64, RunReport, Option<FastStats>) {
        let kernel = add_one_kernel(wg_size);
        let config = SystemConfig::preset(SystemKind::DcdPm)
            .with_cus(cus)
            .unwrap()
            .with_workers(workers)
            .with_exec(exec);
        let mut sys = System::new(config, &kernel).unwrap();
        let input: Vec<u32> = (0..n).map(|i| i * 3).collect();
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc(u64::from(n) * 4);
        sys.set_args(&[a_in as u32, a_out as u32]);
        let cycles = sys.dispatch([n / wg_size, 1, 1]).unwrap();
        let stats = sys.fast_stats(0).cloned();
        (
            sys.read_words(a_out, n as usize),
            cycles,
            sys.report(),
            stats,
        )
    }

    #[test]
    fn fast_mode_matches_cycle_output() {
        for (cus, wg_size) in [(1u8, 64u32), (3, 64), (1, 192)] {
            let n = 768;
            let (cyc_out, cyc_cycles, cyc_report, _) =
                run_add_one_exec(ExecMode::Cycle, cus, n, wg_size, 1);
            let (fast_out, fast_cycles, fast_report, fast_stats) =
                run_add_one_exec(ExecMode::Fast, cus, n, wg_size, 1);
            assert_eq!(cyc_out, fast_out, "cus={cus} wg_size={wg_size}");
            assert!(cyc_cycles > 0);
            assert_eq!(fast_cycles, 0, "the fast tier is functional-only");
            // Same dynamic instruction stream, counted by different tiers.
            assert_eq!(
                cyc_report.stats.instructions, fast_report.stats.instructions,
                "cus={cus} wg_size={wg_size}"
            );
            let stats = fast_stats.expect("fast dispatch populates the kernel's slot");
            assert_eq!(stats.instructions, fast_report.stats.instructions);
            assert!(stats.block_dispatches.iter().sum::<u64>() > 0);
        }
    }

    #[test]
    fn fast_parallel_is_bit_identical_to_serial() {
        let (serial, _, _, s1) = run_add_one_exec(ExecMode::Fast, 4, 2048, 64, 1);
        let (parallel, _, _, s4) = run_add_one_exec(ExecMode::Fast, 4, 2048, 64, 4);
        assert_eq!(serial, parallel);
        assert_eq!(s1, s4, "fast-tier counters are scheduler-independent");
    }

    #[test]
    fn fast_with_timing_self_checks_and_keeps_cycle_counts() {
        let (cyc_out, cyc_cycles, _, _) = run_add_one_exec(ExecMode::Cycle, 2, 512, 64, 1);
        let (chk_out, chk_cycles, chk_report, chk_stats) =
            run_add_one_exec(ExecMode::FastWithTiming, 2, 512, 64, 1);
        assert_eq!(cyc_out, chk_out);
        assert_eq!(
            cyc_cycles, chk_cycles,
            "timing comes from the cycle pipeline"
        );
        // The shadow fast run must not double-count instructions.
        assert_eq!(
            chk_report.stats.instructions,
            chk_stats
                .expect("shadow run populates the slot")
                .instructions
        );
    }

    #[test]
    fn preemptible_dispatch_rejects_fast_tiers() {
        for exec in [ExecMode::Fast, ExecMode::FastWithTiming] {
            let kernel = add_one_kernel(64);
            let config = SystemConfig::preset(SystemKind::DcdPm).with_exec(exec);
            let mut sys = System::new(config, &kernel).unwrap();
            let a_in = sys.alloc(64 * 4);
            let a_out = sys.alloc(64 * 4);
            sys.set_args(&[a_in as u32, a_out as u32]);
            let err = sys.dispatch_preemptible([1, 1, 1], 100).unwrap_err();
            assert_eq!(err, SystemError::Snap(SnapError::UnsupportedExecMode));
        }
    }

    #[test]
    fn vector_add_correct_across_configs() {
        for kind in [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm] {
            let (out, _) = run_add_one(kind, 1, 256, 64);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i as u32 * 3 + 1, "{kind:?} element {i}");
            }
        }
    }

    #[test]
    fn config_speedups_have_paper_shape() {
        let n = 2048;
        let (_, orig) = run_add_one(SystemKind::Original, 1, n, 64);
        let (_, dcd) = run_add_one(SystemKind::Dcd, 1, n, 64);
        let (_, pm) = run_add_one(SystemKind::DcdPm, 1, n, 64);
        let s_dcd = orig.seconds / dcd.seconds;
        let s_pm = orig.seconds / pm.seconds;
        assert!(
            (1.05..=1.6).contains(&s_dcd),
            "DCD speedup {s_dcd:.2} outside the paper's ~1.17x regime"
        );
        assert!(s_pm > 4.0, "DCD+PM speedup {s_pm:.2} too small");
        assert!(s_pm > s_dcd * 2.0);
        assert!(pm.prefetch_hits > 0);
        assert_eq!(orig.prefetch_hits, 0);
    }

    #[test]
    fn multi_core_distributes_and_speeds_up() {
        let n = 4096;
        let (out1, r1) = run_add_one(SystemKind::DcdPm, 1, n, 64);
        let (out3, r3) = run_add_one(SystemKind::DcdPm, 3, n, 64);
        assert_eq!(out1, out3, "results identical regardless of CU count");
        let speedup = r1.seconds / r3.seconds;
        assert!(
            speedup > 1.8 && speedup < 3.2,
            "3-CU speedup {speedup:.2} out of expected band"
        );
        assert_eq!(r3.per_cu_cycles.len(), 3);
    }

    #[test]
    fn with_cus_rejects_counts_the_allocator_cannot_back() {
        let max = device_cu_bound();
        assert_eq!(
            SystemConfig::preset(SystemKind::DcdPm)
                .with_cus(0)
                .unwrap_err(),
            SystemError::InvalidCuCount { requested: 0, max }
        );
        assert_eq!(
            SystemConfig::preset(SystemKind::DcdPm)
                .with_cus(max + 1)
                .unwrap_err(),
            SystemError::InvalidCuCount {
                requested: max + 1,
                max
            }
        );
        assert!(SystemConfig::preset(SystemKind::DcdPm)
            .with_cus(max)
            .is_ok());
        // A hand-built config with an unbackable count fails at system
        // construction too.
        let mut config = SystemConfig::preset(SystemKind::DcdPm);
        config.cus = 0;
        assert!(matches!(
            System::new(config, &add_one_kernel(64)),
            Err(SystemError::InvalidCuCount { requested: 0, .. })
        ));
    }

    #[test]
    fn parallel_dispatch_is_bit_identical_to_serial() {
        // The engine's core guarantee in miniature: the same multi-CU run
        // scheduled serially and on 4 worker threads yields identical
        // memory contents and an identical RunReport.
        for kind in [SystemKind::Original, SystemKind::Dcd, SystemKind::DcdPm] {
            let (out_s, r_s) = run_add_one_workers(kind, 3, 4096, 64, 1);
            let (out_p, r_p) = run_add_one_workers(kind, 3, 4096, 64, 4);
            assert_eq!(out_s, out_p, "{kind:?}: memory diverged");
            assert_eq!(r_s, r_p, "{kind:?}: reports diverged");
        }
    }

    #[test]
    fn parallel_trace_streams_are_deterministic() {
        let run = |workers: usize| {
            let kernel = add_one_kernel(64);
            let config = SystemConfig::preset(SystemKind::Dcd)
                .with_cus(3)
                .unwrap()
                .with_workers(workers)
                .with_trace(TraceMode::Full);
            let mut sys = System::new(config, &kernel).unwrap();
            let input: Vec<u32> = (0..512).collect();
            let a_in = sys.alloc_words(&input);
            let a_out = sys.alloc(512 * 4);
            sys.set_args(&[a_in as u32, a_out as u32]);
            sys.dispatch([8, 1, 1]).unwrap();
            sys.report().trace_events.unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        // Streams match event-for-event; only the ShardRun worker lane
        // reflects the scheduler (cu % workers).
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            match (a, b) {
                (
                    TraceEvent::ShardRun {
                        cu: ca,
                        start: sa,
                        end: ea,
                        ..
                    },
                    TraceEvent::ShardRun {
                        cu: cb,
                        start: sb,
                        end: eb,
                        ..
                    },
                ) => {
                    assert_eq!((ca, sa, ea), (cb, sb, eb));
                }
                _ => assert_eq!(a, b),
            }
        }
        let shards = serial
            .iter()
            .filter(|e| matches!(e, TraceEvent::ShardRun { .. }))
            .count();
        assert_eq!(shards, 3, "one ShardRun per CU per dispatch");
    }

    #[test]
    fn partial_tail_masks_lanes() {
        // 96-item workgroups: second wave has 32 active lanes.
        let kernel = add_one_kernel(96);
        let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel).unwrap();
        let input: Vec<u32> = (0..96).collect();
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc(96 * 4 + 64 * 4);
        sys.set_args(&[a_in as u32, a_out as u32]);
        sys.dispatch([1, 1, 1]).unwrap();
        let out = sys.read_words(a_out, 96 + 16);
        for (i, &v) in out.iter().take(96).enumerate() {
            assert_eq!(v, i as u32 + 1);
        }
        // Lanes beyond the workgroup must not have stored.
        for (i, &v) in out.iter().enumerate().skip(96) {
            assert_eq!(v, 0, "lane {i} leaked past the exec mask");
        }
    }

    #[test]
    fn dispatch_without_args_fails() {
        let kernel = add_one_kernel(64);
        let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel).unwrap();
        assert_eq!(sys.dispatch([1, 1, 1]), Err(SystemError::ArgsNotSet));
        sys.set_args(&[0, 0]);
        assert_eq!(sys.dispatch([0, 1, 1]), Err(SystemError::EmptyDispatch));
    }

    #[test]
    fn host_work_charged_at_mb_clock() {
        let kernel = add_one_kernel(64);
        let mut sys = System::new(SystemConfig::preset(SystemKind::Original), &kernel).unwrap();
        sys.host_work(50_000_000); // 1 second at 50 MHz
        let r = sys.report();
        assert!((r.seconds - 1.0).abs() < 1e-9);

        let mut sys2 = System::new(SystemConfig::preset(SystemKind::Dcd), &kernel).unwrap();
        sys2.host_work(50_000_000); // 0.25 s at 200 MHz
        let r2 = sys2.report();
        assert!((r2.seconds - 0.25).abs() < 1e-9);
    }

    #[test]
    fn report_accumulates_instruction_counts() {
        let (_, r) = run_add_one(SystemKind::DcdPm, 1, 128, 64);
        assert_eq!(r.stats.wavefronts_retired, 2);
        assert!(r.instructions() > 0);
        assert!(r.stats.vector_mem_ops >= 4); // 2 wavefronts x (load+store)
    }

    /// Kernel that retires immediately, leaving the dispatcher's launch-time
    /// register state intact for inspection.
    fn noop_kernel(wg_size: u32) -> Kernel {
        let mut b = KernelBuilder::new("noop");
        b.vgprs(4).sgprs(32).workgroup_size(wg_size);
        b.endpgm().unwrap();
        b.finish().unwrap()
    }

    /// Asserts the full launch ABI on one wave: buffer descriptors in
    /// s[4:7]/s[8:11]/s[12:15], workgroup ids in s16..s18 and work-item ids
    /// in v0..v2 (see [`abi`]).
    fn assert_launch_abi(sys: &System, w: usize, wg_id: [u32; 3], lane_base: u32) {
        let wave = sys.cus[0].wave(w);
        // s[4:7] IMM_UAV: base 0, unbounded records.
        for r in 0..4u32 {
            assert_eq!(wave.sgpr(u32::from(abi::UAV_DESC) + r).unwrap(), 0);
        }
        // s[8:11] IMM_CONST_BUFFER0: OpenCL call values.
        let cb0 = sys.cb0_addr;
        assert_eq!(wave.sgpr(u32::from(abi::CONST_BUF0)).unwrap(), cb0 as u32);
        assert_eq!(
            wave.sgpr(u32::from(abi::CONST_BUF0) + 1).unwrap(),
            (cb0 >> 32) as u32
        );
        assert_eq!(wave.sgpr(u32::from(abi::CONST_BUF0) + 2).unwrap(), 64);
        assert_eq!(wave.sgpr(u32::from(abi::CONST_BUF0) + 3).unwrap(), 0);
        // s[12:15] IMM_CONST_BUFFER1: kernel arguments.
        let args = sys.args_addr.unwrap();
        assert_eq!(wave.sgpr(u32::from(abi::CONST_BUF1)).unwrap(), args as u32);
        assert_eq!(
            wave.sgpr(u32::from(abi::CONST_BUF1) + 1).unwrap(),
            (args >> 32) as u32
        );
        assert_eq!(
            wave.sgpr(u32::from(abi::CONST_BUF1) + 2).unwrap(),
            sys.args_len as u32
        );
        assert_eq!(wave.sgpr(u32::from(abi::CONST_BUF1) + 3).unwrap(), 0);
        // s16..s18: workgroup ids.
        assert_eq!(wave.sgpr(u32::from(abi::WG_ID_X)).unwrap(), wg_id[0]);
        assert_eq!(wave.sgpr(u32::from(abi::WG_ID_Y)).unwrap(), wg_id[1]);
        assert_eq!(wave.sgpr(u32::from(abi::WG_ID_Z)).unwrap(), wg_id[2]);
        // v0..v2: work-item ids (1-D workgroups, so Y/Z are zero).
        for lane in [0usize, 17, 63] {
            assert_eq!(
                wave.vgpr(u32::from(abi::TID_X), lane).unwrap(),
                lane_base + lane as u32
            );
            assert_eq!(wave.vgpr(u32::from(abi::TID_Y), lane).unwrap(), 0);
            assert_eq!(wave.vgpr(u32::from(abi::TID_Z), lane).unwrap(), 0);
        }
    }

    #[test]
    fn launch_abi_2d_grid() {
        let kernel = noop_kernel(64);
        let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel).unwrap();
        sys.set_args(&[7, 11, 13]);
        sys.dispatch([2, 3, 1]).unwrap();
        assert_eq!(sys.args_len, 12);
        // Workgroups are enumerated x-fastest; single CU, single batch.
        let order = [
            [0, 0, 0],
            [1, 0, 0],
            [0, 1, 0],
            [1, 1, 0],
            [0, 2, 0],
            [1, 2, 0],
        ];
        for (w, wg_id) in order.into_iter().enumerate() {
            assert_launch_abi(&sys, w, wg_id, 0);
        }
    }

    #[test]
    fn launch_abi_3d_grid() {
        let kernel = noop_kernel(64);
        let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel).unwrap();
        sys.set_args(&[1]);
        sys.dispatch([2, 2, 2]).unwrap();
        let order = [
            [0, 0, 0],
            [1, 0, 0],
            [0, 1, 0],
            [1, 1, 0],
            [0, 0, 1],
            [1, 0, 1],
            [0, 1, 1],
            [1, 1, 1],
        ];
        for (w, wg_id) in order.into_iter().enumerate() {
            assert_launch_abi(&sys, w, wg_id, 0);
        }
    }

    #[test]
    fn launch_abi_multi_wave_workgroup() {
        // 100-item workgroups: two waves, the second with lane_base 64 and a
        // 36-lane exec tail.
        let kernel = noop_kernel(100);
        let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel).unwrap();
        sys.set_args(&[0]);
        sys.dispatch([1, 1, 1]).unwrap();
        assert_launch_abi(&sys, 0, [0, 0, 0], 0);
        assert_launch_abi(&sys, 1, [0, 0, 0], 64);
        assert_eq!(sys.cus[0].wave(0).exec, u64::MAX);
        assert_eq!(sys.cus[0].wave(1).exec, (1u64 << 36) - 1);
    }

    #[test]
    fn trace_summary_mode_attributes_system_runs() {
        let kernel = add_one_kernel(64);
        let config = SystemConfig::preset(SystemKind::Original).with_trace(TraceMode::Summary);
        let mut sys = System::new(config, &kernel).unwrap();
        let input: Vec<u32> = (0..256).collect();
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc(256 * 4);
        sys.set_args(&[a_in as u32, a_out as u32]);
        sys.dispatch([4, 1, 1]).unwrap();
        let r = sys.report();
        let trace = r.trace.expect("summary mode populates the report");
        trace.check_invariant().unwrap();
        assert_eq!(trace.waves.len(), 4);
        // The Original preset serialises every global access through the
        // MicroBlaze, so contending waves must queue at the memory server.
        assert!(
            trace.stall_cycles(StallReason::MemoryQueue) > 0,
            "no server queueing recorded: {:?}",
            trace.stalls
        );
        // Summary mode does not buffer per-cycle events.
        assert!(r.trace_events.is_none());
    }

    #[test]
    fn trace_full_mode_buffers_events() {
        let kernel = add_one_kernel(64);
        let config = SystemConfig::preset(SystemKind::DcdPm).with_trace(TraceMode::Full);
        let mut sys = System::new(config, &kernel).unwrap();
        let input: Vec<u32> = (0..128).collect();
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc(128 * 4);
        sys.set_args(&[a_in as u32, a_out as u32]);
        sys.dispatch([2, 1, 1]).unwrap();
        let r = sys.report();
        r.trace
            .expect("full mode also summarises")
            .check_invariant()
            .unwrap();
        let events = r.trace_events.expect("full mode buffers events");
        assert!(matches!(
            events.first(),
            Some(TraceEvent::KernelDispatch { .. })
        ));
        let issues = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Issue { .. }))
            .count() as u64;
        assert_eq!(issues, r.stats.instructions);
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::MemComplete { .. })));
    }

    #[test]
    fn preempted_dispatch_is_bit_identical_across_serde_checkpoints() {
        // The tentpole property at system level: a dispatch sliced into
        // small quanta — with the machine serialised to bytes, dropped,
        // and restored from the checkpoint before *every* resume — ends
        // bit-identical to an uninterrupted run, in both memory contents
        // and cycle accounting.
        let kernel = add_one_kernel(64);
        let n = 2048u32;
        let build = |kernel: &Kernel| {
            let config = SystemConfig::preset(SystemKind::DcdPm).with_cus(3).unwrap();
            let mut sys = System::new(config, kernel).unwrap();
            let input: Vec<u32> = (0..n).map(|i| i.wrapping_mul(7)).collect();
            let a_in = sys.alloc_words(&input);
            let a_out = sys.alloc(u64::from(n) * 4);
            sys.set_args(&[a_in as u32, a_out as u32]);
            (sys, a_out)
        };
        let (mut reference, ref_out) = build(&kernel);
        let ref_cycles = reference.dispatch([n / 64, 1, 1]).unwrap();
        let ref_words = reference.read_words(ref_out, n as usize);
        let ref_report = reference.report();

        let (mut sys, a_out) = build(&kernel);
        let mut progress = sys.dispatch_preemptible([n / 64, 1, 1], 20).unwrap();
        let mut pauses = 0u32;
        let cycles = loop {
            match progress {
                DispatchProgress::Complete { cycles } => break cycles,
                DispatchProgress::Paused => {
                    pauses += 1;
                    assert!(sys.is_paused());
                    let ck = sys.checkpoint().unwrap();
                    let bytes = scratch_snap::to_bytes(&ck);
                    drop(sys);
                    let decoded: SystemCheckpoint = scratch_snap::from_bytes(&bytes).unwrap();
                    assert_eq!(decoded, ck);
                    sys = System::restore(&decoded, None).unwrap();
                    progress = sys.resume_dispatch(20).unwrap();
                }
            }
        };
        assert!(pauses > 1, "quantum too coarse to exercise preemption");
        assert_eq!(cycles, ref_cycles);
        assert_eq!(sys.read_words(a_out, n as usize), ref_words);
        let report = sys.report();
        assert_eq!(report.cu_cycles, ref_report.cu_cycles);
        assert_eq!(report.stats, ref_report.stats);
        assert_eq!(report.per_cu_cycles, ref_report.per_cu_cycles);
        assert_eq!(report.per_kernel_cycles, ref_report.per_kernel_cycles);
        assert_eq!(report.global_accesses, ref_report.global_accesses);
        assert_eq!(report.prefetch_hits, ref_report.prefetch_hits);
    }

    #[test]
    fn preemption_api_enforces_sequencing() {
        let kernel = add_one_kernel(64);
        let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel).unwrap();
        // No paused dispatch yet: resume and checkpoint are refused.
        assert!(matches!(
            sys.resume_dispatch(100),
            Err(SystemError::Preemption { .. })
        ));
        assert!(matches!(
            sys.checkpoint(),
            Err(SystemError::Preemption { .. })
        ));
        let input: Vec<u32> = (0..1024).collect();
        let a_in = sys.alloc_words(&input);
        let a_out = sys.alloc(1024 * 4);
        sys.set_args(&[a_in as u32, a_out as u32]);
        assert_eq!(
            sys.dispatch_preemptible([16, 1, 1], 50).unwrap(),
            DispatchProgress::Paused
        );
        // While paused, regular and fresh preemptible dispatches are
        // refused — they would break the paused shards' epoch isolation.
        assert!(matches!(
            sys.dispatch([16, 1, 1]),
            Err(SystemError::Preemption { .. })
        ));
        assert!(matches!(
            sys.dispatch_preemptible([16, 1, 1], 50),
            Err(SystemError::Preemption { .. })
        ));
        // Drive it to completion; the machine is usable again after.
        while sys.resume_dispatch(50).unwrap() == DispatchProgress::Paused {}
        assert!(!sys.is_paused());
        let out = sys.read_words(a_out, 1024);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u32 + 1);
        }
        sys.dispatch([16, 1, 1]).unwrap();
    }

    #[test]
    fn preemptible_dispatch_requires_trace_off() {
        let kernel = add_one_kernel(64);
        let config = SystemConfig::preset(SystemKind::DcdPm).with_trace(TraceMode::Summary);
        let mut sys = System::new(config, &kernel).unwrap();
        sys.set_args(&[0, 0]);
        assert!(matches!(
            sys.dispatch_preemptible([1, 1, 1], 100),
            Err(SystemError::Preemption { .. })
        ));
    }

    #[test]
    fn trace_off_leaves_report_untouched() {
        let (_, r) = run_add_one(SystemKind::Dcd, 1, 128, 64);
        assert!(r.trace.is_none());
        assert!(r.trace_events.is_none());
    }
}
