//! The register-initialisation ABI the ultra-threaded dispatcher programs
//! before launching a workgroup (paper §2.2.2).
//!
//! * `s[4:7]`   — `IMM_UAV`: buffer descriptor for data-gathering accesses.
//!   The dispatcher sets base 0 with unbounded records, so kernels address
//!   global memory with absolute byte offsets through this descriptor.
//! * `s[8:11]`  — `IMM_CONST_BUFFER0`: base address of the OpenCL call
//!   values (grid dimensions, workgroup size, global sizes).
//! * `s[12:15]` — `IMM_CONST_BUFFER1`: pointer to the kernel arguments.
//! * `s16..s18` — workgroup id in X, Y, Z (Y/Z initialised only when used).
//! * `v0..v2`   — work-item id in X, Y, Z.
//!
//! Because the dispatcher writes registers up to `s18`, every kernel must
//! declare an SGPR budget of at least 19 (the default
//! [`scratch_asm::KernelMeta`] reserves 32).

/// First SGPR of the UAV buffer descriptor.
pub const UAV_DESC: u8 = 4;
/// First SGPR of the `IMM_CONST_BUFFER0` descriptor (OpenCL call values).
pub const CONST_BUF0: u8 = 8;
/// First SGPR of the `IMM_CONST_BUFFER1` descriptor (kernel arguments).
pub const CONST_BUF1: u8 = 12;
/// SGPR holding the workgroup id, X dimension.
pub const WG_ID_X: u8 = 16;
/// SGPR holding the workgroup id, Y dimension.
pub const WG_ID_Y: u8 = 17;
/// SGPR holding the workgroup id, Z dimension.
pub const WG_ID_Z: u8 = 18;
/// VGPR holding the work-item id, X dimension.
pub const TID_X: u8 = 0;
/// VGPR holding the work-item id, Y dimension.
pub const TID_Y: u8 = 1;
/// VGPR holding the work-item id, Z dimension.
pub const TID_Z: u8 = 2;

/// Dword indices within `IMM_CONST_BUFFER0`.
pub mod cb0 {
    /// Workgroup count, X.
    pub const GRID_X: u8 = 0;
    /// Workgroup count, Y.
    pub const GRID_Y: u8 = 1;
    /// Workgroup count, Z.
    pub const GRID_Z: u8 = 2;
    /// Work-items per workgroup.
    pub const WG_SIZE: u8 = 3;
    /// Global size, X (`GRID_X × WG_SIZE`).
    pub const GLOBAL_X: u8 = 4;
}
