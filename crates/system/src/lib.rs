//! # scratch-system
//!
//! Full-system model of the paper's FPGA platform (§2.2): global DDR3
//! memory behind a MicroBlaze/AXI path, the dual-clock-domain split, the
//! in-fabric prefetch buffer, and the ultra-threaded dispatcher that loads
//! register state and distributes workgroups over one or more MIAOW2.0
//! compute units.
//!
//! Three system configurations reproduce the paper's comparison points:
//!
//! * [`SystemKind::Original`] — single 50 MHz clock; every global access is
//!   serviced through the MicroBlaze, serialising requests system-wide;
//! * [`SystemKind::Dcd`] — dual clock domain: the memory side runs at
//!   200 MHz (4:1), quartering service times seen from the CU clock;
//! * [`SystemKind::DcdPm`] — DCD plus the BRAM prefetch buffer: accesses to
//!   preloaded ranges bypass the MicroBlaze entirely.
//!
//! # Examples
//!
//! ```
//! use scratch_asm::KernelBuilder;
//! use scratch_isa::{Opcode, Operand, SmrdOffset};
//! use scratch_system::{abi, System, SystemConfig, SystemKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // out[tid] = tid * 2 over one workgroup (v0 holds the work-item id).
//! let mut b = KernelBuilder::new("double");
//! b.vgprs(8).sgprs(24);
//! b.smrd(
//!     Opcode::SBufferLoadDword,
//!     Operand::Sgpr(20),
//!     abi::CONST_BUF1,
//!     SmrdOffset::Imm(0),
//! )?;
//! b.waitcnt(None, Some(0))?;
//! b.vop2(Opcode::VLshlrevB32, 1, Operand::IntConst(2), 0)?; // byte offset
//! b.vop2(Opcode::VAddI32, 2, Operand::Vgpr(0), 0)?; // value = 2 * tid
//! b.mubuf(
//!     Opcode::BufferStoreDword,
//!     2,
//!     1,
//!     abi::UAV_DESC,
//!     Operand::Sgpr(20),
//!     0,
//! )?;
//! b.waitcnt(Some(0), None)?;
//! b.endpgm()?;
//! let kernel = b.finish()?;
//!
//! let mut sys = System::new(SystemConfig::preset(SystemKind::DcdPm), &kernel)?;
//! let out = sys.alloc(64 * 4);
//! sys.set_args(&[out as u32]);
//! sys.dispatch([1, 1, 1])?;
//! assert_eq!(sys.read_words(out, 64)[5], 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
mod error;
pub mod fault;
mod memory;
mod system;

pub use error::SystemError;
pub use fault::{CuUpset, FaultSpec, MemUpset};
pub use memory::{EpochDelta, EpochMemory, EpochState, MemTiming, MemoryState, SharedMemory};
pub use system::{
    DispatchProgress, ExecMode, RunReport, System, SystemCheckpoint, SystemConfig, SystemKind,
    TraceMode,
};

pub use scratch_cu::{CuError, CuFault, CuStats, FaultRecord, FaultTarget};
pub use scratch_fastpath::FastStats;
pub use scratch_trace::{chrome_trace, EventBuffer, StallReason, TraceEvent, TraceSummary, Tracer};
