//! Append-path fault hooks, in the `scratch-fault` style: a trait object
//! installed on the writer that gets to sabotage each append.
//!
//! These exist for crash testing only. [`TearOnce`] truncates one frame
//! mid-write and reports [`WalError::TornWrite`](crate::WalError) so unit
//! tests can observe the torn tail in-process; [`CrashOnAppend`] tears a
//! frame and then *aborts the process* — the deterministic stand-in for a
//! power cut landing in the middle of a `write(2)`, which the chaos
//! harness schedules by seed.

use std::fmt;

/// What the hook wants done to one append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TearAction {
    /// Write the frame intact.
    Pass,
    /// Write only the first `keep` bytes of the frame, flush them, then
    /// either abort the process (`abort: true` — a simulated crash) or
    /// return [`WalError::TornWrite`](crate::WalError) to the caller.
    Tear {
        /// Bytes of the frame to let through before cutting.
        keep: usize,
        /// Abort the process after the partial write.
        abort: bool,
    },
}

/// A saboteur on the append path. Consulted once per append with the
/// 1-based append ordinal and the complete frame about to be written.
pub trait AppendFault: fmt::Debug + Send {
    /// Decide this append's fate.
    fn on_append(&mut self, ordinal: u64, frame: &[u8]) -> TearAction;
}

/// Tear the `at`-th append (1-based), keeping `keep_frac` of the frame,
/// and return an error instead of aborting — the in-process test hook.
#[derive(Debug)]
pub struct TearOnce {
    at: u64,
    keep_frac: f64,
    seen: u64,
}

impl TearOnce {
    /// Tear append number `at`, keeping `keep_frac` (clamped to `0..=1`)
    /// of the frame bytes.
    #[must_use]
    pub fn new(at: u64, keep_frac: f64) -> TearOnce {
        TearOnce {
            at: at.max(1),
            keep_frac: keep_frac.clamp(0.0, 1.0),
            seen: 0,
        }
    }
}

impl AppendFault for TearOnce {
    fn on_append(&mut self, ordinal: u64, frame: &[u8]) -> TearAction {
        self.seen = ordinal;
        if ordinal == self.at {
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
            #[allow(clippy::cast_sign_loss)]
            let keep = (frame.len() as f64 * self.keep_frac) as usize;
            TearAction::Tear {
                keep: keep.min(frame.len().saturating_sub(1)),
                abort: false,
            }
        } else {
            TearAction::Pass
        }
    }
}

/// Tear the `at`-th append (1-based) after `keep` bytes and abort the
/// process — the chaos harness's mid-append crash. The serving daemon
/// installs it from the `SCRATCH_WAL_CRASH=<at>:<keep>` environment
/// variable (test-only; never set it in production).
#[derive(Debug)]
pub struct CrashOnAppend {
    at: u64,
    keep: usize,
}

impl CrashOnAppend {
    /// Crash on append number `at`, letting `keep` frame bytes through.
    #[must_use]
    pub fn new(at: u64, keep: usize) -> CrashOnAppend {
        CrashOnAppend {
            at: at.max(1),
            keep,
        }
    }

    /// Parse the `<at>:<keep>` form used by the environment hook.
    #[must_use]
    pub fn parse(spec: &str) -> Option<CrashOnAppend> {
        let (at, keep) = spec.split_once(':')?;
        Some(CrashOnAppend::new(at.parse().ok()?, keep.parse().ok()?))
    }
}

impl AppendFault for CrashOnAppend {
    fn on_append(&mut self, ordinal: u64, frame: &[u8]) -> TearAction {
        if ordinal == self.at {
            TearAction::Tear {
                keep: self.keep.min(frame.len().saturating_sub(1)),
                abort: true,
            }
        } else {
            TearAction::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tear_once_fires_exactly_once_at_the_scheduled_append() {
        let mut hook = TearOnce::new(3, 0.5);
        let frame = vec![0u8; 100];
        assert_eq!(hook.on_append(1, &frame), TearAction::Pass);
        assert_eq!(hook.on_append(2, &frame), TearAction::Pass);
        assert_eq!(
            hook.on_append(3, &frame),
            TearAction::Tear {
                keep: 50,
                abort: false
            }
        );
        assert_eq!(hook.on_append(4, &frame), TearAction::Pass);
    }

    #[test]
    fn crash_spec_parses_and_rejects_garbage() {
        let hook = CrashOnAppend::parse("12:7").unwrap();
        assert_eq!(hook.at, 12);
        assert_eq!(hook.keep, 7);
        assert!(CrashOnAppend::parse("12").is_none());
        assert!(CrashOnAppend::parse("a:b").is_none());
    }

    #[test]
    fn tears_always_keep_strictly_less_than_the_frame() {
        let mut hook = TearOnce::new(1, 1.0);
        let frame = vec![0u8; 10];
        let TearAction::Tear { keep, .. } = hook.on_append(1, &frame) else {
            panic!("must tear");
        };
        assert!(
            keep < frame.len(),
            "a 'tear' that keeps everything is a no-op"
        );
    }
}
