//! Durable write-ahead log for the serving layer.
//!
//! The log is a directory of numbered segment files. Each segment is a
//! sequence of *frames*:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is the IEEE CRC32 of the payload and the payload is one
//! encoded [`Record`] — a job admission (the full serialized submission),
//! a completion (the digest the client was or would have been told), or a
//! mid-run checkpoint (the `scratch-snap` bytes captured at a preemption
//! quantum boundary). Appends go to the newest segment; when it passes
//! [`WalConfig::segment_bytes`] the writer rotates to a fresh one.
//!
//! ## Recovery model
//!
//! A crash can tear the tail of the newest segment mid-frame. Recovery
//! ([`Wal::open`]) therefore scans every segment in order, accepting
//! frames until the first damage — a short header, an implausible length,
//! a CRC mismatch, or an undecodable record — then truncates the damaged
//! segment at the last valid frame and drops any later segments. Garbage
//! never panics; it just marks the end of the durable prefix. The fold
//! over the surviving records yields the [`Recovery`]: jobs admitted but
//! not completed (each with its newest durable checkpoint, if any), a
//! [`RecoveryReport`] for operators, and the next request id.
//!
//! ## Durability model
//!
//! [`FsyncPolicy`] trades append latency against power-loss durability.
//! OS page cache survives a killed *process*, so even `Never` gives
//! exactly-once recovery under SIGKILL (the chaos harness's regime);
//! `Always`/`Interval` bound the loss window against whole-machine
//! failure. The [`fault`] module hooks the append path for crash tests:
//! a hook can tear a frame mid-write and abort, simulating the worst
//! moment a power cut can pick.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod log;
mod record;

pub use fault::{AppendFault, CrashOnAppend, TearAction, TearOnce};
pub use log::{
    inspect, verify, AppendInfo, CompletionMeta, Damage, FsyncPolicy, InspectEntry, PendingEntry,
    Recovery, RecoveryReport, VerifyReport, Wal, WalConfig, WalState,
};
pub use record::{Record, FRAME_HEADER_BYTES, MAX_FRAME_PAYLOAD};

use std::error::Error;
use std::fmt;
use std::io;

/// Everything that can go wrong operating the log.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem-level failure (open, read, write, fsync, truncate).
    Io(io::Error),
    /// A record payload larger than [`MAX_FRAME_PAYLOAD`] was offered for
    /// append — the frame would be unreadable by recovery's plausibility
    /// bound, so it is refused up front.
    FrameTooLarge {
        /// Offered payload size in bytes.
        len: usize,
    },
    /// An installed [`AppendFault`] hook tore this append (test-only).
    TornWrite,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::FrameTooLarge { len } => {
                write!(
                    f,
                    "record payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame bound"
                )
            }
            WalError::TornWrite => write!(f, "append torn by the installed fault hook"),
        }
    }
}

impl Error for WalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// IEEE 802.3 CRC32 (reflected, polynomial `0xedb8_8320`) over raw bytes —
/// the byte-granular sibling of `scratch_fault::crc32`, which works on
/// `u32` words. Table-free: the log is I/O-bound, not CRC-bound.
#[must_use]
pub fn crc32_bytes(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32_bytes(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32_bytes(b""), 0);
        // Any single-bit flip changes the CRC.
        let a = crc32_bytes(b"scratch");
        let b = crc32_bytes(b"scsatch");
        assert_ne!(a, b);
    }
}
