//! Record payloads and the frame codec.
//!
//! Records use a hand-rolled little-endian encoding (tag byte + fixed
//! ints + length-prefixed byte strings) rather than JSON: the admission
//! payload already *is* opaque serialized bytes from the serving layer,
//! and checkpoint bodies are `scratch-snap` binary — wrapping either in a
//! text codec would only double the write volume on the hot path.

use crate::{crc32_bytes, WalError};

/// Bytes of frame header preceding every payload: `len` + `crc`.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Plausibility bound on one frame's payload. Checkpoints of the largest
/// legal system state and the biggest accepted submission line both fit
/// with an order of magnitude to spare; anything larger in a header is
/// garbage, and recovery stops there instead of allocating it.
pub const MAX_FRAME_PAYLOAD: usize = 256 << 20;

const TAG_ADMITTED: u8 = 1;
const TAG_COMPLETED: u8 = 2;
const TAG_CHECKPOINT: u8 = 3;

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A job passed admission control. Appended (and flushed per policy)
    /// *before* the client's `Accepted` ack is sent, so every acked job
    /// is durable.
    Admitted {
        /// The request id — the job id the client was acked with.
        id: u64,
        /// Tenant the job bills against (duplicated out of the payload so
        /// `wal inspect` needs no knowledge of the payload format).
        tenant: String,
        /// Submission label, for the same reason.
        label: String,
        /// The full serialized submission, opaque to the log (the serving
        /// layer stores its wire-format `SubmitRequest` JSON).
        payload: Vec<u8>,
    },
    /// An admitted job produced its outcome (ok or failed — failures are
    /// outcomes too and must not re-run on recovery).
    Completed {
        /// The admitted request id.
        id: u64,
        /// Whether the run succeeded.
        ok: bool,
        /// FNV-1a digest of the output words (the bit-identity witness).
        digest: u64,
        /// Simulated cycles of the run.
        cycles: u64,
        /// Instructions retired.
        instructions: u64,
        /// Failure description; empty when `ok`.
        error: String,
    },
    /// The newest durable mid-run state of a preemptible job, captured at
    /// a quantum boundary. Recovery resumes from the last one.
    Checkpoint {
        /// The admitted request id.
        id: u64,
        /// Output-buffer base address inside the checkpointed system (the
        /// one piece of slice state living outside the snapshot).
        out_addr: u64,
        /// `scratch-snap` bytes of the `SystemCheckpoint`.
        snap: Vec<u8>,
    },
}

impl Record {
    /// The request id this record concerns.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Record::Admitted { id, .. }
            | Record::Completed { id, .. }
            | Record::Checkpoint { id, .. } => *id,
        }
    }

    /// One-line human summary (`wal inspect`).
    #[must_use]
    pub fn summary(&self) -> String {
        match self {
            Record::Admitted {
                id,
                tenant,
                label,
                payload,
            } => format!(
                "admitted   id={id} tenant={tenant} label={label} payload={}B",
                payload.len()
            ),
            Record::Completed {
                id,
                ok,
                digest,
                cycles,
                error,
                ..
            } => {
                if *ok {
                    format!("completed  id={id} ok digest={digest:#018x} cycles={cycles}")
                } else {
                    format!("completed  id={id} FAILED error={error:?}")
                }
            }
            Record::Checkpoint { id, snap, .. } => {
                format!("checkpoint id={id} snap={}B", snap.len())
            }
        }
    }

    /// Encode the record payload (no frame header).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Record::Admitted {
                id,
                tenant,
                label,
                payload,
            } => {
                out.push(TAG_ADMITTED);
                put_u64(&mut out, *id);
                put_bytes(&mut out, tenant.as_bytes());
                put_bytes(&mut out, label.as_bytes());
                put_bytes(&mut out, payload);
            }
            Record::Completed {
                id,
                ok,
                digest,
                cycles,
                instructions,
                error,
            } => {
                out.push(TAG_COMPLETED);
                put_u64(&mut out, *id);
                out.push(u8::from(*ok));
                put_u64(&mut out, *digest);
                put_u64(&mut out, *cycles);
                put_u64(&mut out, *instructions);
                put_bytes(&mut out, error.as_bytes());
            }
            Record::Checkpoint { id, out_addr, snap } => {
                out.push(TAG_CHECKPOINT);
                put_u64(&mut out, *id);
                put_u64(&mut out, *out_addr);
                put_bytes(&mut out, snap);
            }
        }
        out
    }

    /// Decode a record payload. Any structural violation — unknown tag,
    /// short field, trailing bytes — is an error string; recovery treats
    /// it as damage, never a panic.
    ///
    /// # Errors
    ///
    /// A description of the first violated clause.
    pub fn decode(buf: &[u8]) -> Result<Record, String> {
        let mut r = Reader { buf, pos: 0 };
        let record = match r.u8()? {
            TAG_ADMITTED => Record::Admitted {
                id: r.u64()?,
                tenant: r.string()?,
                label: r.string()?,
                payload: r.bytes()?,
            },
            TAG_COMPLETED => Record::Completed {
                id: r.u64()?,
                ok: match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(format!("bool byte {other}")),
                },
                digest: r.u64()?,
                cycles: r.u64()?,
                instructions: r.u64()?,
                error: r.string()?,
            },
            TAG_CHECKPOINT => Record::Checkpoint {
                id: r.u64()?,
                out_addr: r.u64()?,
                snap: r.bytes()?,
            },
            other => return Err(format!("unknown record tag {other}")),
        };
        if r.pos != buf.len() {
            return Err(format!("{} trailing bytes after record", buf.len() - r.pos));
        }
        Ok(record)
    }

    /// Encode the record as a complete frame: header + payload.
    ///
    /// # Errors
    ///
    /// [`WalError::FrameTooLarge`] when the payload exceeds the
    /// plausibility bound recovery enforces.
    pub fn frame(&self) -> Result<Vec<u8>, WalError> {
        let payload = self.encode();
        if payload.len() > MAX_FRAME_PAYLOAD {
            return Err(WalError::FrameTooLarge { len: payload.len() });
        }
        let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        out.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("bounded above")
                .to_le_bytes(),
        );
        out.extend_from_slice(&crc32_bytes(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }
}

/// Why a scan stopped accepting frames at some offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDamage {
    /// Fewer than [`FRAME_HEADER_BYTES`] bytes remain — a torn header.
    ShortHeader,
    /// The length field exceeds [`MAX_FRAME_PAYLOAD`] — garbage, not data.
    ImplausibleLength(u64),
    /// The payload extends past the end of the segment — a torn payload.
    ShortPayload,
    /// The payload's CRC32 does not match the header.
    CrcMismatch,
    /// The CRC held but the payload does not decode as a record.
    BadRecord(String),
}

impl std::fmt::Display for FrameDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameDamage::ShortHeader => write!(f, "torn frame header"),
            FrameDamage::ImplausibleLength(len) => write!(f, "implausible frame length {len}"),
            FrameDamage::ShortPayload => write!(f, "torn frame payload"),
            FrameDamage::CrcMismatch => write!(f, "payload CRC mismatch"),
            FrameDamage::BadRecord(msg) => write!(f, "undecodable record: {msg}"),
        }
    }
}

/// Parse the frame starting at `offset`. `Ok(None)` means a clean end of
/// segment (exactly at the boundary); damage is a typed stop reason.
pub(crate) fn parse_frame(
    buf: &[u8],
    offset: usize,
) -> Result<Option<(Record, usize)>, FrameDamage> {
    if offset == buf.len() {
        return Ok(None);
    }
    let remaining = &buf[offset..];
    if remaining.len() < FRAME_HEADER_BYTES {
        return Err(FrameDamage::ShortHeader);
    }
    let len = u32::from_le_bytes(remaining[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameDamage::ImplausibleLength(len as u64));
    }
    let crc = u32::from_le_bytes(remaining[4..8].try_into().expect("4 bytes"));
    let Some(payload) = remaining.get(FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len) else {
        return Err(FrameDamage::ShortPayload);
    };
    if crc32_bytes(payload) != crc {
        return Err(FrameDamage::CrcMismatch);
    }
    let record = Record::decode(payload).map_err(FrameDamage::BadRecord)?;
    Ok(Some((record, FRAME_HEADER_BYTES + len)))
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&u32::try_from(b.len()).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or("short read (u8)")?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let end = self.pos.checked_add(8).ok_or("overflow")?;
        let bytes = self.buf.get(self.pos..end).ok_or("short read (u64)")?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let end = self.pos.checked_add(4).ok_or("overflow")?;
        let len_bytes = self.buf.get(self.pos..end).ok_or("short read (len)")?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        self.pos = end;
        let end = self.pos.checked_add(len).ok_or("overflow")?;
        let bytes = self.buf.get(self.pos..end).ok_or("short read (bytes)")?;
        self.pos = end;
        Ok(bytes.to_vec())
    }

    fn string(&mut self) -> Result<String, String> {
        String::from_utf8(self.bytes()?).map_err(|_| "non-UTF-8 string".to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::Admitted {
                id: 7,
                tenant: "acme".into(),
                label: "saxpy".into(),
                payload: vec![1, 2, 3, 255],
            },
            Record::Completed {
                id: 7,
                ok: true,
                digest: 0xdead_beef_cafe_f00d,
                cycles: 123_456,
                instructions: 9_876,
                error: String::new(),
            },
            Record::Completed {
                id: 8,
                ok: false,
                digest: 0,
                cycles: 0,
                instructions: 0,
                error: "watchdog: job exceeded its budget".into(),
            },
            Record::Checkpoint {
                id: 9,
                out_addr: 0x1000,
                snap: (0..=255u8).collect(),
            },
        ]
    }

    #[test]
    fn records_round_trip_through_the_codec() {
        for r in samples() {
            let encoded = r.encode();
            assert_eq!(Record::decode(&encoded).unwrap(), r);
        }
    }

    #[test]
    fn frames_round_trip_and_chain() {
        let mut buf = Vec::new();
        for r in samples() {
            buf.extend_from_slice(&r.frame().unwrap());
        }
        let mut offset = 0;
        let mut seen = Vec::new();
        while let Some((record, consumed)) = parse_frame(&buf, offset).unwrap() {
            seen.push(record);
            offset += consumed;
        }
        assert_eq!(seen, samples());
        assert_eq!(offset, buf.len());
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        assert!(Record::decode(&[]).is_err());
        assert!(Record::decode(&[99]).is_err());
        assert!(Record::decode(&[TAG_ADMITTED, 1, 2]).is_err());
        // Trailing bytes after a valid record are a violation too.
        let mut buf = samples()[0].encode();
        buf.push(0);
        assert!(Record::decode(&buf).is_err());
    }

    #[test]
    fn parse_frame_types_each_damage() {
        let good = samples()[0].frame().unwrap();
        // Torn header.
        assert_eq!(parse_frame(&good[..4], 0), Err(FrameDamage::ShortHeader));
        // Torn payload.
        assert_eq!(
            parse_frame(&good[..good.len() - 1], 0),
            Err(FrameDamage::ShortPayload)
        );
        // Flipped payload byte -> CRC mismatch.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(parse_frame(&flipped, 0), Err(FrameDamage::CrcMismatch));
        // Implausible length field.
        let mut huge = good.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            parse_frame(&huge, 0),
            Err(FrameDamage::ImplausibleLength(_))
        ));
        // Valid CRC over an undecodable payload.
        let payload = [42u8, 1, 2, 3];
        let mut bad = Vec::new();
        bad.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bad.extend_from_slice(&crc32_bytes(&payload).to_le_bytes());
        bad.extend_from_slice(&payload);
        assert!(matches!(
            parse_frame(&bad, 0),
            Err(FrameDamage::BadRecord(_))
        ));
    }
}
